"""Ablation: specialised JIT modules vs the generic interpreted
dispatcher (the design alternative Sec. V discusses and rejects — a
union-type/generic interpreter "adds execution overhead and inefficiency,
since an additional step is required to look up" operators per call).

At tiny sizes dispatch dominates (the JIT's advantage shows); at large
sizes kernel work dominates and the engines converge — the same shape as
the Fig. 10 DSL-overhead claim, one level down the stack.
"""

import numpy as np
import pytest

import repro as gb
from repro.io.generators import erdos_renyi

SIZES = [16, 256, 4096]


@pytest.fixture(scope="module")
def vec_ops():
    out = {}
    for n in SIZES:
        rng = np.random.default_rng(n)
        u = gb.Vector((rng.uniform(1, 2, n), np.arange(n)), shape=(n,))
        v = gb.Vector((rng.uniform(1, 2, n), np.arange(n)), shape=(n,))
        w = gb.Vector(shape=(n,), dtype=float)
        out[n] = (u, v, w)
    return out


@pytest.fixture(scope="module")
def mat_ops():
    out = {}
    for n in SIZES:
        a = erdos_renyi(n, seed=n, weighted=True, dtype=float)
        u = gb.Vector((np.ones(n), np.arange(n)), shape=(n,))
        w = gb.Vector(shape=(n,), dtype=float)
        out[n] = (a, u, w)
    return out


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("engine_name", ["interpreted", "pyjit"])
def test_ewise_add_dispatch(benchmark, vec_ops, engine_name, n):
    u, v, w = vec_ops[n]

    def run():
        w[None] = u + v

    with gb.use_engine(engine_name):
        run()
        benchmark(run)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("engine_name", ["interpreted", "pyjit"])
def test_mxv_dispatch(benchmark, mat_ops, engine_name, n):
    a, u, w = mat_ops[n]

    def run():
        w[None] = a @ u

    with gb.use_engine(engine_name):
        run()
        benchmark(run)
