"""Ablation: deferred expression evaluation vs eager temporaries, and
container reuse vs reallocation (the two Sec. IV design choices).

* *lazy*: ``C[None] = A + B`` — the expression object evaluates straight
  into C with no temporary container;
* *eager*: materialise ``A + B`` into a temporary, then identity-apply
  the temporary into C — the "naive implementation" the paper describes
  and rejects;
* *reuse vs fresh*: ``C[None] = A @ B`` vs ``C = A @ B`` — the paper
  warns "the performance differences between the two are not negligible".
"""

import pytest

import repro as gb
from repro.io.generators import erdos_renyi

N = 1024


@pytest.fixture(scope="module")
def ops():
    a = erdos_renyi(N, seed=1, weighted=True, dtype=float)
    b = erdos_renyi(N, seed=2, weighted=True, dtype=float)
    c = gb.Matrix(shape=(N, N), dtype=float)
    with gb.use_engine("pyjit"):
        c[None] = a + b  # warm the kernels
        tmp = gb.Matrix(a + b)
        c[None] = gb.apply(tmp)
    return a, b, c


def test_lazy_ewise_into_container(benchmark, ops):
    a, b, c = ops

    def lazy():
        c[None] = a + b

    with gb.use_engine("pyjit"):
        benchmark(lazy)


def test_eager_temporary_then_assign(benchmark, ops):
    a, b, c = ops

    def eager():
        tmp = gb.Matrix(a + b)  # explicit temporary container
        c[None] = gb.apply(tmp)  # then a full copy into C

    with gb.use_engine("pyjit"):
        benchmark(eager)


def test_container_reuse_setitem(benchmark, ops):
    a, b, c = ops

    def reuse():
        c[None] = a @ b

    with gb.use_engine("pyjit"):
        reuse()
        benchmark(reuse)


def test_container_fresh_rebind(benchmark, ops):
    a, b, _ = ops

    def fresh():
        return gb.Matrix(a @ b)  # new container every time (C = A @ B)

    with gb.use_engine("pyjit"):
        fresh()
        benchmark(fresh)
