#!/usr/bin/env python3
"""Cold-start latency: first-op time with and without the AOT catalog.

The paper's compilation cache amortizes ``g++`` latency "over future
runs", but a *fresh* cache directory (new container, new host, wiped
``$PYGB_CACHE_DIR``) pays the full compile on the first dispatch of
every spec.  This benchmark measures exactly that first-op cost — one
cold ``mxv`` on the chosen engine in a brand-new child process with an
empty cache dir — under three configurations:

* ``jit``      — no catalog: the first op generates + compiles inline;
* ``catalog``  — ``PYGB_CATALOG`` points at a pack baked beforehand:
  the first op loads a pre-built artifact (catalog hit);
* ``warm``     — the artifact is already in the (process-fresh) disk
  cache: the steady-state floor for comparison.

Medians over ``REPEATS`` child processes; results land in
``benchmarks/results/cold_start.json`` and are copied (as timings,
never gated) into the perf-trajectory file by ``collect_bench.py``.

Run after baking::

    python -m repro bake --out /tmp/pack
    python benchmarks/bench_cold_start.py --pack /tmp/pack
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"
REPEATS = 5

#: child: time the very first DSL op of the process (spec compile/load
#: included), report seconds on stdout
_CHILD = r"""
import sys, time
import numpy as np
import repro as gb
from repro.core.context import use_engine
from repro.io.generators import erdos_renyi
from repro.jit.cache import cache_statistics

engine = sys.argv[1]
n = 64
with use_engine(engine), gb.tiled(tiles=1):
    a = erdos_renyi(n, seed=n, weighted=True, dtype=float)
    u = gb.Vector((np.ones(n), np.arange(n)), shape=(n,))
    w = gb.Vector(shape=(n,), dtype=float)
    t0 = time.perf_counter()
    w[None] = a @ u
    first_op = time.perf_counter() - t0
snap = cache_statistics()
print(first_op, snap["compiles"], snap["catalog_hits"])
"""


def _run_child(engine: str, cache_dir: str, pack: str | None) -> tuple[float, int, int]:
    env = {**os.environ,
           "PYGB_CACHE_DIR": cache_dir,
           "PYGB_SCHEDULE_TUNER": "0",
           "PYTHONPATH": str(REPO_ROOT / "src")}
    if pack:
        env["PYGB_CATALOG"] = str(pack)
    else:
        env.pop("PYGB_CATALOG", None)
    out = subprocess.run([sys.executable, "-c", _CHILD, engine],
                         capture_output=True, text=True, env=env, check=True)
    first_op, compiles, hits = out.stdout.split()
    return float(first_op), int(compiles), int(hits)


def _measure(engine: str, mode: str, pack: str | None) -> dict:
    """Median first-op latency across REPEATS cold child processes."""
    samples = []
    compiles = hits = 0
    warm_dir = tempfile.mkdtemp(prefix="pygb-warm-") if mode == "warm" else None
    if warm_dir:
        _run_child(engine, warm_dir, None)  # populate the disk cache once
    for _ in range(REPEATS):
        if mode == "warm":
            cache_dir = warm_dir
        else:
            cache_dir = tempfile.mkdtemp(prefix="pygb-cold-")
        t, c, h = _run_child(engine, cache_dir, pack if mode == "catalog" else None)
        samples.append(t)
        compiles, hits = c, h
    if mode == "jit":
        assert compiles > 0, "jit mode performed no compile — cache dir not cold?"
    if mode == "catalog":
        assert compiles == 0 and hits > 0, (
            f"catalog mode compiled ({compiles}) or missed (hits={hits})"
        )
    return {
        "median_s": statistics.median(samples),
        "min_s": min(samples),
        "samples": samples,
        "compiles": compiles,
        "catalog_hits": hits,
    }


def main(argv=None) -> int:
    from repro.jit.catalog import bake_catalog
    from repro.jit.cppengine import toolchain_works

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pack", default=None,
                        help="baked pack (default: bake a fresh one)")
    args = parser.parse_args(argv)

    pack = args.pack
    if pack is None:
        pack = tempfile.mkdtemp(prefix="pygb-pack-")
        print(f"baking catalog into {pack} ...")
        report = bake_catalog(pack)
        print(f"  {report['entries']} entries in {report['seconds']:.1f}s")

    engines = ["pyjit"] + (["cpp"] if toolchain_works() else [])
    results: dict = {
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "repeats": REPEATS,
        "engines": {},
    }
    for engine in engines:
        row = {}
        for mode in ("jit", "catalog", "warm"):
            row[mode] = _measure(engine, mode, pack)
            print(f"{engine:6s} {mode:8s} first-op median "
                  f"{row[mode]['median_s'] * 1e3:9.2f} ms")
        speedup = row["jit"]["median_s"] / max(row["catalog"]["median_s"], 1e-9)
        row["cold_start_speedup"] = speedup
        print(f"{engine:6s} cold-start speedup (jit/catalog): {speedup:.1f}x")
        results["engines"][engine] = row

    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "cold_start.json"
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
