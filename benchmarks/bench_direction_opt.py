#!/usr/bin/env python3
"""Direction-optimizing traversal ablation: fixed vs push vs pull vs auto.

BFS over power-law R-MAT graphs is the workload direction optimization
was invented for (Beamer et al., SC'12): early iterations have tiny
frontiers (push wins by orders of magnitude), the middle iteration
sweeps most of the graph (pull's masked gather with the LogicalOr early
exit wins), and the adaptive schedule should track the best of both.

Two effects are measured per ``$PYGB_SCHEDULE`` mode and engine:

* **examined edges** — the deterministic counters from
  ``repro.schedule.stats()`` (machine-independent; the perf-trajectory
  gate tracks the same numbers via ``collect_bench.py``);
* **wall time** — median BFS latency, with the online autotuner both on
  and off for the ``auto`` mode.

Every mode is also checked bit-identical against the dense baseline —
a schedule that changed results would invalidate the measurement.

Run ``python benchmarks/bench_direction_opt.py``; results (with host
specs) land in ``benchmarks/results/direction_opt.json``.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from pathlib import Path

os.environ.setdefault(
    "PYGB_CACHE_DIR", str(Path(__file__).resolve().parent.parent / ".pygb_cache")
)

import repro as gb
from repro import schedule as S
from repro.algorithms import bfs_levels
from repro.io.generators import rmat
from repro.jit.cppengine import compiler_available

RESULTS_DIR = Path(__file__).resolve().parent / "results"
SCALES = [8, 10, 12]
EDGE_FACTOR = 16
MODES = ["fixed", "push", "pull", "auto"]
REPEATS = 5


def _median_time(fn, repeats: int = REPEATS) -> float:
    fn()  # warm-up: populates the JIT caches and memoized transposes
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def _run_graph(engine: str, scale: int) -> dict:
    g = rmat(scale, edge_factor=EDGE_FACTOR, seed=42)
    n = 1 << scale
    out: dict = {"vertices": n, "edges": int(g.nvals)}

    with gb.use_engine(engine):
        baseline = bfs_levels(g, 0, schedule="fixed")._store.to_dict()
        for mode in MODES:
            S.reset_stats()
            levels = bfs_levels(g, 0, schedule=mode)._store.to_dict()
            assert levels == baseline, f"{mode} diverged from dense BFS"
            counters = S.stats()
            out[mode] = {
                "examined_edges": counters["edges_total"],
                "edges_by_direction": {
                    d: c for d, c in counters["edges"].items() if c
                },
                "calls_by_direction": {
                    d: c for d, c in counters["calls"].items() if c
                },
                "switches": counters["switches"],
                "fallbacks": counters["fallbacks"],
                "median_s": _median_time(
                    lambda mode=mode: bfs_levels(g, 0, schedule=mode)
                ),
            }
        # auto with the latency autotuner disabled: the pure cost model
        old = os.environ.get("PYGB_SCHEDULE_TUNER")
        os.environ["PYGB_SCHEDULE_TUNER"] = "0"
        try:
            S.reset_stats()
            levels = bfs_levels(g, 0, schedule="auto")._store.to_dict()
            assert levels == baseline, "auto (tuner off) diverged from dense BFS"
            counters = S.stats()
            out["auto_no_tuner"] = {
                "examined_edges": counters["edges_total"],
                "switches": counters["switches"],
                "median_s": _median_time(lambda: bfs_levels(g, 0, schedule="auto")),
            }
        finally:
            if old is None:
                os.environ.pop("PYGB_SCHEDULE_TUNER", None)
            else:
                os.environ["PYGB_SCHEDULE_TUNER"] = old
    return out


def main() -> int:
    engines = ["interpreted", "pyjit"] + (["cpp"] if compiler_available() else [])
    doc = {
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "edge_factor": EDGE_FACTOR,
        "repeats": REPEATS,
        "engines": engines,
        "bfs": {},
    }
    for engine in engines:
        doc["bfs"][engine] = {}
        for scale in SCALES:
            r = _run_graph(engine, scale)
            doc["bfs"][engine][str(1 << scale)] = r
            auto, push = r["auto"]["examined_edges"], r["push"]["examined_edges"]
            dense = r["fixed"]["examined_edges"]
            print(
                f"{engine:12s} n={1 << scale:6d} edges examined: "
                f"dense={dense:9d} push={push:8d} auto={auto:8d} "
                f"({dense / max(auto, 1):5.1f}x vs dense, "
                f"{push / max(auto, 1):4.1f}x vs push) "
                f"auto={r['auto']['median_s'] * 1e3:7.2f} ms"
            )

    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "direction_opt.json"
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
