"""Fig. 10 (BFS panel): run time of breadth-first search under the
paper's three execution versions, against graph size.

* ``dsl`` — version 1: PyGB code, Python outer loop, one JIT-compiled
  kernel call per operation (parametrised over the ``pyjit`` and ``cpp``
  engines);
* ``native`` — direct backend-kernel calls, no DSL objects (the native
  comparison point for the NumPy backend);
* ``compiled`` — version 2: Python calls the whole algorithm as a single
  JIT-compiled C++ module.  Version 3 (the module's internal
  ``std::chrono`` time) is reported by ``benchmarks/harness.py``.
"""

import pytest

import repro as gb
from repro.algorithms import bfs_levels, bfs_native

from conftest import SIZES, requires_cpp


@pytest.mark.parametrize("n", SIZES)
def test_bfs_dsl_pyjit(benchmark, graphs, n):
    g = graphs[n]
    with gb.use_engine("pyjit"):
        bfs_levels(g, 0)  # warm the JIT cache outside the timed region
        result = benchmark(bfs_levels, g, 0)
    assert result.nvals > 0


@requires_cpp
@pytest.mark.parametrize("n", SIZES)
def test_bfs_dsl_cpp(benchmark, graphs, n):
    g = graphs[n]
    with gb.use_engine("cpp"):
        bfs_levels(g, 0)
        result = benchmark(bfs_levels, g, 0)
    assert result.nvals > 0


@pytest.mark.parametrize("n", SIZES)
def test_bfs_native_kernels(benchmark, graphs, n):
    store = graphs[n]._store
    store.transposed()  # pre-build the cached transpose, as the DSL does
    result = benchmark(bfs_native, store, 0)
    assert result.nvals > 0


@requires_cpp
@pytest.mark.parametrize("n", SIZES)
def test_bfs_compiled_algorithm(benchmark, graphs, n):
    from repro.algorithms.compiled import bfs_compiled

    store = graphs[n]._store
    store.transposed()
    bfs_compiled(store, 0)  # compile outside the timed region
    levels, _elapsed = benchmark(bfs_compiled, store, 0)
    assert levels.nvals > 0
