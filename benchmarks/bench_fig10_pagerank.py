"""Fig. 10 (PageRank panel): the power iteration of Fig. 7 under the
three execution versions.  PageRank performs seven GraphBLAS operations
per while-loop iteration, so it has the largest per-iteration DSL
dispatch cost of the four algorithms."""

import pytest

import repro as gb
from repro.algorithms import pagerank, pagerank_native

from conftest import SIZES_SMALL, requires_cpp

THRESHOLD = 1.0e-8


def _run_dsl(g):
    ranks = gb.Vector(shape=(g.nrows,), dtype=float)
    return pagerank(g, ranks, threshold=THRESHOLD)


@pytest.mark.parametrize("n", SIZES_SMALL)
def test_pagerank_dsl_pyjit(benchmark, pagerank_graphs, n):
    g = pagerank_graphs[n]
    with gb.use_engine("pyjit"):
        _run_dsl(g)
        result = benchmark(_run_dsl, g)
    assert result.nvals == n


@requires_cpp
@pytest.mark.parametrize("n", SIZES_SMALL)
def test_pagerank_dsl_cpp(benchmark, pagerank_graphs, n):
    g = pagerank_graphs[n]
    with gb.use_engine("cpp"):
        _run_dsl(g)
        result = benchmark(_run_dsl, g)
    assert result.nvals == n


@pytest.mark.parametrize("n", SIZES_SMALL)
def test_pagerank_native_kernels(benchmark, pagerank_graphs, n):
    store = pagerank_graphs[n]._store
    result = benchmark(pagerank_native, store, threshold=THRESHOLD)
    assert result.nvals == n


@requires_cpp
@pytest.mark.parametrize("n", SIZES_SMALL)
def test_pagerank_compiled_algorithm(benchmark, pagerank_graphs, n):
    from repro.algorithms.compiled import pagerank_compiled

    store = pagerank_graphs[n]._store
    pagerank_compiled(store, threshold=THRESHOLD)
    ranks, _elapsed = benchmark(pagerank_compiled, store, threshold=THRESHOLD)
    assert ranks.nvals == n
