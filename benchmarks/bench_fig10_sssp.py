"""Fig. 10 (SSSP panel): single-source shortest path under the three
execution versions (converging variant in all versions; see
EXPERIMENTS.md)."""

import pytest

import repro as gb
from repro.algorithms import sssp_converging, sssp_native

from conftest import SIZES, requires_cpp


def _run_dsl(g):
    path = gb.Vector(([0.0], [0]), shape=(g.nrows,), dtype=g.dtype)
    return sssp_converging(g, path)


@pytest.mark.parametrize("n", SIZES)
def test_sssp_dsl_pyjit(benchmark, weighted_graphs, n):
    g = weighted_graphs[n]
    with gb.use_engine("pyjit"):
        _run_dsl(g)
        result = benchmark(_run_dsl, g)
    assert result.nvals > 0


@requires_cpp
@pytest.mark.parametrize("n", SIZES)
def test_sssp_dsl_cpp(benchmark, weighted_graphs, n):
    g = weighted_graphs[n]
    with gb.use_engine("cpp"):
        _run_dsl(g)
        result = benchmark(_run_dsl, g)
    assert result.nvals > 0


@pytest.mark.parametrize("n", SIZES)
def test_sssp_native_kernels(benchmark, weighted_graphs, n):
    store = weighted_graphs[n]._store
    store.transposed()
    result = benchmark(sssp_native, store, 0)
    assert result.nvals > 0


@requires_cpp
@pytest.mark.parametrize("n", SIZES)
def test_sssp_compiled_algorithm(benchmark, weighted_graphs, n):
    from repro.algorithms.compiled import sssp_compiled

    store = weighted_graphs[n]._store
    store.transposed()
    sssp_compiled(store, 0)
    path, _elapsed = benchmark(sssp_compiled, store, 0)
    assert path.nvals > 0
