"""Fig. 10 (triangle-counting panel): the loop-free algorithm of Fig. 5
under the three execution versions.  With no outer loop the DSL overhead
is a small constant, so the three versions converge fastest here."""

import pytest

import repro as gb
from repro.algorithms import triangle_count, triangle_count_native

from conftest import SIZES, requires_cpp, undirected_lower


@pytest.fixture(scope="module")
def lower_graphs():
    return {n: undirected_lower(n) for n in SIZES}


@pytest.mark.parametrize("n", SIZES)
def test_triangle_dsl_pyjit(benchmark, lower_graphs, n):
    L = lower_graphs[n]
    with gb.use_engine("pyjit"):
        triangle_count(L)
        result = benchmark(triangle_count, L)
    assert result >= 0


@requires_cpp
@pytest.mark.parametrize("n", SIZES)
def test_triangle_dsl_cpp(benchmark, lower_graphs, n):
    L = lower_graphs[n]
    with gb.use_engine("cpp"):
        triangle_count(L)
        result = benchmark(triangle_count, L)
    assert result >= 0


@pytest.mark.parametrize("n", SIZES)
def test_triangle_native_kernels(benchmark, lower_graphs, n):
    store = lower_graphs[n]._store
    store.transposed()
    result = benchmark(triangle_count_native, store)
    assert result >= 0


@requires_cpp
@pytest.mark.parametrize("n", SIZES)
def test_triangle_compiled_algorithm(benchmark, lower_graphs, n):
    from repro.algorithms.compiled import triangle_count_compiled

    store = lower_graphs[n]._store
    store.transposed()
    triangle_count_compiled(store)
    count, _elapsed = benchmark(triangle_count_compiled, store)
    assert count >= 0
