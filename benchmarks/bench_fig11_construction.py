"""Fig. 11: time to read a matrix from a file on disk, construct it from
an in-memory container, and extract the data back out, against size.

The paper found that "the file read cost dominates the Python times, but
once the matrix has been constructed, operations performed on it ... are
comparable in performance"; these benchmarks regenerate exactly those
three series (plus the NumPy fast path the paper lists as future work).
"""

import numpy as np
import pytest

import repro as gb
from repro.io.fastload import fast_loader_available, mmread_fast
from repro.io.generators import erdos_renyi_coo
from repro.io.matrixmarket import mmread, mmwrite

SIZES = [256, 512, 1024, 2048]


def _coo(n):
    rows, cols, _ = erdos_renyi_coo(n, seed=7)
    vals = np.linspace(1.0, 2.0, rows.size)
    return rows, cols, vals


@pytest.fixture(scope="module")
def mtx_files(tmp_path_factory):
    """One MatrixMarket file per size, written once."""
    root = tmp_path_factory.mktemp("fig11")
    paths = {}
    for n in SIZES:
        rows, cols, vals = _coo(n)
        m = gb.Matrix((vals, (rows, cols)), shape=(n, n))
        path = root / f"er_{n}.mtx"
        mmwrite(path, m)
        paths[n] = path
    return paths


@pytest.mark.parametrize("n", SIZES)
def test_read_from_file(benchmark, mtx_files, n):
    m = benchmark(mmread, mtx_files[n])
    assert m.nvals > 0


@pytest.mark.skipif(not fast_loader_available(), reason="no C++ toolchain")
@pytest.mark.parametrize("n", SIZES)
def test_read_from_file_cpp(benchmark, mtx_files, n):
    # the Sec. VIII "wrap a C++ loader" fast path
    mmread_fast(mtx_files[n])  # compile outside the timed region
    m = benchmark(mmread_fast, mtx_files[n])
    assert m.nvals > 0


@pytest.mark.parametrize("n", SIZES)
def test_construct_from_python_lists(benchmark, n):
    # the paper's "construct from a container (list in Python)"
    rows, cols, vals = _coo(n)
    lrows, lcols, lvals = rows.tolist(), cols.tolist(), vals.tolist()

    def build():
        return gb.Matrix((lvals, (lrows, lcols)), shape=(n, n))

    m = benchmark(build)
    assert m.nvals == len(lvals)


@pytest.mark.parametrize("n", SIZES)
def test_construct_from_numpy(benchmark, n):
    # buffer-sharing fast path (the paper's Sec. VIII direction)
    rows, cols, vals = _coo(n)

    def build():
        return gb.Matrix((vals, (rows, cols)), shape=(n, n))

    m = benchmark(build)
    assert m.nvals == vals.size


@pytest.mark.parametrize("n", SIZES)
def test_extract_data_back_out(benchmark, n):
    rows, cols, vals = _coo(n)
    m = gb.Matrix((vals, (rows, cols)), shape=(n, n))
    r, c, v = benchmark(m.to_coo)
    assert v.size == m.nvals


@pytest.mark.parametrize("n", SIZES)
def test_extract_to_dense(benchmark, n):
    rows, cols, vals = _coo(n)
    m = gb.Matrix((vals, (rows, cols)), shape=(n, n))
    d = benchmark(m.to_numpy)
    assert d.shape == (n, n)
