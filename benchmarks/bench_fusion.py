#!/usr/bin/env python3
"""Fusion ablation: planned (PYGB_FUSION=1) vs eager (PYGB_FUSION=0)
dispatch on the fusible expression chains and on full PageRank.

Two effects are measured:

* **wall time** — a fused kernel skips one engine dispatch and never
  materialises the producer's temporary container, which matters most
  when per-operation overhead rivals kernel work (small/medium inputs,
  the regime Fig. 10's DSL-overhead claim lives in);
* **engine calls** — counted with ``CountingEngine``; savings here are
  deterministic and size-independent.

Run ``python benchmarks/bench_fusion.py``; results (with host specs)
land in ``benchmarks/results/fusion.json``.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from pathlib import Path

os.environ.setdefault(
    "PYGB_CACHE_DIR", str(Path(__file__).resolve().parent.parent / ".pygb_cache")
)

import numpy as np

import repro as gb
from repro.algorithms import pagerank
from repro.core.dispatch import CountingEngine, make_engine
from repro.io.generators import erdos_renyi
from repro.jit.cppengine import compiler_available

RESULTS_DIR = Path(__file__).resolve().parent / "results"
SIZES = [256, 1024, 4096]
REPEATS = 7


def _median_time(fn, repeats: int = REPEATS) -> float:
    fn()  # warm-up: populates the JIT caches
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def _chains(n: int):
    """The fusible expression chains, on an n-vertex ER graph."""
    a = erdos_renyi(n, seed=n, weighted=True, dtype=float)
    rng = np.random.default_rng(n)
    u = gb.Vector((rng.uniform(1, 2, n), np.arange(n)), shape=(n,))
    v = gb.Vector((rng.uniform(1, 2, n), np.arange(n)), shape=(n,))
    w = gb.Vector(shape=(n,), dtype=float)

    def mxv_apply():
        w[None] = (a @ u) * 0.85

    def ewise_mult_apply():
        w[None] = (u * v) + 0.15

    def ewise_mult_reduce():
        gb.reduce(u * v)

    def mxm_reduce_rows():
        w[None] = gb.reduce("Plus", a @ a)

    return {
        "mxv+apply": mxv_apply,
        "ewise_mult+apply": ewise_mult_apply,
        "ewise_mult+reduce": ewise_mult_reduce,
        "mxm+reduce_rows": mxm_reduce_rows,
    }


def _pagerank_run(n: int):
    g = erdos_renyi(n, seed=7, weighted=True, dtype=float)

    def run():
        pr = gb.Vector(shape=(n,), dtype=float)
        pagerank(g, pr, threshold=1.0e-8)

    return run


def _with_fusion(flag: bool, fn):
    old = os.environ.get("PYGB_FUSION")
    os.environ["PYGB_FUSION"] = "1" if flag else "0"
    try:
        return fn()
    finally:
        if old is None:
            os.environ.pop("PYGB_FUSION", None)
        else:
            os.environ["PYGB_FUSION"] = old


def _engine_call_counts(n: int) -> dict:
    """Engine calls for one PageRank run, fused vs eager (pyjit)."""
    out = {}
    for label, flag in (("fusion_on", True), ("fusion_off", False)):
        eng = CountingEngine(make_engine("pyjit"))

        def trace():
            with gb.use_engine(eng):
                _pagerank_run(n)()

        _with_fusion(flag, trace)
        out[label] = {"total": eng.total, "per_method": dict(sorted(eng.counts.items()))}
    return out


def _nonblocking_call_counts(n: int) -> dict:
    """Engine calls for one PageRank run, blocking vs nonblocking (pyjit):
    the lazy queue's dead-store elimination and copy elision remove whole
    dispatches deterministically, on top of per-statement fusion."""
    from repro.core.nonblocking import reset_stats, stats

    out = {}
    for label, deferred in (("blocking", False), ("nonblocking", True)):
        eng = CountingEngine(make_engine("pyjit"))
        reset_stats()
        with gb.use_engine(eng):
            if deferred:
                with gb.nonblocking():
                    _pagerank_run(n)()
            else:
                _pagerank_run(n)()
        out[label] = {"total": eng.total, "per_method": dict(sorted(eng.counts.items()))}
        if deferred:
            out[label]["queue"] = stats()
    return out


def main() -> None:
    engines = ["pyjit"] + (["cpp"] if compiler_available() else [])
    results: dict = {
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "processor": platform.processor() or "unknown",
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "repeats": REPEATS,
        "engines": engines,
        "chains": {},
        "pagerank": {},
        "pagerank_engine_calls": _engine_call_counts(512),
        "pagerank_mode_calls": _nonblocking_call_counts(512),
    }

    for engine_name in engines:
        with gb.use_engine(engine_name):
            for n in SIZES:
                chains = _chains(n)
                for label, fn in chains.items():
                    on = _with_fusion(True, lambda: _median_time(fn))
                    off = _with_fusion(False, lambda: _median_time(fn))
                    results["chains"].setdefault(label, {}).setdefault(engine_name, {})[
                        str(n)
                    ] = {"fused_s": on, "eager_s": off, "speedup": off / on if on else None}
                    print(f"{engine_name:6s} {label:20s} n={n:5d}  "
                          f"fused {on * 1e3:8.3f} ms  eager {off * 1e3:8.3f} ms  "
                          f"x{off / on:5.2f}")
            for n in SIZES[:2]:
                run = _pagerank_run(n)
                on = _with_fusion(True, lambda: _median_time(run, 3))
                off = _with_fusion(False, lambda: _median_time(run, 3))
                results["pagerank"].setdefault(engine_name, {})[str(n)] = {
                    "fused_s": on, "eager_s": off,
                    "speedup": off / on if on else None,
                }
                print(f"{engine_name:6s} {'pagerank':20s} n={n:5d}  "
                      f"fused {on * 1e3:8.3f} ms  eager {off * 1e3:8.3f} ms  "
                      f"x{off / on:5.2f}")

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "fusion.json"
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {out_path}")


if __name__ == "__main__":
    main()
