"""Compilation-time experiment (paper Sec. VI: "compilation times are not
worse than for native GBTL implementation", and Sec. V: compile cost "can
be amortized over future runs").

Measures the three lookup outcomes of the Fig. 9 ``get_module`` pipeline
for both code generators:

* **cold compile** — generate + (for C++) invoke the compiler + load;
* **disk hit** — a fresh process/memory cache finding the artifact on disk;
* **memory hit** — the steady-state dispatch path.
"""

import numpy as np

from repro.backend.kernels import OpDesc
from repro.backend.svector import SparseVector
from repro.jit.cache import JitCache
from repro.jit.pycodegen import generate_source
from repro.jit.pyengine import PyJitEngine
from repro.jit.spec import KernelSpec

from conftest import requires_cpp


def _spec(**extra):
    base = dict(
        a="float64", u="float64", c="float64", t_dtype="float64",
        add="Plus", mult="Times", ta=False,
        mask="none", comp=False, repl=False, accum="none",
    )
    base.update(extra)
    return KernelSpec.make("mxv", **base)


def test_pyjit_cold_compile(benchmark, tmp_path):
    cache = JitCache(tmp_path)
    counter = [0]

    def cold():
        counter[0] += 1
        spec = _spec(tag=counter[0])  # unique spec every call
        return cache.get_module(spec, generate_source)

    benchmark.pedantic(cold, rounds=20, iterations=1)
    assert cache.stats.compiles >= 20


def test_pyjit_disk_hit(benchmark, tmp_path):
    cache = JitCache(tmp_path)
    spec = _spec()
    cache.get_module(spec, generate_source)

    def disk_hit():
        cache.clear_memory()
        return cache.get_module(spec, generate_source)

    benchmark.pedantic(disk_hit, rounds=50, iterations=1)
    assert cache.stats.compiles == 1


def test_pyjit_memory_hit(benchmark, tmp_path):
    cache = JitCache(tmp_path)
    spec = _spec()
    cache.get_module(spec, generate_source)
    benchmark(cache.get_module, spec, generate_source)
    assert cache.stats.compiles == 1


def test_pyjit_steady_state_dispatch(benchmark, tmp_path):
    """Full engine dispatch with a warm cache: this is the constant
    per-operation overhead the paper's Fig. 10 claim is about."""
    eng = PyJitEngine(JitCache(tmp_path))
    u = SparseVector.from_coo(8, [0, 3], [1.0, 2.0])
    w = SparseVector.empty(8, np.float64)
    desc = OpDesc()
    eng.ewise_add_vec(w, u, u, "Plus", desc)
    benchmark(eng.ewise_add_vec, w, u, u, "Plus", desc)


@requires_cpp
def test_cpp_cold_compile(benchmark, tmp_path):
    """One ``g++`` invocation per new spec — the dominant cold-start cost,
    directly comparable to compiling a native GBTL translation unit."""
    from repro.jit.cppcodegen import generate_cpp_source
    from repro.jit.cppengine import CppJitEngine

    eng = CppJitEngine(JitCache(tmp_path))
    counter = [0]

    def cold():
        counter[0] += 1
        spec = _spec(tag=counter[0])  # unique spec -> one g++ run each
        return eng.cache.get_module(
            spec, generate_cpp_source, suffix=".cpp", compiler=eng._compile
        )

    benchmark.pedantic(cold, rounds=6, iterations=1, warmup_rounds=0)


@requires_cpp
def test_cpp_disk_hit(benchmark, tmp_path):
    from repro.jit.cppcodegen import generate_cpp_source
    from repro.jit.cppengine import CppJitEngine

    eng = CppJitEngine(JitCache(tmp_path))
    spec = _spec()
    eng.cache.get_module(spec, generate_cpp_source, suffix=".cpp", compiler=eng._compile)

    def disk_hit():
        eng.cache.clear_memory()
        return eng.cache.get_module(
            spec, generate_cpp_source, suffix=".cpp", compiler=eng._compile
        )

    benchmark.pedantic(disk_hit, rounds=30, iterations=1)
    assert eng.cache.stats.compiles == 1
