#!/usr/bin/env python3
"""Per-operation Python overhead (the paper's Fig. 7/8 decomposition).

For each engine and each primitive operation the cost of one dispatch is
split into layers using the observability tracer
(``repro.obs``):

* **frontend** — DSL work above the engine: expression objects, operator
  resolution, ``__setitem__`` parsing (wall time minus the engine span);
* **engine** — time inside the engine method (kernel lookup + execution;
  for ``cpp`` this still includes the ctypes boundary);
* for the ``cpp`` engine the engine span is further split into the pure
  C++ **kernel** time (measured on the C++ side by ``pygb_kernel_ns()``)
  and the FFI **boundary** (argument marshalling + ``ctypes`` call glue).

This reproduces the paper's claim that dynamic compilation pushes the
Python-side overhead to a small constant per op while the kernel scales
with the input.  Numbers are medians over ``REPEATS`` batches of
``BATCH`` calls each; the tracer itself adds ~a few µs per op to the
*traced* engine-span measurement, so frontend figures are conservative
(slightly understated).

Run ``python benchmarks/bench_overhead.py``; results (with host specs)
land in ``benchmarks/results/overhead.json``.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from pathlib import Path

os.environ.setdefault(
    "PYGB_CACHE_DIR", str(Path(__file__).resolve().parent.parent / ".pygb_cache")
)

import numpy as np

import repro as gb
from repro.io.generators import erdos_renyi
from repro.jit.cppengine import compiler_available

RESULTS_DIR = Path(__file__).resolve().parent / "results"
SIZES = [256, 4096]
BATCH = 50
REPEATS = 7


def _ops(n: int):
    """One closure per primitive op on an n-vertex ER graph."""
    a = erdos_renyi(n, seed=n, weighted=True, dtype=float)
    rng = np.random.default_rng(n)
    u = gb.Vector((rng.uniform(1, 2, n), np.arange(n)), shape=(n,))
    v = gb.Vector((rng.uniform(1, 2, n), np.arange(n)), shape=(n,))
    w = gb.Vector(shape=(n,), dtype=float)

    def mxv():
        w[None] = a @ u

    def ewise_mult():
        w[None] = u * v

    def apply():
        w[None] = u * 0.85

    def reduce():
        gb.reduce(u)

    return {"mxv": mxv, "ewise_mult": ewise_mult, "apply": apply, "reduce": reduce}


def _measure(fn) -> dict:
    """Wall time per call (untraced) + traced engine-span decomposition."""
    fn()  # warm-up: populate the JIT caches
    # untraced wall time: obs.ACTIVE is False here, so this is the real
    # end-to-end per-op latency users pay
    walls = []
    for _ in range(REPEATS):
        t0 = time.perf_counter_ns()
        for _ in range(BATCH):
            fn()
        walls.append((time.perf_counter_ns() - t0) / BATCH)
    wall_ns = statistics.median(walls)

    # traced run: engine span + (cpp) kernel/boundary split
    with gb.tracing() as tr:
        for _ in range(REPEATS * BATCH):
            fn()
    snap = tr.stats.snapshot()
    calls = sum(op["count"] for op in snap["ops"].values())
    engine_ns = sum(op["total_ns"] for op in snap["ops"].values()) / max(calls, 1)
    ffi = snap.get("ffi", {})
    out = {
        "wall_us": wall_ns / 1e3,
        "engine_us": engine_ns / 1e3,
        "frontend_us": max(wall_ns - engine_ns, 0.0) / 1e3,
    }
    if ffi.get("calls"):
        kernel_ns = ffi["kernel_ns"] / ffi["calls"]
        boundary_ns = (ffi["total_ns"] - ffi["kernel_ns"]) / ffi["calls"]
        out["kernel_us"] = kernel_ns / 1e3
        out["ffi_boundary_us"] = boundary_ns / 1e3
    return out


def main() -> None:
    engines = ["interpreted", "pyjit"] + (["cpp"] if compiler_available() else [])
    results: dict = {
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "processor": platform.processor() or "unknown",
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "batch": BATCH,
        "repeats": REPEATS,
        "engines": engines,
        "ops": {},
    }

    header = (f"{'engine':12s} {'op':12s} {'n':>5s}  {'wall_us':>9s} "
              f"{'frontend':>9s} {'engine':>9s} {'kernel':>9s} {'ffi':>9s}")
    print(header)
    for engine_name in engines:
        with gb.use_engine(engine_name):
            for n in SIZES:
                for label, fn in _ops(n).items():
                    m = _measure(fn)
                    results["ops"].setdefault(label, {}).setdefault(
                        engine_name, {}
                    )[str(n)] = m
                    print(
                        f"{engine_name:12s} {label:12s} {n:5d}  "
                        f"{m['wall_us']:9.1f} {m['frontend_us']:9.1f} "
                        f"{m['engine_us']:9.1f} "
                        f"{m.get('kernel_us', float('nan')):9.1f} "
                        f"{m.get('ffi_boundary_us', float('nan')):9.1f}"
                    )

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "overhead.json"
    out_path.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {out_path}")


if __name__ == "__main__":
    main()
