#!/usr/bin/env python3
"""OpenMP kernel scaling + concurrent-compilation benchmark.

Times the two hot kernels (``mxv``, ``mxm``) on a million-edge random
graph with parallel dispatch off and then on at 1/2/4 OpenMP threads
(``$PYGB_THREADS`` is a runtime knob, so one process covers the sweep),
and compares sequential vs thread-pooled cache warming on a cold cache.

Results go to ``benchmarks/results/parallel_scaling.json`` together with
the machine's visible core count — speedups are only meaningful relative
to that number (a 1-core container cannot show OpenMP wins; the numbers
then document the overhead of the parallel code path instead).

Run directly::

    python benchmarks/bench_parallel_scaling.py
"""

from __future__ import annotations

import json
import os
import statistics
import tempfile
import time
from pathlib import Path

os.environ.setdefault(
    "PYGB_CACHE_DIR", str(Path(__file__).resolve().parent.parent / ".pygb_cache")
)

import numpy as np

RESULTS_DIR = Path(__file__).resolve().parent / "results"
NODES = 100_000
EDGES = 1_000_000
THREADS = [1, 2, 4]
REPEATS_MXV = 7
REPEATS_MXM = 3


def _cpu_quota() -> float | None:
    """Cores allowed by the cgroup v2 quota, when one is set."""
    try:
        text = Path("/sys/fs/cgroup/cpu.max").read_text().split()
        if text[0] != "max":
            return int(text[0]) / int(text[1])
    except (OSError, IndexError, ValueError):
        pass
    return None


def _median(fn, repeats: int) -> float:
    fn()  # warm-up: compiles the kernel, faults in the buffers
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def main() -> int:
    from repro.backend.kernels import OpDesc
    from repro.backend.svector import SparseVector
    from repro.io.generators import erdos_renyi
    from repro.jit.cache import JitCache
    from repro.jit.cppengine import CppJitEngine, compiler_available, openmp_available
    from repro.jit.precompile import warm_cache

    if not compiler_available():
        print("no C++ toolchain — nothing to measure")
        return 1

    engine = CppJitEngine()
    print(f"graph: |V|={NODES} |E|={EDGES}  (erdos-renyi, seed 1)")
    g = erdos_renyi(NODES, nedges=EDGES, seed=1, weighted=True, dtype=float)
    a = g._store
    u = SparseVector.from_sorted(
        NODES,
        np.arange(NODES, dtype=np.int64),
        np.random.default_rng(2).uniform(0.0, 1.0, NODES),
    )

    def run_mxv():
        engine.mxv(SparseVector.empty(NODES, np.float64), a, u, "Plus", "Times", OpDesc())

    def run_mxm():
        from repro.backend.smatrix import SparseMatrix

        engine.mxm(
            SparseMatrix.empty(NODES, NODES, np.float64), a, a, "Plus", "Times", OpDesc()
        )

    kernels = {"mxv": (run_mxv, REPEATS_MXV), "mxm": (run_mxm, REPEATS_MXM)}
    series: dict[str, dict] = {k: {} for k in kernels}

    os.environ["PYGB_PARALLEL"] = "0"
    for name, (fn, reps) in kernels.items():
        t = _median(fn, reps)
        series[name]["serial"] = t
        print(f"{name:4s} serial           {t * 1e3:9.2f} ms")

    if openmp_available(engine.cxx):
        os.environ["PYGB_PARALLEL"] = "1"
        for nt in THREADS:
            os.environ["PYGB_THREADS"] = str(nt)
            for name, (fn, reps) in kernels.items():
                t = _median(fn, reps)
                series[name][f"threads_{nt}"] = t
                speedup = series[name]["serial"] / t
                print(f"{name:4s} {nt} thread(s)      {t * 1e3:9.2f} ms   {speedup:.2f}x vs serial")
    else:
        print("compiler has no OpenMP support — parallel sweep skipped")

    # ------------------------------------------------------------------
    # concurrent vs sequential cache warming (cold cache each time)
    # ------------------------------------------------------------------
    compile_times = {}
    for label, workers in (("sequential", 1), ("concurrent", 4)):
        with tempfile.TemporaryDirectory(prefix="pygb_warm_bench_") as tmp:
            t0 = time.perf_counter()
            report = warm_cache(cache=JitCache(tmp), max_workers=workers)
            elapsed = time.perf_counter() - t0
        compile_times[label] = {
            "seconds": elapsed,
            "kernels": report["requested"],
            "jobs": workers,
        }
        print(f"warm_cache {label:10s} ({workers} jobs): {elapsed:6.2f} s "
              f"for {report['requested']} kernels")
    if compile_times["concurrent"]["seconds"] > 0:
        ratio = compile_times["sequential"]["seconds"] / compile_times["concurrent"]["seconds"]
        print(f"concurrent warm speedup: {ratio:.2f}x")

    payload = {
        "graph": {"nodes": NODES, "edges": EDGES, "generator": "erdos_renyi", "seed": 1},
        "environment": {
            "cpu_count": os.cpu_count(),
            "cgroup_cpu_quota": _cpu_quota(),
            "openmp": openmp_available(engine.cxx),
            "pygb_threads_swept": THREADS,
        },
        "kernels_seconds": series,
        "warm_cache_seconds": compile_times,
        "note": (
            "speedups are bounded by the visible core count; on a 1-core "
            "machine the parallel path measures overhead, not scaling"
        ),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "parallel_scaling.json"
    out.write_text(json.dumps(payload, indent=2))
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
