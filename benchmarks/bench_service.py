#!/usr/bin/env python3
"""Benchmark the service's batching payoff: k solo runs vs one fused run.

The admission controller's bet is that one k-source fused traversal is
cheaper than k single-source runs — the per-dispatch DSL overhead (the
paper's Fig. 12 axis) is paid once per iteration for the whole batch
instead of once per client, and the kernels stream the graph once.
This benchmark measures that directly, in-process (no sockets, no
admission queue):

* ``k × bfs_levels(graph, s)``  vs  ``bfs_levels_multi(graph, sources)``
* ``k × sssp_distances(graph, s)``  vs  ``sssp_distances_multi(...)``

Results (median of ``--reps``) land in
``benchmarks/results/service_batching.json``; ``collect_bench.py``
copies them into the per-commit ``BENCH_<sha>.json`` timing section
(machine-dependent — recorded for trajectory plots, never gated).
Bit-identity between the fused rows and the solo runs is asserted here
too: a fast-but-wrong fusion must never publish a timing.

Usage::

    python benchmarks/bench_service.py [--nodes 512] [--k 8] [--reps 5]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"
sys.path.insert(0, str(REPO_ROOT / "src"))

os.environ.setdefault("PYGB_CACHE_DIR", str(REPO_ROOT / ".pygb_cache"))


def _median_ms(fn, reps: int) -> float:
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1e3)
    return statistics.median(samples)


def bench(nodes: int, k: int, reps: int) -> dict:
    import numpy as np

    from repro.algorithms import bfs_levels, sssp_distances
    from repro.algorithms.multisource import (
        bfs_levels_multi,
        matrix_row,
        sssp_distances_multi,
    )
    from repro.io.generators import erdos_renyi

    graph = erdos_renyi(nodes, nedges=nodes * 8, seed=5, weighted=True, dtype=float)
    rng = np.random.default_rng(5)
    sources = [int(s) for s in rng.choice(nodes, size=k, replace=False)]

    cases = {
        "bfs": (bfs_levels, bfs_levels_multi),
        "sssp": (sssp_distances, sssp_distances_multi),
    }
    report = {"nodes": nodes, "edges": graph.nvals, "k": k, "reps": reps}
    for name, (solo, fused) in cases.items():
        # correctness first: every fused row must be bit-identical to its
        # solo counterpart before any timing is recorded
        fused_result = fused(graph, sources)
        for row, src in enumerate(sources):
            idx, vals = matrix_row(fused_result, row)
            solo_idx, solo_vals = solo(graph, src).to_coo()
            assert np.array_equal(idx, solo_idx) and np.array_equal(vals, solo_vals), (
                f"{name}: fused row {row} (source {src}) diverged from the solo run"
            )

        solo_ms = _median_ms(lambda: [solo(graph, s) for s in sources], reps)
        fused_ms = _median_ms(lambda: fused(graph, sources), reps)
        report[name] = {
            "solo_ms": round(solo_ms, 3),
            "fused_ms": round(fused_ms, 3),
            "speedup": round(solo_ms / fused_ms, 2) if fused_ms > 0 else 0.0,
        }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=512)
    parser.add_argument("--k", type=int, default=8)
    parser.add_argument("--reps", type=int, default=5)
    parser.add_argument(
        "--output", default=None,
        help=f"output path (default: {RESULTS_DIR / 'service_batching.json'})",
    )
    args = parser.parse_args(argv)

    report = bench(args.nodes, args.k, args.reps)
    out = Path(args.output) if args.output else RESULTS_DIR / "service_batching.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"graph: {report['nodes']} nodes / {report['edges']} edges, "
          f"k={report['k']} sources, median of {report['reps']}")
    for name in ("bfs", "sssp"):
        row = report[name]
        print(f"  {name:5s} solo x{args.k}: {row['solo_ms']:8.1f} ms   "
              f"fused: {row['fused_ms']:8.1f} ms   "
              f"speedup: {row['speedup']:.2f}x")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
