"""Table I micro-benchmarks: one benchmark per GraphBLAS operation in its
PyGB notation, at a fixed representative size (|V| = 1024, |E| = |V|^1.5),
under the default (pyjit) engine.

These quantify the per-operation cost behind the Fig. 10 curves: the DSL
adds a constant expression-object + dispatch overhead to each row of this
table, so operations with more work per call amortise it better.
"""

import numpy as np
import pytest

import repro as gb
from repro.io.generators import erdos_renyi

N = 1024


@pytest.fixture(scope="module")
def ctx():
    a = erdos_renyi(N, seed=1, weighted=True, dtype=float)
    b = erdos_renyi(N, seed=2, weighted=True, dtype=float)
    u = gb.Vector((np.random.default_rng(3).uniform(1, 2, N), np.arange(N)), shape=(N,))
    v = gb.Vector((np.random.default_rng(4).uniform(1, 2, N), np.arange(N)), shape=(N,))
    m = gb.Vector(([True] * (N // 2), np.arange(0, N, 2)), shape=(N,), dtype=bool)
    out_m = gb.Matrix(shape=(N, N), dtype=float)
    out_v = gb.Vector(shape=(N,), dtype=float)
    # warm every kernel once so only steady-state dispatch is measured
    with gb.use_engine("pyjit"):
        out_m[None] = a @ b
        out_v[None] = a @ u
        out_v[None] = u @ a
        out_m[None] = a + b
        out_m[None] = a * b
        out_v[None] = u + v
        out_v[None] = u * v
        out_v[None] = gb.reduce(gb.PlusMonoid, a)
        gb.reduce(a)
        out_m[None] = gb.apply(a)
        out_m[None] = a.T
    return dict(a=a, b=b, u=u, v=v, m=m, out_m=out_m, out_v=out_v)


def _bench(benchmark, fn):
    with gb.use_engine("pyjit"):
        benchmark(fn)


def test_mxm(benchmark, ctx):
    _bench(benchmark, lambda: ctx["out_m"].__setitem__(None, ctx["a"] @ ctx["b"]))


def test_mxv(benchmark, ctx):
    _bench(benchmark, lambda: ctx["out_v"].__setitem__(None, ctx["a"] @ ctx["u"]))


def test_vxm(benchmark, ctx):
    _bench(benchmark, lambda: ctx["out_v"].__setitem__(None, ctx["u"] @ ctx["a"]))


def test_ewise_add_matrix(benchmark, ctx):
    _bench(benchmark, lambda: ctx["out_m"].__setitem__(None, ctx["a"] + ctx["b"]))


def test_ewise_mult_matrix(benchmark, ctx):
    _bench(benchmark, lambda: ctx["out_m"].__setitem__(None, ctx["a"] * ctx["b"]))


def test_ewise_add_vector(benchmark, ctx):
    _bench(benchmark, lambda: ctx["out_v"].__setitem__(None, ctx["u"] + ctx["v"]))


def test_ewise_mult_vector(benchmark, ctx):
    _bench(benchmark, lambda: ctx["out_v"].__setitem__(None, ctx["u"] * ctx["v"]))


def test_reduce_rows(benchmark, ctx):
    _bench(
        benchmark,
        lambda: ctx["out_v"].__setitem__(None, gb.reduce(gb.PlusMonoid, ctx["a"])),
    )


def test_reduce_scalar(benchmark, ctx):
    _bench(benchmark, lambda: gb.reduce(ctx["a"]))


def test_apply(benchmark, ctx):
    _bench(benchmark, lambda: ctx["out_m"].__setitem__(None, gb.apply(ctx["a"])))


def test_transpose(benchmark, ctx):
    # materialising assignment of A.T; the view itself is free
    _bench(benchmark, lambda: ctx["out_m"].__setitem__(None, gb.transpose(ctx["a"])))


def test_extract_subvector(benchmark, ctx):
    idx = np.arange(0, N, 2)

    def run():
        ctx["out_v"]  # noqa: B018 - keep symmetry with other benches
        return gb.Vector(ctx["u"][idx])

    _bench(benchmark, run)


def test_assign_subvector(benchmark, ctx):
    idx = np.arange(0, N, 2)
    src = gb.Vector(np.ones(idx.size))

    def run():
        ctx["out_v"][idx] = src

    _bench(benchmark, run)


def test_masked_mxv(benchmark, ctx):
    def run():
        ctx["out_v"][ctx["m"]] = ctx["a"] @ ctx["u"]

    with gb.use_engine("pyjit"):
        run()  # warm the masked-variant module
        benchmark(run)
