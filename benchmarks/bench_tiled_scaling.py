#!/usr/bin/env python3
"""Tiled data-plane scaling: PageRank and BFS across tile/worker counts.

The tiled data plane (docs/architecture.md §14) splits every
partitionable dispatch into nnz-balanced row blocks fanned over a
thread pool.  This benchmark sweeps the two knobs — ``tiles`` and
``workers``, forced through ``gb.tiled`` so the machine's defaults
never leak in — over power-law R-MAT graphs and reports, per
configuration:

* **wall time** — median latency of a full PageRank power iteration and
  a full BFS (the paper's two headline workloads);
* **partition counters** — the deterministic tiling statistics
  (partitioned/forwarded dispatches, tile tasks, merges), which depend
  only on the program and the tile count, never on timing;
* **bit-identity** — every configuration is checked exact against the
  ``tiles=1`` monolithic baseline before its timing is recorded; a
  partitioning that changed results would invalidate the measurement.

Run ``python benchmarks/bench_tiled_scaling.py``; results (with host
specs) land in ``benchmarks/results/tiled_scaling.json``.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from pathlib import Path

os.environ.setdefault(
    "PYGB_CACHE_DIR", str(Path(__file__).resolve().parent.parent / ".pygb_cache")
)
# pin the pure schedule cost model: a timing-driven push/pull choice
# would flip dispatches between the partitioned and forwarded buckets,
# making the reported partition counters irreproducible
os.environ.setdefault("PYGB_SCHEDULE_TUNER", "0")

import repro as gb
from repro import tiling
from repro.algorithms import bfs_levels, pagerank

RESULTS_DIR = Path(__file__).resolve().parent / "results"
SCALES = [10, 12]
EDGE_FACTOR = 16
TILES = [1, 2, 4, 8]
WORKERS = [1, 2, 4]
REPEATS = 5
ENGINE = "pyjit"


def _median_time(fn, repeats: int = REPEATS) -> float:
    fn()  # warm-up: populates the JIT caches and memoized transposes
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def _workloads():
    def run_pagerank(g, n):
        pr = gb.Vector(shape=(n,), dtype=float)
        pagerank(g, pr, threshold=1.0e-8)
        return pr._store.to_dict()

    def run_bfs(g, n):
        return bfs_levels(g, 0)._store.to_dict()

    return {"pagerank": run_pagerank, "bfs": run_bfs}


def _run_graph(scale: int) -> dict:
    from repro.io.generators import rmat

    g = rmat(scale, edge_factor=EDGE_FACTOR, seed=42)
    n = 1 << scale
    out: dict = {"vertices": n, "edges": int(g.nvals), "workloads": {}}

    with gb.use_engine(ENGINE):
        for name, run in _workloads().items():
            with gb.tiled(tiles=1):
                baseline = run(gb.Matrix(g), n)
            configs = []
            for tiles in TILES:
                for workers in WORKERS:
                    if tiles == 1 and workers != 1:
                        continue  # monolithic: the pool is never touched
                    with gb.tiled(tiles=tiles, workers=workers):
                        # the copy adopts tiled storage under this
                        # config, so forwarded dispatches (BFS's pinned
                        # push/pull traversals) are counted too
                        gt = gb.Matrix(g)
                        fn = lambda: run(gt, n)  # noqa: E731
                        result = fn()
                        assert result == baseline, (
                            f"{name} diverged at tiles={tiles} workers={workers}"
                        )
                        tiling.reset_stats()
                        fn()
                        counters = tiling.stats()
                        wall = _median_time(fn)
                    configs.append(
                        {
                            "tiles": tiles,
                            "workers": workers,
                            "wall_s": wall,
                            "speedup_vs_monolithic": None,  # filled below
                            "partitioned_dispatches": counters["partitioned_total"],
                            "forwarded_dispatches": counters["forwarded_total"],
                            "tile_tasks": counters["tile_tasks"],
                            "merges": counters["merges_total"],
                            "tiles_created": counters["tiles_created"],
                        }
                    )
            mono = next(c for c in configs if c["tiles"] == 1)
            for c in configs:
                c["speedup_vs_monolithic"] = mono["wall_s"] / c["wall_s"]
            out["workloads"][name] = configs
    return out


def main() -> int:
    doc = {
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "engine": ENGINE,
        "edge_factor": EDGE_FACTOR,
        "repeats": REPEATS,
        "graphs": {},
    }
    for scale in SCALES:
        print(f"== R-MAT scale {scale} ==")
        result = _run_graph(scale)
        doc["graphs"][f"rmat_{scale}"] = result
        for name, configs in result["workloads"].items():
            for c in configs:
                print(
                    f"  {name:9s} tiles={c['tiles']:<2d} workers={c['workers']:<2d} "
                    f"{c['wall_s'] * 1e3:8.2f} ms  "
                    f"x{c['speedup_vs_monolithic']:.2f}  "
                    f"({c['partitioned_dispatches']} partitioned, "
                    f"{c['forwarded_dispatches']} forwarded, "
                    f"{c['tile_tasks']} tile tasks)"
                )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "tiled_scaling.json"
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
