#!/usr/bin/env python3
"""Cold-start acceptance check for the AOT kernel catalog.

Runs every bundled algorithm on the cpp engine twice, in fresh child
processes with **empty** cache directories:

1. with ``PYGB_CATALOG`` pointing at a baked pack — must perform **zero**
   inline compiles (``compiles == 0``, ``catalog_hits > 0``);
2. without a catalog — the normal JIT path, compiling everything.

The two runs must produce bit-identical results (sha256 over every
result array), proving the pack serves the same kernels the JIT would
build.  Exits non-zero on any violation; the CI cold-start leg gates on
it.

Usage::

    python -m repro bake --out /tmp/pack
    python benchmarks/check_cold_start.py --pack /tmp/pack
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: runs in a child process: every bundled algorithm (operation-at-a-time
#: and whole-module compiled) on the cpp engine, digesting each result
_CHILD = r"""
import hashlib, json, sys
import numpy as np
import repro as gb
from repro.algorithms import (bfs_levels, connected_components, lower_triangle,
                              pagerank, sssp_distances, triangle_count)
from repro.algorithms.compiled import (bfs_compiled, pagerank_compiled,
                                       sssp_compiled, triangle_count_compiled)
from repro.io.generators import erdos_renyi, grid_graph, scale_free
from repro.jit.cache import cache_statistics

def digest(arrays):
    h = hashlib.sha256()
    for a in arrays:
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()

digests = {}
with gb.use_engine("cpp"), gb.tiled(tiles=1):
    g = erdos_renyi(48, seed=3)
    digests["bfs"] = digest(bfs_levels(g, 0).to_coo())
    wg = grid_graph(6, weighted=True, seed=5, dtype=float)
    digests["sssp"] = digest(sssp_distances(wg, 0).to_coo())
    pg = scale_free(48, seed=7)
    pr = gb.Vector(shape=(48,), dtype=float)
    pagerank(pg, pr, threshold=1e-8)
    digests["pagerank"] = digest([pr.to_numpy()])
    r, c, _ = g.to_coo()
    A = gb.Matrix(
        (np.ones(2 * len(r)), (np.concatenate([r, c]), np.concatenate([c, r]))),
        shape=g.shape, dtype=int,
    )
    L = lower_triangle(A)
    digests["triangles"] = digest([np.asarray([triangle_count(L)])])
    digests["components"] = digest(connected_components(g).to_coo())
def digest_sv(sv):
    d = sv.to_dict()
    return digest([np.asarray(sorted(d)), np.asarray([d[k] for k in sorted(d)])])

digests["bfs_compiled"] = digest_sv(bfs_compiled(g._store, 0)[0])
digests["sssp_compiled"] = digest_sv(sssp_compiled(wg._store, 0)[0])
digests["pagerank_compiled"] = digest_sv(pagerank_compiled(pg._store)[0])
digests["tc_compiled"] = digest([np.asarray([triangle_count_compiled(L._store)[0]])])

snap = cache_statistics()
json.dump({"digests": digests,
           "compiles": snap["compiles"],
           "catalog_hits": snap["catalog_hits"],
           "catalog_misses": snap["catalog_misses"],
           "fallbacks": snap["fallbacks"]}, sys.stdout)
"""


def run_algorithms(pack: str | None, schedule_tuner_off: bool = True) -> dict:
    """One cold child process: fresh cache dir, optional catalog."""
    env = {**os.environ,
           "PYGB_CACHE_DIR": tempfile.mkdtemp(prefix="pygb-cold-"),
           "PYTHONPATH": str(REPO_ROOT / "src")}
    if schedule_tuner_off:
        env["PYGB_SCHEDULE_TUNER"] = "0"
    if pack:
        env["PYGB_CATALOG"] = str(pack)
    else:
        env.pop("PYGB_CATALOG", None)
    proc = subprocess.run([sys.executable, "-c", _CHILD],
                          capture_output=True, text=True, env=env)
    if proc.returncode != 0:
        raise SystemExit(f"algorithm child failed:\n{proc.stderr}")
    return json.loads(proc.stdout)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pack", required=True, help="baked catalog directory")
    args = parser.parse_args(argv)

    catalog = run_algorithms(args.pack)
    plain = run_algorithms(None)

    print(f"with catalog:    {catalog['compiles']} compiles, "
          f"{catalog['catalog_hits']} catalog hits, "
          f"{catalog['catalog_misses']} misses")
    print(f"without catalog: {plain['compiles']} compiles")

    ok = True
    if catalog["compiles"] != 0:
        print(f"FAIL: catalog run performed {catalog['compiles']} inline "
              "compiles (expected 0)", file=sys.stderr)
        ok = False
    if catalog["catalog_hits"] <= 0:
        print("FAIL: catalog run served no catalog hits", file=sys.stderr)
        ok = False
    if catalog["fallbacks"] != 0:
        print(f"FAIL: catalog run fell back {catalog['fallbacks']}x "
              "(pack artifacts failed to load?)", file=sys.stderr)
        ok = False
    if plain["compiles"] <= 0:
        print("FAIL: control run compiled nothing — cache dir not cold?",
              file=sys.stderr)
        ok = False
    for name, d in sorted(catalog["digests"].items()):
        if plain["digests"][name] != d:
            print(f"FAIL: {name} result differs between catalog and JIT runs",
                  file=sys.stderr)
            ok = False
    if ok:
        print(f"OK: {len(catalog['digests'])} algorithms bit-identical, "
              "zero cold-start compiles under the catalog")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
