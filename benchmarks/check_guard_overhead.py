#!/usr/bin/env python3
"""No-regression guard for the guardrail layer's zero-cost contract.

With no deadline scope active and ``PYGB_OP_TIMEOUT`` unset, the only
cost ``GuardedEngine`` may add to a dispatch is one predicated branch
(the "is any guard armed?" test) before forwarding to the inner engine.
This script measures that cost directly on the smallest ``bench_fusion``
case (the regime where per-op overhead matters most) and fails when the
guarded dispatch is more than ``THRESHOLD`` (default 2%) slower than
dispatching straight into the unwrapped inner stack.

The A/B pair shares one engine object: ``make_engine("pyjit")`` returns
``Guarded(Partitioned(Resilient(...)))`` and the baseline leg installs
its ``_inner`` directly, so JIT caches, allocator state, and the whole
downstream stack are identical — the measurement isolates exactly the
guard wrapper.  A/B batches are interleaved and the minimum per-batch
time is compared, which suppresses scheduler noise.

Exit status 0 = within budget, 1 = regression.  Threshold override:
``PYGB_GUARD_OVERHEAD_THRESHOLD`` (fraction, e.g. ``0.02``).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

os.environ.setdefault(
    "PYGB_CACHE_DIR", str(Path(__file__).resolve().parent.parent / ".pygb_cache")
)
sys.path.insert(0, str(Path(__file__).resolve().parent))

import repro as gb
from bench_fusion import _chains
from repro.core.dispatch import make_engine

BATCH = 200
ROUNDS = 15
THRESHOLD = float(os.environ.get("PYGB_GUARD_OVERHEAD_THRESHOLD", "0.02"))


def _batch_time(fn) -> float:
    t0 = time.perf_counter_ns()
    for _ in range(BATCH):
        fn()
    return time.perf_counter_ns() - t0


def main() -> int:
    if os.environ.get("PYGB_OP_TIMEOUT"):
        print(
            "error: run with the guard disarmed (unset PYGB_OP_TIMEOUT)",
            file=sys.stderr,
        )
        return 2

    n = 256  # bench_fusion's smallest case
    fn = _chains(n)["mxv+apply"]
    guarded = make_engine("pyjit")
    plain = guarded._inner  # identical downstream stack, guard removed

    with gb.use_engine(guarded):
        for _ in range(3):  # warm-up: JIT caches + lazy method wrappers
            _batch_time(fn)
    with gb.use_engine(plain):
        _batch_time(fn)

    # Within a round, whichever variant runs first measures a few percent
    # slower (cache/branch-predictor state) — alternate the order so the
    # bias cancels in the min.
    hooked, bare = [], []
    for i in range(ROUNDS):
        legs = [(hooked, guarded), (bare, plain)]
        if i % 2:
            legs.reverse()
        for sink, eng in legs:
            with gb.use_engine(eng):
                sink.append(_batch_time(fn))

    best_hooked = min(hooked) / BATCH
    best_bare = min(bare) / BATCH
    overhead = best_hooked / best_bare - 1.0
    print(
        f"mxv+apply n={n} (pyjit, {ROUNDS} rounds x {BATCH} calls): "
        f"guarded {best_hooked / 1e3:.2f} us/op, "
        f"guard-free {best_bare / 1e3:.2f} us/op, "
        f"overhead {overhead * 100:+.2f}% (budget {THRESHOLD * 100:.0f}%)"
    )
    if overhead > THRESHOLD:
        print("FAIL: guard-off overhead exceeds budget", file=sys.stderr)
        return 1
    print("OK: guardrail layer is within its zero-cost budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
