#!/usr/bin/env python3
"""No-regression guard for the observability layer's zero-cost contract.

With tracing off, the only instrumentation the hot path may pay is one
predicated branch per op (``if obs.ACTIVE`` in
``repro.core.context.current_backend_engine`` plus the same test inside
the engines).  This script measures that cost directly on the smallest
``bench_fusion`` case (the regime where per-op overhead matters most)
and fails when the hooked dispatch is more than ``THRESHOLD`` (default
2%) slower than a hook-free baseline.

The baseline is produced *in the same process* by swapping a copy of
``current_backend_engine`` without the obs branch into every repro
module that imported it by name (call sites bind it with
``from .context import current_backend_engine``, so patching the context
module alone would not reach them).  A/B batches are interleaved and the
minimum per-batch time is compared, which suppresses scheduler noise.

Exit status 0 = within budget, 1 = regression.  Threshold override:
``PYGB_OVERHEAD_THRESHOLD`` (fraction, e.g. ``0.02``).
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

os.environ.setdefault(
    "PYGB_CACHE_DIR", str(Path(__file__).resolve().parent.parent / ".pygb_cache")
)
sys.path.insert(0, str(Path(__file__).resolve().parent))

import repro as gb
import repro.core.context as ctx
from bench_fusion import _chains

BATCH = 200
ROUNDS = 15
THRESHOLD = float(os.environ.get("PYGB_OVERHEAD_THRESHOLD", "0.02"))


def _plain_current_backend_engine():
    """``current_backend_engine`` with the obs hook removed — what the
    dispatch layer looked like before the observability layer existed."""
    engine = getattr(ctx._engine_state, "engine", None)
    if engine is None:  # cold thread: defer to the real resolver once
        return ctx.current_backend_engine()
    return engine


def _swap(fn):
    """Point every repro module's ``current_backend_engine`` binding at
    *fn*; returns the list of (module, original) pairs for restore."""
    swapped = []
    for name, mod in list(sys.modules.items()):
        if not name.startswith("repro") or mod is None:
            continue
        current = mod.__dict__.get("current_backend_engine")
        if callable(current):
            swapped.append((mod, current))
            mod.current_backend_engine = fn
    return swapped


def _restore(swapped):
    for mod, original in swapped:
        mod.current_backend_engine = original


def _batch_time(fn) -> float:
    t0 = time.perf_counter_ns()
    for _ in range(BATCH):
        fn()
    return time.perf_counter_ns() - t0


def main() -> int:
    import repro.obs as obs

    if obs.ACTIVE:
        print("error: run with tracing OFF (unset PYGB_TRACE/PYGB_STATS)",
              file=sys.stderr)
        return 2

    n = 256  # bench_fusion's smallest case
    fn = _chains(n)["mxv+apply"]
    with gb.use_engine("pyjit"):
        for _ in range(3):  # warm-up: JIT caches + allocator
            _batch_time(fn)

        # Within a round, whichever variant runs first measures a few
        # percent slower (cache/branch-predictor state; verified with an
        # A/A run) — alternate the order so the bias cancels in the min.
        hooked, plain = [], []
        for i in range(ROUNDS):
            def _measure_plain():
                swapped = _swap(_plain_current_backend_engine)
                try:
                    plain.append(_batch_time(fn))
                finally:
                    _restore(swapped)

            if i % 2 == 0:
                hooked.append(_batch_time(fn))
                _measure_plain()
            else:
                _measure_plain()
                hooked.append(_batch_time(fn))

    best_hooked = min(hooked) / BATCH
    best_plain = min(plain) / BATCH
    overhead = best_hooked / best_plain - 1.0
    print(
        f"mxv+apply n={n} (pyjit, {ROUNDS} rounds x {BATCH} calls): "
        f"hooked {best_hooked / 1e3:.2f} us/op, "
        f"hook-free {best_plain / 1e3:.2f} us/op, "
        f"overhead {overhead * 100:+.2f}% (budget {THRESHOLD * 100:.0f}%)"
    )
    if overhead > THRESHOLD:
        print("FAIL: tracing-off overhead exceeds budget", file=sys.stderr)
        return 1
    print("OK: observability layer is within its zero-cost budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
