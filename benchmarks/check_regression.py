#!/usr/bin/env python3
"""Gate the perf trajectory: fail CI when a tracked metric regresses.

Compares a candidate ``BENCH_<sha>.json`` (from ``collect_bench.py``)
against the committed baseline ``benchmarks/bench_baseline.json``.  Every
tracked metric is a deterministic, lower-is-better count (engine
dispatches, queue statistics), so the comparison is exact and
machine-independent; wall-clock timings are carried in the bench file for
trajectory plots but never gated.

A candidate value more than ``--threshold`` (default 15%) above the
baseline fails the check.  Improvements are reported and suggest
refreshing the baseline so the ratchet tightens.

Usage::

    python benchmarks/check_regression.py BENCH_abc1234.json
    python benchmarks/check_regression.py --baseline other.json --threshold 0.10 BENCH_x.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "bench_baseline.json"


def compare(baseline: dict, candidate: dict, threshold: float) -> list[str]:
    """Returns a list of failure messages (empty ⇒ pass)."""
    failures = []
    base_metrics = baseline.get("metrics", {})
    cand_metrics = candidate.get("metrics", {})
    for key in baseline.get("tracked", sorted(base_metrics)):
        if key not in base_metrics:
            continue
        if key not in cand_metrics:
            failures.append(f"{key}: missing from candidate (baseline {base_metrics[key]})")
            continue
        base, cand = base_metrics[key], cand_metrics[key]
        limit = base * (1.0 + threshold)
        status = "ok"
        if cand > limit:
            failures.append(
                f"{key}: {cand} exceeds baseline {base} by "
                f"{(cand / base - 1.0) * 100.0:.1f}% (limit +{threshold * 100.0:.0f}%)"
            )
            status = "FAIL"
        elif cand < base:
            status = "improved"
        print(f"  {key:45s} {base:>8} -> {cand:>8}  {status}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("candidate", help="BENCH_<sha>.json produced by collect_bench.py")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    parser.add_argument(
        "--threshold", type=float, default=0.15,
        help="allowed relative increase before failing (default 0.15)",
    )
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"error: baseline {baseline_path} not found", file=sys.stderr)
        return 2
    baseline = json.loads(baseline_path.read_text())
    candidate = json.loads(Path(args.candidate).read_text())

    print(f"baseline : {baseline_path} (sha {baseline.get('sha', '?')})")
    print(f"candidate: {args.candidate} (sha {candidate.get('sha', '?')})")
    failures = compare(baseline, candidate, args.threshold)
    if failures:
        print(f"\n{len(failures)} tracked metric(s) regressed:", file=sys.stderr)
        for message in failures:
            print(f"  {message}", file=sys.stderr)
        return 1
    print("\nall tracked metrics within threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
