#!/usr/bin/env python3
"""Normalize benchmark output into a per-commit ``BENCH_<sha>.json``.

The perf-trajectory CI leg runs this after the timing benchmarks.  Two
kinds of metrics land in the file:

* **tracked** — deterministic dispatch/engine-call counts and queue
  statistics, measured in-process here (CountingEngine, no timing).
  These are machine-independent, so ``check_regression.py`` gates them
  hard against ``benchmarks/bench_baseline.json``;
* **timing** — wall-clock medians copied from
  ``benchmarks/results/{fusion,overhead,cold_start,service,service_batching}.json``
  when those files exist (i.e. when ``bench_fusion.py`` /
  ``bench_overhead.py`` / ``replay_harness.py`` / ``bench_service.py``
  ran first).
  Machine-dependent, recorded for trajectory plots, never gated.

Usage::

    python benchmarks/bench_fusion.py          # optional, for timings
    python benchmarks/bench_overhead.py        # optional, for timings
    python benchmarks/collect_bench.py [--sha abc1234] [--output PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

os.environ.setdefault("PYGB_CACHE_DIR", str(REPO_ROOT / ".pygb_cache"))

import repro as gb  # noqa: E402
from repro import tiling  # noqa: E402
from repro.algorithms import pagerank  # noqa: E402
from repro.core.dispatch import CountingEngine, make_engine  # noqa: E402
from repro.core.nonblocking import reset_stats, stats  # noqa: E402
from repro.io.generators import erdos_renyi  # noqa: E402

PAGERANK_N = 256
CHAIN_N = 128
RMAT_SCALE = 9
RMAT_EDGE_FACTOR = 16


def _git_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _count(fn, fusion: bool) -> int:
    old = os.environ.get("PYGB_FUSION")
    os.environ["PYGB_FUSION"] = "1" if fusion else "0"
    try:
        eng = CountingEngine(make_engine("pyjit"))
        with gb.use_engine(eng):
            fn()
        return eng.total
    finally:
        if old is None:
            os.environ.pop("PYGB_FUSION", None)
        else:
            os.environ["PYGB_FUSION"] = old


def _pagerank_metrics() -> dict:
    import numpy as np

    g = erdos_renyi(PAGERANK_N, seed=7, weighted=True, dtype=float)

    def blocking():
        pr = gb.Vector(shape=(PAGERANK_N,), dtype=float)
        pagerank(g, pr, threshold=1.0e-8)
        return pr

    def deferred():
        pr = gb.Vector(shape=(PAGERANK_N,), dtype=float)
        with gb.nonblocking():
            pagerank(g, pr, threshold=1.0e-8)
        return pr

    metrics = {
        "pagerank.dispatches.fused": _count(blocking, fusion=True),
        "pagerank.dispatches.eager": _count(blocking, fusion=False),
    }
    reset_stats()
    metrics["pagerank.dispatches.nonblocking"] = _count(deferred, fusion=True)
    queue = stats()
    metrics["pagerank.queue.dead_stores"] = queue["dead_stores"]
    metrics["pagerank.queue.copy_elisions"] = queue["copy_elisions"]
    # bit-identical across modes is an invariant, not a metric — assert it
    # here so a broken queue can never publish a green trajectory point
    rb = blocking().to_numpy()
    rn = deferred().to_numpy()
    assert np.array_equal(rb, rn), "nonblocking PageRank diverged from blocking"
    return metrics


def _chain_metrics() -> dict:
    """Dispatch counts for the fusible two-op chains (fused vs eager)."""
    import numpy as np

    n = CHAIN_N
    a = erdos_renyi(n, seed=n, weighted=True, dtype=float)
    rng = np.random.default_rng(n)
    u = gb.Vector((rng.uniform(1, 2, n), np.arange(n)), shape=(n,))
    v = gb.Vector((rng.uniform(1, 2, n), np.arange(n)), shape=(n,))
    w = gb.Vector(shape=(n,), dtype=float)

    chains = {
        "mxv_apply": lambda: w.__setitem__(None, (a @ u) * 0.85),
        "ewise_mult_apply": lambda: w.__setitem__(None, (u * v) + 0.15),
        "ewise_mult_reduce": lambda: gb.reduce(u * v),
        "mxm_reduce_rows": lambda: w.__setitem__(None, gb.reduce("Plus", a @ a)),
    }
    metrics = {}
    for label, fn in chains.items():
        metrics[f"chain.{label}.dispatches.fused"] = _count(fn, fusion=True)
        metrics[f"chain.{label}.dispatches.eager"] = _count(fn, fusion=False)
    return metrics


def _schedule_metrics() -> dict:
    """Direction-optimization counters for BFS on a power-law R-MAT
    graph (the schedule layer's headline workload).

    ``PYGB_SCHEDULE_TUNER=0`` pins the pure cost model, so the examined
    edge counts and switch count are fully deterministic and gate hard.
    Two invariants are asserted rather than tracked: every mode yields
    bit-identical levels, and the auto schedule examines at least 2x
    fewer edges than fixed-push (the direction-optimization payoff).
    """
    from repro import schedule as S
    from repro.algorithms import bfs_levels
    from repro.io.generators import rmat

    g = rmat(RMAT_SCALE, edge_factor=RMAT_EDGE_FACTOR, seed=42)
    old = os.environ.get("PYGB_SCHEDULE_TUNER")
    os.environ["PYGB_SCHEDULE_TUNER"] = "0"
    try:
        levels, counters = {}, {}
        for mode in ("fixed", "push", "pull", "auto"):
            S.reset_stats()
            levels[mode] = bfs_levels(g, 0, schedule=mode)._store.to_dict()
            counters[mode] = S.stats()
    finally:
        if old is None:
            os.environ.pop("PYGB_SCHEDULE_TUNER", None)
        else:
            os.environ["PYGB_SCHEDULE_TUNER"] = old

    for mode in ("push", "pull", "auto"):
        assert levels[mode] == levels["fixed"], (
            f"schedule mode {mode!r} diverged from the dense BFS levels"
        )
    auto_edges = counters["auto"]["edges_total"]
    push_edges = counters["push"]["edges_total"]
    assert auto_edges * 2 <= push_edges, (
        f"direction-optimized BFS examined {auto_edges} edges, expected "
        f"at least 2x fewer than fixed-push ({push_edges})"
    )
    return {
        "bfs_rmat.edges.dense": counters["fixed"]["edges_total"],
        "bfs_rmat.edges.push": push_edges,
        "bfs_rmat.edges.pull": counters["pull"]["edges_total"],
        "bfs_rmat.edges.auto": auto_edges,
        "bfs_rmat.switches.auto": counters["auto"]["switches"],
        "bfs_rmat.fallbacks.auto": counters["auto"]["fallbacks"],
    }


def _tiled_metrics() -> dict:
    """Deterministic partition counters for the tiled data plane.

    Tile and worker counts are forced through ``gb.tiled`` (not read
    from the machine) and the schedule autotuner is pinned off (a
    timing-driven push/pull choice would flip dispatches between the
    partitioned and forwarded buckets), so partitioned-dispatch, merge,
    and tile-task counts depend only on the program — they gate hard.
    Two invariants are asserted rather than tracked: the tiled PageRank
    is bit-identical to the monolithic run, and ``tiles=1`` is a clean
    ablation that never creates a tile or fans out a dispatch.
    """
    import numpy as np

    g = erdos_renyi(PAGERANK_N, seed=7, weighted=True, dtype=float)

    def run():
        pr = gb.Vector(shape=(PAGERANK_N,), dtype=float)
        pagerank(g, pr, threshold=1.0e-8)
        return pr.to_numpy()

    old = os.environ.get("PYGB_SCHEDULE_TUNER")
    os.environ["PYGB_SCHEDULE_TUNER"] = "0"
    try:
        with gb.tiled(tiles=1):
            mono = run()

        tiling.reset_stats()
        with gb.tiled(tiles=4, workers=2):
            tiled_result = run()
        counters = tiling.stats()
    finally:
        if old is None:
            os.environ.pop("PYGB_SCHEDULE_TUNER", None)
        else:
            os.environ["PYGB_SCHEDULE_TUNER"] = old
    assert np.array_equal(mono, tiled_result), (
        "tiled PageRank diverged from the monolithic run"
    )

    tiling.reset_stats()
    with gb.tiled(tiles=1):
        ablation = run()
    ablation_counters = tiling.stats()
    assert np.array_equal(mono, ablation), "tiles=1 ablation diverged"
    assert ablation_counters["tiles_created"] == 0, (
        "tiles=1 ablation created tiles"
    )
    assert ablation_counters["partitioned_total"] == 0, (
        "tiles=1 ablation partitioned a dispatch"
    )

    return {
        "tiled.pagerank.tiles_created": counters["tiles_created"],
        "tiled.pagerank.partitioned_dispatches": counters["partitioned_total"],
        "tiled.pagerank.forwarded_dispatches": counters["forwarded_total"],
        "tiled.pagerank.tile_tasks": counters["tile_tasks"],
        "tiled.pagerank.merges": counters["merges_total"],
    }


def _guard_metrics() -> dict:
    """Deterministic guardrail counters: inject exactly one tile-worker
    crash into a tiled PageRank and count the degradation ladder's
    response.  ``times=1`` makes the fault accumulator fire on the first
    tile task only, so the ladder must degrade that one fan-out to a
    monolithic re-execution (degrades=1) and quarantine tiling for the
    crashed op signature (quarantines=1) — counts that depend only on
    the program, never the machine.  Bit-identity with the fault-free
    run is an invariant, asserted rather than tracked, so a ladder that
    returns partial tile results can never publish a green point.
    """
    import warnings

    import numpy as np

    from repro import guard
    from repro.testing.faults import FAULTS

    g = erdos_renyi(PAGERANK_N, seed=7, weighted=True, dtype=float)

    def run():
        pr = gb.Vector(shape=(PAGERANK_N,), dtype=float)
        pagerank(g, pr, threshold=1.0e-8)
        return pr.to_numpy()

    with gb.tiled(tiles=1):
        clean = run()

    guard.reset_stats()
    guard.tiling_health().reset()
    FAULTS.install("worker_crash", rate=1.0, times=1)
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")  # degrade/quarantine warnings
            with gb.tiled(tiles=4, workers=2):
                survived = run()
        counters = guard.stats()
    finally:
        FAULTS.clear()
        guard.tiling_health().reset()
        guard.reset_stats()

    assert np.array_equal(clean, survived), (
        "PageRank under an injected tile-worker crash diverged from the "
        "fault-free run"
    )
    assert counters["timeouts_total"] == 0 and counters["cancels_total"] == 0, (
        "worker-crash injection tripped unrelated guard counters"
    )
    return {
        "guard.pagerank.degrades": counters["degrades_total"],
        "guard.pagerank.quarantines": counters["quarantines_total"],
    }


def _catalog_metrics() -> dict:
    """Deterministic AOT-catalog counters: bake a ``.py``-flavour pack
    (no toolchain needed, so the numbers are machine-independent), then
    run PageRank in a cold child process — fresh ``PYGB_CACHE_DIR`` —
    once under ``PYGB_CATALOG`` and once without.

    The catalog run's compile and miss counts must be **zero** (baseline
    0 gates them hard: any new kernel the enumeration misses fails the
    trajectory leg, the cold-start analog of precompile's drift guard)
    and its hit count is the exact number of distinct specs the workload
    dispatches.  Bit-identity between the two runs is an invariant,
    asserted rather than tracked."""
    import hashlib
    import subprocess
    import sys
    import tempfile

    from repro.jit.catalog import bake_catalog

    pack = tempfile.mkdtemp(prefix="pygb-bench-pack-")
    report = bake_catalog(pack, include_cpp=False)
    assert report["failed"] == [], f"pack bake failed: {report['failed'][:3]}"

    child = (
        "import hashlib, json, sys\n"
        "import repro as gb\n"
        "from repro.algorithms import pagerank\n"
        "from repro.io.generators import erdos_renyi\n"
        "from repro.jit.cache import cache_statistics\n"
        f"n = {PAGERANK_N}\n"
        "with gb.use_engine('pyjit'), gb.tiled(tiles=1):\n"
        "    g = erdos_renyi(n, seed=7, weighted=True, dtype=float)\n"
        "    pr = gb.Vector(shape=(n,), dtype=float)\n"
        "    pagerank(g, pr, threshold=1.0e-8)\n"
        "    data = pr.to_numpy().tobytes()\n"
        "snap = cache_statistics()\n"
        "json.dump({'digest': hashlib.sha256(data).hexdigest(),\n"
        "           'compiles': snap['compiles'],\n"
        "           'catalog_hits': snap['catalog_hits'],\n"
        "           'catalog_misses': snap['catalog_misses']}, sys.stdout)\n"
    )

    def run(with_pack: bool) -> dict:
        env = {**os.environ,
               "PYGB_CACHE_DIR": tempfile.mkdtemp(prefix="pygb-bench-cold-"),
               "PYGB_SCHEDULE_TUNER": "0",
               "PYTHONPATH": str(REPO_ROOT / "src")}
        if with_pack:
            env["PYGB_CATALOG"] = pack
        else:
            env.pop("PYGB_CATALOG", None)
        out = subprocess.run([sys.executable, "-c", child],
                             capture_output=True, text=True, env=env, check=True)
        return json.loads(out.stdout)

    catalog = run(with_pack=True)
    plain = run(with_pack=False)
    assert catalog["digest"] == plain["digest"], (
        "catalog-served PageRank diverged from the JIT-compiled run"
    )
    assert catalog["catalog_hits"] > 0, "catalog run served no catalog hits"
    return {
        "catalog.pagerank.compiles": catalog["compiles"],
        "catalog.pagerank.catalog_misses": catalog["catalog_misses"],
        "catalog.pagerank.catalog_hits": catalog["catalog_hits"],
    }


def _service_metrics() -> dict:
    """Deterministic admission-control counters for the graph service.

    A fixed 12-request mix (6 bfs sources + 4 sssp sources + 2 pagerank)
    is parked in a held admission queue and released as one deterministic
    wave, so the batch structure depends only on the mix: one fused
    6-source bfs batch, one fused 4-source sssp batch, one deduplicated
    pagerank batch.  Counts gate hard — ``batches`` grows if fusion stops
    merging, ``solo_batches`` leaves zero if requests start executing
    individually, and ``errors``/``timeouts`` leave zero if any admitted
    request fails.  Bit-identity of every batched response with its
    direct solo run is an invariant, asserted rather than tracked.
    """
    import json as _json

    from repro import service
    from repro.service import AdmissionController, GraphRegistry
    from repro.service.admission import solo_reference
    from repro.service.protocol import parse_request

    graph = erdos_renyi(PAGERANK_N, seed=7, weighted=True, dtype=float)
    registry = GraphRegistry()
    registry.add("er", graph)

    reqs = (
        [{"op": "run", "graph": "er", "algorithm": "bfs", "source": s}
         for s in (0, 11, 42, 97, 3, 55)]
        + [{"op": "run", "graph": "er", "algorithm": "sssp", "source": s}
           for s in (7, 19, 63, 120)]
        + [{"op": "run", "graph": "er", "algorithm": "pagerank"}] * 2
    )

    service.reset_stats()
    controller = AdmissionController(registry)
    try:
        with controller.hold():
            pendings = [
                controller.submit(parse_request(_json.dumps(r))["request"])
                for r in reqs
            ]
        responses = [p.wait(timeout=300.0) for p in pendings]
    finally:
        controller.close()
    counters = service.stats()

    for req, resp in zip(reqs, responses):
        assert resp.get("ok"), f"service request failed: {req} -> {resp}"
        oracle = solo_reference(graph, "er", req["algorithm"], req.get("source"), {})
        assert (_json.dumps(resp["result"], sort_keys=True)
                == _json.dumps(oracle, sort_keys=True)), (
            f"batched response diverged from its solo run: {req}"
        )
    assert counters["fused_runs"] == 2 and counters["fused_sources"] == 10, (
        f"expected the 6-source bfs and 4-source sssp batches to fuse, "
        f"got {counters}"
    )
    return {
        "service.replay.requests": counters["requests"],
        "service.replay.batches": counters["batches"],
        "service.replay.solo_batches": counters["batch_hist"]["1"],
        "service.replay.errors": counters["errors"],
        "service.replay.timeouts": counters["timeouts"],
    }


def _timing_sections() -> dict:
    timings = {}
    for name in ("fusion", "overhead", "cold_start", "service", "service_batching"):
        path = RESULTS_DIR / f"{name}.json"
        if path.exists():
            timings[name] = json.loads(path.read_text())
    return timings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sha", default=None, help="commit sha (default: git HEAD)")
    parser.add_argument("--output", default=None, help="output path (default: BENCH_<sha>.json)")
    args = parser.parse_args(argv)

    sha = args.sha or _git_sha()
    metrics = {}
    # the legacy counts run under the tiles=1 ablation so they stay
    # exactly the pre-tiling dispatch stream on any machine/config
    with gb.tiled(tiles=1):
        metrics.update(_pagerank_metrics())
        metrics.update(_chain_metrics())
        metrics.update(_schedule_metrics())
    metrics.update(_tiled_metrics())
    metrics.update(_guard_metrics())
    metrics.update(_catalog_metrics())
    metrics.update(_service_metrics())

    doc = {
        "schema": 1,
        "sha": sha,
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        # every tracked metric is a lower-is-better deterministic count
        "tracked": sorted(metrics),
        "metrics": metrics,
        "timings": _timing_sections(),
    }

    out_path = Path(args.output) if args.output else REPO_ROOT / f"BENCH_{sha}.json"
    out_path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"wrote {out_path}")
    for key in sorted(metrics):
        print(f"  {key:45s} {metrics[key]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
