"""Benchmark fixtures: the paper's evaluation workloads.

Every Fig. 10/11 experiment runs on Erdős–Rényi digraphs with
``|E| = |V|^1.5`` (paper Sec. VI).  Sizes are scaled to a single-core
container; the claim under test — the DSL abstraction penalty decays with
input size — is about *ratios across sizes*, not absolute numbers.
"""

from __future__ import annotations

import os
from pathlib import Path

os.environ.setdefault(
    "PYGB_CACHE_DIR", str(Path(__file__).resolve().parent.parent / ".pygb_cache")
)

import numpy as np
import pytest

import repro as gb
from repro.io.generators import erdos_renyi, scale_free
from repro.jit.cppengine import compiler_available

#: the |V| sweep of the Fig. 10 reproduction
SIZES = [256, 512, 1024, 2048]
SIZES_SMALL = [256, 1024]

requires_cpp = pytest.mark.skipif(
    not compiler_available(), reason="no C++ toolchain for the cpp engine"
)


def er_graph(n: int, weighted: bool = False, dtype=None, seed: int = 42) -> "gb.Matrix":
    return erdos_renyi(n, seed=seed, weighted=weighted, dtype=dtype)


def undirected_lower(n: int, seed: int = 42) -> "gb.Matrix":
    """Strictly-lower-triangular half of the symmetrised ER graph (the
    triangle-counting input L)."""
    from repro.algorithms import lower_triangle

    g = er_graph(n, seed=seed)
    r, c, _ = g.to_coo()
    sym = gb.Matrix(
        (np.ones(2 * len(r)), (np.concatenate([r, c]), np.concatenate([c, r]))),
        shape=g.shape, dtype=np.int64,
    )
    return lower_triangle(sym)


@pytest.fixture(scope="module")
def graphs():
    """ER graphs for every benchmark size, built once per module."""
    return {n: er_graph(n) for n in SIZES}


@pytest.fixture(scope="module")
def weighted_graphs():
    return {n: er_graph(n, weighted=True, dtype=float) for n in SIZES}


@pytest.fixture(scope="module")
def pagerank_graphs():
    return {n: scale_free(n, seed=42) for n in SIZES_SMALL}
