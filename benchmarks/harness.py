#!/usr/bin/env python3
"""Paper-figure reproduction harness.

Regenerates the series behind every evaluation figure of the paper and
prints them as tables::

    python benchmarks/harness.py fig10     # 4 algorithms × 3 versions × sizes
    python benchmarks/harness.py fig11     # construct/read/extract timings
    python benchmarks/harness.py compile   # JIT compilation-time experiment
    python benchmarks/harness.py all

Version definitions (paper Sec. VI):

* **v1 PyGB/loops** — DSL code, Python outer loops, one JIT kernel per op
  (``cpp`` engine when a compiler exists, else ``pyjit``);
* **v2 PyGB/compiled-algorithm** — Python calls the whole algorithm as a single
  JIT-compiled C++ module (wall time includes the FFI crossing);
* **v3 native** — the same module's internal ``std::chrono`` time
  (no Python on the measured path).  Without a compiler, the native
  backend-kernel implementation is reported instead.

Results are also written to ``benchmarks/results/*.json``.
"""

from __future__ import annotations

import json
import os
import statistics
import sys
import time
from pathlib import Path

os.environ.setdefault(
    "PYGB_CACHE_DIR", str(Path(__file__).resolve().parent.parent / ".pygb_cache")
)

import numpy as np

import repro as gb
from repro.algorithms import (
    bfs_levels,
    bfs_native,
    lower_triangle,
    pagerank,
    pagerank_native,
    sssp_converging,
    sssp_native,
    triangle_count,
    triangle_count_native,
)
from repro.io.generators import erdos_renyi, erdos_renyi_coo, scale_free
from repro.io.fastload import fast_loader_available, mmread_fast
from repro.io.matrixmarket import mmread, mmwrite
from repro.jit.cppengine import compiler_available

RESULTS_DIR = Path(__file__).resolve().parent / "results"
SIZES = [256, 512, 1024, 2048, 4096]
PR_SIZES = [256, 512, 1024]
REPEATS = 5
PR_THRESHOLD = 1.0e-8


def _median_time(fn, repeats: int = REPEATS) -> float:
    """Median wall-clock seconds of *fn* over *repeats* runs (after one
    untimed warm-up that also populates the JIT caches)."""
    fn()
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return statistics.median(samples)


def _median_native_ns(fn, repeats: int = REPEATS) -> float:
    """Median of the elapsed_ns an (result, elapsed_ns) callable reports."""
    fn()
    return statistics.median(fn()[1] for _ in range(repeats)) / 1e9


def _print_table(title: str, header: list[str], rows: list[list]) -> None:
    print(f"\n== {title} ==")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    line = "  ".join(str(h).rjust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).rjust(w) for c, w in zip(r, widths)))


def _fmt(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms"


def _save(name: str, payload) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(json.dumps(payload, indent=2))


# ----------------------------------------------------------------------
# Fig. 10
# ----------------------------------------------------------------------


def _tc_input(n: int) -> "gb.Matrix":
    g = erdos_renyi(n, seed=42)
    r, c, _ = g.to_coo()
    sym = gb.Matrix(
        (np.ones(2 * len(r)), (np.concatenate([r, c]), np.concatenate([c, r]))),
        shape=g.shape, dtype=np.int64,
    )
    return lower_triangle(sym)


def _fig10_algorithms(has_cpp: bool):
    """algorithm -> (sizes, make_input, v1, v2, v3) closures."""
    if has_cpp:
        from repro.algorithms import compiled as C

    def bfs_family():
        def make(n):
            g = erdos_renyi(n, seed=42)
            g._store.transposed()
            return g

        v1 = lambda g: bfs_levels(g, 0)
        v2 = (lambda g: C.bfs_compiled(g._store, 0)) if has_cpp else None
        v3 = (
            (lambda g: _median_native_ns(lambda: C.bfs_compiled(g._store, 0)))
            if has_cpp
            else (lambda g: _median_time(lambda: bfs_native(g._store, 0)))
        )
        return SIZES, make, v1, v2, v3

    def sssp_family():
        def make(n):
            g = erdos_renyi(n, seed=42, weighted=True, dtype=float)
            g._store.transposed()
            return g

        def v1(g):
            path = gb.Vector(([0.0], [0]), shape=(g.nrows,), dtype=float)
            sssp_converging(g, path)

        v2 = (lambda g: C.sssp_compiled(g._store, 0)) if has_cpp else None
        v3 = (
            (lambda g: _median_native_ns(lambda: C.sssp_compiled(g._store, 0)))
            if has_cpp
            else (lambda g: _median_time(lambda: sssp_native(g._store, 0)))
        )
        return SIZES, make, v1, v2, v3

    def pagerank_family():
        make = lambda n: scale_free(n, seed=42)

        def v1(g):
            ranks = gb.Vector(shape=(g.nrows,), dtype=float)
            pagerank(g, ranks, threshold=PR_THRESHOLD)

        v2 = (
            (lambda g: C.pagerank_compiled(g._store, threshold=PR_THRESHOLD))
            if has_cpp
            else None
        )
        v3 = (
            (
                lambda g: _median_native_ns(
                    lambda: C.pagerank_compiled(g._store, threshold=PR_THRESHOLD)
                )
            )
            if has_cpp
            else (
                lambda g: _median_time(
                    lambda: pagerank_native(g._store, threshold=PR_THRESHOLD)
                )
            )
        )
        return PR_SIZES, make, v1, v2, v3

    def tc_family():
        def make(n):
            L = _tc_input(n)
            L._store.transposed()
            return L

        v1 = triangle_count
        v2 = (lambda L: C.triangle_count_compiled(L._store)) if has_cpp else None
        v3 = (
            (lambda L: _median_native_ns(lambda: C.triangle_count_compiled(L._store)))
            if has_cpp
            else (lambda L: _median_time(lambda: triangle_count_native(L._store)))
        )
        return SIZES, make, v1, v2, v3

    return {
        "bfs": bfs_family(),
        "sssp": sssp_family(),
        "pagerank": pagerank_family(),
        "triangle_count": tc_family(),
    }


def run_fig10() -> None:
    has_cpp = compiler_available()
    v1_engine = "cpp" if has_cpp else "pyjit"
    print(
        f"\nFig. 10 reproduction — v1 engine: {v1_engine};"
        f" v2/v3 {'compiled C++ modules' if has_cpp else 'native NumPy kernels'}"
    )
    payload = {"v1_engine": v1_engine, "algorithms": {}}
    for name, (sizes, make, v1, v2, v3) in _fig10_algorithms(has_cpp).items():
        rows = []
        series = []
        for n in sizes:
            inp = make(n)
            with gb.use_engine(v1_engine):
                t1 = _median_time(lambda: v1(inp))
            t2 = _median_time(lambda: v2(inp)) if v2 else float("nan")
            t3 = v3(inp)
            ratio = t1 / t3 if t3 > 0 else float("inf")
            rows.append(
                [n, _fmt(t1), _fmt(t2) if v2 else "-", _fmt(t3), f"{ratio:.2f}x"]
            )
            series.append({"n": n, "v1": t1, "v2": t2 if v2 else None, "v3": t3})
        payload["algorithms"][name] = series
        _print_table(
            f"Fig. 10 / {name}",
            ["|V|", "v1 PyGB loops", "v2 compiled-call", "v3 native", "v1/v3"],
            rows,
        )
    _save("fig10", payload)
    print(
        "\nExpected shape (paper Sec. VI): the v1/v3 ratio decays toward 1 as |V|"
        " grows; v2 tracks v3 up to a constant FFI/marshalling cost."
    )


# ----------------------------------------------------------------------
# Fig. 11
# ----------------------------------------------------------------------


def run_fig11() -> None:
    import tempfile

    rows = []
    payload = []
    with tempfile.TemporaryDirectory() as tmp:
        for n in SIZES:
            r, c, _ = erdos_renyi_coo(n, seed=7)
            vals = np.linspace(1.0, 2.0, r.size)
            lists = (vals.tolist(), (r.tolist(), c.tolist()))
            m = gb.Matrix((vals, (r, c)), shape=(n, n))
            path = Path(tmp) / f"er_{n}.mtx"
            mmwrite(path, m)
            t_read = _median_time(lambda: mmread(path))
            t_fast = (
                _median_time(lambda: mmread_fast(path))
                if fast_loader_available()
                else float("nan")
            )
            t_list = _median_time(lambda: gb.Matrix(lists, shape=(n, n)))
            t_np = _median_time(lambda: gb.Matrix((vals, (r, c)), shape=(n, n)))
            t_out = _median_time(m.to_coo)
            rows.append(
                [n, m.nvals, _fmt(t_read),
                 _fmt(t_fast) if fast_loader_available() else "-",
                 _fmt(t_list), _fmt(t_np), _fmt(t_out)]
            )
            payload.append(
                {"n": n, "nnz": m.nvals, "read_file": t_read, "read_file_cpp": t_fast,
                 "from_lists": t_list, "from_numpy": t_np, "extract": t_out}
            )
    _print_table(
        "Fig. 11 / container construction & extraction",
        ["|V|", "nnz", "read file", "read file (C++)", "from lists", "from numpy", "extract"],
        rows,
    )
    _save("fig11", payload)
    print(
        "\nExpected shape (paper Sec. VI): the file read dominates; in-memory"
        " construction and extraction are far cheaper at every size."
    )


# ----------------------------------------------------------------------
# compilation times
# ----------------------------------------------------------------------


def run_compile() -> None:
    import tempfile

    from repro.jit.cache import JitCache
    from repro.jit.pycodegen import generate_source
    from repro.jit.spec import KernelSpec

    rows = []
    payload = {}

    def spec(tag=0, **extra):
        base = dict(
            a="float64", u="float64", c="float64", t_dtype="float64",
            add="Plus", mult="Times", ta=False,
            mask="none", comp=False, repl=False, accum="none", tag=tag,
        )
        base.update(extra)
        return KernelSpec.make("mxv", **base)

    with tempfile.TemporaryDirectory() as tmp:
        cache = JitCache(tmp)
        # pyjit cold: unique spec per sample
        samples = []
        for i in range(20):
            t0 = time.perf_counter()
            cache.get_module(spec(tag=1000 + i), generate_source)
            samples.append(time.perf_counter() - t0)
        cold = statistics.median(samples)
        # disk hit
        s = spec()
        cache.get_module(s, generate_source)
        samples = []
        for _ in range(50):
            cache.clear_memory()
            t0 = time.perf_counter()
            cache.get_module(s, generate_source)
            samples.append(time.perf_counter() - t0)
        disk = statistics.median(samples)
        # memory hit
        mem = _median_time(lambda: cache.get_module(s, generate_source), repeats=50)
        rows.append(["pyjit", _fmt(cold), _fmt(disk), f"{mem * 1e6:.1f}us"])
        payload["pyjit"] = {"cold": cold, "disk": disk, "memory": mem}

    if compiler_available():
        from repro.jit.cppcodegen import generate_cpp_source
        from repro.jit.cppengine import CppJitEngine

        with tempfile.TemporaryDirectory() as tmp:
            eng = CppJitEngine(JitCache(tmp))
            samples = []
            for i in range(4):
                t0 = time.perf_counter()
                eng.cache.get_module(
                    spec(tag=2000 + i), generate_cpp_source,
                    suffix=".cpp", compiler=eng._compile,
                )
                samples.append(time.perf_counter() - t0)
            cold = statistics.median(samples)
            s = spec()
            eng.cache.get_module(s, generate_cpp_source, suffix=".cpp", compiler=eng._compile)
            samples = []
            for _ in range(20):
                eng.cache.clear_memory()
                t0 = time.perf_counter()
                eng.cache.get_module(
                    s, generate_cpp_source, suffix=".cpp", compiler=eng._compile
                )
                samples.append(time.perf_counter() - t0)
            disk = statistics.median(samples)
            mem = _median_time(
                lambda: eng.cache.get_module(
                    s, generate_cpp_source, suffix=".cpp", compiler=eng._compile
                ),
                repeats=50,
            )
            rows.append(["cpp (g++)", _fmt(cold), _fmt(disk), f"{mem * 1e6:.1f}us"])
            payload["cpp"] = {"cold": cold, "disk": disk, "memory": mem}

    _print_table(
        "JIT compilation times (Fig. 9 pipeline)",
        ["generator", "cold compile", "disk hit", "memory hit"],
        rows,
    )
    _save("compile_times", payload)
    print(
        "\nExpected shape (paper Sec. VI): the cold g++ compile is a one-time cost"
        " comparable to compiling native GBTL; disk/memory hits amortise it away."
    )


def main(argv: list[str]) -> int:
    what = argv[1] if len(argv) > 1 else "all"
    if what in ("fig10", "all"):
        run_fig10()
    if what in ("fig11", "all"):
        run_fig11()
    if what in ("compile", "all"):
        run_compile()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
