#!/usr/bin/env python3
"""Concurrent-client replay harness for the graph service.

Replays a recorded request mix (deterministic from ``--seed``) against a
server from N concurrent client threads, in synchronized volleys so
compatible requests land inside one admission window, then **gates**:

* zero errors — every response is ``ok``;
* at least one fused batch formed (the admission controller actually
  merged concurrent compatible requests into a multi-source run);
* every response is **bit-identical** to a direct in-process solo run of
  the same request through the public single-source API — batching must
  be invisible to clients.

Two modes:

* default — boots an in-process server on an ephemeral port and replays
  against it (the admission queue is held per volley, so batch formation
  is fully deterministic);
* ``--connect HOST:PORT`` — replays against an already-running
  ``python -m repro serve`` (the CI service leg).  Gate counters come
  from the live ``stats`` endpoint delta; give the server a generous
  ``PYGB_BATCH_WINDOW`` so simultaneous volleys fuse reliably.

The throughput summary lands in ``benchmarks/results/service.json``,
which ``collect_bench.py`` copies into the per-commit ``BENCH_<sha>.json``
timing section (machine-dependent, recorded for trajectory plots, never
gated — the gates above are pass/fail instead).

Usage::

    python benchmarks/replay_harness.py                    # self-boot
    python benchmarks/replay_harness.py --write-manifest graphs.json
    python benchmarks/replay_harness.py --connect 127.0.0.1:8765 \\
        --manifest graphs.json --clients 8 --volleys 6
"""

from __future__ import annotations

import argparse
import json
import os
import random
import socket
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"
sys.path.insert(0, str(REPO_ROOT / "src"))

os.environ.setdefault("PYGB_CACHE_DIR", str(REPO_ROOT / ".pygb_cache"))

#: the graphs every replay runs against — generator entries only, so the
#: harness process and an external server process build identical graphs
MANIFEST = {
    "graphs": {
        "er": {
            "generator": "erdos_renyi",
            "nodes": 192, "nedges": 1400, "seed": 11, "weighted": True,
        },
        "ring": {"generator": "ring_graph", "nodes": 96, "weighted": True},
    }
}

#: request mix weights: traversals dominate (they exercise fusion),
#: whole-graph algorithms ride along (they exercise dedup)
MIX = ["bfs"] * 5 + ["sssp"] * 3 + ["pagerank", "components"]


def recorded_mix(seed: int, clients: int, volleys: int) -> list[list[dict]]:
    """The recorded request tape: ``volleys`` rounds of one request per
    client, deterministic in *seed* (same tape every run)."""
    rng = random.Random(seed)
    graphs = sorted(MANIFEST["graphs"])
    sizes = {
        name: MANIFEST["graphs"][name].get("nodes", 0) for name in graphs
    }
    tape = []
    for v in range(volleys):
        round_ = []
        for c in range(clients):
            graph = rng.choice(graphs)
            algorithm = rng.choice(MIX)
            req = {"op": "run", "graph": graph, "algorithm": algorithm,
                   "id": f"v{v}c{c}"}
            if algorithm in ("bfs", "sssp"):
                req["source"] = rng.randrange(sizes[graph])
            round_.append(req)
        tape.append(round_)
    return tape


def build_registry():
    from repro.service import GraphRegistry
    from repro.service.registry import _build_entry

    registry = GraphRegistry()
    for name, spec in MANIFEST["graphs"].items():
        registry.add(name, _build_entry(name, spec, REPO_ROOT))
    return registry


class Oracle:
    """Solo-run reference results, computed once per distinct request."""

    def __init__(self, registry):
        self.registry = registry
        self._cache: dict[tuple, str] = {}
        self._lock = threading.Lock()

    def canonical(self, req: dict) -> str:
        from repro.service.admission import solo_reference

        key = (req["graph"], req["algorithm"], req.get("source"))
        with self._lock:
            hit = self._cache.get(key)
        if hit is not None:
            return hit
        result = solo_reference(
            self.registry.get(req["graph"]), req["graph"],
            req["algorithm"], req.get("source"), {},
        )
        text = json.dumps(result, sort_keys=True)
        with self._lock:
            self._cache[key] = text
        return text


class Client(threading.Thread):
    """One persistent connection replaying its column of the tape;
    volleys are barrier-synchronized so each round's requests hit the
    admission window together."""

    def __init__(self, host, port, tape_column, barrier):
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.tape = tape_column
        self.barrier = barrier
        self.responses: list[tuple[dict, dict]] = []
        self.error: BaseException | None = None

    def run(self):
        try:
            with socket.create_connection((self.host, self.port), timeout=60) as sock:
                f = sock.makefile("rwb")
                for req in self.tape:
                    self.barrier.wait(timeout=60)
                    f.write(json.dumps(req).encode() + b"\n")
                    f.flush()
                    self.responses.append((req, json.loads(f.readline())))
        except BaseException as exc:  # noqa: BLE001 - reported by main thread
            self.error = exc


def replay(host, port, tape, oracle, hold_admission=None) -> dict:
    clients = len(tape[0])
    barrier = threading.Barrier(clients + 1)
    columns = [[tape[v][c] for v in range(len(tape))] for c in range(clients)]
    workers = [Client(host, port, col, barrier) for col in columns]
    for w in workers:
        w.start()
    started = time.perf_counter()
    for volley in range(len(tape)):
        if hold_admission is not None:
            # deterministic batching: park the whole volley, then release
            with hold_admission() as admission:
                barrier.wait(timeout=60)
                deadline = time.monotonic() + 30
                while time.monotonic() < deadline:
                    with admission._cond:
                        parked = sum(
                            len(g.pendings) for g in admission._groups.values()
                        )
                    if parked == clients or any(w.error for w in workers):
                        break
                    time.sleep(0.002)
            # let the released batches drain before holding the queue
            # again — a back-to-back hold would starve the dispatcher
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if all(
                    len(w.responses) > volley or w.error is not None
                    for w in workers
                ):
                    break
                time.sleep(0.002)
        else:
            barrier.wait(timeout=60)
            # external server: the barrier releases the volley into one
            # PYGB_BATCH_WINDOW; pace rounds so windows don't overlap
            time.sleep(0.05)
    for w in workers:
        w.join(timeout=120)
    elapsed = time.perf_counter() - started

    for w in workers:
        if w.error is not None:
            raise w.error

    total = mismatches = failures = 0
    for w in workers:
        for req, resp in w.responses:
            total += 1
            if not resp.get("ok"):
                failures += 1
                print(f"FAIL {req}: {resp.get('error')}", file=sys.stderr)
                continue
            if json.dumps(resp["result"], sort_keys=True) != oracle.canonical(req):
                mismatches += 1
                print(f"MISMATCH vs solo run: {req}", file=sys.stderr)
    return {
        "clients": clients,
        "volleys": len(tape),
        "requests": total,
        "failures": failures,
        "mismatches": mismatches,
        "elapsed_s": round(elapsed, 6),
        "throughput_rps": round(total / elapsed, 3) if elapsed > 0 else 0.0,
    }


def fetch_stats(host, port) -> dict:
    with socket.create_connection((host, port), timeout=30) as sock:
        sock.sendall(b'{"op": "stats"}\n')
        return json.loads(sock.makefile("rb").readline())["result"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--volleys", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="replay against a running server instead of self-booting",
    )
    parser.add_argument(
        "--manifest", default=None,
        help="(--connect) manifest the server was booted with; must match "
        "the harness's built-in graph set for the bit-identity check",
    )
    parser.add_argument(
        "--write-manifest", default=None, metavar="PATH",
        help="write the harness's graph manifest for `repro serve` and exit",
    )
    parser.add_argument(
        "--output", default=None,
        help=f"summary JSON path (default: {RESULTS_DIR / 'service.json'})",
    )
    args = parser.parse_args(argv)

    if args.write_manifest:
        Path(args.write_manifest).write_text(json.dumps(MANIFEST, indent=2) + "\n")
        print(f"wrote {args.write_manifest}")
        return 0

    if args.manifest:
        ours = json.dumps(MANIFEST, sort_keys=True)
        theirs = json.dumps(json.loads(Path(args.manifest).read_text()), sort_keys=True)
        if ours != theirs:
            print("error: server manifest differs from the harness graph set "
                  "(bit-identity check would compare different graphs)",
                  file=sys.stderr)
            return 2

    registry = build_registry()
    oracle = Oracle(registry)
    tape = recorded_mix(args.seed, args.clients, args.volleys)

    if args.connect:
        host, _, port = args.connect.rpartition(":")
        host, port = host or "127.0.0.1", int(port)
        before = fetch_stats(host, port)
        report = replay(host, port, tape, oracle)
        after = fetch_stats(host, port)
        counters = {
            key: after[key] - before[key]
            for key in ("requests", "batches", "batched_requests",
                        "fused_runs", "fused_sources", "timeouts", "errors")
        }
        server = None
    else:
        from repro import service
        from repro.service import GraphServer

        service.reset_stats()
        server = GraphServer(registry).start()
        try:
            report = replay(
                server.host, server.port, tape, oracle,
                hold_admission=server.admission.hold,
            )
        finally:
            server.close()
        counters = {
            key: value
            for key, value in service.stats().items()
            if key != "batch_hist"
        }
        counters["batch_hist"] = service.stats()["batch_hist"]
    report["counters"] = counters

    out = Path(args.output) if args.output else RESULTS_DIR / "service.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    print(f"replayed {report['requests']} requests from {report['clients']} "
          f"clients in {report['elapsed_s']:.2f}s "
          f"({report['throughput_rps']:.0f} req/s)")
    print(f"admission: {counters['batches']} batches, "
          f"{counters['batched_requests']} batched requests, "
          f"{counters['fused_runs']} fused runs over "
          f"{counters['fused_sources']} sources")
    print(f"wrote {out}")

    ok = True
    if report["failures"]:
        print(f"GATE FAILED: {report['failures']} requests errored", file=sys.stderr)
        ok = False
    if report["mismatches"]:
        print(f"GATE FAILED: {report['mismatches']} responses diverged from "
              "their solo runs", file=sys.stderr)
        ok = False
    if counters["fused_runs"] < 1:
        print("GATE FAILED: no fused batch formed — admission control never "
              "merged concurrent compatible requests", file=sys.stderr)
        ok = False
    if counters["errors"]:
        print(f"GATE FAILED: server counted {counters['errors']} execution "
              "errors", file=sys.stderr)
        ok = False
    print("gates: " + ("all passed" if ok else "FAILED"))
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
