#!/usr/bin/env python3
"""Validate a ``PYGB_TRACE=chrome:<path>`` export (CI gate).

Checks that the file is loadable Chrome ``trace_event`` JSON, that it
actually contains spans, that every event carries the keys the Chrome
viewer requires, and that complete ("X") spans **nest** within each
thread: a span must either be disjoint from the previous one or lie
entirely inside it — partial overlap means broken clockwork (e.g. a
kernel span leaking outside its dispatch span).

Usage: ``python benchmarks/validate_trace.py /tmp/pygb-trace.json``
"""

from __future__ import annotations

import json
import sys


def validate(path: str) -> int:
    with open(path) as f:
        data = json.load(f)

    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        print(f"FAIL: {path} has no traceEvents", file=sys.stderr)
        return 1

    spans = 0
    by_thread: dict = {}
    for ev in events:
        for key in ("name", "cat", "ph", "pid", "tid", "ts"):
            if key not in ev:
                print(f"FAIL: event missing {key!r}: {ev}", file=sys.stderr)
                return 1
        if ev["ph"] == "X":
            if "dur" not in ev:
                print(f"FAIL: X event missing dur: {ev}", file=sys.stderr)
                return 1
            spans += 1
            by_thread.setdefault((ev["pid"], ev["tid"]), []).append(ev)
        elif ev["ph"] == "i":
            if ev.get("s") not in ("t", "p", "g"):
                print(f"FAIL: instant event missing scope: {ev}", file=sys.stderr)
                return 1
        else:
            print(f"FAIL: unexpected phase {ev['ph']!r}: {ev}", file=sys.stderr)
            return 1

    if spans == 0:
        print("FAIL: trace contains no complete (X) spans", file=sys.stderr)
        return 1

    # nesting check: within a thread, sorted by start time, each span is
    # either inside the enclosing open span or after it — never partial
    nested = 0
    for (pid, tid), evs in by_thread.items():
        evs.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: list = []  # (start, end) of open spans
        for ev in evs:
            start, end = ev["ts"], ev["ts"] + ev["dur"]
            while stack and start >= stack[-1][1]:
                stack.pop()
            if stack:
                if end > stack[-1][1] + 1e-3:  # µs tolerance for rounding
                    print(
                        f"FAIL: span {ev['name']!r} [{start}, {end}] on "
                        f"pid={pid} tid={tid} partially overlaps its "
                        f"enclosing span {stack[-1]}",
                        file=sys.stderr,
                    )
                    return 1
                nested += 1
            stack.append((start, end))

    cats = sorted({ev["cat"] for ev in events})
    print(
        f"OK: {path}: {len(events)} events ({spans} spans, "
        f"{len(events) - spans} instants), {nested} properly nested, "
        f"categories: {', '.join(cats)}"
    )
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        raise SystemExit(2)
    raise SystemExit(validate(sys.argv[1]))
