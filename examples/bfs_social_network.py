#!/usr/bin/env python3
"""Degrees of separation in a social network via GraphBLAS BFS.

Builds a synthetic small-world friendship graph, runs the paper's Fig. 2b
BFS verbatim, and reports the distance distribution from one person —
the classic "six degrees" experiment, phrased as linear algebra.

Run:  python examples/bfs_social_network.py [n_people]
"""

import sys
from collections import Counter

import numpy as np

import repro as gb
from repro.algorithms import bfs


def friendship_graph(n: int, seed: int = 7) -> gb.Matrix:
    """A Watts-Strogatz-flavoured small world: a ring of close friends
    plus random long-range acquaintances, symmetric (friendship is
    mutual)."""
    rng = np.random.default_rng(seed)
    src, dst = [], []
    for i in range(n):  # everyone knows their 2 neighbours each side
        for d in (1, 2):
            src.append(i)
            dst.append((i + d) % n)
    n_long = n // 2  # long-range shortcuts
    a = rng.integers(0, n, size=n_long)
    b = rng.integers(0, n, size=n_long)
    keep = a != b
    src.extend(a[keep].tolist())
    dst.extend(b[keep].tolist())
    rows = np.array(src + dst)  # symmetrise
    cols = np.array(dst + src)
    return gb.Matrix(
        (np.ones(rows.size, dtype=bool), (rows, cols)), shape=(n, n), dtype=bool
    )


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    graph = friendship_graph(n)
    print(f"{n} people, {graph.nvals} friendship links")

    person = 0
    frontier = gb.Vector(([True], [person]), shape=(n,), dtype=bool)
    levels = gb.Vector(shape=(n,), dtype=np.int64)

    bfs(graph, frontier, levels)  # the paper's Fig. 2b, verbatim

    _, depths = levels.to_coo()
    histogram = Counter((depths - 1).tolist())  # level 1 = the person itself
    print(f"\ndegrees of separation from person {person}:")
    for degree in sorted(histogram):
        count = histogram[degree]
        bar = "#" * max(1, count * 50 // n)
        print(f"  {degree:2d} hops: {count:6d} people  {bar}")
    reached = levels.nvals
    print(f"\nreached {reached}/{n} people; max separation: {int(depths.max() - 1)} hops")
    if reached < n:
        print(f"{n - reached} people are in disconnected components")


if __name__ == "__main__":
    main()
