#!/usr/bin/env python3
"""User-defined operators and custom semirings (paper Sec. VIII,
implemented in this reproduction).

Two classic non-standard algebras:

1. **max-plus (critical path)** — built from predefined operators:
   the longest path through a DAG, as used in project scheduling;
2. **log-probability reliability** — a *user-defined* operator chain:
   most-reliable path where each edge carries an independent success
   probability, computed as (max, ×) over probabilities via a custom
   binary operator with both a Python and a C++ realization.

Run:  python examples/custom_semiring.py
"""


import repro as gb


def critical_path() -> None:
    """Longest (critical) path in a task DAG over the (max, +) semiring."""
    # task durations on edges: 0→1(4), 0→2(2), 1→3(5), 2→3(9), 3→4(2)
    rows = [0, 0, 1, 2, 3]
    cols = [1, 2, 3, 3, 4]
    durations = [4.0, 2.0, 5.0, 9.0, 2.0]
    dag = gb.Matrix((durations, (rows, cols)), shape=(5, 5))

    dist = gb.Vector(([0.0], [0]), shape=(5,))
    with gb.MaxPlusSemiring, gb.Accumulator("Max"):
        for _ in range(5):
            dist[None] += dag.T @ dist
    print("critical-path lengths from task 0:", dict(zip(*dist.to_coo())))
    print(f"project duration: {dist[4]:.0f} time units (expect 13)\n")


def reliable_path() -> None:
    """Most-reliable path: ⊗ multiplies edge success probabilities,
    ⊕ keeps the best probability — a (Max, ProbTimes) semiring where
    ProbTimes is a user-defined operator usable by every engine."""
    try:
        prob_times = gb.BinaryOp.define(
            "ProbTimes",
            lambda a, b: a * b,
            cxx="(({a}) * ({b}))",  # lets the cpp engine compile it too
        )
    except gb.UnknownOperator:
        prob_times = gb.BinaryOp("ProbTimes")  # already registered

    # network links with success probabilities
    rows = [0, 0, 1, 2, 1, 2]
    cols = [1, 2, 3, 3, 2, 1]
    probs = [0.9, 0.5, 0.6, 0.95, 0.8, 0.8]
    net = gb.Matrix((probs, (rows, cols)), shape=(4, 4))

    reach = gb.Vector(([1.0], [0]), shape=(4,))
    semiring = gb.Semiring(gb.Monoid("Max", 0.0), prob_times)
    with semiring, gb.Accumulator("Max"):
        for _ in range(4):
            reach[None] += net.T @ reach

    print("most-reliable delivery probability from node 0:")
    for node, p in zip(*reach.to_coo()):
        print(f"  node {node}: {p:.4f}")
    # direct 0→2 is 0.5, but 0→1→2 is 0.9*0.8 = 0.72: the semiring finds it
    print(f"best route to node 2 uses the relay: {reach[2]:.2f} (expect 0.72)")


def main() -> None:
    critical_path()
    reliable_path()


if __name__ == "__main__":
    main()
