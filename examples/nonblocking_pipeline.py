#!/usr/bin/env python3
"""Nonblocking execution: batching a statement pipeline into one flush.

GraphBLAS defines two execution modes.  In *blocking* mode (PyGB's
default) every ``C[...] = expr`` statement dispatches kernels before
returning.  Under ``with gb.nonblocking():`` statements enqueue instead,
and the whole pipeline executes at the first observation (or at context
exit) — which lets the runtime

* fuse producer/consumer statements across statement boundaries,
* drop dead stores (temporaries overwritten before being read),
* elide full-container copies into store aliasing,
* and (on the cpp engine) start background kernel compilation while the
  queue is still being built.

This example runs the same 4-statement pipeline in both modes, counting
engine dispatches to show the work the queue removed, then verifies the
results are bit-identical.

Run:  python examples/nonblocking_pipeline.py
"""

import numpy as np

import repro as gb
from repro.core.dispatch import CountingEngine, make_engine
from repro.core.nonblocking import reset_stats, set_mode, stats

N = 512


def pipeline(a, u, v, t, w):
    """normalize → combine → scale, through a temporary ``t`` that the
    final statement overwrites (making its first write a dead store)."""
    with gb.BinaryOp("Plus"):
        t[None] = u + v                                # producer
        w[None] = gb.apply(gb.UnaryOp("Times", 0.85), t)  # consumer: fusible
        t[None] = a @ w                                # kills the first t
        w[:] = t                                       # full copy: elidable
    return w


def run(mode: str) -> tuple[np.ndarray, int]:
    rng = np.random.default_rng(42)
    a = gb.Matrix(
        (rng.uniform(0, 1, 4 * N), (rng.integers(0, N, 4 * N), rng.integers(0, N, 4 * N))),
        shape=(N, N), dtype=float,
    )
    u = gb.Vector((rng.uniform(1, 2, N), np.arange(N)), shape=(N,))
    v = gb.Vector((rng.uniform(1, 2, N), np.arange(N)), shape=(N,))
    t = gb.Vector(shape=(N,), dtype=float)
    w = gb.Vector(shape=(N,), dtype=float)

    engine = CountingEngine(make_engine("pyjit"))
    with gb.use_engine(engine):
        if mode == "nonblocking":
            with gb.nonblocking():
                pipeline(a, u, v, t, w)
        else:
            pipeline(a, u, v, t, w)
        result = w.to_numpy()  # observation: flushes in nonblocking mode
    return result, engine.total


def main() -> None:
    # this example compares the modes explicitly, so neutralize any
    # PYGB_MODE=nonblocking default the environment may carry
    set_mode("blocking")

    blocking_result, blocking_calls = run("blocking")

    reset_stats()
    deferred_result, deferred_calls = run("nonblocking")
    queue = stats()

    print(f"blocking mode   : {blocking_calls} engine dispatches")
    print(f"nonblocking mode: {deferred_calls} engine dispatches")
    print(
        f"queue did: {queue['substitutions']} substitution(s), "
        f"{queue['dead_stores']} dead store(s) eliminated, "
        f"{queue['copy_elisions']} copy(ies) elided, "
        f"{queue['flushes']} flush(es)"
    )

    assert np.array_equal(blocking_result, deferred_result), "modes diverged!"
    assert deferred_calls < blocking_calls
    print("results are bit-identical across modes")


if __name__ == "__main__":
    main()
