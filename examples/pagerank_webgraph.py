#!/usr/bin/env python3
"""PageRank over a synthetic web graph (the paper's Fig. 7 algorithm).

Generates a preferential-attachment link graph — the degree distribution
web crawls exhibit — ranks the pages with the PyGB PageRank, checks the
invariants (ranks sum to 1), and prints the top pages next to their
in-degrees to show rank is *not* just degree counting.

Run:  python examples/pagerank_webgraph.py [n_pages]
"""

import sys

import numpy as np

import repro as gb
from repro.algorithms import pagerank
from repro.io.generators import scale_free


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1000
    web = scale_free(n, out_degree=5, seed=11)
    print(f"web graph: {n} pages, {web.nvals} links")

    ranks = gb.Vector(shape=(n,), dtype=float)
    pagerank(web, ranks, damping_factor=0.85, threshold=1e-10)

    r = ranks.to_numpy()
    print(f"rank mass: {r.sum():.6f} (should be 1.0)")

    # in-degree for comparison: a Plus-reduce of the transposed adjacency
    with gb.use_engine(gb.current_backend_engine()):
        indeg_vec = gb.Vector(shape=(n,), dtype=float)
        indeg_vec[None] = gb.reduce(gb.PlusMonoid, gb.Matrix(web.T, dtype=float))
    indeg = indeg_vec.to_numpy()

    top = np.argsort(r)[::-1][:10]
    print("\ntop pages by rank:")
    print(f"{'page':>6}  {'rank':>10}  {'in-degree':>9}")
    for p in top:
        print(f"{p:>6}  {r[p]:>10.6f}  {int(indeg[p]):>9}")

    # rank correlates with, but is not identical to, in-degree
    by_degree = set(np.argsort(indeg)[::-1][:10].tolist())
    overlap = len(by_degree & set(top.tolist()))
    print(f"\noverlap of top-10 by rank vs top-10 by in-degree: {overlap}/10")


if __name__ == "__main__":
    main()
