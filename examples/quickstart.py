#!/usr/bin/env python3
"""Quickstart: the PyGB DSL in five minutes.

Walks through the syntax of the paper's Table I — containers, deferred
expressions, semiring context managers, masks, accumulate — on a small
graph, printing what each step computes.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro as gb


def main() -> None:
    # ------------------------------------------------------------------
    # 1. containers (paper Fig. 3): sparse COO, dense rows, NumPy
    # ------------------------------------------------------------------
    edges_src = [0, 0, 1, 2, 3, 3]
    edges_dst = [1, 2, 3, 3, 0, 4]
    graph = gb.Matrix(
        (np.ones(len(edges_src)), (edges_src, edges_dst)), shape=(5, 5), dtype=float
    )
    print("adjacency matrix:", graph)

    dense = gb.Matrix([[1, 2], [3, 4]])
    print("dense-constructed:", dense, "element [1,0] =", dense[1, 0])

    v = gb.Vector(([1.0, 2.0], [0, 3]), shape=(5,))
    print("sparse vector:", v, "stored:", dict(zip(*v.to_coo())))

    # ------------------------------------------------------------------
    # 2. expressions are deferred; assignment into C[None] reuses C
    # ------------------------------------------------------------------
    frontier = gb.Vector(([1.0], [0]), shape=(5,))
    reached = gb.Vector(shape=(5,), dtype=float)
    expr = graph.T @ frontier          # nothing computed yet
    reached[None] = expr               # evaluated here, straight into `reached`
    print("one hop from vertex 0 reaches:", sorted(reached.to_coo()[0].tolist()))

    # ------------------------------------------------------------------
    # 3. semirings via context managers (paper Sec. IV)
    # ------------------------------------------------------------------
    with gb.MinPlusSemiring:               # tropical algebra: shortest paths
        hop = gb.Vector(graph.T @ frontier)
    print("min-plus one-hop distances:", dict(zip(*hop.to_coo())))

    with gb.LogicalSemiring:               # boolean algebra: reachability
        reach = gb.Vector(graph.T @ frontier)
    print("logical reachability:", sorted(reach.to_coo()[0].tolist()))

    # ------------------------------------------------------------------
    # 4. masks and the replace flag (Table I's C⟨M, z⟩)
    # ------------------------------------------------------------------
    mask = gb.Vector(([True, True], [1, 2]), shape=(5,), dtype=bool)
    out = gb.Vector(([9.0] * 5, list(range(5))), shape=(5,))
    out[mask] = graph.T @ frontier          # merge: untouched outside the mask
    print("masked merge:", dict(zip(*out.to_coo())))

    out2 = gb.Vector(([9.0] * 5, list(range(5))), shape=(5,))
    with gb.Replace:
        out2[mask] = graph.T @ frontier     # replace: cleared outside the mask
    print("masked replace:", dict(zip(*out2.to_coo())))

    out3 = gb.Vector(([9.0] * 5, list(range(5))), shape=(5,))
    out3[~mask] = graph.T @ frontier        # ~ complements the mask
    print("complemented mask:", dict(zip(*out3.to_coo())))

    # ------------------------------------------------------------------
    # 5. accumulate with += (the ⊙ of the math notation)
    # ------------------------------------------------------------------
    acc = gb.Vector(([10.0], [1]), shape=(5,))
    with gb.Accumulator("Min"):
        acc[None] += graph.T @ frontier     # Min-accumulate into existing values
    print("min-accumulated:", dict(zip(*acc.to_coo())))

    # ------------------------------------------------------------------
    # 6. reduce and apply
    # ------------------------------------------------------------------
    print("sum of all edge weights:", gb.reduce(graph))
    with gb.MinMonoid:
        print("smallest edge weight:", gb.reduce(graph))
    with gb.UnaryOp("Times", 10.0):
        scaled = gb.Matrix(gb.apply(graph))
    print("scaled matrix total:", gb.reduce(scaled))

    # ------------------------------------------------------------------
    # 7. under the hood: every op ran through the JIT cache (Fig. 9)
    # ------------------------------------------------------------------
    from repro.jit import cache_statistics

    stats = cache_statistics()
    print(
        f"JIT: {stats['compiles']} kernel modules compiled, "
        f"{stats['memory_hits']} memory hits, {stats['disk_hits']} disk hits"
    )


if __name__ == "__main__":
    main()
