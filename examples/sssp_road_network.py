#!/usr/bin/env python3
"""Shortest travel times on a road network via min-plus SSSP (Fig. 4a).

Models a city as a weighted grid (junctions + travel-time edges), runs
the paper's SSSP over the tropical semiring from a depot junction, and
prints an ASCII heat map of travel times — each cell shaded by how far it
is from the depot.

Run:  python examples/sssp_road_network.py [grid_side]
"""

import sys

import numpy as np

import repro as gb
from repro.algorithms import sssp_converging
from repro.io.generators import grid_graph

SHADES = " .:-=+*#%@"


def main() -> None:
    side = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    n = side * side
    roads = grid_graph(side, weighted=True, seed=3, dtype=float)
    print(f"road network: {n} junctions, {roads.nvals} directed road segments")

    depot = (side // 2) * side + side // 2  # city centre
    times = gb.Vector(([0.0], [depot]), shape=(n,), dtype=float)
    sssp_converging(roads, times)

    t = times.to_numpy(fill=np.inf).reshape(side, side)
    finite = t[np.isfinite(t)]
    print(
        f"reachable junctions: {finite.size}/{n}; "
        f"median travel time {np.median(finite):.1f}, max {finite.max():.1f}"
    )

    print("\ntravel-time heat map (depot at centre, darker = farther):")
    tmax = finite.max()
    for row in t:
        line = "".join(
            SHADES[min(int(v / tmax * (len(SHADES) - 1)), len(SHADES) - 1)]
            if np.isfinite(v)
            else "?"
            for v in row
        )
        print("  " + line)


if __name__ == "__main__":
    main()
