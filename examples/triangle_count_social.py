#!/usr/bin/env python3
"""Clustering analysis of a social graph via triangle counting (Fig. 5a).

Triangles measure how often friends-of-friends are themselves friends.
This example counts them with the paper's masked-mxm algorithm and
derives the global clustering coefficient, comparing a clustered
small-world graph against an Erdős–Rényi graph of the same size/density
(which should show far less clustering).

Run:  python examples/triangle_count_social.py [n_people]
"""

import sys

import numpy as np

import repro as gb
from repro.algorithms import lower_triangle, triangle_count
from repro.io.generators import erdos_renyi


def symmetrise(directed: gb.Matrix) -> gb.Matrix:
    r, c, _ = directed.to_coo()
    return gb.Matrix(
        (np.ones(2 * r.size), (np.concatenate([r, c]), np.concatenate([c, r]))),
        shape=directed.shape, dtype=np.int64,
    )


def small_world(n: int, seed: int = 5) -> gb.Matrix:
    """Ring-of-cliques: dense local friend groups with sparse bridges."""
    rng = np.random.default_rng(seed)
    clique = 8
    rows, cols = [], []
    for start in range(0, n - clique + 1, clique):
        members = range(start, start + clique)
        for i in members:
            for j in members:
                if i < j:
                    rows.append(i)
                    cols.append(j)
    bridges = rng.integers(0, n, size=(n // 4, 2))
    for a, b in bridges:
        if a != b:
            rows.append(min(a, b))
            cols.append(max(a, b))
    rows = np.array(rows)
    cols = np.array(cols)
    return gb.Matrix(
        (np.ones(2 * rows.size), (np.concatenate([rows, cols]), np.concatenate([cols, rows]))),
        shape=(n, n), dtype=np.int64,
    )


def wedges(adjacency: gb.Matrix) -> int:
    """Number of 2-paths: sum over vertices of C(degree, 2)."""
    deg_vec = gb.Vector(shape=(adjacency.nrows,), dtype=float)
    deg_vec[None] = gb.reduce(gb.PlusMonoid, gb.Matrix(adjacency, dtype=float))
    deg = deg_vec.to_numpy()
    return int((deg * (deg - 1) // 2).sum())


def analyse(name: str, adjacency: gb.Matrix) -> None:
    L = lower_triangle(adjacency)
    triangles = triangle_count(L)  # the paper's Fig. 5a
    w = wedges(adjacency)
    coeff = 3 * triangles / w if w else 0.0
    print(
        f"{name:>14}: {adjacency.nvals // 2:6d} friendships, "
        f"{triangles:7d} triangles, clustering coefficient {coeff:.4f}"
    )


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 800
    print(f"analysing two {n}-person graphs of similar density:\n")
    sw = small_world(n)
    analyse("small world", sw)
    er = symmetrise(erdos_renyi(n, nedges=sw.nvals // 2, seed=6))
    analyse("random (ER)", er)
    print(
        "\nthe small-world graph should show a dramatically higher clustering"
        " coefficient at the same edge budget."
    )


if __name__ == "__main__":
    main()
