"""PyGB — a GraphBLAS DSL in Python with dynamic compilation into C++.

Reproduction of Chamberlin, Zalewski, McMillan & Lumsdaine, *PyGB:
GraphBLAS DSL in Python with Dynamic Compilation into Efficient C++*
(IPDPSW 2018).

Typical usage (examples in this repo write ``import repro as gb``)::

    import repro as gb

    graph = gb.Matrix((vals, (rows, cols)), shape=(n, n))
    frontier = gb.Vector(([True], [src]), shape=(n,), dtype=bool)
    levels = gb.Vector(shape=(n,), dtype=int)

    depth = 0
    while frontier.nvals > 0:
        depth += 1
        levels[frontier][:] = depth
        with gb.LogicalSemiring, gb.Replace:
            frontier[~levels] = graph.T @ frontier

Three execution engines implement every operation (select with
``gb.use_engine(...)`` or ``$PYGB_BACKEND``):

* ``pyjit`` (default) — specialised Python modules generated, disk-cached
  and imported on demand (the paper's Fig. 9 pipeline);
* ``cpp`` — the same pipeline emitting C++ compiled by ``g++`` against a
  bundled mini-GBTL header and loaded via ``ctypes``;
* ``interpreted`` — per-call operator resolution, no code generation
  (the ablation baseline).
"""

from . import guard, io, obs, utilities
from .core import (
    Accumulator,
    BinaryOp,
    Matrix,
    Monoid,
    Replace,
    Semiring,
    UnaryOp,
    Vector,
    apply,
    current_backend_engine,
    kron,
    nonblocking,
    reduce,
    select,
    transpose,
    use_engine,
    wait,
)
from .core.predefined import (
    ArithmeticSemiring,
    LogicalAndMonoid,
    LogicalOrMonoid,
    LogicalSemiring,
    LogicalXorMonoid,
    MaxMonoid,
    MaxPlusSemiring,
    MaxSelect1stSemiring,
    MaxSelect2ndSemiring,
    MaxTimesSemiring,
    MinMonoid,
    MinPlusSemiring,
    MinSelect1stSemiring,
    MinSelect2ndSemiring,
    MinTimesSemiring,
    PlusMonoid,
    TimesMonoid,
)
from .exceptions import (
    BackendUnavailable,
    CompilationError,
    DimensionMismatch,
    DomainMismatch,
    EmptyObject,
    GraphBLASError,
    IndexOutOfBounds,
    InvalidValue,
    KernelExecutionError,
    NoOperatorInContext,
    OperationCancelled,
    OperationTimeout,
    UnknownOperator,
)
from .guard import deadline
from .obs import tracing
from .schedule import Scheduled
from .tiling import tiled

__version__ = "1.0.0"

__all__ = [
    # containers
    "Matrix",
    "Vector",
    # operators
    "UnaryOp",
    "BinaryOp",
    "Monoid",
    "Semiring",
    "Accumulator",
    "Replace",
    # operations
    "apply",
    "reduce",
    "transpose",
    "select",
    "kron",
    # engines
    "use_engine",
    "current_backend_engine",
    # execution mode (blocking is the default; see docs/architecture.md §12)
    "nonblocking",
    "wait",
    # traversal schedule override (push/pull direction; §13)
    "Scheduled",
    "tiled",
    # runtime guardrails (deadlines, cancellation; §15)
    "deadline",
    "guard",
    # observability
    "obs",
    "tracing",
    # predefined algebra
    "PlusMonoid",
    "TimesMonoid",
    "MinMonoid",
    "MaxMonoid",
    "LogicalOrMonoid",
    "LogicalAndMonoid",
    "LogicalXorMonoid",
    "ArithmeticSemiring",
    "LogicalSemiring",
    "MinPlusSemiring",
    "MaxPlusSemiring",
    "MinTimesSemiring",
    "MaxTimesSemiring",
    "MinSelect1stSemiring",
    "MinSelect2ndSemiring",
    "MaxSelect1stSemiring",
    "MaxSelect2ndSemiring",
    # modules
    "io",
    "utilities",
    # exceptions
    "GraphBLASError",
    "DimensionMismatch",
    "DomainMismatch",
    "InvalidValue",
    "IndexOutOfBounds",
    "EmptyObject",
    "NoOperatorInContext",
    "UnknownOperator",
    "CompilationError",
    "BackendUnavailable",
    "KernelExecutionError",
    "OperationTimeout",
    "OperationCancelled",
]
