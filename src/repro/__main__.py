"""Command-line interface: graph analytics on MatrixMarket files.

::

    python -m repro info graph.mtx             # shape, nnz, degree stats
    python -m repro bfs graph.mtx --source 0   # hop distances
    python -m repro sssp graph.mtx --source 0  # weighted distances
    python -m repro pagerank graph.mtx --top 10
    python -m repro triangles graph.mtx        # assumes symmetric input
    python -m repro components graph.mtx       # assumes symmetric input
    python -m repro engines                    # available execution engines
    python -m repro precompile                 # pre-build the C++ kernel cache
    python -m repro bake --out pack/           # bake a redistributable kernel pack
    python -m repro doctor                     # JIT runtime health report
    python -m repro stats                      # per-op profile from traced runs
    python -m repro serve --graphs m.json      # multi-tenant graph query server

Every command accepts ``--engine {interpreted,pyjit,cpp}``.
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


def _load(path: str, dtype=None):
    from .io.fastload import mmread_fast

    return mmread_fast(path, dtype=dtype)


def cmd_info(args) -> int:
    m = _load(args.file)
    out_deg = np.diff(m._store.indptr)
    in_deg = np.diff(m._store.transposed().indptr)
    print(f"file:       {args.file}")
    print(f"shape:      {m.nrows} x {m.ncols}")
    print(f"edges:      {m.nvals}")
    print(f"dtype:      {m.dtype}")
    if m.nvals:
        print(f"out-degree: min {out_deg.min()}  max {out_deg.max()}  mean {out_deg.mean():.2f}")
        print(f"in-degree:  min {in_deg.min()}  max {in_deg.max()}  mean {in_deg.mean():.2f}")
        sym = m._store.to_dict() == m._store.transposed().to_dict()
        print(f"symmetric:  {'yes' if sym else 'no'}")
    return 0


def cmd_bfs(args) -> int:
    from .algorithms import bfs_levels

    m = _load(args.file)
    levels = bfs_levels(m, args.source)
    idx, depths = levels.to_coo()
    print(f"reached {levels.nvals}/{m.nrows} vertices from source {args.source}")
    if levels.nvals:
        print(f"max depth: {int(depths.max()) - 1} hops")
    if args.verbose:
        for i, d in zip(idx.tolist(), depths.tolist()):
            print(f"  {i}: {d - 1}")
    return 0


def cmd_sssp(args) -> int:
    from .algorithms import sssp_distances

    m = _load(args.file, dtype=float)
    dist = sssp_distances(m, args.source)
    idx, d = dist.to_coo()
    print(f"reached {dist.nvals}/{m.nrows} vertices from source {args.source}")
    if dist.nvals:
        print(f"max distance: {d.max():.6g}")
    if args.verbose:
        for i, x in zip(idx.tolist(), d.tolist()):
            print(f"  {i}: {x:.6g}")
    return 0


def cmd_pagerank(args) -> int:
    from . import Vector
    from .algorithms import pagerank

    m = _load(args.file, dtype=float)
    ranks = Vector(shape=(m.nrows,), dtype=float)
    pagerank(m, ranks, damping_factor=args.damping, threshold=args.tol)
    r = ranks.to_numpy()
    order = np.argsort(r)[::-1][: args.top]
    print(f"top {len(order)} vertices by PageRank (damping {args.damping}):")
    for v in order:
        print(f"  {v}: {r[v]:.6f}")
    return 0


def cmd_triangles(args) -> int:
    from .algorithms import lower_triangle, triangle_count

    m = _load(args.file)
    t = triangle_count(lower_triangle(m))
    print(f"triangles: {t}")
    return 0


def cmd_components(args) -> int:
    from .algorithms import connected_components

    m = _load(args.file)
    labels = connected_components(m)
    vals = labels.to_coo()[1]
    uniq, counts = np.unique(vals, return_counts=True)
    print(f"components: {uniq.size}")
    order = np.argsort(counts)[::-1]
    for root, size in list(zip(uniq[order], counts[order]))[:10]:
        print(f"  component rooted at {root}: {size} vertices")
    return 0


def cmd_engines(args) -> int:
    from .jit.cppengine import compiler_available, find_cxx_compiler

    print("interpreted: available (no code generation)")
    print("pyjit:       available (default)")
    if compiler_available():
        print(f"cpp:         available (compiler: {find_cxx_compiler()})")
    else:
        print("cpp:         unavailable (no g++/c++ on PATH)")
    return 0


def cmd_precompile(args) -> int:
    from .jit.cppengine import (
        compiler_available,
        find_cxx_compiler,
        openmp_available,
    )
    from .jit.precompile import warm_cache

    if not compiler_available():
        print("no C++ toolchain (g++/c++) on PATH — nothing to precompile")
        return 1
    cxx = find_cxx_compiler()
    print(f"compiler: {cxx}")
    print(f"OpenMP:   {'yes' if openmp_available(cxx) else 'no (serial kernels)'}")
    report = warm_cache(
        parallel=False if args.serial else None,
        max_workers=args.jobs,
    )
    flavour = "parallel" if report["parallel"] else "serial"
    print(
        f"warmed {report['requested']} {flavour} kernels with "
        f"{report['jobs']} concurrent jobs in {report['seconds']:.2f}s: "
        f"{report['compiled']} compiled, {report['disk_hits']} already on disk, "
        f"{report['memory_hits']} in memory"
    )
    for key, err in report["failed"]:
        print(f"FAILED {key}: {err}", file=sys.stderr)
    if report["failed"]:
        print(
            f"error: {len(report['failed'])}/{report['requested']} kernel(s) "
            "failed to precompile (see above)",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_bake(args) -> int:
    from .jit.catalog import bake_catalog, validate_catalog
    from .jit.cppengine import compiler_available, find_cxx_compiler, openmp_available

    if compiler_available():
        cxx = find_cxx_compiler()
        print(f"compiler: {cxx}")
        print(f"OpenMP:   {'yes' if openmp_available(cxx) else 'no (serial kernels)'}")
    else:
        print("no C++ toolchain on PATH — baking the .py kernel flavour only")
    parallel = None
    if args.serial:
        parallel = False
    elif args.parallel:
        parallel = True
    report = bake_catalog(args.out, parallel=parallel, max_workers=args.jobs)
    flavour = "parallel" if report["parallel"] else "serial"
    print(
        f"baked {report['entries']} catalog entries "
        f"({report['cpp_entries']} compiled .so [{flavour}], "
        f"{report['py_entries']} generated .py) into {report['out']} with "
        f"{report['jobs']} concurrent jobs in {report['seconds']:.2f}s"
    )
    print(
        f"coverage: {report['requested']} specs requested — "
        f"{report['compiled']} built now, {report['disk_hits']} already in the pack, "
        f"{len(report['failed'])} failed"
    )
    if report["cpp_skipped"]:
        print(f"cpp flavour skipped: {report['cpp_skipped']}")
    for key, err in report["failed"]:
        print(f"FAILED {key}: {err}", file=sys.stderr)
    # round-trip: re-read the pack exactly the way a consumer process will
    check = validate_catalog(args.out)
    print(
        f"validation: {check['ok']}/{check['entries']} entries verify "
        f"({len(check['bad'])} bad)"
    )
    for key in check["bad"]:
        print(f"BAD CHECKSUM {key}", file=sys.stderr)
    if report["failed"] or check["bad"]:
        print(
            f"error: pack at {report['out']} is incomplete "
            "(failed builds or bad checksums above)",
            file=sys.stderr,
        )
        return 1
    print(f"use it with: PYGB_CATALOG={report['out']}")
    return 0


def cmd_serve(args) -> int:
    from . import service
    from .service import GraphRegistry, GraphServer, load_manifest
    from .service.admission import (
        batch_max,
        batch_window,
        request_timeout,
        serve_workers,
    )
    from .service.protocol import ALGORITHMS

    if args.catalog:
        os.environ["PYGB_CATALOG"] = args.catalog
    registry = GraphRegistry()
    if args.graphs:
        load_manifest(args.graphs, registry)
    if not len(registry):
        print(
            "warning: no graphs loaded — pass --graphs manifest.json "
            "(every 'run' request will fail with unknown-graph)",
            file=sys.stderr,
        )
    server = GraphServer(registry, host=args.host, port=args.port)
    timeout = request_timeout()
    print(f"pygb service on {server.host}:{server.port}")
    print(f"graphs:     {', '.join(registry.names()) or 'none'}")
    print(f"algorithms: {', '.join(sorted(ALGORITHMS))}")
    print(
        f"admission:  window {batch_window():g}s, batch max {batch_max()}, "
        f"{serve_workers()} workers, request timeout "
        f"{f'{timeout:g}s' if timeout else 'disabled'}"
    )
    print('try: echo \'{"op": "health"}\' | nc '
          f"{server.host} {server.port}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.close()
        counters = service.stats()
        print(
            f"served {counters['requests']} requests in "
            f"{counters['batches']} batches "
            f"({counters['batched_requests']} batched, "
            f"{counters['timeouts']} timeouts, {counters['errors']} errors)"
        )
    return 0


def cmd_doctor(args) -> int:
    from .jit.cache import CACHE_FORMAT_VERSION, default_cache
    from .jit.cppengine import (
        compile_timeout,
        find_cxx_compiler,
        openmp_available,
        toolchain_works,
    )
    from .jit.health import jit_retries, jit_strict
    from .testing.faults import FAULTS

    cache = default_cache()
    cxx = find_cxx_compiler()
    print("PyGB engine health")
    if cxx is None:
        print("compiler:        none — cpp engine unavailable, pyjit serves instead")
    elif not toolchain_works(cxx):
        print(
            f"compiler:        {cxx} — BROKEN (probe compile failed); "
            "cpp kernels will quarantine and fall back"
        )
    else:
        print(f"compiler:        {cxx} (OpenMP: {'yes' if openmp_available(cxx) else 'no'})")
    location = f"{cache.cache_dir}"
    if cache.relocated:
        location += "  (RELOCATED: configured cache dir was unwritable)"
    print(f"cache dir:       {location}")
    print(f"cache format:    v{CACHE_FORMAT_VERSION}")
    timeout = compile_timeout()
    print(
        f"strict mode:     {'on' if jit_strict() else 'off'}   "
        f"retries: {jit_retries()}   "
        f"compile timeout: {f'{timeout:g}s' if timeout else 'disabled'}"
    )
    from . import schedule as _schedule

    print(
        f"schedule:        {_schedule.schedule_mode()} (PYGB_SCHEDULE)   "
        f"autotuner: {'on' if _schedule.tuner_enabled() else 'off'} "
        f"(PYGB_SCHEDULE_TUNER)"
    )
    from . import tiling as _tiling

    tstats = _tiling.stats()
    print(
        f"tiling:          tiles={_tiling.tiles_mode()} (PYGB_TILES)   "
        f"workers={_tiling.workers_count()} (PYGB_WORKERS)"
    )
    print(
        f"tiled dispatch:  {tstats['partitioned_total']} partitioned, "
        f"{tstats['forwarded_total']} forwarded, "
        f"{tstats['tile_tasks']} tile tasks, "
        f"{tstats['tiles_created']} tiles created"
    )
    catalog_env = os.environ.get("PYGB_CATALOG")
    if cache.catalog is not None:
        print(
            f"catalog:         {cache.catalog.root} "
            f"({len(cache.catalog)} entries, "
            f"{'parallel' if cache.catalog.parallel else 'serial'} cpp flavour)"
        )
    elif cache.catalog_error:
        print(f"catalog:         REJECTED — {cache.catalog_error}")
    else:
        print(
            f"catalog:         none attached "
            f"(PYGB_CATALOG={catalog_env or 'unset'}; bake one with "
            "`python -m repro bake`)"
        )
    snap = cache.stats.snapshot()
    print(
        f"cache activity:  {snap['memory_hits']} memory hits, "
        f"{snap['catalog_hits']} catalog hits, "
        f"{snap['disk_hits']} disk hits, {snap['compiles']} compiles"
    )
    print(
        f"resilience:      {snap['jit_failures']} JIT failures, "
        f"{snap['fallbacks']} fallback dispatches, "
        f"{snap['integrity_rebuilds']} integrity rebuilds, "
        f"{snap['tmp_swept']} orphaned tmp files swept"
    )
    health = cache.health.snapshot()
    if health["specs"]:
        print(f"unhealthy specs ({len(health['specs'])}):")
        for row in health["specs"]:
            print(
                f"  [{row['engine']}] {row['key']}\n"
                f"      {row['failures']} failure(s), {row['state']}"
                + (f" — {row['last_error']}" if row["last_error"] else "")
            )
    else:
        print("unhealthy specs: none")
    faults = FAULTS.active()
    if faults:
        rendered = ", ".join(
            f"{kind} (rate {rule['rate']:g}, fired {rule['fired']}x)"
            for kind, rule in sorted(faults.items())
        )
        print(f"fault injection: {rendered}")
    from . import guard as _guard

    timeout = _guard.op_timeout()
    wtimeout = _guard.worker_timeout()
    print(
        f"guardrails:      op timeout "
        f"{f'{timeout:g}s' if timeout else 'disabled'} (PYGB_OP_TIMEOUT)   "
        f"worker timeout "
        f"{f'{wtimeout:g}s' if wtimeout else 'disabled'} (PYGB_WORKER_TIMEOUT)"
    )
    gstats = _guard.stats()
    print(
        f"guard activity:  {gstats['timeouts_total']} timeouts, "
        f"{gstats['cancels_total']} cancellations, "
        f"{gstats['degrades_total']} tiled-execution degrades, "
        f"{gstats['quarantines_total']} tiling quarantines"
    )
    ghealth = _guard.tiling_health().snapshot()
    if ghealth["specs"]:
        print(f"quarantined tiling ops ({len(ghealth['specs'])}):")
        for row in ghealth["specs"]:
            print(
                f"  {row['key']}: {row['failures']} failure(s), {row['state']}"
                + (f" — {row['last_error']}" if row["last_error"] else "")
            )
    else:
        print("quarantined tiling ops: none")
    from . import service as _service
    from .service.admission import (
        batch_max as _batch_max,
        batch_window as _batch_window,
        request_timeout as _request_timeout,
        serve_workers as _serve_workers,
    )

    rtimeout = _request_timeout()
    print(
        f"service:         batch window {_batch_window():g}s (PYGB_BATCH_WINDOW)   "
        f"batch max {_batch_max()} (PYGB_BATCH_MAX)   "
        f"workers {_serve_workers()} (PYGB_SERVE_WORKERS)   "
        f"request timeout "
        f"{f'{rtimeout:g}s' if rtimeout else 'disabled'} (PYGB_REQUEST_TIMEOUT)"
    )
    sstats = _service.stats()
    print(
        f"service activity: {sstats['requests']} requests, "
        f"{sstats['batches']} batches "
        f"({sstats['batched_requests']} batched, "
        f"{sstats['fused_runs']} fused runs over {sstats['fused_sources']} sources), "
        f"{sstats['timeouts']} timeouts, "
        f"{sstats['errors'] + sstats['protocol_errors']} errors, "
        f"{sstats['disconnects']} disconnects"
    )
    from .obs.stats import default_stats_path, load_stats

    trace_env = os.environ.get("PYGB_TRACE")
    stats_env = os.environ.get("PYGB_STATS")
    print(
        f"observability:   PYGB_TRACE={trace_env or 'unset'}   "
        f"PYGB_STATS={stats_env or 'unset'}"
    )
    stats_path = default_stats_path()
    data = load_stats(stats_path)
    if data and data.get("ops"):
        dispatches = sum(op["count"] for op in data["ops"].values())
        print(
            f"op stats:        {dispatches} traced dispatches across "
            f"{len(data['ops'])} op(s) in {stats_path} "
            "(run `python -m repro stats` for the profile)"
        )
    else:
        print(
            f"op stats:        none recorded (enable with PYGB_STATS=1 or "
            f"PYGB_TRACE=...; would be stored in {stats_path})"
        )
    return 0


def cmd_stats(args) -> int:
    from .jit.cache import default_cache
    from .obs.stats import default_stats_path, load_stats, render_stats

    path = args.file or default_stats_path()
    if args.reset:
        try:
            os.unlink(path)
            print(f"cleared {path}")
        except FileNotFoundError:
            print(f"nothing to clear at {path}")
        return 0
    data = load_stats(path)
    if not data or not data.get("ops"):
        print(f"no operation stats recorded at {path}")
        print(
            "run a workload with PYGB_STATS=1 (or PYGB_TRACE=chrome:/tmp/t.json) "
            "first, e.g.:\n"
            "    PYGB_STATS=1 python examples/pagerank_webgraph.py\n"
            "    python -m repro stats"
        )
        return 1
    print(f"stats file: {path}")
    print(render_stats(data, cache_stats=default_cache().stats.snapshot()))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--engine", choices=["interpreted", "pyjit", "cpp"], default=None,
        help="execution engine (default: $PYGB_BACKEND or pyjit)",
    )
    parser.add_argument(
        "--mode", choices=["blocking", "nonblocking"], default=None,
        help="execution mode (default: $PYGB_MODE or blocking)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="matrix/graph statistics")
    p.add_argument("file")
    p.set_defaults(fn=cmd_info)

    p = sub.add_parser("bfs", help="hop distances from a source vertex")
    p.add_argument("file")
    p.add_argument("--source", type=int, default=0)
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=cmd_bfs)

    p = sub.add_parser("sssp", help="weighted shortest distances")
    p.add_argument("file")
    p.add_argument("--source", type=int, default=0)
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=cmd_sssp)

    p = sub.add_parser("pagerank", help="rank vertices")
    p.add_argument("file")
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--damping", type=float, default=0.85)
    p.add_argument("--tol", type=float, default=1e-8)
    p.set_defaults(fn=cmd_pagerank)

    p = sub.add_parser("triangles", help="count triangles (symmetric input)")
    p.add_argument("file")
    p.set_defaults(fn=cmd_triangles)

    p = sub.add_parser("components", help="connected components (symmetric input)")
    p.add_argument("file")
    p.set_defaults(fn=cmd_components)

    p = sub.add_parser("engines", help="list available execution engines")
    p.set_defaults(fn=cmd_engines)

    p = sub.add_parser(
        "precompile",
        help="pre-build the algorithm kernel cache with concurrent g++ jobs",
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="concurrent compile jobs (default: $PYGB_COMPILE_JOBS or auto)",
    )
    p.add_argument(
        "--serial", action="store_true",
        help="warm serial kernels even when OpenMP is available",
    )
    p.set_defaults(fn=cmd_precompile)

    p = sub.add_parser(
        "bake",
        help="bake a redistributable AOT kernel pack (catalog.json + artifacts)",
    )
    p.add_argument(
        "--out", default="pygb_catalog",
        help="pack output directory (default: ./pygb_catalog)",
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="concurrent compile jobs (default: $PYGB_COMPILE_JOBS or auto)",
    )
    flavour = p.add_mutually_exclusive_group()
    flavour.add_argument(
        "--parallel", action="store_true",
        help="bake OpenMP cpp kernels even when the engine default is serial",
    )
    flavour.add_argument(
        "--serial", action="store_true",
        help="bake serial cpp kernels even when OpenMP is available",
    )
    p.set_defaults(fn=cmd_bake)

    p = sub.add_parser(
        "serve",
        help="serve preloaded graphs to concurrent clients over line-JSON TCP",
    )
    p.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    p.add_argument(
        "--port", type=int, default=8765,
        help="port to bind (default: 8765; 0 picks an ephemeral port)",
    )
    p.add_argument(
        "--graphs", default=None, metavar="MANIFEST",
        help="JSON manifest of graphs to preload (paths or generators)",
    )
    p.add_argument(
        "--catalog", default=None, metavar="PACK",
        help="AOT kernel pack to attach (sets PYGB_CATALOG)",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "doctor",
        help="engine-health report: toolchain, cache integrity, quarantined specs",
    )
    p.set_defaults(fn=cmd_doctor)

    p = sub.add_parser(
        "stats",
        help="aggregated per-op profile from PYGB_STATS/PYGB_TRACE runs",
    )
    p.add_argument(
        "--file", default=None,
        help="stats JSON to render (default: $PYGB_STATS path or <cache>/stats.json)",
    )
    p.add_argument(
        "--reset", action="store_true",
        help="delete the accumulated stats file instead of rendering it",
    )
    p.set_defaults(fn=cmd_stats)

    args = parser.parse_args(argv)
    if args.engine:
        from .core.context import use_engine

        use_engine(args.engine)
    if args.mode:
        from .core.nonblocking import set_mode

        set_mode(args.mode)
    try:
        return args.fn(args)
    finally:
        if args.mode == "nonblocking":
            from .core.nonblocking import wait

            wait()  # drain the lazy queue before the process reports done


if __name__ == "__main__":
    raise SystemExit(main())
