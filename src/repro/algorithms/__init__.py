"""The four algorithms of the paper's evaluation (Sec. VI), each in the
three execution versions benchmarked in Fig. 10:

1. **DSL** (``bfs``, ``sssp``, ``pagerank``, ``triangle_count``) — PyGB
   code with Python outer loops, transcribed from Figs. 2b/4a/5a/7;
2. **native** (``*_native``) — direct backend-kernel calls with no DSL
   dispatch, the stand-in for hand-written GBTL C++;
3. **compiled** (:mod:`repro.algorithms.compiled`) — the whole algorithm
   generated and JIT-compiled as a single C++ module, called once from
   Python (the paper's "version 2").

Beyond the paper's four, the suite carries the further GBTL
algorithm-collection members expressible in the DSL: connected
components, Luby's maximal independent set, k-truss (built on
``gb.select``), and Brandes betweenness centrality.
"""

from .bfs import bfs, bfs_levels, bfs_native
from .sssp import sssp, sssp_converging, sssp_distances, sssp_native
from .multisource import bfs_levels_multi, sssp_distances_multi
from .pagerank import pagerank, pagerank_native
from .triangle_count import lower_triangle, triangle_count, triangle_count_native
from .connected_components import component_count, connected_components
from .mis import maximal_independent_set
from .ktruss import edge_support, k_truss
from .betweenness import bc_from_source, betweenness_centrality

__all__ = [
    "bfs",
    "bfs_levels",
    "bfs_native",
    "sssp",
    "sssp_converging",
    "sssp_distances",
    "sssp_native",
    "bfs_levels_multi",
    "sssp_distances_multi",
    "pagerank",
    "pagerank_native",
    "triangle_count",
    "triangle_count_native",
    "lower_triangle",
    "connected_components",
    "component_count",
    "maximal_independent_set",
    "k_truss",
    "edge_support",
    "betweenness_centrality",
    "bc_from_source",
]
