"""Betweenness centrality (Brandes' algorithm) in GraphBLAS form — the
batched formulation of GBTL's/LAGraph's algorithm suites.

Forward phase: level-synchronous BFS from the source accumulating the
number of shortest paths ``σ`` through each vertex, remembering each
level's frontier pattern.  Backward phase: dependencies flow from the
deepest level back via ``mxv`` over (+, ×), scaled by ``σ`` ratios.

``betweenness_centrality`` sums the per-source dependencies over every
vertex (exact Brandes); pass ``sources`` for the sampled approximation.
"""

from __future__ import annotations

import numpy as np

from .. import core
from ..core.predefined import ArithmeticSemiring

__all__ = ["bc_from_source", "betweenness_centrality"]


def bc_from_source(graph: "core.Matrix", source: int) -> np.ndarray:
    """Brandes dependency scores δ_source(v) for one source, as a dense
    float array (the source itself scores 0)."""
    gb = core
    n = graph.nrows

    # ---- forward: path counts per level ------------------------------
    sigma = gb.Vector(([1.0], [source]), shape=(n,))  # σ so far
    frontier = gb.Vector(([1.0], [source]), shape=(n,))
    levels = []  # frontier patterns, one per BFS level
    while frontier.nvals > 0:
        levels.append(frontier.dup())
        with ArithmeticSemiring, gb.Replace:
            nxt = gb.Vector(shape=(n,), dtype=float)
            nxt[~sigma] = graph.T @ frontier  # unreached vertices only
        sigma[None] += gb.apply(nxt)  # σ accumulates path counts (Plus)
        frontier = nxt
    if len(levels) <= 1:
        return np.zeros(n)

    # ---- backward: dependency accumulation ---------------------------
    sigma_d = sigma.to_numpy()
    delta = np.zeros(n)
    for d in range(len(levels) - 1, 0, -1):
        # w(u) over level d: (1 + δ(u)) / σ(u)
        idx = levels[d].to_coo()[0]
        w = gb.Vector(((1.0 + delta[idx]) / sigma_d[idx], idx), shape=(n,))
        # pull to the previous level through the graph: t = A ⊕.⊗ w
        with ArithmeticSemiring, gb.Replace:
            t = gb.Vector(shape=(n,), dtype=float)
            t[levels[d - 1]] = graph @ w
        tidx, tvals = t.to_coo()
        delta[tidx] += tvals * sigma_d[tidx]
    delta[source] = 0.0
    return delta


def betweenness_centrality(
    graph: "core.Matrix", sources=None, normalized: bool = False
) -> np.ndarray:
    """Betweenness centrality of a **directed** graph: δ summed over all
    (or the given sample of) sources.  With ``normalized=True``, scores
    divide by (n-1)(n-2), matching ``networkx.betweenness_centrality``."""
    n = graph.nrows
    if sources is None:
        sources = range(n)
    scores = np.zeros(n)
    for s in sources:
        scores += bc_from_source(graph, int(s))
    if normalized and n > 2:
        scores /= (n - 1) * (n - 2)
    return scores
