"""Breadth-first search (paper Fig. 2).

``bfs`` is the PyGB listing of Fig. 2b essentially verbatim; ``bfs_native``
is the GBTL C++ of Fig. 2c transliterated to direct backend-kernel calls
(no DSL dispatch), the paper's "native" comparison point.
"""

from __future__ import annotations

import contextlib

import numpy as np

from .. import core
from .. import schedule as _schedule
from ..backend import kernels as K
from ..backend.kernels import OpDesc
from ..backend.smatrix import SparseMatrix
from ..backend.svector import SparseVector
from ..core.predefined import LogicalSemiring

__all__ = ["bfs", "bfs_native"]


def _scheduled(schedule):
    """Context for an algorithm's ``schedule=`` knob: a ``Scheduled``
    override when given, a no-op otherwise (environment default)."""
    if schedule is None:
        return contextlib.nullcontext()
    return _schedule.Scheduled(schedule)


def bfs(
    graph: "core.Matrix",
    frontier: "core.Vector",
    levels: "core.Vector",
    schedule: str | None = None,
) -> "core.Vector":
    """Level-synchronous BFS: on return ``levels[v]`` is 1 + the hop
    distance from the seed(s) set in *frontier*; unreached vertices hold
    no entry.  (Paper Fig. 2b.)

    This is the canonical direction-optimizing traversal (Beamer et al.,
    SC'12): each ``graph.T @ frontier`` step is masked by the unvisited
    set, so under the default ``auto`` schedule sparse frontiers run the
    push (scatter) kernel and dense frontiers switch to the pull (masked
    gather) kernel with its LogicalOr early exit.  *schedule* overrides
    ``$PYGB_SCHEDULE`` for this call (``"auto"``, ``"fixed"``,
    ``"push"``, ``"pull"``); results are bit-identical either way.
    """
    gb = core
    depth = 0
    with _scheduled(schedule):
        while frontier.nvals > 0:
            depth += 1
            levels[frontier][:] = depth
            with LogicalSemiring, gb.Replace:
                frontier[~levels] = graph.T @ frontier
    return levels


def bfs_levels(
    graph: "core.Matrix", source: int, schedule: str | None = None
) -> "core.Vector":
    """Convenience wrapper: run :func:`bfs` from a single source vertex."""
    n = graph.nrows
    frontier = core.Vector(([True], [source]), shape=(n,), dtype=bool)
    levels = core.Vector(shape=(n,), dtype=np.int64)
    return bfs(graph, frontier, levels, schedule=schedule)


def bfs_native(graph: SparseMatrix, source: int) -> SparseVector:
    """Fig. 2c transliterated: direct kernel calls, no DSL objects."""
    n = graph.nrows
    frontier = SparseVector.from_coo(n, [source], [True], np.bool_)
    levels = SparseVector.empty(n, np.int64)
    gt = graph.transposed()
    all_indices = np.arange(n, dtype=np.int64)
    depth = 0
    while frontier.nvals > 0:
        depth += 1
        levels = K.assign_vec_scalar(levels, depth, all_indices, OpDesc(mask=frontier))
        frontier = K.mxv(
            frontier,
            gt,
            frontier,
            "LogicalOr",
            "LogicalAnd",
            OpDesc(mask=levels, complement=True, replace=True),
        )
    return levels
