"""The compiled whole-algorithm execution versions (paper Sec. VI).

Each function here JIT-compiles the complete algorithm as a single C++
module (:mod:`~repro.jit.algorithm_codegen`), calls it once, and returns
``(result, elapsed_ns)`` where ``elapsed_ns`` was measured *inside* the
C++ code with ``std::chrono``:

* timing the Python call from outside gives the paper's **version 2**
  (Python calls a complete C++ algorithm — includes the single FFI
  crossing and buffer marshalling);
* the returned ``elapsed_ns`` is the paper's **version 3** (native C++
  timing, no Python anywhere on the measured path).

All functions require a C++ toolchain and raise
:class:`~repro.exceptions.BackendUnavailable` otherwise.
"""

from __future__ import annotations

import ctypes
from ctypes import POINTER, byref, c_double, c_int64, c_void_p

import numpy as np

from ..backend.smatrix import SparseMatrix
from ..backend.svector import SparseVector
from ..exceptions import BackendUnavailable
from ..jit.algorithm_codegen import generate_algorithm_source
from ..jit.cache import default_cache
from ..jit.cppengine import CppJitEngine, compiler_available
from ..jit.spec import KernelSpec

__all__ = [
    "bfs_compiled",
    "sssp_compiled",
    "pagerank_compiled",
    "triangle_count_compiled",
]

_I64 = np.dtype(np.int64)


class _AlgoRunner:
    """Shared compile/load plumbing for whole-algorithm modules."""

    def __init__(self):
        if not compiler_available():
            raise BackendUnavailable(
                "compiled algorithm versions need a C++ toolchain (g++)"
            )
        self._engine = CppJitEngine()  # reuse its compiler + cache dir
        self._libs: dict[str, ctypes.CDLL] = {}

    def lib(self, func: str, vtype, scalar_out: bool = False) -> ctypes.CDLL:
        params = {"vtype": KernelSpec.dt(vtype)}
        if self._engine.parallel_enabled():
            # whole-algorithm modules inline the mini-GBTL kernels, so
            # building with -fopenmp parallelises their inner loops too
            params["par"] = True
        spec = KernelSpec.make(func, **params)
        artifact = default_cache().get_module(
            spec,
            generate_algorithm_source,
            suffix=".cpp",
            compiler=self._engine.compiler_for(spec),
        )
        key = str(artifact)
        lib = self._libs.get(key)
        if lib is None:
            lib = ctypes.CDLL(key)
            lib.pygb_run.restype = None if scalar_out else c_int64
            self._libs[key] = lib
        return lib


_runner: _AlgoRunner | None = None


def _get_runner() -> _AlgoRunner:
    global _runner
    if _runner is None:
        _runner = _AlgoRunner()
    return _runner


def _csr_ptrs(m: SparseMatrix):
    indptr = np.ascontiguousarray(m.indptr, _I64)
    indices = np.ascontiguousarray(m.indices, _I64)
    values = np.ascontiguousarray(m.values)
    if values.dtype == np.bool_:
        values = values.view(np.uint8)
    return indptr, indices, values


def _ptr(a: np.ndarray):
    return None if a.size == 0 else a.ctypes.data_as(c_void_p)


def _take_vec(lib, nnz, out_idx, out_vals, size, dtype) -> SparseVector:
    dt = np.dtype(dtype)
    cdt = np.dtype(np.uint8) if dt == np.bool_ else dt
    if nnz > 0:
        idx = np.ctypeslib.as_array(out_idx, shape=(nnz,)).copy()
        vals = np.frombuffer(
            ctypes.string_at(out_vals, nnz * cdt.itemsize), dtype=cdt
        ).copy()
        if dt == np.bool_:
            vals = vals.view(np.bool_)
    else:
        idx = np.empty(0, _I64)
        vals = np.empty(0, dt)
    lib.pygb_free(out_idx)
    lib.pygb_free(out_vals)
    return SparseVector.from_sorted(size, idx, vals)


def bfs_compiled(graph: SparseMatrix, source: int) -> tuple[SparseVector, int]:
    """BFS as one compiled C++ module.  Takes the backend store of the
    graph; returns ``(levels, elapsed_ns)``."""
    gt = graph.transposed()
    lib = _get_runner().lib("algo_bfs", gt.dtype)
    indptr, indices, values = _csr_ptrs(gt)
    out_idx = POINTER(c_int64)()
    out_vals = c_void_p()
    elapsed = c_int64(0)
    nnz = lib.pygb_run(
        c_int64(gt.nrows), _ptr(indptr), _ptr(indices), _ptr(values),
        c_int64(source), byref(out_idx), byref(out_vals), byref(elapsed),
    )
    levels = _take_vec(lib, nnz, out_idx, out_vals, gt.nrows, np.int64)
    return levels, elapsed.value


def sssp_compiled(graph: SparseMatrix, source: int) -> tuple[SparseVector, int]:
    """SSSP (converging variant) as one compiled C++ module."""
    gt = graph.transposed()
    lib = _get_runner().lib("algo_sssp", gt.dtype)
    indptr, indices, values = _csr_ptrs(gt)
    out_idx = POINTER(c_int64)()
    out_vals = c_void_p()
    elapsed = c_int64(0)
    nnz = lib.pygb_run(
        c_int64(gt.nrows), _ptr(indptr), _ptr(indices), _ptr(values),
        c_int64(source), byref(out_idx), byref(out_vals), byref(elapsed),
    )
    path = _take_vec(lib, nnz, out_idx, out_vals, gt.nrows, gt.dtype)
    return path, elapsed.value


def pagerank_compiled(
    graph: SparseMatrix,
    damping_factor: float = 0.85,
    threshold: float = 1.0e-5,
    max_iters: int = 100000,
) -> tuple[SparseVector, int]:
    """PageRank as one compiled C++ module (graph values are cast to the
    rank type, float64, before the call)."""
    g = graph.astype(np.float64)
    lib = _get_runner().lib("algo_pagerank", np.float64)
    indptr, indices, values = _csr_ptrs(g)
    out_idx = POINTER(c_int64)()
    out_vals = c_void_p()
    elapsed = c_int64(0)
    nnz = lib.pygb_run(
        c_int64(g.nrows), _ptr(indptr), _ptr(indices), _ptr(values),
        c_double(damping_factor), c_double(threshold), c_int64(max_iters),
        byref(out_idx), byref(out_vals), byref(elapsed),
    )
    ranks = _take_vec(lib, nnz, out_idx, out_vals, g.nrows, np.float64)
    return ranks, elapsed.value


def triangle_count_compiled(L: SparseMatrix) -> tuple[int, int]:
    """Triangle counting as one compiled C++ module; returns
    ``(triangles, elapsed_ns)``."""
    lib = _get_runner().lib("algo_triangle_count", L.dtype, scalar_out=True)
    lt = L.transposed()
    l_indptr, l_indices, l_values = _csr_ptrs(L)
    t_indptr, t_indices, t_values = _csr_ptrs(lt)
    dt = np.dtype(L.dtype)
    out = np.zeros(1, dtype=np.uint8 if dt == np.bool_ else dt)
    elapsed = c_int64(0)
    lib.pygb_run(
        c_int64(L.nrows), _ptr(l_indptr), _ptr(l_indices), _ptr(l_values),
        _ptr(t_indptr), _ptr(t_indices), _ptr(t_values),
        _ptr(out.view(np.uint8) if dt == np.bool_ else out), byref(elapsed),
    )
    count = int(out.view(np.bool_)[0]) if dt == np.bool_ else int(out[0])
    return count, elapsed.value
