"""Connected components by min-label propagation.

Every vertex starts labelled with its own index; each round replaces a
vertex's label with the minimum label in its closed neighbourhood, via
``mxv`` over the (Min, Second) semiring with a Min accumulator.  Labels
stabilise after O(diameter) rounds, at which point every component is
labelled by its smallest member — the classic GraphBLAS formulation (a
simplification of FastSV, which GBTL's algorithm suite also ships).
"""

from __future__ import annotations

import numpy as np

from .. import core
from ..core.operators import Accumulator
from ..core.predefined import MinSelect2ndSemiring

__all__ = ["connected_components", "component_count"]


def connected_components(adjacency: "core.Matrix", max_iters: int | None = None) -> "core.Vector":
    """Component labels for an **undirected** (symmetric) adjacency
    matrix: ``labels[v]`` is the smallest vertex id in v's component."""
    gb = core
    n = adjacency.nrows
    labels = gb.Vector((np.arange(n, dtype=np.int64), np.arange(n)), shape=(n,))
    if max_iters is None:
        max_iters = n
    with MinSelect2ndSemiring, Accumulator("Min"):
        for _ in range(max_iters):
            before = labels.dup()
            # labels(i) = min(labels(i), min_{j∈N(i)} labels(j))
            labels[None] += adjacency @ labels
            if labels.isequal(before):
                break
    return labels


def component_count(adjacency: "core.Matrix") -> int:
    """Number of connected components of a symmetric adjacency matrix."""
    labels = connected_components(adjacency)
    return int(np.unique(labels.to_coo()[1]).size)
