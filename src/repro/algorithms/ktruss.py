"""k-truss decomposition — a GBTL algorithm-suite member built on the
``select`` operation added in this reproduction.

The k-truss of an undirected graph is the maximal subgraph in which
every edge participates in at least k−2 triangles.  The GraphBLAS
formulation iterates

    S⟨A⟩ = A ⊕.⊗ A          (per-edge triangle support, masked to edges)
    A    = select(S ≥ k−2)   (drop weak edges)

until the edge set stops shrinking.
"""

from __future__ import annotations

import numpy as np

from .. import core
from ..core.functions import select
from ..core.predefined import ArithmeticSemiring

__all__ = ["k_truss", "edge_support"]


def edge_support(adjacency: "core.Matrix") -> "core.Matrix":
    """Triangles through each edge: ``S⟨A⟩ = A ⊕.⊗ A`` over (+, ×) for a
    Boolean/0-1 symmetric adjacency matrix."""
    gb = core
    S = gb.Matrix(shape=adjacency.shape, dtype=np.int64)
    with ArithmeticSemiring, gb.Replace:
        S[adjacency] = adjacency @ adjacency
    return S


def k_truss(adjacency: "core.Matrix", k: int) -> "core.Matrix":
    """The k-truss subgraph of a symmetric 0/1 adjacency matrix, as a 0/1
    adjacency matrix of the surviving edges (k >= 2)."""
    if k < 2:
        raise ValueError(f"k-truss needs k >= 2, got {k}")
    gb = core
    A = gb.Matrix(adjacency, dtype=np.int64)
    while True:
        nvals_before = A.nvals
        S = edge_support(A)
        kept = gb.Matrix(select("ValueGE", S, k - 2))
        # back to a 0/1 pattern for the next support round
        rows, cols, _vals = kept.to_coo()
        A = gb.Matrix(
            (np.ones(rows.size, dtype=np.int64), (rows, cols)), shape=kept.shape
        )
        if A.nvals == nvals_before:
            return A
        if A.nvals == 0:
            return A
