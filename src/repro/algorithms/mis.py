"""Maximal independent set via Luby's randomised algorithm — a GBTL
algorithm-suite member, expressed in PyGB.

Each round, every remaining candidate draws a random score; candidates
whose score beats every remaining neighbour's score join the set, and
they and their neighbours leave the candidate pool.  All the set algebra
is masks and semiring products:

* neighbour maxima: ``A ⊕.⊗ score`` over (Max, Second), masked to
  candidates;
* winners: ``score > neighbour_max`` eWiseMult, plus isolated candidates
  (no remaining neighbour at all);
* pool shrink: complement-masked replace assignments.
"""

from __future__ import annotations

import numpy as np

from .. import core
from ..backend.svector import SparseVector
from ..core.operators import Semiring
from ..core.predefined import LogicalSemiring, MaxMonoid

__all__ = ["maximal_independent_set"]


def maximal_independent_set(adjacency: "core.Matrix", seed: int = 0) -> "core.Vector":
    """MIS of an undirected (symmetric) adjacency matrix: a Boolean
    vector with an entry per member.  No two members are adjacent and
    every non-member has a member neighbour (verified by the tests)."""
    gb = core
    n = adjacency.nrows
    rng = np.random.default_rng(seed)

    iset = gb.Vector(shape=(n,), dtype=bool)
    candidates = gb.Vector(
        (np.ones(n, dtype=bool), np.arange(n)), shape=(n,), dtype=bool
    )

    while candidates.nvals > 0:
        cand_idx = candidates.to_coo()[0]
        # strictly positive scores so a winner's score beats "no neighbour"
        scores = gb.Vector(
            (rng.uniform(1.0, 2.0, cand_idx.size), cand_idx), shape=(n,)
        )
        # max score among my *candidate* neighbours
        with Semiring(MaxMonoid, "Second"), gb.Replace:
            nbr_max = gb.Vector(shape=(n,), dtype=float)
            nbr_max[candidates] = adjacency @ scores
        # winners: candidates whose score beats every neighbour (vertices
        # with no surviving neighbour have no nbr_max entry and win too)
        nbr_dense = nbr_max.to_numpy()
        score_dense = scores.to_numpy()
        winner_idx = cand_idx[score_dense[cand_idx] > nbr_dense[cand_idx]]
        if winner_idx.size == 0:  # extremely unlikely tie stalemate
            winner_idx = cand_idx[:1]
        winners = gb.Vector(
            (np.ones(winner_idx.size, dtype=bool), winner_idx), shape=(n,), dtype=bool
        )
        iset[winners][:] = True
        # neighbours of winners leave the pool with them
        with LogicalSemiring, gb.Replace:
            touched = gb.Vector(shape=(n,), dtype=bool)
            touched[candidates] = adjacency @ winners
        remove = touched.to_coo()[0]
        drop = np.union1d(remove, winner_idx)
        keep = np.setdiff1d(cand_idx, drop)
        candidates._store = SparseVector.from_coo(
            n, keep, np.ones(keep.size, dtype=bool), np.bool_
        )
    return iset
