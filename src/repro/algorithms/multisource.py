"""Fused multi-source traversals: k sources as k rows of a Matrix.

The service layer's admission controller batches compatible requests
(same graph, same algorithm) into **one** fused run: k single-vector
traversals become one matrix-level traversal whose frontier is a k×n
Matrix with one row per source.  This is the classic multi-source
BFS/Bellman-Ford formulation (GraphBLAST batches traversals the same
way; graphblas-algorithms' ``bellman_ford_path_lengths`` builds the
k-row ``Matrix`` from its source list).

Exactness: row ``s`` of the fused iteration state only ever combines
with row ``s`` of itself — ``(F @ A)[s, j]`` reduces over
``F[s, i] ⊗ A[i, j]``, exactly the terms ``(fₛ @ A)[j]`` of the solo
run, applied in the same ascending-``i`` kernel order.  Masks and
accumulators act elementwise per row.  So the fused run performs the
*same* floating-point operations in the *same* order per source, and
every row is bit-identical to its solo counterpart (asserted by
``tests/test_service.py`` and the replay harness).
"""

from __future__ import annotations

import numpy as np

from .. import core
from ..core.operators import Accumulator
from ..core.predefined import LogicalSemiring, MinPlusSemiring
from ..exceptions import InvalidValue
from .bfs import _scheduled

__all__ = ["bfs_levels_multi", "sssp_distances_multi", "matrix_row"]


def _check_sources(sources, n: int) -> list[int]:
    srcs = [int(s) for s in sources]
    if not srcs:
        raise InvalidValue("multi-source traversal needs at least one source")
    for s in srcs:
        if not 0 <= s < n:
            raise InvalidValue(f"source {s} out of range for {n} vertices")
    return srcs


def bfs_levels_multi(
    graph: "core.Matrix", sources, schedule: str | None = None
) -> "core.Matrix":
    """Level-synchronous BFS from every vertex in *sources* at once.

    Returns a ``k×n`` Matrix whose row ``s`` holds 1 + the hop distance
    from ``sources[s]`` (no entry = unreached) — row ``s`` is
    bit-identical to ``bfs_levels(graph, sources[s])``.

    The single-source loop of :func:`~repro.algorithms.bfs.bfs` lifts
    verbatim: the frontier vector becomes a k×n Boolean matrix, the
    masked ``graph.T @ frontier`` step becomes ``frontier @ graph``
    under the same LogicalSemiring/complement-mask/replace descriptor
    (``(F @ A)[s, j] = ⋁ᵢ F[s, i] ∧ A[i, j]`` — row-wise exactly the
    pull of the transposed single-source product).
    """
    gb = core
    n = graph.nrows
    srcs = _check_sources(sources, n)
    k = len(srcs)
    frontier = gb.Matrix(
        ([True] * k, (list(range(k)), srcs)), shape=(k, n), dtype=bool
    )
    levels = gb.Matrix(shape=(k, n), dtype=np.int64)
    depth = 0
    with _scheduled(schedule):
        while frontier.nvals > 0:
            depth += 1
            levels[frontier][:, :] = depth
            with LogicalSemiring, gb.Replace:
                frontier[~levels] = frontier @ graph
    return levels


def sssp_distances_multi(
    graph: "core.Matrix", sources, schedule: str | None = None
) -> "core.Matrix":
    """Bellman-Ford relaxation from every vertex in *sources* at once.

    Returns a ``k×n`` Matrix whose row ``s`` holds the shortest weighted
    distance from ``sources[s]`` (no entry = unreachable) — bit-identical
    to ``sssp_distances(graph, sources[s])``.

    The relaxation ``path[None] += graph.T @ path`` of
    :func:`~repro.algorithms.sssp.sssp` becomes
    ``dist[None] += dist @ graph`` over the same (min, +) semiring with
    the same Min accumulator; the loop is bounded by ``|V|`` rounds and
    exits early at the shared fixed point (every row converges no later
    than the slowest source, and min-plus relaxation past a row's own
    fixed point cannot change it — identical per-row arithmetic either
    way).
    """
    gb = core
    n = graph.nrows
    srcs = _check_sources(sources, n)
    k = len(srcs)
    dist = gb.Matrix(
        ([0.0] * k, (list(range(k)), srcs)), shape=(k, n), dtype=graph.dtype
    )
    with _scheduled(schedule), MinPlusSemiring, Accumulator("Min"):
        for _ in range(n):
            before_nvals = dist.nvals
            before = dist.dup()
            dist[None] += dist @ graph
            if dist.nvals == before_nvals and dist.isequal(before):
                break
    return dist


def matrix_row(result: "core.Matrix", row: int) -> tuple[np.ndarray, np.ndarray]:
    """``(indices, values)`` of one row of a fused k×n result — the
    demultiplexing step that hands each batched client its own answer."""
    rows, cols, vals = result.to_coo()
    pick = rows == row
    return cols[pick], vals[pick]
