"""PageRank (paper Figs. 7 and 8).

``pagerank`` follows the paper's Fig. 7 listing: the graph is copied into
a row-normalised float matrix, pre-scaled by the damping factor; each
power iteration performs seven GraphBLAS operations (vxm with a Second
accumulator, a bound-Plus apply for teleportation, a Minus eWiseAdd and a
Times eWiseMult for the squared error, a Plus-reduce, and the rank copy).

Note on fidelity: Fig. 7 contains two obvious listing artifacts (an
uninitialised ``i`` and a trailing dead-code block after ``return``); we
keep the loop structure and per-iteration operation sequence exactly and
drop the artifacts, like the GBTL version in Fig. 8 does.  The squared
error is expressed as ``reduce(delta * delta)`` so the planner can fuse
the eWiseMult with the reduction into one kernel; with ``PYGB_FUSION=0``
it still runs as the listing's separate eWiseMult + reduce pair.
"""

from __future__ import annotations

import numpy as np

from .. import core, utilities
from ..backend import kernels as K
from ..backend.kernels import OpDesc
from ..backend.smatrix import SparseMatrix
from ..backend.svector import SparseVector
from ..core.operators import Accumulator, BinaryOp, Semiring, UnaryOp
from ..core.predefined import PlusMonoid

__all__ = ["pagerank", "pagerank_native"]


def pagerank(
    graph: "core.Matrix",
    page_rank: "core.Vector",
    damping_factor: float = 0.85,
    threshold: float = 1.0e-5,
    max_iters: int = 100000,
    schedule: str | None = None,
) -> "core.Vector":
    """Paper Fig. 7: writes ranks into *page_rank* and returns it.

    The rank vector is dense from the first iteration, so the power
    iteration's ``page_rank @ m`` stays on the scatter/dense kernels
    (*schedule* — overriding ``$PYGB_SCHEDULE`` — mostly matters here as
    a regression lever: every mode must produce bit-identical ranks).
    """
    from .bfs import _scheduled

    gb = core
    rows, _cols = graph.shape

    m = gb.Matrix(shape=graph.shape, dtype=float)
    m[None] = graph
    utilities.normalize_rows(m)
    with UnaryOp("Times", damping_factor):
        m[None] = gb.apply(m)

    page_rank[:] = 1.0 / rows
    new_rank = gb.Vector(shape=page_rank.shape, dtype=m.dtype)
    delta = gb.Vector(shape=page_rank.shape, dtype=m.dtype)

    with _scheduled(schedule):
        for _ in range(max_iters):
            with Accumulator("Second"), Semiring(PlusMonoid, "Times"):
                new_rank[None] += page_rank @ m

            with UnaryOp("Plus", (1.0 - damping_factor) / rows):
                new_rank[None] = gb.apply(new_rank)

            with BinaryOp("Minus"):
                delta[None] = page_rank + new_rank

            squared_error = gb.reduce(delta * delta)

            page_rank[:] = new_rank
            if (squared_error / rows) < threshold:
                break
    return page_rank


def pagerank_native(
    graph: SparseMatrix,
    damping_factor: float = 0.85,
    threshold: float = 1.0e-5,
    max_iters: int = 100000,
) -> SparseVector:
    """Fig. 8 transliterated: direct kernel calls, no DSL objects."""
    n = graph.nrows
    nodesc = OpDesc()

    # m = normalize_rows(float(graph)) * damping_factor
    vals = graph.values.astype(np.float64, copy=True)
    row_ids = np.repeat(np.arange(n, dtype=np.int64), graph.row_lengths())
    sums = np.zeros(n, dtype=np.float64)
    np.add.at(sums, row_ids, vals)
    nz = sums[row_ids] != 0
    vals[nz] = vals[nz] / sums[row_ids][nz]
    m = SparseMatrix(n, graph.ncols, graph.indptr, graph.indices, vals)
    m = K.apply_mat(m, m, ("bind", "Times", damping_factor, "second"), nodesc)

    page_rank = SparseVector.from_dense(np.full(n, 1.0 / n))
    new_rank = SparseVector.empty(n, np.float64)
    delta = SparseVector.empty(n, np.float64)
    teleport = ("bind", "Plus", (1.0 - damping_factor) / n, "second")

    for _ in range(max_iters):
        new_rank = K.vxm(new_rank, page_rank, m, "Plus", "Times", OpDesc(accum="Second"))
        new_rank = K.apply_vec(new_rank, new_rank, teleport, nodesc)
        delta = K.ewise_add_vec(delta, page_rank, new_rank, "Minus", nodesc)
        delta = K.ewise_mult_vec(delta, delta, delta, "Times", nodesc)
        squared_error = float(K.reduce_vec_scalar(delta, "Plus"))
        page_rank = K.assign_vec(
            page_rank, new_rank, np.arange(n, dtype=np.int64), nodesc
        )
        if squared_error / n < threshold:
            break
    return page_rank
