"""Single-source shortest path over the (min, +) semiring (paper Fig. 4).

Bellman-Ford-style relaxation: ``|V|`` rounds of
``path[None] += graph.T @ path`` under ``MinPlusSemiring`` with a ``Min``
accumulator (which, as the paper notes, may be omitted — the accumulate
falls back to the semiring's MinMonoid).
"""

from __future__ import annotations

import numpy as np

from .. import core
from ..backend import kernels as K
from ..backend.kernels import OpDesc
from ..backend.smatrix import SparseMatrix
from ..backend.svector import SparseVector
from ..core.operators import Accumulator
from ..core.predefined import MinPlusSemiring

__all__ = ["sssp", "sssp_distances", "sssp_native"]


def sssp(
    graph: "core.Matrix", path: "core.Vector", schedule: str | None = None
) -> "core.Vector":
    """Paper Fig. 4a verbatim: *path* holds 0 at the source(s) on entry
    and the shortest distances on return (no entry = unreachable).

    The relaxation ``graph.T @ path`` is unmasked, so the schedule layer
    chooses between the push (scatter over the settled frontier) and
    dense kernels; *schedule* overrides ``$PYGB_SCHEDULE`` for this call.
    Early rounds with few settled vertices favour push, late rounds the
    dense sweep — results are bit-identical in every mode.
    """
    from .bfs import _scheduled

    with _scheduled(schedule), MinPlusSemiring, Accumulator("Min"):
        for _ in range(graph.shape[0]):
            path[None] += graph.T @ path
    return path


def sssp_converging(
    graph: "core.Matrix", path: "core.Vector", schedule: str | None = None
) -> "core.Vector":
    """Fig. 4a plus a fixed-point test after each relaxation round.

    The paper's listing always runs ``|V|`` rounds; on the Erdős–Rényi
    inputs of Fig. 10 the distances converge after ~diameter rounds, so
    the benchmarks use this variant *in all three execution versions* to
    keep the measured work identical (see EXPERIMENTS.md).
    """
    from .bfs import _scheduled

    n = graph.shape[0]
    with _scheduled(schedule), MinPlusSemiring, Accumulator("Min"):
        for _ in range(n):
            before_nvals = path.nvals
            before = path.dup()
            path[None] += graph.T @ path
            if path.nvals == before_nvals and path.isequal(before):
                break
    return path


def sssp_distances(
    graph: "core.Matrix", source: int, schedule: str | None = None
) -> "core.Vector":
    """Convenience wrapper: distances from a single source vertex."""
    path = core.Vector(([0.0], [source]), shape=(graph.nrows,), dtype=graph.dtype)
    return sssp(graph, path, schedule=schedule)


def sssp_native(graph: SparseMatrix, source: int) -> SparseVector:
    """Fig. 4b transliterated: direct kernel calls, no DSL objects.

    Stops early once the distance vector reaches a fixed point — the same
    optimisation a hand-tuned GBTL implementation would apply, and the
    loop is bounded by ``|V|`` as in the paper.
    """
    n = graph.nrows
    path = SparseVector.from_coo(n, [source], [0], graph.dtype)
    gt = graph.transposed()
    for _ in range(n):
        new_path = K.mxv(path, gt, path, "Min", "Plus", OpDesc(accum="Min"))
        if (
            new_path.nvals == path.nvals
            and np.array_equal(new_path.indices, path.indices)
            and np.array_equal(new_path.values, path.values)
        ):
            break
        path = new_path
    return path
