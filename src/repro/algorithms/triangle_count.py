"""Triangle counting (paper Fig. 5): ``B⟨L⟩ = L ⊕.⊗ Lᵀ`` over the
arithmetic semiring, then a Plus-reduce of B — where L is the (strictly)
lower-triangular half of the undirected adjacency matrix."""

from __future__ import annotations


from .. import core
from ..backend import kernels as K
from ..backend.kernels import OpDesc
from ..backend.smatrix import SparseMatrix
from ..core.predefined import ArithmeticSemiring

__all__ = ["triangle_count", "triangle_count_native", "lower_triangle"]


def lower_triangle(adjacency: "core.Matrix") -> "core.Matrix":
    """Strictly lower-triangular part of an adjacency Matrix (the ``L``
    the algorithm consumes)."""
    rows, cols, vals = adjacency.to_coo()
    keep = rows > cols
    return core.Matrix(
        (vals[keep], (rows[keep], cols[keep])),
        shape=adjacency.shape,
        dtype=adjacency.dtype,
    )


def triangle_count(L: "core.Matrix") -> int:
    """Paper Fig. 5a verbatim."""
    gb = core
    B = gb.Matrix(shape=L.shape, dtype=L.dtype)
    with ArithmeticSemiring:
        B[L] = L @ L.T
    triangles = gb.reduce(B)
    return int(triangles)


def triangle_count_native(L: SparseMatrix) -> int:
    """Fig. 5b transliterated: direct kernel calls, no DSL objects."""
    B = SparseMatrix.empty(L.nrows, L.ncols, L.dtype)
    B = K.mxm(B, L, L, "Plus", "Times", OpDesc(mask=L), transpose_b=True)
    return int(K.reduce_mat_scalar(B, "Plus"))
