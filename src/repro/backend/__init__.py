"""Vectorised NumPy execution backend.

This subpackage is the stand-in for GBTL (the paper's C++ GraphBLAS
Template Library): sparse containers (:mod:`~repro.backend.svector`,
:mod:`~repro.backend.smatrix`), vectorised primitives
(:mod:`~repro.backend.primitives`), one kernel module per GraphBLAS
operation (:mod:`~repro.backend.kernels`), the operator table
(:mod:`~repro.backend.ops_table`) and a naive dict-of-keys reference
implementation used as the test oracle (:mod:`~repro.backend.reference`).
"""

from .smatrix import SparseMatrix
from .svector import SparseVector

__all__ = ["SparseMatrix", "SparseVector"]
