"""One kernel module per GraphBLAS operation.

Each kernel implements the complete C-API pipeline
``C<M, z> = C (accum) op(args)`` on backend containers, resolving operator
names through :mod:`~repro.backend.ops_table` at call time.  This is the
*interpreted* dispatch path; the JIT layer (:mod:`repro.jit`) generates
specialised modules that bind the same primitives with operators resolved
at code-generation time instead.
"""

from .common import OpDesc
from .mxm import mxm
from .mxv import mxv, vxm
from .ewise import ewise_add_mat, ewise_add_vec, ewise_mult_mat, ewise_mult_vec
from .apply_ import apply_mat, apply_vec
from .reduce_ import reduce_mat_scalar, reduce_vec_scalar, reduce_rows
from .transpose_ import transpose
from .extract_ import extract_mat, extract_vec
from .select_ import select_mat, select_vec, SELECT_OPS
from .kron import kronecker
from .assign_ import (
    assign_mat,
    assign_vec,
    assign_mat_scalar,
    assign_vec_scalar,
)
from .fused import (
    apply_result_dtype,
    mxv_apply,
    vxm_apply,
    ewise_add_vec_apply,
    ewise_mult_vec_apply,
    ewise_add_mat_apply,
    ewise_mult_mat_apply,
    mxm_reduce_rows,
    apply_assign_vec,
    ewise_add_vec_reduce_scalar,
    ewise_mult_vec_reduce_scalar,
)

__all__ = [
    "OpDesc",
    "mxm",
    "mxv",
    "vxm",
    "ewise_add_mat",
    "ewise_add_vec",
    "ewise_mult_mat",
    "ewise_mult_vec",
    "apply_mat",
    "apply_vec",
    "reduce_mat_scalar",
    "reduce_vec_scalar",
    "reduce_rows",
    "transpose",
    "select_mat",
    "select_vec",
    "SELECT_OPS",
    "kronecker",
    "extract_mat",
    "extract_vec",
    "assign_mat",
    "assign_vec",
    "assign_mat_scalar",
    "assign_vec_scalar",
    "apply_result_dtype",
    "mxv_apply",
    "vxm_apply",
    "ewise_add_vec_apply",
    "ewise_mult_vec_apply",
    "ewise_add_mat_apply",
    "ewise_mult_mat_apply",
    "mxm_reduce_rows",
    "apply_assign_vec",
    "ewise_add_vec_reduce_scalar",
    "ewise_mult_vec_reduce_scalar",
]
