"""GraphBLAS ``apply``: elementwise unary function over stored values.

Supports GBTL's three functional forms: a plain unary operator, and a
binary operator with a bound constant on either side (``BinaryOp_Bind1st``
/ ``BinaryOp_Bind2nd``), which is how the paper's ``gb.UnaryOp("Times",
damping_factor)`` is realised (Fig. 7/8).
"""

from __future__ import annotations

import numpy as np

from ..smatrix import SparseMatrix
from ..svector import SparseVector
from .. import primitives as P
from ..ops_table import apply_binary, apply_unary
from ...exceptions import DimensionMismatch
from .common import OpDesc, finalize_mat, finalize_vec

__all__ = ["apply_mat", "apply_vec", "resolve_unary"]


def resolve_unary(op_spec):
    """Turn an op spec into ``values -> values``.

    ``op_spec`` is either ``("unary", name)`` or
    ``("bind", binop_name, constant, side)`` with side ``"first"`` (the
    constant is the left operand) or ``"second"``.
    """
    kind = op_spec[0]
    if kind == "unary":
        name = op_spec[1]
        return lambda vals: apply_unary(name, vals)
    if kind == "bind":
        _, name, const, side = op_spec
        if side == "first":
            return lambda vals: apply_binary(name, np.broadcast_to(const, vals.shape), vals)
        return lambda vals: apply_binary(name, vals, np.broadcast_to(const, vals.shape))
    raise ValueError(f"bad unary op spec {op_spec!r}")


def apply_mat(
    c: SparseMatrix,
    a: SparseMatrix,
    op_spec,
    desc: OpDesc = OpDesc(),
    transpose_a: bool = False,
) -> SparseMatrix:
    """``C<M, z> = C (accum) f(A)``; the pattern of ``f(A)`` equals the
    pattern of ``A`` (apply never drops or creates entries)."""
    if transpose_a:
        a = a.transposed()
    if c.shape != a.shape:
        raise DimensionMismatch(f"apply: output shape {c.shape} != operand shape {a.shape}")
    rows, cols, vals = a.coo()
    t_vals = resolve_unary(op_spec)(vals)
    t_keys = P.encode_keys(rows, cols, a.ncols)
    return finalize_mat(c, t_keys, np.asarray(t_vals), desc)


def apply_vec(
    w: SparseVector, u: SparseVector, op_spec, desc: OpDesc = OpDesc()
) -> SparseVector:
    """``w<m, z> = w (accum) f(u)``."""
    if w.size != u.size:
        raise DimensionMismatch(f"apply: output size {w.size} != operand size {u.size}")
    t_vals = resolve_unary(op_spec)(u.values)
    return finalize_vec(w, u.indices, np.asarray(t_vals), desc)
