"""GraphBLAS ``assign``: scatter a container or scalar into a region of a
larger container.

Semantics follow ``GrB_assign``: inside the addressed region the existing
pattern is replaced by (or, with an accumulator, merged with) the source;
outside the region the container is untouched — and the mask/replace stage
then applies over the *whole* output domain.
"""

from __future__ import annotations

import numpy as np

from ..smatrix import SparseMatrix
from ..svector import SparseVector
from .. import ops_table, primitives as P
from ...exceptions import DimensionMismatch, IndexOutOfBounds
from .common import OpDesc, mask_keys_mat, mask_keys_vec

__all__ = ["assign_mat", "assign_vec", "assign_mat_scalar", "assign_vec_scalar"]


def _check_indices(idx, limit: int, what: str) -> np.ndarray:
    idx = np.asarray(idx, dtype=np.int64).ravel()
    if idx.size and (idx.min() < 0 or idx.max() >= limit):
        raise IndexOutOfBounds(f"{what} index out of range (limit {limit})")
    return idx


def _assign_merge(old_keys, old_vals, region_keys, t_keys, t_vals, accum, out_dtype):
    """Region-local merge: Z = (C \\ region) ∪ inside, where *inside* is the
    mapped source, accumulated with the region's old entries when an
    accumulator is bound."""
    if accum is not None:
        in_old_keys, in_old_vals = P.restrict(old_keys, old_vals, region_keys, False)
        in_keys, in_vals = P.union_merge(
            in_old_keys, in_old_vals, t_keys, t_vals,
            ops_table.binary_def(accum).func, out_dtype,
        )
    else:
        in_keys, in_vals = t_keys, np.asarray(t_vals).astype(out_dtype, copy=False)
    out_keys, out_vals = P.restrict(old_keys, old_vals, region_keys, True)
    out_vals = out_vals.astype(out_dtype, copy=False)
    keys = np.concatenate([out_keys, in_keys])
    vals = np.concatenate([out_vals, in_vals])
    order = np.argsort(keys, kind="stable")
    return keys[order], vals[order]


def _mask_stage(old_keys, old_vals, z_keys, z_vals, mask_keys, complement, replace, out_dtype):
    """The whole-domain mask/replace stage shared by all assign variants."""
    return P.finalize(
        old_keys, old_vals, z_keys, z_vals, out_dtype,
        mask_keys, complement, replace, accum_map2=None,
    )


def assign_mat(
    c: SparseMatrix,
    a: SparseMatrix,
    row_indices,
    col_indices,
    desc: OpDesc = OpDesc(),
    transpose_a: bool = False,
) -> SparseMatrix:
    """``C<M, z>(i, j) = C(i, j) (accum) A``."""
    if transpose_a:
        a = a.transposed()
    rows = _check_indices(row_indices, c.nrows, "row")
    cols = _check_indices(col_indices, c.ncols, "column")
    if a.shape != (rows.size, cols.size):
        raise DimensionMismatch(
            f"assign: source shape {a.shape} != region shape {(rows.size, cols.size)}"
        )
    a_rows, a_cols, a_vals = a.coo()
    t_keys = P.encode_keys(rows[a_rows], cols[a_cols], c.ncols)
    order = np.argsort(t_keys, kind="stable")
    t_keys, t_vals = t_keys[order], a_vals[order]
    region = np.unique(
        P.encode_keys(
            np.repeat(rows, cols.size), np.tile(cols, rows.size), c.ncols
        )
    )
    c_rows, c_cols, c_vals = c.coo()
    old_keys = P.encode_keys(c_rows, c_cols, c.ncols)
    z_keys, z_vals = _assign_merge(old_keys, c_vals, region, t_keys, t_vals, desc.accum, c.dtype)
    keys, vals = _mask_stage(
        old_keys, c_vals, z_keys, z_vals,
        mask_keys_mat(desc.mask), desc.complement, desc.replace, c.dtype,
    )
    out_rows, out_cols = P.decode_keys(keys, c.ncols)
    return SparseMatrix.from_coo_sorted(c.nrows, c.ncols, out_rows, out_cols, vals)


def assign_mat_scalar(
    c: SparseMatrix, value, row_indices, col_indices, desc: OpDesc = OpDesc()
) -> SparseMatrix:
    """``C<M, z>(i, j) = C(i, j) (accum) s`` — the scalar fills every
    addressed position (constant assignment, Table I row *assign*)."""
    rows = _check_indices(row_indices, c.nrows, "row")
    cols = _check_indices(col_indices, c.ncols, "column")
    region = np.unique(
        P.encode_keys(np.repeat(rows, cols.size), np.tile(cols, rows.size), c.ncols)
    )
    t_vals = np.full(region.size, value, dtype=c.dtype)
    c_rows, c_cols, c_vals = c.coo()
    old_keys = P.encode_keys(c_rows, c_cols, c.ncols)
    z_keys, z_vals = _assign_merge(old_keys, c_vals, region, region, t_vals, desc.accum, c.dtype)
    keys, vals = _mask_stage(
        old_keys, c_vals, z_keys, z_vals,
        mask_keys_mat(desc.mask), desc.complement, desc.replace, c.dtype,
    )
    out_rows, out_cols = P.decode_keys(keys, c.ncols)
    return SparseMatrix.from_coo_sorted(c.nrows, c.ncols, out_rows, out_cols, vals)


def assign_vec(
    w: SparseVector, u: SparseVector, indices, desc: OpDesc = OpDesc()
) -> SparseVector:
    """``w<m, z>(i) = w(i) (accum) u``."""
    idx = _check_indices(indices, w.size, "vector")
    if u.size != idx.size:
        raise DimensionMismatch(
            f"assign: source size {u.size} != region size {idx.size}"
        )
    t_keys = idx[u.indices]
    order = np.argsort(t_keys, kind="stable")
    t_keys, t_vals = t_keys[order], u.values[order]
    region = np.unique(idx)
    z_keys, z_vals = _assign_merge(
        w.indices, w.values, region, t_keys, t_vals, desc.accum, w.dtype
    )
    keys, vals = _mask_stage(
        w.indices, w.values, z_keys, z_vals,
        mask_keys_vec(desc.mask), desc.complement, desc.replace, w.dtype,
    )
    return SparseVector.from_sorted(w.size, keys, vals)


def assign_vec_scalar(
    w: SparseVector, value, indices, desc: OpDesc = OpDesc()
) -> SparseVector:
    """``w<m, z>(i) = w(i) (accum) s`` — constant assignment; with the
    paper's ``levels[front][:] = depth`` this is a masked constant fill."""
    idx = _check_indices(indices, w.size, "vector")
    region = np.unique(idx)
    t_vals = np.full(region.size, value, dtype=w.dtype)
    z_keys, z_vals = _assign_merge(
        w.indices, w.values, region, region, t_vals, desc.accum, w.dtype
    )
    keys, vals = _mask_stage(
        w.indices, w.values, z_keys, z_vals,
        mask_keys_vec(desc.mask), desc.complement, desc.replace, w.dtype,
    )
    return SparseVector.from_sorted(w.size, keys, vals)
