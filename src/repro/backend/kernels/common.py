"""Shared kernel machinery: the operation descriptor and output finalisation.

``OpDesc`` is the backend analog of a ``GrB_Descriptor`` plus the mask and
accumulator arguments of the C API: it carries everything about an
operation *except* its computational inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import ops_table, primitives as P
from ..smatrix import SparseMatrix
from ..svector import SparseVector

__all__ = ["OpDesc", "mask_keys_vec", "mask_keys_mat", "finalize_vec", "finalize_mat"]


@dataclass(frozen=True)
class OpDesc:
    """Output-write controls for one GraphBLAS operation.

    ``mask`` is a backend container (SparseVector/SparseMatrix) or ``None``
    (the DSL's ``C[None]`` / GBTL's ``NoMask``).  Mask values are coerced
    to boolean per the paper (Sec. III): an element of the mask is *true*
    iff an entry is present **and** its value is truthy.
    """

    mask: object | None = None
    complement: bool = False
    replace: bool = False
    accum: str | None = None  #: binary-op name, or None for NoAccumulate

    def accum_map2(self):
        return ops_table.binary_def(self.accum).func if self.accum else None


def mask_keys_vec(mask: SparseVector | None) -> np.ndarray | None:
    """Sorted indices at which a vector mask is true (None = NoMask)."""
    if mask is None:
        return None
    return mask.bool_indices()


def mask_keys_mat(mask: SparseMatrix | None) -> np.ndarray | None:
    """Sorted flat keys at which a matrix mask is true (None = NoMask)."""
    if mask is None:
        return None
    rows, cols, vals = mask.coo()
    truthy = vals.astype(bool)
    return P.encode_keys(rows[truthy], cols[truthy], mask.ncols)


def finalize_vec(
    c: SparseVector, t_idx: np.ndarray, t_vals: np.ndarray, desc: OpDesc
) -> SparseVector:
    """Apply accumulate + mask + replace and build the output vector
    (output dtype is the dtype of the existing output container ``c``)."""
    keys, vals = P.finalize(
        c.indices,
        c.values,
        t_idx,
        t_vals,
        c.dtype,
        mask_keys_vec(desc.mask),
        desc.complement,
        desc.replace,
        desc.accum_map2(),
    )
    return SparseVector.from_sorted(c.size, keys, vals)


def finalize_mat(
    c: SparseMatrix, t_keys: np.ndarray, t_vals: np.ndarray, desc: OpDesc
) -> SparseMatrix:
    """Matrix counterpart of :func:`finalize_vec`; ``t_keys`` are flat
    row-major keys as produced by :func:`repro.backend.primitives.encode_keys`."""
    c_rows, c_cols, c_vals = c.coo()
    old_keys = P.encode_keys(c_rows, c_cols, c.ncols)
    keys, vals = P.finalize(
        old_keys,
        c_vals,
        t_keys,
        t_vals,
        c.dtype,
        mask_keys_mat(desc.mask),
        desc.complement,
        desc.replace,
        desc.accum_map2(),
    )
    rows, cols = P.decode_keys(keys, c.ncols)
    return SparseMatrix.from_coo_sorted(c.nrows, c.ncols, rows, cols, vals)
