"""Elementwise union (``eWiseAdd``) and intersection (``eWiseMult``)
operations on matrices and vectors."""

from __future__ import annotations

from ..smatrix import SparseMatrix
from ..svector import SparseVector
from .. import primitives as P
from ..ops_table import binary_def, binary_result_dtype
from ...exceptions import DimensionMismatch
from .common import OpDesc, finalize_mat, finalize_vec

__all__ = ["ewise_add_mat", "ewise_add_vec", "ewise_mult_mat", "ewise_mult_vec"]


def _check_mat(c: SparseMatrix, a: SparseMatrix, b: SparseMatrix, what: str) -> None:
    if a.shape != b.shape:
        raise DimensionMismatch(f"{what}: operand shapes differ: {a.shape} vs {b.shape}")
    if c.shape != a.shape:
        raise DimensionMismatch(f"{what}: output shape {c.shape} != operand shape {a.shape}")


def _check_vec(w: SparseVector, u: SparseVector, v: SparseVector, what: str) -> None:
    if u.size != v.size:
        raise DimensionMismatch(f"{what}: operand sizes differ: {u.size} vs {v.size}")
    if w.size != u.size:
        raise DimensionMismatch(f"{what}: output size {w.size} != operand size {u.size}")


def _mat_keys(m: SparseMatrix):
    rows, cols, vals = m.coo()
    return P.encode_keys(rows, cols, m.ncols), vals


def ewise_add_mat(
    c: SparseMatrix,
    a: SparseMatrix,
    b: SparseMatrix,
    op: str,
    desc: OpDesc = OpDesc(),
    transpose_a: bool = False,
    transpose_b: bool = False,
) -> SparseMatrix:
    """``C<M, z> = C (accum) (A ⊕ B)`` — pattern union; ⊕ applied only
    where both operands have an entry, values pass through elsewhere."""
    if transpose_a:
        a = a.transposed()
    if transpose_b:
        b = b.transposed()
    _check_mat(c, a, b, "eWiseAdd")
    ka, va = _mat_keys(a)
    kb, vb = _mat_keys(b)
    out_dtype = binary_result_dtype(op, a.dtype, b.dtype)
    t_keys, t_vals = P.union_merge(ka, va, kb, vb, binary_def(op).func, out_dtype)
    return finalize_mat(c, t_keys, t_vals, desc)


def ewise_mult_mat(
    c: SparseMatrix,
    a: SparseMatrix,
    b: SparseMatrix,
    op: str,
    desc: OpDesc = OpDesc(),
    transpose_a: bool = False,
    transpose_b: bool = False,
) -> SparseMatrix:
    """``C<M, z> = C (accum) (A ⊗ B)`` — pattern intersection."""
    if transpose_a:
        a = a.transposed()
    if transpose_b:
        b = b.transposed()
    _check_mat(c, a, b, "eWiseMult")
    ka, va = _mat_keys(a)
    kb, vb = _mat_keys(b)
    out_dtype = binary_result_dtype(op, a.dtype, b.dtype)
    t_keys, t_vals = P.intersect_merge(ka, va, kb, vb, binary_def(op).func, out_dtype)
    return finalize_mat(c, t_keys, t_vals, desc)


def ewise_add_vec(
    w: SparseVector, u: SparseVector, v: SparseVector, op: str, desc: OpDesc = OpDesc()
) -> SparseVector:
    """``w<m, z> = w (accum) (u ⊕ v)``."""
    _check_vec(w, u, v, "eWiseAdd")
    out_dtype = binary_result_dtype(op, u.dtype, v.dtype)
    t_idx, t_vals = P.union_merge(
        u.indices, u.values, v.indices, v.values, binary_def(op).func, out_dtype
    )
    return finalize_vec(w, t_idx, t_vals, desc)


def ewise_mult_vec(
    w: SparseVector, u: SparseVector, v: SparseVector, op: str, desc: OpDesc = OpDesc()
) -> SparseVector:
    """``w<m, z> = w (accum) (u ⊗ v)``."""
    _check_vec(w, u, v, "eWiseMult")
    out_dtype = binary_result_dtype(op, u.dtype, v.dtype)
    t_idx, t_vals = P.intersect_merge(
        u.indices, u.values, v.indices, v.values, binary_def(op).func, out_dtype
    )
    return finalize_vec(w, t_idx, t_vals, desc)
