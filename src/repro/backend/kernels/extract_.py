"""GraphBLAS ``extract``: gather a sub-matrix / sub-vector by index lists.

Index lists may repeat indices and appear in any order, per the C API
(repeated indices duplicate the corresponding rows/columns of the result).
"""

from __future__ import annotations

import numpy as np

from ..smatrix import SparseMatrix
from ..svector import SparseVector
from .. import primitives as P
from ...exceptions import IndexOutOfBounds
from .common import OpDesc, finalize_mat, finalize_vec

__all__ = ["extract_mat", "extract_vec"]


def _check_indices(idx: np.ndarray, limit: int, what: str) -> np.ndarray:
    idx = np.asarray(idx, dtype=np.int64).ravel()
    if idx.size and (idx.min() < 0 or idx.max() >= limit):
        raise IndexOutOfBounds(f"{what} index out of range (limit {limit})")
    return idx


def extract_mat(
    c: SparseMatrix,
    a: SparseMatrix,
    row_indices,
    col_indices,
    desc: OpDesc = OpDesc(),
    transpose_a: bool = False,
) -> SparseMatrix:
    """``C<M, z> = C (accum) A(i, j)`` with ``C.shape == (len(i), len(j))``.

    Row gather uses CSR range expansion; column selection (including
    duplicates and permutations) uses a sorted search over the column
    index list so each source entry fans out to every requesting output
    column.
    """
    if transpose_a:
        a = a.transposed()
    rows = _check_indices(row_indices, a.nrows, "row")
    cols = _check_indices(col_indices, a.ncols, "column")
    # gather the selected rows, in output order (duplicates permitted)
    starts = a.indptr[rows]
    counts = a.indptr[rows + 1] - a.indptr[rows]
    pos = P.expand_ranges(starts, counts)
    out_rows = np.repeat(np.arange(rows.size, dtype=np.int64), counts)
    src_cols = a.indices[pos]
    vals = a.values[pos]
    # fan each gathered entry out to all output columns requesting it
    order = np.argsort(cols, kind="stable")
    cols_sorted = cols[order]
    lo = np.searchsorted(cols_sorted, src_cols, side="left")
    hi = np.searchsorted(cols_sorted, src_cols, side="right")
    fan = (hi - lo).astype(np.int64)
    sel_pos = P.expand_ranges(lo, fan)
    out_cols = order[sel_pos]
    out_rows = np.repeat(out_rows, fan)
    out_vals = np.repeat(vals, fan)
    keys = P.encode_keys(out_rows, out_cols, cols.size)
    sort = np.argsort(keys, kind="stable")
    return finalize_mat(c, keys[sort], out_vals[sort], desc)


def extract_vec(
    w: SparseVector, u: SparseVector, indices, desc: OpDesc = OpDesc()
) -> SparseVector:
    """``w<m, z> = w (accum) u(i)`` with ``w.size == len(i)``."""
    idx = _check_indices(indices, u.size, "vector")
    dense, present = u.dense_lookup()
    keep = present[idx]
    t_idx = np.flatnonzero(keep).astype(np.int64)
    t_vals = dense[idx[keep]]
    return finalize_vec(w, t_idx, t_vals, desc)
