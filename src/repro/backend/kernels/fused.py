"""Reference implementations of the fused kernels.

Each fused kernel here is the *literal* two-step composition the planner
replaces: materialise the producer into a temporary of its natural dtype,
then run the consumer.  By construction these are bit-identical to the
unfused dispatch sequence, which makes them the oracle the differential
tests (and the ``interpreted`` engine's fused methods) check the JIT
engines' single-pass fused modules against.
"""

from __future__ import annotations

import numpy as np

from ..smatrix import SparseMatrix
from ..svector import SparseVector
from ..ops_table import binary_result_dtype
from .common import OpDesc
from .apply_ import apply_mat, apply_vec
from .assign_ import assign_vec
from .ewise import ewise_add_mat, ewise_add_vec, ewise_mult_mat, ewise_mult_vec
from .mxm import mxm
from .mxv import mxv, vxm
from .reduce_ import reduce_rows, reduce_vec_scalar

__all__ = [
    "apply_result_dtype",
    "mxv_apply",
    "vxm_apply",
    "ewise_add_vec_apply",
    "ewise_mult_vec_apply",
    "ewise_add_mat_apply",
    "ewise_mult_mat_apply",
    "mxm_reduce_rows",
    "apply_assign_vec",
    "ewise_add_vec_reduce_scalar",
    "ewise_mult_vec_reduce_scalar",
]


def apply_result_dtype(op_spec, in_dtype) -> np.dtype:
    """The natural output dtype of ``apply(op_spec, x)`` for an operand of
    *in_dtype* — mirrors ``Apply.result_dtype``."""
    if op_spec[0] == "bind":
        return binary_result_dtype(op_spec[1], in_dtype, np.asarray(op_spec[2]).dtype)
    if op_spec[1] == "LogicalNot":
        return np.dtype(np.bool_)
    return np.dtype(in_dtype)


def _semiring_dtype(add_op, mult_op, da, db) -> np.dtype:
    t = binary_result_dtype(mult_op, da, db)
    return binary_result_dtype(add_op, t, t)


def mxv_apply(w, a, u, add_op, mult_op, op_spec, desc=OpDesc(), transpose_a=False):
    """``w<m, z> = w (accum) f(A ⊕.⊗ u)``."""
    pdt = _semiring_dtype(add_op, mult_op, a.dtype, u.dtype)
    nrows = a.ncols if transpose_a else a.nrows
    t = mxv(SparseVector.empty(nrows, pdt), a, u, add_op, mult_op, OpDesc(), transpose_a)
    return apply_vec(w, t, op_spec, desc)


def vxm_apply(w, u, a, add_op, mult_op, op_spec, desc=OpDesc(), transpose_a=False):
    """``w<m, z> = w (accum) f(u ⊕.⊗ A)``."""
    pdt = _semiring_dtype(add_op, mult_op, u.dtype, a.dtype)
    size = a.nrows if transpose_a else a.ncols
    t = vxm(SparseVector.empty(size, pdt), u, a, add_op, mult_op, OpDesc(), transpose_a)
    return apply_vec(w, t, op_spec, desc)


def ewise_add_vec_apply(w, u, v, op, op_spec, desc=OpDesc()):
    """``w<m, z> = w (accum) f(u ⊕ v)``."""
    pdt = binary_result_dtype(op, u.dtype, v.dtype)
    t = ewise_add_vec(SparseVector.empty(u.size, pdt), u, v, op, OpDesc())
    return apply_vec(w, t, op_spec, desc)


def ewise_mult_vec_apply(w, u, v, op, op_spec, desc=OpDesc()):
    """``w<m, z> = w (accum) f(u ⊗ v)``."""
    pdt = binary_result_dtype(op, u.dtype, v.dtype)
    t = ewise_mult_vec(SparseVector.empty(u.size, pdt), u, v, op, OpDesc())
    return apply_vec(w, t, op_spec, desc)


def _ewise_mat_shape(a, transpose_a):
    return (a.ncols, a.nrows) if transpose_a else a.shape


def ewise_add_mat_apply(c, a, b, op, op_spec, desc=OpDesc(), transpose_a=False, transpose_b=False):
    """``C<M, z> = C (accum) f(A ⊕ B)``."""
    pdt = binary_result_dtype(op, a.dtype, b.dtype)
    shape = _ewise_mat_shape(a, transpose_a)
    t = ewise_add_mat(
        SparseMatrix.empty(shape[0], shape[1], pdt), a, b, op, OpDesc(),
        transpose_a, transpose_b,
    )
    return apply_mat(c, t, op_spec, desc)


def ewise_mult_mat_apply(c, a, b, op, op_spec, desc=OpDesc(), transpose_a=False, transpose_b=False):
    """``C<M, z> = C (accum) f(A ⊗ B)``."""
    pdt = binary_result_dtype(op, a.dtype, b.dtype)
    shape = _ewise_mat_shape(a, transpose_a)
    t = ewise_mult_mat(
        SparseMatrix.empty(shape[0], shape[1], pdt), a, b, op, OpDesc(),
        transpose_a, transpose_b,
    )
    return apply_mat(c, t, op_spec, desc)


def mxm_reduce_rows(w, a, b, add_op, mult_op, rop, desc=OpDesc(), transpose_a=False, transpose_b=False):
    """``w<m, z> = w (accum) [⊕_j (A ⊕.⊗ B)(:, j)]``."""
    pdt = _semiring_dtype(add_op, mult_op, a.dtype, b.dtype)
    nrows = a.ncols if transpose_a else a.nrows
    ncols = b.nrows if transpose_b else b.ncols
    t = mxm(
        SparseMatrix.empty(nrows, ncols, pdt), a, b, add_op, mult_op, OpDesc(),
        transpose_a, transpose_b,
    )
    return reduce_rows(w, t, rop, desc)


def apply_assign_vec(w, u, op_spec, idx, desc=OpDesc()):
    """``w<m, z>(i) = w(i) (accum) f(u)``."""
    pdt = apply_result_dtype(op_spec, u.dtype)
    t = apply_vec(SparseVector.empty(u.size, pdt), u, op_spec, OpDesc())
    return assign_vec(w, t, idx, desc)


def ewise_add_vec_reduce_scalar(u, v, op, rop, identity=None):
    """``s = [⊕ over stored (u ⊕ v)(i)]``."""
    pdt = binary_result_dtype(op, u.dtype, v.dtype)
    t = ewise_add_vec(SparseVector.empty(u.size, pdt), u, v, op, OpDesc())
    return reduce_vec_scalar(t, rop, identity)


def ewise_mult_vec_reduce_scalar(u, v, op, rop, identity=None):
    """``s = [⊕ over stored (u ⊗ v)(i)]``."""
    pdt = binary_result_dtype(op, u.dtype, v.dtype)
    t = ewise_mult_vec(SparseVector.empty(u.size, pdt), u, v, op, OpDesc())
    return reduce_vec_scalar(t, rop, identity)
