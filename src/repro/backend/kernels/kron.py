"""GraphBLAS ``kronecker``: the Kronecker product over an arbitrary
binary operator (``GrB_kronecker``; GBTL's ``kronecker``).

``C((i_A·nrows_B + i_B), (j_A·ncols_B + j_B)) = A(i_A, j_A) ⊗ B(i_B, j_B)``
for every pair of stored entries — output coordinates are unique by
construction, so no reduction monoid is involved.  Kronecker products of
adjacency matrices generate the R-MAT/Graph500 family of graphs, which is
also how the test-suite exercises this kernel.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import DimensionMismatch
from .. import primitives as P
from ..ops_table import binary_def, binary_result_dtype
from ..smatrix import SparseMatrix
from .common import OpDesc, finalize_mat

__all__ = ["kronecker"]


def kronecker(
    c: SparseMatrix,
    a: SparseMatrix,
    b: SparseMatrix,
    op: str = "Times",
    desc: OpDesc = OpDesc(),
    transpose_a: bool = False,
    transpose_b: bool = False,
) -> SparseMatrix:
    """``C<M, z> = C (accum) kron(A, B)`` with ``C.shape ==
    (nrows_A·nrows_B, ncols_A·ncols_B)``."""
    if transpose_a:
        a = a.transposed()
    if transpose_b:
        b = b.transposed()
    out_shape = (a.nrows * b.nrows, a.ncols * b.ncols)
    if c.shape != out_shape:
        raise DimensionMismatch(
            f"kronecker output shape {out_shape} != container shape {c.shape}"
        )
    a_rows, a_cols, a_vals = a.coo()
    b_rows, b_cols, b_vals = b.coo()
    # outer expansion: every A entry against every B entry, A-major so the
    # flat keys come out sorted without an extra argsort
    nb = b_vals.size
    rows = np.repeat(a_rows, nb) * b.nrows + np.tile(b_rows, a_vals.size)
    cols = np.repeat(a_cols, nb) * b.ncols + np.tile(b_cols, a_vals.size)
    out_dtype = binary_result_dtype(op, a.dtype, b.dtype)
    if a_vals.size and nb:
        vals = binary_def(op).func(np.repeat(a_vals, nb), np.tile(b_vals, a_vals.size))
    else:
        vals = np.empty(0, dtype=out_dtype)
    keys = P.encode_keys(rows, cols, out_shape[1])
    order = np.argsort(keys, kind="stable")
    return finalize_mat(c, keys[order], np.asarray(vals)[order], desc)
