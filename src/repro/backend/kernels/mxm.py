"""Matrix-matrix multiply over an arbitrary semiring (GraphBLAS ``mxm``)."""

from __future__ import annotations

from ..smatrix import SparseMatrix
from .. import ops_table, primitives as P
from ..ops_table import binary_def, binary_result_dtype, reduce_ufunc
from ...exceptions import DimensionMismatch
from .common import OpDesc, finalize_mat

__all__ = ["mxm"]


def mxm(
    c: SparseMatrix,
    a: SparseMatrix,
    b: SparseMatrix,
    add_op: str,
    mult_op: str,
    desc: OpDesc = OpDesc(),
    transpose_a: bool = False,
    transpose_b: bool = False,
) -> SparseMatrix:
    """``C<M, z> = C (accum) A ⊕.⊗ B``.

    Uses expansion SpGEMM (:func:`~repro.backend.primitives.spgemm_expand`):
    per-nonzero gather of B rows, elementwise ``⊗``, then coalescing of
    duplicate output coordinates with the ``⊕`` monoid's ufunc.
    """
    if transpose_a:
        a = a.transposed()
    if transpose_b:
        b = b.transposed()
    if a.ncols != b.nrows:
        raise DimensionMismatch(
            f"mxm inner dimensions disagree: {a.shape} @ {b.shape}"
        )
    if (a.nrows, b.ncols) != c.shape:
        raise DimensionMismatch(
            f"mxm output shape {(a.nrows, b.ncols)} != container shape {c.shape}"
        )
    a_rows, a_cols, a_vals = a.coo()
    compute_dtype = binary_result_dtype(mult_op, a.dtype, b.dtype)
    t_keys, t_vals = P.spgemm_expand(
        a_rows,
        a_cols,
        a_vals,
        b.indptr,
        b.indices,
        b.values,
        b.ncols,
        binary_def(mult_op).func,
        reduce_ufunc(add_op),
        compute_dtype,
        logical=ops_table.binary_def(add_op).kind == "logical",
    )
    return finalize_mat(c, t_keys, t_vals, desc)
