"""Matrix-vector and vector-matrix multiply over an arbitrary semiring
(GraphBLAS ``mxv`` / ``vxm``), with schedule-directed traversal.

A resolved :class:`repro.schedule.Schedule` annotation selects among
three bit-identical strategies (see that module for the ordering
argument): the legacy full-row ``dense`` gather, the frontier-driven
``push`` scatter over the transpose, and the mask-candidate ``pull``
gather with a per-row early exit for the ``LogicalOr`` monoid.  The
gather and scatter forms of the operand matrix are passed as thunks so
only the strategy actually chosen pays its (memoized) transpose build —
push-heavy iterations never materialize the gather form and vice versa.
"""

from __future__ import annotations

from ... import schedule as _schedule
from ...exceptions import DimensionMismatch
from .. import ops_table, primitives as P
from ..ops_table import binary_def, binary_result_dtype, reduce_ufunc
from ..smatrix import SparseMatrix
from ..svector import SparseVector
from .common import OpDesc, finalize_vec

__all__ = ["mxv", "vxm"]


def _traverse(gather_of, scatter_of, u, mult2, add_op, compute_dtype, sched):
    """Compute the unmasked product ``t`` under the scheduled direction.

    *gather_of*/*scatter_of* are zero-arg thunks returning the two
    orientations of the operand matrix (row-gather form and its
    transpose).  Returns ``(t_indices, t_values)`` and feeds the
    schedule layer's deterministic edges-examined counter.
    """
    reduce_uf = reduce_ufunc(add_op)
    logical = ops_table.binary_def(add_op).kind == "logical"
    direction = sched.direction if sched is not None else "dense"
    if direction == "push":
        s = scatter_of()
        t_idx, t_vals, edges = P.spmv_push(
            s.indptr, s.indices, s.values, u.indices, u.values,
            mult2, reduce_uf, compute_dtype, logical,
        )
    elif direction == "pull":
        g = gather_of()
        x_dense, x_present = u.dense_lookup()
        if add_op == "LogicalOr":
            t_idx, t_vals, edges = P.spmv_pull_logical(
                g.indptr, g.indices, g.values, sched.candidates,
                x_dense, x_present, mult2,
            )
            t_vals = t_vals.astype(compute_dtype, copy=False)
        else:
            t_idx, t_vals, edges = P.spmv_pull(
                g.indptr, g.indices, g.values, sched.candidates,
                x_dense, x_present, mult2, reduce_uf, compute_dtype, logical,
            )
    else:
        g = gather_of()
        x_dense, x_present = u.dense_lookup()
        t_idx, t_vals = P.spmv_gather(
            g.indptr, g.indices, g.values, g.nrows,
            x_dense, x_present, mult2, reduce_uf, compute_dtype, logical,
        )
        edges = int(g.indices.size)
    if sched is not None:
        _schedule.note_edges(direction, edges)
    return t_idx, t_vals


def mxv(
    w: SparseVector,
    a: SparseMatrix,
    u: SparseVector,
    add_op: str,
    mult_op: str,
    desc: OpDesc = OpDesc(),
    transpose_a: bool = False,
    sched=None,
) -> SparseVector:
    """``w<m, z> = w (accum) A ⊕.⊗ u``.

    Under the default ``dense`` schedule the sparse operand ``u`` is
    scattered to a dense lookup once, so the per-nonzero gather over A
    is a single fancy index (see
    :func:`~repro.backend.primitives.spmv_gather`); *sched* redirects to
    the push or pull strategy.
    """
    in_size = a.nrows if transpose_a else a.ncols
    out_size = a.ncols if transpose_a else a.nrows
    if in_size != u.size:
        raise DimensionMismatch(f"mxv: matrix has {in_size} columns, vector size {u.size}")
    if out_size != w.size:
        raise DimensionMismatch(f"mxv: matrix has {out_size} rows, output size {w.size}")
    compute_dtype = binary_result_dtype(mult_op, a.dtype, u.dtype)
    t_idx, t_vals = _traverse(
        (lambda: a.transposed()) if transpose_a else (lambda: a),
        (lambda: a) if transpose_a else (lambda: a.transposed()),
        u,
        binary_def(mult_op).func,
        add_op,
        compute_dtype,
        sched,
    )
    return finalize_vec(w, t_idx, t_vals, desc)


def vxm(
    w: SparseVector,
    u: SparseVector,
    a: SparseMatrix,
    add_op: str,
    mult_op: str,
    desc: OpDesc = OpDesc(),
    transpose_a: bool = False,
    sched=None,
) -> SparseVector:
    """``w<m, z> = w (accum) u ⊕.⊗ A`` — row vector times matrix.

    The gather form is ``mxv`` on the (cached) transpose with the
    multiply operands swapped back so non-commutative ``⊗`` sees
    ``u ⊗ A`` order; the push form scatters along the rows of ``A``
    itself, needing no transpose at all.
    """
    in_size = a.ncols if transpose_a else a.nrows
    out_size = a.nrows if transpose_a else a.ncols
    if in_size != u.size:
        raise DimensionMismatch(f"vxm: vector size {u.size}, matrix shape {a.shape}")
    if out_size != w.size:
        raise DimensionMismatch(f"vxm: output size {w.size}, matrix shape {a.shape}")
    compute_dtype = binary_result_dtype(mult_op, u.dtype, a.dtype)
    mult = binary_def(mult_op).func
    t_idx, t_vals = _traverse(
        (lambda: a) if transpose_a else (lambda: a.transposed()),
        (lambda: a.transposed()) if transpose_a else (lambda: a),
        u,
        lambda av, xv: mult(xv, av),  # u(k) ⊗ A(k, j): vector value on the left
        add_op,
        compute_dtype,
        sched,
    )
    return finalize_vec(w, t_idx, t_vals, desc)
