"""Matrix-vector and vector-matrix multiply over an arbitrary semiring
(GraphBLAS ``mxv`` / ``vxm``)."""

from __future__ import annotations

from ..smatrix import SparseMatrix
from ..svector import SparseVector
from .. import ops_table, primitives as P
from ..ops_table import binary_def, binary_result_dtype, reduce_ufunc
from ...exceptions import DimensionMismatch
from .common import OpDesc, finalize_vec

__all__ = ["mxv", "vxm"]


def mxv(
    w: SparseVector,
    a: SparseMatrix,
    u: SparseVector,
    add_op: str,
    mult_op: str,
    desc: OpDesc = OpDesc(),
    transpose_a: bool = False,
) -> SparseVector:
    """``w<m, z> = w (accum) A ⊕.⊗ u``.

    The sparse operand ``u`` is scattered to a dense lookup once, so the
    per-nonzero gather over A is a single fancy index (see
    :func:`~repro.backend.primitives.spmv_gather`).
    """
    if transpose_a:
        a = a.transposed()
    if a.ncols != u.size:
        raise DimensionMismatch(f"mxv: matrix has {a.ncols} columns, vector size {u.size}")
    if a.nrows != w.size:
        raise DimensionMismatch(f"mxv: matrix has {a.nrows} rows, output size {w.size}")
    x_dense, x_present = u.dense_lookup()
    compute_dtype = binary_result_dtype(mult_op, a.dtype, u.dtype)
    t_idx, t_vals = P.spmv_gather(
        a.indptr,
        a.indices,
        a.values,
        a.nrows,
        x_dense,
        x_present,
        binary_def(mult_op).func,
        reduce_ufunc(add_op),
        compute_dtype,
        logical=ops_table.binary_def(add_op).kind == "logical",
    )
    return finalize_vec(w, t_idx, t_vals, desc)


def vxm(
    w: SparseVector,
    u: SparseVector,
    a: SparseMatrix,
    add_op: str,
    mult_op: str,
    desc: OpDesc = OpDesc(),
    transpose_a: bool = False,
) -> SparseVector:
    """``w<m, z> = w (accum) u ⊕.⊗ A`` — row vector times matrix.

    Implemented as ``mxv`` on the (cached) transpose, with the multiply
    operands swapped back so non-commutative ``⊗`` sees ``u ⊗ A`` order.
    """
    at = a if transpose_a else a.transposed()
    if at.ncols != u.size:
        raise DimensionMismatch(f"vxm: vector size {u.size}, matrix shape {a.shape}")
    if at.nrows != w.size:
        raise DimensionMismatch(f"vxm: output size {w.size}, matrix shape {a.shape}")
    x_dense, x_present = u.dense_lookup()
    compute_dtype = binary_result_dtype(mult_op, u.dtype, a.dtype)
    mult = binary_def(mult_op).func
    t_idx, t_vals = P.spmv_gather(
        at.indptr,
        at.indices,
        at.values,
        at.nrows,
        x_dense,
        x_present,
        lambda av, xv: mult(xv, av),  # u(k) ⊗ A(k, j): vector value on the left
        reduce_ufunc(add_op),
        compute_dtype,
        logical=ops_table.binary_def(add_op).kind == "logical",
    )
    return finalize_vec(w, t_idx, t_vals, desc)
