"""GraphBLAS ``reduce``: monoid reductions to a scalar or to a vector of
row reductions."""

from __future__ import annotations

import numpy as np

from ..smatrix import SparseMatrix
from ..svector import SparseVector
from .. import primitives as P
from ..ops_table import binary_def, identity_value, reduce_ufunc, DEFAULT_IDENTITY_NAME
from ...exceptions import DimensionMismatch
from .common import OpDesc, finalize_vec

__all__ = ["reduce_mat_scalar", "reduce_vec_scalar", "reduce_rows"]


def _monoid_identity(op: str, identity, dtype):
    if identity is None:
        identity = DEFAULT_IDENTITY_NAME[op]
    return identity_value(identity, dtype)


def _reduce_all(op: str, values: np.ndarray, identity, dtype):
    """Monoid-reduce a flat value array; empty input yields the identity,
    per the C API (``GrB_reduce`` to scalar with no stored values)."""
    if values.size == 0:
        return _monoid_identity(op, identity, dtype)
    uf = reduce_ufunc(op)
    vals = values.astype(bool) if binary_def(op).kind == "logical" else values
    out = uf.reduce(vals)
    return np.dtype(dtype).type(out)


def reduce_mat_scalar(a: SparseMatrix, op: str = "Plus", identity=None, accum=None, s=None):
    """``s = s (accum) [⊕ over all stored A(i,j)]``; returns a NumPy scalar
    of A's dtype (or the accumulated value when *accum*/*s* are given)."""
    val = _reduce_all(op, a.values, identity, a.dtype)
    if accum is not None and s is not None:
        val = np.dtype(a.dtype).type(binary_def(accum).func(s, val))
    return val


def reduce_vec_scalar(u: SparseVector, op: str = "Plus", identity=None, accum=None, s=None):
    """``s = s (accum) [⊕ over all stored u(i)]``."""
    val = _reduce_all(op, u.values, identity, u.dtype)
    if accum is not None and s is not None:
        val = np.dtype(u.dtype).type(binary_def(accum).func(s, val))
    return val


def reduce_rows(
    w: SparseVector,
    a: SparseMatrix,
    op: str = "Plus",
    desc: OpDesc = OpDesc(),
    transpose_a: bool = False,
) -> SparseVector:
    """``w<m, z> = w (accum) [⊕_j A(:, j)]`` — one entry per non-empty row
    (rows with no stored values produce no output entry)."""
    if transpose_a:
        a = a.transposed()
    if w.size != a.nrows:
        raise DimensionMismatch(f"reduce: output size {w.size} != row count {a.nrows}")
    rows, _cols, vals = a.coo()
    starts = P.segment_starts(rows)
    logical = binary_def(op).kind == "logical"
    t_vals = P.segment_reduce(reduce_ufunc(op), vals, starts, logical)
    return finalize_vec(w, rows[starts], t_vals, desc)
