"""GraphBLAS ``select``: filter stored entries by a positional or value
predicate (GBTL's ``select``, standardised as ``GrB_select``).

Predicates take an optional scalar *thunk* ``k``:

========== =====================================
``Tril``    keep ``col <= row + k``
``Triu``    keep ``col >= row + k``
``Diag``    keep ``col == row + k``
``Offdiag`` keep ``col != row + k``
``NonZero`` keep ``value != 0``
``ValueEQ`` keep ``value == k``   (``NE/GT/GE/LT/LE`` likewise)
========== =====================================
"""

from __future__ import annotations

import numpy as np

from ...exceptions import UnknownOperator
from .. import primitives as P
from ..smatrix import SparseMatrix
from ..svector import SparseVector
from .common import OpDesc, finalize_mat, finalize_vec

__all__ = ["select_mat", "select_vec", "SELECT_OPS", "POSITIONAL_SELECT_OPS"]

_POSITIONAL = {
    "Tril": lambda rows, cols, k: cols <= rows + k,
    "Triu": lambda rows, cols, k: cols >= rows + k,
    "Diag": lambda rows, cols, k: cols == rows + k,
    "Offdiag": lambda rows, cols, k: cols != rows + k,
}

_VALUED = {
    "NonZero": lambda vals, k: vals.astype(bool),
    "ValueEQ": lambda vals, k: vals == k,
    "ValueNE": lambda vals, k: vals != k,
    "ValueGT": lambda vals, k: vals > k,
    "ValueGE": lambda vals, k: vals >= k,
    "ValueLT": lambda vals, k: vals < k,
    "ValueLE": lambda vals, k: vals <= k,
}

#: every predicate name, for validation and documentation
SELECT_OPS = frozenset(_POSITIONAL) | frozenset(_VALUED)

#: the row-relative predicates (``cols REL rows + k``); the partitioned
#: executor rebases their thunk by the block's first row, since a row
#: block sees local row numbers
POSITIONAL_SELECT_OPS = frozenset(_POSITIONAL)


def _keep_mask(op: str, rows, cols, vals, thunk):
    if op in _POSITIONAL:
        if rows is None:
            raise UnknownOperator(
                f"select operator {op!r} is positional and needs a matrix operand"
            )
        return _POSITIONAL[op](rows, cols, np.int64(thunk))
    if op in _VALUED:
        return _VALUED[op](vals, thunk)
    raise UnknownOperator(
        f"unknown select operator {op!r}; valid names: {sorted(SELECT_OPS)}"
    )


def select_mat(
    c: SparseMatrix,
    a: SparseMatrix,
    op: str,
    thunk=0,
    desc: OpDesc = OpDesc(),
    transpose_a: bool = False,
) -> SparseMatrix:
    """``C<M, z> = C (accum) select(op, A, k)``."""
    if transpose_a:
        a = a.transposed()
    rows, cols, vals = a.coo()
    keep = _keep_mask(op, rows, cols, vals, thunk)
    t_keys = P.encode_keys(rows[keep], cols[keep], a.ncols)
    return finalize_mat(c, t_keys, vals[keep], desc)


def select_vec(
    w: SparseVector, u: SparseVector, op: str, thunk=0, desc: OpDesc = OpDesc()
) -> SparseVector:
    """``w<m, z> = w (accum) select(op, u, k)`` — value predicates only
    (positional predicates are matrix concepts)."""
    keep = _keep_mask(op, None, None, u.values, thunk)
    return finalize_vec(w, u.indices[keep], u.values[keep], desc)
