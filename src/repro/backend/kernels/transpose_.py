"""GraphBLAS ``transpose`` as a standalone operation (``C<M, z> = C ⊙ Aᵀ``).

Inside other kernels transposition is a flag resolved against the cached
transpose; this module covers the explicit-assignment form of Table I
(``C[M, z] = A.T``).
"""

from __future__ import annotations

from ..smatrix import SparseMatrix
from .. import primitives as P
from ...exceptions import DimensionMismatch
from .common import OpDesc, finalize_mat

__all__ = ["transpose"]


def transpose(c: SparseMatrix, a: SparseMatrix, desc: OpDesc = OpDesc()) -> SparseMatrix:
    """``C<M, z> = C (accum) Aᵀ``."""
    at = a.transposed()
    if c.shape != at.shape:
        raise DimensionMismatch(
            f"transpose: output shape {c.shape} != transposed shape {at.shape}"
        )
    rows, cols, vals = at.coo()
    t_keys = P.encode_keys(rows, cols, at.ncols)
    return finalize_mat(c, t_keys, vals, desc)
