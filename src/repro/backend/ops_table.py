"""The GBTL operator table (paper Fig. 6).

Every operator the DSL can reference is defined here once, with three
realizations:

* a NumPy callable used by the vectorised backend and by the generated
  Python JIT modules,
* a C++ expression template used by the C++ JIT backend (the analog of the
  ``-DADD_BINOP=Plus`` defines in the paper's Fig. 9),
* identity elements for the monoid-forming operators, as dtype-dependent
  values (``MinIdentity`` is ``+inf`` for floats but ``INT64_MAX`` for
  64-bit integers, etc.).

The paper restricts user programs to exactly this table ("The DSL can only
reference operators defined in GBTL's algebra.hpp file"); we enforce the
same restriction and raise :class:`~repro.exceptions.UnknownOperator`
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..exceptions import UnknownOperator
from ..types import normalize_dtype

__all__ = [
    "UNARY_OPS",
    "BINARY_OPS",
    "IDENTITIES",
    "DEFAULT_IDENTITY_NAME",
    "unary_def",
    "binary_def",
    "identity_value",
    "binary_result_dtype",
    "apply_binary",
    "apply_unary",
    "reduce_ufunc",
    "segment_reduce_values",
]


def _c_div(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Division with C++ semantics: true division for floats, division
    truncated toward zero for integers (NumPy's ``//`` floors instead)."""
    a = np.asarray(a)
    b = np.asarray(b)
    if np.issubdtype(np.result_type(a, b), np.floating):
        return np.true_divide(a, b)
    with np.errstate(divide="ignore", invalid="ignore"):
        q = np.true_divide(a, b)
    q = np.nan_to_num(q, nan=0.0, posinf=0.0, neginf=0.0)
    return np.trunc(q).astype(np.result_type(a, b))


def _first(a, b):
    a = np.asarray(a)
    b = np.asarray(b)
    return np.broadcast_arrays(a, b)[0].copy()


def _second(a, b):
    a = np.asarray(a)
    b = np.asarray(b)
    return np.broadcast_arrays(a, b)[1].copy()


def _logical_xor(a, b):
    return np.logical_xor(np.asarray(a).astype(bool), np.asarray(b).astype(bool))


def _mult_inverse(a):
    a = np.asarray(a)
    if np.issubdtype(a.dtype, np.floating):
        return np.reciprocal(a)
    with np.errstate(divide="ignore", invalid="ignore"):
        q = np.true_divide(1, a)
    return np.nan_to_num(q, nan=0.0, posinf=0.0, neginf=0.0).astype(a.dtype)


@dataclass(frozen=True)
class UnaryOpDef:
    """One entry of the unary-operator table."""

    name: str
    func: Callable[[np.ndarray], np.ndarray]
    cxx: str  #: C++ expression with ``{a}`` placeholder and ``T`` output type


@dataclass(frozen=True)
class BinaryOpDef:
    """One entry of the binary-operator table.

    ``kind`` drives result-dtype inference: comparisons and logical
    operators always yield ``bool``; arithmetic yields the promoted operand
    dtype; the selectors ``First``/``Second`` yield the dtype of the chosen
    operand.
    """

    name: str
    func: Callable[[np.ndarray, np.ndarray], np.ndarray]
    cxx: str  #: C++ expression with ``{a}``/``{b}`` placeholders
    kind: str = "arith"  #: one of arith|compare|logical|select
    #: associative+commutative NumPy ufunc usable for monoid reductions
    #: (``None`` when the operator cannot form a monoid, e.g. Minus).
    reduce: np.ufunc | None = field(default=None)


UNARY_OPS: dict[str, UnaryOpDef] = {
    d.name: d
    for d in (
        UnaryOpDef("Identity", lambda a: np.asarray(a).copy(), "({a})"),
        UnaryOpDef("AdditiveInverse", np.negative, "(-({a}))"),
        UnaryOpDef(
            "LogicalNot", lambda a: np.logical_not(np.asarray(a).astype(bool)), "(!({a}))"
        ),
        UnaryOpDef("MultiplicativeInverse", _mult_inverse, "(T(1)/({a}))"),
    )
}

BINARY_OPS: dict[str, BinaryOpDef] = {
    d.name: d
    for d in (
        BinaryOpDef("Plus", np.add, "(({a}) + ({b}))", "arith", np.add),
        BinaryOpDef("Minus", np.subtract, "(({a}) - ({b}))", "arith", None),
        BinaryOpDef("Times", np.multiply, "(({a}) * ({b}))", "arith", np.multiply),
        BinaryOpDef("Div", _c_div, "(({b}) == 0 ? T(0) : T(({a}) / ({b})))", "arith", None),
        BinaryOpDef("Min", np.minimum, "((({a}) < ({b})) ? ({a}) : ({b}))", "arith", np.minimum),
        BinaryOpDef("Max", np.maximum, "((({a}) > ({b})) ? ({a}) : ({b}))", "arith", np.maximum),
        BinaryOpDef("First", _first, "({a})", "select", None),
        BinaryOpDef("Second", _second, "({b})", "select", None),
        BinaryOpDef(
            "LogicalOr",
            lambda a, b: np.logical_or(np.asarray(a).astype(bool), np.asarray(b).astype(bool)),
            "(bool({a}) || bool({b}))",
            "logical",
            np.logical_or,
        ),
        BinaryOpDef(
            "LogicalAnd",
            lambda a, b: np.logical_and(np.asarray(a).astype(bool), np.asarray(b).astype(bool)),
            "(bool({a}) && bool({b}))",
            "logical",
            np.logical_and,
        ),
        BinaryOpDef(
            "LogicalXor", _logical_xor, "(bool({a}) != bool({b}))", "logical", np.logical_xor
        ),
        BinaryOpDef("Equal", np.equal, "(({a}) == ({b}))", "compare", np.equal),
        BinaryOpDef("NotEqual", np.not_equal, "(({a}) != ({b}))", "compare", np.not_equal),
        BinaryOpDef("GreaterThan", np.greater, "(({a}) > ({b}))", "compare", None),
        BinaryOpDef("LessThan", np.less, "(({a}) < ({b}))", "compare", None),
        BinaryOpDef("GreaterEqual", np.greater_equal, "(({a}) >= ({b}))", "compare", None),
        BinaryOpDef("LessEqual", np.less_equal, "(({a}) <= ({b}))", "compare", None),
    )
}

#: named identity elements, as used in ``gb.Monoid("Min", "MinIdentity")``
#: (paper Sec. III).  Values are dtype-dependent, hence callables.
IDENTITIES: dict[str, Callable[[np.dtype], object]] = {}


def _register_identity(name):
    def deco(fn):
        IDENTITIES[name] = fn
        return fn

    return deco


@_register_identity("PlusIdentity")
def _plus_identity(dtype: np.dtype):
    return dtype.type(0)


@_register_identity("TimesIdentity")
def _times_identity(dtype: np.dtype):
    return dtype.type(1)


@_register_identity("MinIdentity")
def _min_identity(dtype: np.dtype):
    if dtype.kind == "f":
        return dtype.type(np.inf)
    if dtype.kind == "b":
        return np.bool_(True)
    return np.iinfo(dtype).max


@_register_identity("MaxIdentity")
def _max_identity(dtype: np.dtype):
    if dtype.kind == "f":
        return dtype.type(-np.inf)
    if dtype.kind == "b":
        return np.bool_(False)
    return np.iinfo(dtype).min


@_register_identity("LogicalOrIdentity")
def _lor_identity(dtype: np.dtype):
    return dtype.type(0)


@_register_identity("LogicalAndIdentity")
def _land_identity(dtype: np.dtype):
    return dtype.type(1)


@_register_identity("LogicalXorIdentity")
def _lxor_identity(dtype: np.dtype):
    return dtype.type(0)


@_register_identity("EqualIdentity")
def _eq_identity(dtype: np.dtype):
    return dtype.type(1)


#: binary-op name -> name of its canonical monoid identity
DEFAULT_IDENTITY_NAME: dict[str, str] = {
    "Plus": "PlusIdentity",
    "Times": "TimesIdentity",
    "Min": "MinIdentity",
    "Max": "MaxIdentity",
    "LogicalOr": "LogicalOrIdentity",
    "LogicalAnd": "LogicalAndIdentity",
    "LogicalXor": "LogicalXorIdentity",
    "Equal": "EqualIdentity",
}

#: C++ spellings of the named identities (``T`` is the element type)
IDENTITY_CXX: dict[str, str] = {
    "PlusIdentity": "T(0)",
    "TimesIdentity": "T(1)",
    "MinIdentity": "(std::numeric_limits<T>::has_infinity"
    " ? std::numeric_limits<T>::infinity() : std::numeric_limits<T>::max())",
    "MaxIdentity": "(std::numeric_limits<T>::has_infinity"
    " ? -std::numeric_limits<T>::infinity() : std::numeric_limits<T>::lowest())",
    "LogicalOrIdentity": "T(0)",
    "LogicalAndIdentity": "T(1)",
    "LogicalXorIdentity": "T(0)",
    "EqualIdentity": "T(1)",
}


#: names of the built-in (Fig. 6) operators; user registrations may not
#: shadow them, and the C++ codegen uses this to distinguish GBTL
#: functors from inline user-defined ones.
BUILTIN_UNARY = frozenset(UNARY_OPS)
BUILTIN_BINARY = frozenset(BINARY_OPS)

_NAME_RULES = (
    "operator names must be valid Python/C++ identifiers starting with an "
    "uppercase letter (GBTL convention)"
)


def _check_user_name(name: str, table: dict, builtin: frozenset) -> None:
    if not (name.isidentifier() and name[0].isupper()):
        raise UnknownOperator(f"bad operator name {name!r}: {_NAME_RULES}")
    if name in builtin:
        raise UnknownOperator(f"cannot redefine the built-in operator {name!r}")
    if name in table:
        raise UnknownOperator(f"operator {name!r} is already registered")


def _vectorize1(fn):
    uf = np.frompyfunc(fn, 1, 1)

    def wrapped(a):
        a = np.asarray(a)
        out = uf(a)
        return out.astype(a.dtype) if a.size else a

    return wrapped


def _vectorize2(fn):
    uf = np.frompyfunc(fn, 2, 1)

    def wrapped(a, b):
        a = np.asarray(a)
        b = np.asarray(b)
        out = uf(a, b)
        res_dt = np.result_type(a, b)
        return out.astype(res_dt) if np.asarray(out).size else np.empty(0, res_dt)

    return wrapped


def register_unary_op(name: str, func, cxx: str | None = None, vectorized: bool = False):
    """Register a user-defined unary operator (paper Sec. VIII future
    work: "user-defined operators for use in the PyGB operations").

    *func* maps one scalar to one scalar (or, with ``vectorized=True``, an
    array to an array).  *cxx* is an optional C++ expression with an
    ``{a}`` placeholder and element type ``T``; without it, only the
    Python engines can execute the operator.  Registration is per-process
    — a fresh interpreter must register the operator before any cached
    module referencing it is loaded.
    """
    _check_user_name(name, UNARY_OPS, BUILTIN_UNARY)
    impl = func if vectorized else _vectorize1(func)
    d = UnaryOpDef(name, impl, cxx or "")
    UNARY_OPS[name] = d
    return d


def register_binary_op(
    name: str,
    func,
    cxx: str | None = None,
    kind: str = "arith",
    associative: bool = False,
    vectorized: bool = False,
):
    """Register a user-defined binary operator.

    *func* maps two scalars to one (or arrays with ``vectorized=True``);
    *cxx* is an optional C++ expression with ``{a}``/``{b}`` placeholders.
    ``associative=True`` additionally makes the operator usable as a
    monoid ``⊕`` (reductions run through ``np.frompyfunc``'s generic
    ``reduceat``, slower than the built-in ufuncs but exact).
    """
    _check_user_name(name, BINARY_OPS, BUILTIN_BINARY)
    if kind not in ("arith", "compare", "logical", "select"):
        raise UnknownOperator(f"bad operator kind {kind!r}")
    impl = func if vectorized else _vectorize2(func)
    reduce_uf = None
    if associative:
        reduce_uf = np.frompyfunc(
            (lambda a, b: func(a, b)) if not vectorized else func, 2, 1
        )
    d = BinaryOpDef(name, impl, cxx or "", kind, reduce_uf)
    BINARY_OPS[name] = d
    return d


def unregister_op(name: str) -> None:
    """Remove a user-registered operator (built-ins cannot be removed).
    Primarily for test isolation."""
    if name in BUILTIN_UNARY or name in BUILTIN_BINARY:
        raise UnknownOperator(f"cannot unregister the built-in operator {name!r}")
    UNARY_OPS.pop(name, None)
    BINARY_OPS.pop(name, None)


def unary_def(name: str) -> UnaryOpDef:
    """Look up a unary operator by GBTL name, or raise ``UnknownOperator``."""
    try:
        return UNARY_OPS[name]
    except KeyError:
        raise UnknownOperator(
            f"unknown unary operator {name!r}; valid names: {sorted(UNARY_OPS)}"
        ) from None


def binary_def(name: str) -> BinaryOpDef:
    """Look up a binary operator by GBTL name, or raise ``UnknownOperator``."""
    try:
        return BINARY_OPS[name]
    except KeyError:
        raise UnknownOperator(
            f"unknown binary operator {name!r}; valid names: {sorted(BINARY_OPS)}"
        ) from None


def identity_value(name_or_value, dtype) -> object:
    """Resolve an identity given either a named identity (``"MinIdentity"``)
    or a literal value, as a scalar of *dtype*."""
    dt = normalize_dtype(dtype)
    if isinstance(name_or_value, str):
        try:
            return IDENTITIES[name_or_value](dt)
        except KeyError:
            raise UnknownOperator(
                f"unknown identity {name_or_value!r}; valid names: {sorted(IDENTITIES)}"
            ) from None
    return dt.type(name_or_value)


def binary_result_dtype(name: str, a_dtype, b_dtype) -> np.dtype:
    """Natural output dtype of binary op *name* on the given operand dtypes,
    following the C++ rules of Sec. V (comparisons -> bool, arithmetic ->
    promoted operand type, selectors -> chosen operand type)."""
    d = binary_def(name)
    a_dtype = normalize_dtype(a_dtype)
    b_dtype = normalize_dtype(b_dtype)
    if d.kind in ("compare", "logical"):
        return np.dtype(np.bool_)
    if d.name == "First":
        return a_dtype
    if d.name == "Second":
        return b_dtype
    res = np.promote_types(a_dtype, b_dtype)
    # C++ promotes bool operands of arithmetic operators to int
    if res == np.bool_ and d.kind == "arith":
        res = np.dtype(np.int64)
    return np.dtype(res)


def apply_binary(name: str, a: np.ndarray, b: np.ndarray, out_dtype=None) -> np.ndarray:
    """Elementwise application of binary op *name*, cast to *out_dtype*."""
    d = binary_def(name)
    res = d.func(a, b)
    if out_dtype is not None:
        res = np.asarray(res).astype(normalize_dtype(out_dtype), copy=False)
    return np.asarray(res)


def apply_unary(name: str, a: np.ndarray, out_dtype=None) -> np.ndarray:
    """Elementwise application of unary op *name*, cast to *out_dtype*."""
    d = unary_def(name)
    res = d.func(np.asarray(a))
    if out_dtype is not None:
        res = np.asarray(res).astype(normalize_dtype(out_dtype), copy=False)
    return np.asarray(res)


def reduce_ufunc(name: str) -> np.ufunc:
    """The associative ufunc used for monoid reductions with op *name*."""
    d = binary_def(name)
    if d.reduce is None:
        raise UnknownOperator(
            f"binary operator {name!r} is not associative and cannot form a monoid"
        )
    return d.reduce


def segment_reduce_values(name: str, values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Reduce *values* over contiguous segments beginning at *starts* using
    the monoid ufunc for op *name*.

    Every segment must be non-empty (callers build *starts* from grouped,
    sorted data, so this invariant holds by construction; NumPy's
    ``reduceat`` would silently misbehave otherwise).
    """
    uf = reduce_ufunc(name)
    if values.size == 0:
        return values[:0]
    logical = binary_def(name).kind in ("logical",)
    vals = values.astype(bool) if logical else values
    out = uf.reduceat(vals, starts)
    return out
