"""Vectorised primitives shared by every backend kernel.

These are the NumPy equivalents of GBTL's internal template helpers: the
sorted-merge, segment-reduce, expansion and mask-filter routines out of
which the GraphBLAS operations are composed.  Kernels (and the JIT's
generated Python modules) call these with concrete callables/ufuncs bound,
so all per-element work happens inside NumPy.

Conventions
-----------
* Sparse vectors are ``(indices, values)`` pairs with strictly increasing
  ``indices``.
* Sparse matrix intermediates are flat *keys* ``row * ncols + col`` with
  parallel ``values``, strictly increasing — this keeps every matrix merge
  a 1-D sorted-array problem.  (Key encoding asserts ``nrows * ncols``
  fits in int64, which holds for any graph this library targets.)
* ``map2``/``map1`` arguments are elementwise callables (usually NumPy
  ufuncs); ``reduce_uf`` arguments are associative ufuncs used via
  ``reduceat`` over non-empty segments.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "encode_keys",
    "decode_keys",
    "expand_ranges",
    "segment_starts",
    "segment_reduce",
    "coalesce",
    "in_sorted",
    "union_merge",
    "intersect_merge",
    "restrict",
    "finalize",
    "spgemm_expand",
    "spmv_gather",
    "spmv_push",
    "spmv_pull",
    "spmv_pull_logical",
]

_EMPTY_I = np.empty(0, dtype=np.int64)


def encode_keys(rows: np.ndarray, cols: np.ndarray, ncols: int) -> np.ndarray:
    """Flatten ``(row, col)`` coordinates to sortable int64 keys."""
    return rows * np.int64(ncols) + cols


def decode_keys(keys: np.ndarray, ncols: int) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`encode_keys`."""
    return keys // np.int64(ncols), keys % np.int64(ncols)


def expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate the integer ranges ``[starts[i], starts[i]+counts[i])``.

    This is the core of expansion-based SpGEMM: it gathers, for every
    nonzero ``A(i, k)``, the positions of row ``k`` of ``B`` — without a
    Python-level loop.
    """
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return _EMPTY_I
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    return np.repeat(np.asarray(starts, dtype=np.int64), counts) + offsets


def segment_starts(sorted_keys: np.ndarray) -> np.ndarray:
    """Start offsets of each run of equal values in *sorted_keys*."""
    if sorted_keys.size == 0:
        return _EMPTY_I
    boundary = np.empty(sorted_keys.size, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
    return np.flatnonzero(boundary)


def segment_reduce(
    reduce_uf: np.ufunc, values: np.ndarray, starts: np.ndarray, logical: bool = False
) -> np.ndarray:
    """Reduce *values* over the non-empty segments beginning at *starts*."""
    if values.size == 0:
        return values[:0]
    vals = values.astype(bool) if logical else values
    return reduce_uf.reduceat(vals, starts)


def coalesce(
    keys: np.ndarray, values: np.ndarray, reduce_uf: np.ufunc, logical: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Sort *keys* and combine duplicate keys' values with *reduce_uf*.

    Returns strictly-increasing keys with reduced values — the final step
    of expansion SpGEMM, where one output coordinate receives one product
    per shared inner index.
    """
    if keys.size == 0:
        return keys, values
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    values = values[order]
    starts = segment_starts(keys)
    if starts.size == keys.size:  # already duplicate-free
        return keys, values
    return keys[starts], segment_reduce(reduce_uf, values, starts, logical)


def in_sorted(needles: np.ndarray, haystack: np.ndarray) -> np.ndarray:
    """Boolean membership of each *needle* in sorted, unique *haystack*."""
    if haystack.size == 0:
        return np.zeros(needles.shape, dtype=bool)
    pos = np.searchsorted(haystack, needles)
    pos_clipped = np.minimum(pos, haystack.size - 1)
    return haystack[pos_clipped] == needles


def union_merge(
    keys_a: np.ndarray,
    vals_a: np.ndarray,
    keys_b: np.ndarray,
    vals_b: np.ndarray,
    map2,
    out_dtype: np.dtype,
) -> tuple[np.ndarray, np.ndarray]:
    """GraphBLAS ``eWiseAdd`` structure: the union of both patterns, with
    *map2* applied where both sides have an entry and values passing
    through unchanged where only one side does.

    *map2* receives ``(a_values, b_values)`` in that argument order, which
    matters for non-commutative operators such as ``Minus``.
    """
    if keys_a.size == 0:
        return keys_b.copy(), vals_b.astype(out_dtype, copy=True)
    if keys_b.size == 0:
        return keys_a.copy(), vals_a.astype(out_dtype, copy=True)
    common_dt = np.promote_types(vals_a.dtype, vals_b.dtype)
    keys = np.concatenate([keys_a, keys_b])
    vals = np.concatenate(
        [vals_a.astype(common_dt, copy=False), vals_b.astype(common_dt, copy=False)]
    )
    # stable sort keeps the A entry ahead of the B entry at equal keys
    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    vals = vals[order]
    starts = segment_starts(keys)
    out_vals = vals[starts].astype(out_dtype, copy=True)
    # runs have length 1 or 2; length-2 runs are (A value, B value) pairs
    run_len = np.diff(np.append(starts, keys.size))
    pairs = starts[run_len == 2]
    if pairs.size:
        combined = map2(vals[pairs], vals[pairs + 1])
        out_vals[run_len == 2] = np.asarray(combined).astype(out_dtype, copy=False)
    return keys[starts], out_vals


def intersect_merge(
    keys_a: np.ndarray,
    vals_a: np.ndarray,
    keys_b: np.ndarray,
    vals_b: np.ndarray,
    map2,
    out_dtype: np.dtype,
) -> tuple[np.ndarray, np.ndarray]:
    """GraphBLAS ``eWiseMult`` structure: the intersection of both
    patterns, with *map2* applied to each common entry."""
    if keys_a.size == 0 or keys_b.size == 0:
        return _EMPTY_I, np.empty(0, dtype=out_dtype)
    pos = np.searchsorted(keys_a, keys_b)
    valid = pos < keys_a.size
    match = np.zeros(keys_b.size, dtype=bool)
    match[valid] = keys_a[pos[valid]] == keys_b[valid]
    if not match.any():
        return _EMPTY_I, np.empty(0, dtype=out_dtype)
    a_sel = pos[match]
    out = map2(vals_a[a_sel], vals_b[match])
    return keys_b[match].copy(), np.asarray(out).astype(out_dtype, copy=False)


def restrict(
    keys: np.ndarray,
    vals: np.ndarray,
    mask_keys: np.ndarray,
    complement: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Keep only entries whose key is in (or, complemented, *not* in)
    sorted *mask_keys*.  Complemented masks never densify: the complement
    is taken implicitly through the set operation."""
    member = in_sorted(keys, mask_keys)
    keep = ~member if complement else member
    return keys[keep], vals[keep]


def finalize(
    old_keys: np.ndarray,
    old_vals: np.ndarray,
    t_keys: np.ndarray,
    t_vals: np.ndarray,
    out_dtype: np.dtype,
    mask_keys: np.ndarray | None,
    complement: bool,
    replace: bool,
    accum_map2,
) -> tuple[np.ndarray, np.ndarray]:
    """The output-write stage shared by every GraphBLAS operation:
    ``C<M, z> = C (accum) T`` per the C API Specification.

    1. ``Z = accum(C, T)`` (an eWiseAdd-structured merge) when an
       accumulator is bound, else ``Z = T``;
    2. with no mask, ``C = Z``;
    3. with a mask, inside-mask entries come from ``Z`` (entries *absent*
       from ``Z`` inside the mask are deleted) and outside-mask entries are
       kept (merge) or dropped (*replace*).
    """
    if accum_map2 is not None:
        z_keys, z_vals = union_merge(
            old_keys, old_vals, t_keys, t_vals, accum_map2, out_dtype
        )
    else:
        z_keys, z_vals = t_keys, np.asarray(t_vals).astype(out_dtype, copy=False)
    if mask_keys is None:
        return z_keys, z_vals
    zin_keys, zin_vals = restrict(z_keys, z_vals, mask_keys, complement)
    if replace:
        return zin_keys, zin_vals
    out_keys, out_vals = restrict(old_keys, old_vals, mask_keys, not complement)
    out_vals = out_vals.astype(out_dtype, copy=False)
    if zin_keys.size == 0:
        return out_keys, out_vals
    if out_keys.size == 0:
        return zin_keys, zin_vals
    keys = np.concatenate([out_keys, zin_keys])
    vals = np.concatenate([out_vals, zin_vals])
    order = np.argsort(keys, kind="stable")
    return keys[order], vals[order]


def spgemm_expand(
    a_rows: np.ndarray,
    a_cols: np.ndarray,
    a_vals: np.ndarray,
    b_indptr: np.ndarray,
    b_indices: np.ndarray,
    b_vals: np.ndarray,
    ncols_out: int,
    map2,
    reduce_uf: np.ufunc,
    out_dtype: np.dtype,
    logical: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Expansion (ESC: expand, sort, compress) SpGEMM over an arbitrary
    semiring: for every nonzero ``A(i, k)`` gather row ``k`` of B, multiply
    with *map2*, then coalesce duplicate output coordinates with
    *reduce_uf* — the ``⊕`` of the semiring.

    Returns sorted flat keys (``i * ncols_out + j``) and reduced values.
    """
    counts = (b_indptr[a_cols + 1] - b_indptr[a_cols]).astype(np.int64)
    pos = expand_ranges(b_indptr[a_cols], counts)
    if pos.size == 0:
        return _EMPTY_I, np.empty(0, dtype=out_dtype)
    out_rows = np.repeat(a_rows, counts)
    out_cols = b_indices[pos]
    prods = map2(np.repeat(a_vals, counts), b_vals[pos])
    keys = encode_keys(out_rows, out_cols, ncols_out)
    keys, vals = coalesce(keys, np.asarray(prods), reduce_uf, logical)
    return keys, vals.astype(out_dtype, copy=False)


def spmv_gather(
    indptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    nrows: int,
    x_dense: np.ndarray,
    x_present: np.ndarray,
    map2,
    reduce_uf: np.ufunc,
    out_dtype: np.dtype,
    logical: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Sparse matrix × sparse vector over an arbitrary semiring.

    ``x`` arrives as a dense scatter (``x_dense``/``x_present``) so the
    per-nonzero gather is a single fancy index; products are then
    segment-reduced by row.  Rows with no surviving product produce no
    output entry (GraphBLAS implied-zero semantics).
    """
    sel = x_present[indices]
    if not sel.any():
        return _EMPTY_I, np.empty(0, dtype=out_dtype)
    rows = np.repeat(np.arange(nrows, dtype=np.int64), np.diff(indptr))[sel]
    prods = map2(values[sel], x_dense[indices[sel]])
    starts = segment_starts(rows)
    out_vals = segment_reduce(reduce_uf, np.asarray(prods), starts, logical)
    return rows[starts], out_vals.astype(out_dtype, copy=False)


def spmv_push(
    s_indptr: np.ndarray,
    s_indices: np.ndarray,
    s_values: np.ndarray,
    u_indices: np.ndarray,
    u_values: np.ndarray,
    map2,
    reduce_uf: np.ufunc,
    out_dtype: np.dtype,
    logical: bool = False,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Frontier-driven scatter SpMV: walk only the rows of the *scatter*
    matrix (the transpose of the gather form) named by the stored entries
    of ``u``, examining ``Σ degree(frontier)`` edges instead of ``nnz``.

    *map2* receives ``(matrix_values, broadcast_u_values)``; callers
    wanting ``u ⊗ a`` order (``vxm``) swap inside their callable, exactly
    as the gather path does.  Bit-identity with :func:`spmv_gather`:
    frontier rows expand in ascending inner-index order and
    :func:`coalesce` sorts stably, so each output position reduces its
    products in the same ascending-``k`` order the row gather uses.

    Returns ``(indices, values, edges_examined)``.
    """
    counts = (s_indptr[u_indices + 1] - s_indptr[u_indices]).astype(np.int64)
    pos = expand_ranges(s_indptr[u_indices], counts)
    edges = int(pos.size)
    if edges == 0:
        return _EMPTY_I, np.empty(0, dtype=out_dtype), edges
    out_keys = s_indices[pos]
    prods = map2(s_values[pos], np.repeat(u_values, counts))
    keys, vals = coalesce(out_keys, np.asarray(prods), reduce_uf, logical)
    return keys, vals.astype(out_dtype, copy=False), edges


def spmv_pull(
    indptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    rows: np.ndarray,
    x_dense: np.ndarray,
    x_present: np.ndarray,
    map2,
    reduce_uf: np.ufunc,
    out_dtype: np.dtype,
    logical: bool = False,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Candidate-driven gather SpMV: like :func:`spmv_gather` but scanning
    only the (sorted) candidate *rows* the write mask can accept.

    Only valid under a mask — entries of ``t`` outside the write region
    are never computed, which the masked finalize never reads.  Per-row
    product order matches the full gather (ascending stored position),
    so surviving entries are bit-identical.

    Returns ``(indices, values, edges_examined)``.
    """
    counts = (indptr[rows + 1] - indptr[rows]).astype(np.int64)
    pos = expand_ranges(indptr[rows], counts)
    edges = int(pos.size)
    if edges == 0:
        return _EMPTY_I, np.empty(0, dtype=out_dtype), edges
    k = indices[pos]
    sel = x_present[k]
    if not sel.any():
        return _EMPTY_I, np.empty(0, dtype=out_dtype), edges
    out_rows = np.repeat(rows, counts)[sel]
    prods = map2(values[pos[sel]], x_dense[k[sel]])
    starts = segment_starts(out_rows)
    out_vals = segment_reduce(reduce_uf, np.asarray(prods), starts, logical)
    return out_rows[starts], out_vals.astype(out_dtype, copy=False), edges


def spmv_pull_logical(
    indptr: np.ndarray,
    indices: np.ndarray,
    values: np.ndarray,
    rows: np.ndarray,
    x_dense: np.ndarray,
    x_present: np.ndarray,
    map2,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Early-exiting pull for the ``LogicalOr`` add monoid (Beamer's
    bottom-up BFS step): a candidate row is finished at its first true
    product, so dense frontiers cost ``O(candidates)`` row scans of a few
    edges each instead of ``Σ degree(candidates)``.

    Rows are scanned in geometrically growing blocks (4, 8, … 4096
    edges), all still-active rows per pass in one vectorised step; a row
    retires when it produces a true product or exhausts its neighbours.
    The result is independent of the block schedule — an output entry
    exists iff the row has **any** present neighbour (even an all-false
    one, matching implied-zero semantics of the full reduction) and its
    boolean value is the OR of the products — so this is bit-identical
    to :func:`spmv_pull` with ``logical=True``.

    ``edges_examined`` counts gathered block entries (deterministic,
    block-granular — slightly above the per-edge count a sequential scan
    would report).

    Returns ``(indices, bool_values, edges_examined)``.
    """
    nact = rows.size
    if nact == 0:
        return _EMPTY_I, np.empty(0, dtype=bool), 0
    cur = indptr[rows].astype(np.int64, copy=True)
    end = indptr[rows + 1].astype(np.int64, copy=False)
    seen = np.zeros(nact, dtype=bool)  # any present neighbour
    hit = np.zeros(nact, dtype=bool)  # any true product
    active = np.flatnonzero(cur < end)
    edges = 0
    block = 4
    while active.size:
        take = np.minimum(end[active] - cur[active], block)
        pos = expand_ranges(cur[active], take)
        edges += int(pos.size)
        k = indices[pos]
        pres = x_present[k]
        prod_true = np.zeros(pos.size, dtype=bool)
        if pres.any():
            pv = map2(values[pos[pres]], x_dense[k[pres]])
            prod_true[pres] = np.asarray(pv).astype(bool)
        starts = np.empty(active.size, dtype=np.int64)
        starts[0] = 0
        np.cumsum(take[:-1], out=starts[1:])
        seen[active] |= np.logical_or.reduceat(pres, starts)
        hit[active] |= np.logical_or.reduceat(prod_true, starts)
        cur[active] += take
        active = active[~hit[active] & (cur[active] < end[active])]
        block = min(block * 2, 4096)
    return rows[seen], hit[seen], edges
