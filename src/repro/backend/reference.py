"""Naive dict-of-keys reference implementation of every GraphBLAS operation.

This module is the *test oracle*: a direct, loop-based transliteration of
the C API Specification's mathematical definitions, written for obvious
correctness rather than speed.  Property and differential tests compare
the vectorised kernels (and the C++ JIT backend) against these functions
entry by entry.

Containers here are plain dicts: ``{index: value}`` for vectors and
``{(row, col): value}`` for matrices; scalars are Python numbers.
"""

from __future__ import annotations

import numpy as np

from . import ops_table

__all__ = [
    "ref_mxm",
    "ref_mxv",
    "ref_vxm",
    "ref_ewise_add",
    "ref_ewise_mult",
    "ref_apply",
    "ref_reduce_scalar",
    "ref_reduce_rows",
    "ref_transpose_dict",
    "ref_extract_mat",
    "ref_extract_vec",
    "ref_assign_mat",
    "ref_assign_vec",
    "ref_finalize_vec",
    "ref_finalize_mat",
]


def _b(name: str):
    func = ops_table.binary_def(name).func

    def scalar_op(a, b):
        return np.asarray(func(np.asarray(a), np.asarray(b))).item()

    return scalar_op


def _u(op_spec):
    if op_spec[0] == "unary":
        f = ops_table.unary_def(op_spec[1]).func
        return lambda v: np.asarray(f(np.asarray(v))).item()
    _, name, const, side = op_spec
    f = _b(name)
    if side == "first":
        return lambda v: f(const, v)
    return lambda v: f(v, const)


def _cast(value, dtype):
    return np.dtype(dtype).type(value).item()


# ----------------------------------------------------------------------
# raw operations (no mask / accumulate — those are ref_finalize_*)
# ----------------------------------------------------------------------


def ref_mxm(a: dict, b: dict, add_op: str, mult_op: str) -> dict:
    """T(i, j) = ⊕_k A(i, k) ⊗ B(k, j), over stored entries only."""
    add, mult = _b(add_op), _b(mult_op)
    out: dict = {}
    b_by_row: dict = {}
    for (k, j), bv in b.items():
        b_by_row.setdefault(k, []).append((j, bv))
    for (i, k), av in a.items():
        for j, bv in b_by_row.get(k, ()):
            p = mult(av, bv)
            out[(i, j)] = add(out[(i, j)], p) if (i, j) in out else p
    return out


def ref_mxv(a: dict, u: dict, add_op: str, mult_op: str) -> dict:
    """T(i) = ⊕_j A(i, j) ⊗ u(j)."""
    add, mult = _b(add_op), _b(mult_op)
    out: dict = {}
    for (i, j), av in a.items():
        if j in u:
            p = mult(av, u[j])
            out[i] = add(out[i], p) if i in out else p
    return out


def ref_vxm(u: dict, a: dict, add_op: str, mult_op: str) -> dict:
    """T(j) = ⊕_i u(i) ⊗ A(i, j)."""
    add, mult = _b(add_op), _b(mult_op)
    out: dict = {}
    for (i, j), av in a.items():
        if i in u:
            p = mult(u[i], av)
            out[j] = add(out[j], p) if j in out else p
    return out


def ref_ewise_add(a: dict, b: dict, op: str) -> dict:
    """Union structure; *op* applied only where both sides are stored."""
    f = _b(op)
    out = dict(a)
    for k, bv in b.items():
        out[k] = f(a[k], bv) if k in a else bv
    return out


def ref_ewise_mult(a: dict, b: dict, op: str) -> dict:
    """Intersection structure."""
    f = _b(op)
    return {k: f(av, b[k]) for k, av in a.items() if k in b}


def ref_apply(a: dict, op_spec) -> dict:
    f = _u(op_spec)
    return {k: f(v) for k, v in a.items()}


def ref_reduce_scalar(a: dict, op: str, identity=None, dtype=np.float64):
    """Monoid reduction of all stored values; identity when empty."""
    if identity is None:
        identity = ops_table.DEFAULT_IDENTITY_NAME[op]
    acc = np.asarray(ops_table.identity_value(identity, dtype)).item()
    f = _b(op)
    for v in a.values():
        acc = f(acc, v)
    return _cast(acc, dtype)


def ref_reduce_rows(a: dict, op: str) -> dict:
    """Row-wise monoid reduction; empty rows produce no entry."""
    f = _b(op)
    out: dict = {}
    for (i, _j), v in sorted(a.items()):
        out[i] = f(out[i], v) if i in out else v
    return out


def ref_transpose_dict(a: dict) -> dict:
    return {(j, i): v for (i, j), v in a.items()}


def ref_extract_mat(a: dict, rows, cols) -> dict:
    out: dict = {}
    for r_out, r_src in enumerate(rows):
        for c_out, c_src in enumerate(cols):
            if (r_src, c_src) in a:
                out[(r_out, c_out)] = a[(r_src, c_src)]
    return out


def ref_extract_vec(u: dict, indices) -> dict:
    return {p: u[i] for p, i in enumerate(indices) if i in u}


def ref_assign_mat(c: dict, a: dict, rows, cols, accum: str | None) -> dict:
    """Region-local replace/merge of GrB_assign (before the mask stage)."""
    out = dict(c)
    region = {(r, s) for r in rows for s in cols}
    if accum is None:
        for k in region:
            out.pop(k, None)
        for (i, j), v in a.items():
            out[(rows[i], cols[j])] = v
    else:
        f = _b(accum)
        for (i, j), v in a.items():
            k = (rows[i], cols[j])
            out[k] = f(c[k], v) if k in c else v
    return out


def ref_assign_vec(c: dict, u: dict, indices, accum: str | None) -> dict:
    out = dict(c)
    if accum is None:
        for i in indices:
            out.pop(i, None)
        for i, v in u.items():
            out[indices[i]] = v
    else:
        f = _b(accum)
        for i, v in u.items():
            k = indices[i]
            out[k] = f(c[k], v) if k in c else v
    return out


# ----------------------------------------------------------------------
# the output-write stage C<M, z> = C (accum) T
# ----------------------------------------------------------------------


def _mask_true(mask: dict | None, key) -> bool:
    return mask is not None and bool(mask.get(key, False))


def ref_finalize_vec(
    c: dict,
    t: dict,
    size: int,
    dtype,
    mask: dict | None,
    complement: bool,
    replace: bool,
    accum: str | None,
) -> dict:
    """Literal transliteration of the C API's masked accumulate-write."""
    if accum is not None:
        f = _b(accum)
        z = dict(c)
        for k, v in t.items():
            z[k] = f(c[k], v) if k in c else v
    else:
        z = dict(t)
    out: dict = {}
    for i in range(size):
        if mask is None:
            in_mask = True
        else:
            in_mask = _mask_true(mask, i) != complement
        if in_mask:
            if i in z:
                out[i] = _cast(z[i], dtype)
        else:
            if not replace and i in c:
                out[i] = _cast(c[i], dtype)
    return out


def ref_finalize_mat(
    c: dict,
    t: dict,
    shape: tuple[int, int],
    dtype,
    mask: dict | None,
    complement: bool,
    replace: bool,
    accum: str | None,
) -> dict:
    if accum is not None:
        f = _b(accum)
        z = dict(c)
        for k, v in t.items():
            z[k] = f(c[k], v) if k in c else v
    else:
        z = dict(t)
    out: dict = {}
    for i in range(shape[0]):
        for j in range(shape[1]):
            k = (i, j)
            if mask is None:
                in_mask = True
            else:
                in_mask = _mask_true(mask, k) != complement
            if in_mask:
                if k in z:
                    out[k] = _cast(z[k], dtype)
            else:
                if not replace and k in c:
                    out[k] = _cast(c[k], dtype)
    return out
