"""Sparse matrix storage for the NumPy backend.

:class:`SparseMatrix` is a CSR (compressed sparse row) container with
sorted, duplicate-free column indices within each row — the same layout
GBTL's ``LilSparseMatrix``/CSR backends expose to their kernels.  The
transpose is materialised lazily and cached, because the evaluated
algorithms (BFS, SSSP) multiply by ``graph.T`` on every iteration.
"""

from __future__ import annotations

import threading

import numpy as np

from ..exceptions import DimensionMismatch, IndexOutOfBounds
from ..types import normalize_dtype

__all__ = ["SparseMatrix"]

#: guards lazy memo construction (transpose, row lengths, degree stats)
#: when server threads share one preloaded matrix.  Module-level to keep
#: __slots__ instances light; reentrant because ``transposed`` builds
#: through ``coo`` → ``row_lengths`` under the same lock.
_MEMO_LOCK = threading.RLock()


class SparseMatrix:
    """CSR sparse matrix; kernels treat instances as immutable."""

    __slots__ = (
        "nrows",
        "ncols",
        "indptr",
        "indices",
        "values",
        "_transpose_cache",
        "_lengths_cache",
        "_degree_stats_cache",
    )

    def __init__(
        self,
        nrows: int,
        ncols: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
    ):
        self.nrows = int(nrows)
        self.ncols = int(ncols)
        self.indptr = indptr
        self.indices = indices
        self.values = values
        self._transpose_cache: "SparseMatrix | None" = None
        # memoized degree statistics (row_lengths / degree_stats); like the
        # transpose cache these are safe because instances are immutable by
        # convention, never shared across copy/astype, and built under
        # _MEMO_LOCK when concurrent server threads race the first touch
        self._lengths_cache: np.ndarray | None = None
        self._degree_stats_cache: tuple[int, int] | None = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, nrows: int, ncols: int, dtype) -> "SparseMatrix":
        dt = normalize_dtype(dtype)
        return cls(
            nrows,
            ncols,
            np.zeros(nrows + 1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=dt),
        )

    @classmethod
    def from_coo(
        cls, nrows: int, ncols: int, rows, cols, values, dtype=None, dup_op="Second"
    ) -> "SparseMatrix":
        """Build from unordered COO triples, combining duplicates with
        *dup_op* (default last-wins, GBTL's build behaviour)."""
        from . import ops_table

        r = np.asarray(rows, dtype=np.int64).ravel()
        c = np.asarray(cols, dtype=np.int64).ravel()
        v = np.asarray(values)
        if np.isscalar(values) or v.ndim == 0:
            v = np.broadcast_to(v, r.shape).copy()
        dt = normalize_dtype(dtype) if dtype is not None else None
        if dt is not None:
            v = v.astype(dt, copy=False)
        if not (r.size == c.size == v.size):
            raise DimensionMismatch(
                f"COO arrays disagree: {r.size} rows, {c.size} cols, {v.size} values"
            )
        if r.size:
            if r.min() < 0 or r.max() >= nrows:
                raise IndexOutOfBounds(f"row index out of range for {nrows} rows")
            if c.min() < 0 or c.max() >= ncols:
                raise IndexOutOfBounds(f"column index out of range for {ncols} columns")
        order = np.lexsort((c, r))
        r, c, v = r[order], c[order], v[order]
        if r.size > 1:
            dup = (r[1:] == r[:-1]) & (c[1:] == c[:-1])
            if dup.any():
                boundary = np.empty(r.size, dtype=bool)
                boundary[0] = True
                boundary[1:] = ~dup
                starts = np.flatnonzero(boundary)
                if dup_op == "Second":
                    ends = np.append(starts[1:], r.size) - 1
                    r, c, v = r[starts], c[starts], v[ends]
                elif dup_op == "First":
                    r, c, v = r[starts], c[starts], v[starts]
                else:
                    reduced = ops_table.segment_reduce_values(dup_op, v, starts)
                    r, c, v = r[starts], c[starts], reduced.astype(v.dtype, copy=False)
        return cls.from_coo_sorted(nrows, ncols, r, c, v)

    @classmethod
    def from_coo_sorted(
        cls, nrows: int, ncols: int, rows: np.ndarray, cols: np.ndarray, values: np.ndarray
    ) -> "SparseMatrix":
        """Build from row-major-sorted, duplicate-free COO arrays (no sort)."""
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        if rows.size:
            np.add.at(indptr, rows + 1, 1)
            np.cumsum(indptr, out=indptr)
        return cls(nrows, ncols, indptr, cols.astype(np.int64, copy=False), values)

    @classmethod
    def from_dense(cls, array, dtype=None) -> "SparseMatrix":
        """Build from a dense 2-D array.  Matching GBTL's dense constructor,
        **all** elements (zeros included) become stored entries."""
        arr = np.asarray(array)
        if arr.ndim != 2:
            raise DimensionMismatch(f"expected 2-D data, got shape {arr.shape}")
        dt = normalize_dtype(dtype) if dtype is not None else None
        vals = arr.astype(dt) if dt is not None else arr.copy()
        nrows, ncols = arr.shape
        indptr = np.arange(0, nrows * ncols + 1, ncols, dtype=np.int64)
        indices = np.tile(np.arange(ncols, dtype=np.int64), nrows)
        return cls(nrows, ncols, indptr, indices, vals.ravel())

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nvals(self) -> int:
        return int(self.indices.size)

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    # ------------------------------------------------------------------
    # derived forms
    # ------------------------------------------------------------------
    def coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(rows, cols, values)`` in row-major order (cols ascend within
        each row); rows are expanded from the CSR row pointer."""
        rows = np.repeat(
            np.arange(self.nrows, dtype=np.int64), self.row_lengths()
        )
        return rows, self.indices, self.values

    def row_lengths(self) -> np.ndarray:
        """Per-row entry counts (memoized, read-only).

        The schedule cost model consults these on every traversal
        iteration and the tile splitter on every partition decision, so
        the ``np.diff`` scan over ``indptr`` runs at most once per store.
        """
        lengths = self._lengths_cache
        if lengths is None:
            with _MEMO_LOCK:
                lengths = self._lengths_cache
                if lengths is None:
                    lengths = np.diff(self.indptr)
                    lengths.flags.writeable = False
                    self._lengths_cache = lengths
        return lengths

    def degree_stats(self) -> tuple[int, int]:
        """``(total_nnz, max_degree)``, memoized alongside row_lengths."""
        stats = self._degree_stats_cache
        if stats is None:
            with _MEMO_LOCK:
                stats = self._degree_stats_cache
                if stats is None:
                    lengths = self.row_lengths()
                    stats = self._degree_stats_cache = (
                        int(self.indptr[-1]) if self.indptr.size else 0,
                        int(lengths.max()) if lengths.size else 0,
                    )
        return stats

    def transposed(self) -> "SparseMatrix":
        """CSR of the transpose (cached; shared immutable arrays)."""
        t = self._transpose_cache
        if t is None:
            with _MEMO_LOCK:
                t = self._transpose_cache
                if t is None:
                    rows, cols, vals = self.coo()
                    order = np.lexsort((rows, cols))
                    t = SparseMatrix.from_coo_sorted(
                        self.ncols, self.nrows, cols[order], rows[order], vals[order]
                    )
                    t._transpose_cache = self
                    self._transpose_cache = t
        return t

    def row_vector(self, i: int):
        """Row *i* as a SparseVector of size ``ncols`` (zero-copy slices)."""
        from .svector import SparseVector

        if not 0 <= i < self.nrows:
            raise IndexOutOfBounds(f"row {i} out of range for {self.nrows} rows")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return SparseVector.from_sorted(self.ncols, self.indices[lo:hi], self.values[lo:hi])

    def to_dense(self, fill=0) -> np.ndarray:
        out = np.full((self.nrows, self.ncols), fill, dtype=self.dtype)
        rows, cols, vals = self.coo()
        out[rows, cols] = vals
        return out

    def get(self, i: int, j: int, default=None):
        """Stored value at ``(i, j)``, or *default*."""
        if not (0 <= i < self.nrows and 0 <= j < self.ncols):
            raise IndexOutOfBounds(f"({i}, {j}) out of range for shape {self.shape}")
        lo, hi = self.indptr[i], self.indptr[i + 1]
        pos = lo + np.searchsorted(self.indices[lo:hi], j)
        if pos < hi and self.indices[pos] == j:
            return self.values[pos]
        return default

    def astype(self, dtype) -> "SparseMatrix":
        dt = normalize_dtype(dtype)
        if dt == self.dtype:
            return self
        return SparseMatrix(
            self.nrows, self.ncols, self.indptr, self.indices, self.values.astype(dt)
        )

    def copy(self) -> "SparseMatrix":
        return SparseMatrix(
            self.nrows,
            self.ncols,
            self.indptr.copy(),
            self.indices.copy(),
            self.values.copy(),
        )

    def to_dict(self) -> dict[tuple[int, int], object]:
        """Plain ``{(i, j): value}`` dict (reference-implementation format)."""
        rows, cols, vals = self.coo()
        return {
            (int(i), int(j)): v.item() for i, j, v in zip(rows, cols, vals)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SparseMatrix(shape={self.shape}, nvals={self.nvals}, dtype={self.dtype})"
        )
