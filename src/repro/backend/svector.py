"""Sparse vector storage for the NumPy backend.

A :class:`SparseVector` stores the stored (explicit) entries of a
GraphBLAS vector as a pair of parallel arrays — strictly increasing
``indices`` and same-length ``values`` — mirroring GBTL's
``Vector`` container.  Entries absent from ``indices`` are *implied
zeros* in the GraphBLAS sense: they do not participate in operations.
"""

from __future__ import annotations

import threading

import numpy as np

from ..exceptions import DimensionMismatch, IndexOutOfBounds
from ..types import normalize_dtype

__all__ = ["SparseVector"]

#: guards lazy memo construction when server threads share one vector.
#: Module-level (not per-instance) to keep __slots__ instances light —
#: builds are rare, so contention is negligible; reentrant because
#: ``true_bitmap`` builds via ``bool_indices`` under the same lock.
_MEMO_LOCK = threading.RLock()


class SparseVector:
    """Immutable-by-convention sorted-coordinate sparse vector.

    Kernels never mutate a ``SparseVector`` in place; they build new ones
    via :meth:`from_sorted` / :meth:`from_coo`.  This keeps aliasing rules
    trivial (``w[None] += A @ w`` reads and writes the same vector).
    """

    __slots__ = ("size", "indices", "values", "_repr_cache")

    def __init__(self, size: int, indices: np.ndarray, values: np.ndarray):
        self.size = int(size)
        self.indices = indices
        self.values = values
        # lazily built dense representations (dense_lookup / bool_indices
        # / true_bitmap results); safe to memoize because vectors are
        # immutable by convention — see the class docstring
        self._repr_cache = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, size: int, dtype) -> "SparseVector":
        """A vector of dimension *size* with no stored entries."""
        dt = normalize_dtype(dtype)
        return cls(size, np.empty(0, dtype=np.int64), np.empty(0, dtype=dt))

    @classmethod
    def from_coo(cls, size: int, indices, values, dtype=None, dup_op="Second") -> "SparseVector":
        """Build from unordered coordinate data, combining duplicate
        indices with *dup_op* (default: last one wins, matching GBTL's
        build with ``Second``)."""
        from . import ops_table

        idx = np.asarray(indices, dtype=np.int64).ravel()
        dt = normalize_dtype(dtype) if dtype is not None else None
        vals = np.asarray(values)
        if np.isscalar(values) or vals.ndim == 0:
            vals = np.broadcast_to(vals, idx.shape).copy()
        if dt is not None:
            vals = vals.astype(dt, copy=False)
        if idx.size != vals.size:
            raise DimensionMismatch(
                f"index array has {idx.size} entries but value array has {vals.size}"
            )
        if idx.size and (idx.min() < 0 or idx.max() >= size):
            raise IndexOutOfBounds(f"vector index out of range for size {size}")
        if idx.size == 0:
            return cls(size, idx, vals)
        order = np.argsort(idx, kind="stable")
        idx = idx[order]
        vals = vals[order]
        if idx.size > 1 and (np.diff(idx) == 0).any():
            # combine duplicates with dup_op over each run
            boundary = np.empty(idx.size, dtype=bool)
            boundary[0] = True
            boundary[1:] = idx[1:] != idx[:-1]
            starts = np.flatnonzero(boundary)
            if dup_op == "Second":
                # last value of each run wins
                ends = np.append(starts[1:], idx.size) - 1
                idx, vals = idx[starts], vals[ends]
            elif dup_op == "First":
                idx, vals = idx[starts], vals[starts]
            else:
                reduced = ops_table.segment_reduce_values(dup_op, vals, starts)
                idx, vals = idx[starts], reduced.astype(vals.dtype, copy=False)
        return cls(size, idx, vals)

    @classmethod
    def from_sorted(cls, size: int, indices: np.ndarray, values: np.ndarray) -> "SparseVector":
        """Wrap already-sorted, duplicate-free coordinate arrays (no copy)."""
        return cls(size, indices, values)

    @classmethod
    def from_dense(cls, array, dtype=None) -> "SparseVector":
        """Build from a dense 1-D array; **every** element becomes a stored
        entry (GraphBLAS containers built from dense data are full)."""
        arr = np.asarray(array)
        if arr.ndim != 1:
            raise DimensionMismatch(f"expected 1-D data, got shape {arr.shape}")
        dt = normalize_dtype(dtype) if dtype is not None else None
        vals = arr.astype(dt, copy=True) if dt is not None else arr.copy()
        return cls(arr.size, np.arange(arr.size, dtype=np.int64), vals)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def nvals(self) -> int:
        """Number of stored entries."""
        return int(self.indices.size)

    @property
    def dtype(self) -> np.dtype:
        return self.values.dtype

    # ------------------------------------------------------------------
    # conversions / access
    # ------------------------------------------------------------------
    def to_dense(self, fill=0) -> np.ndarray:
        """Dense 1-D array with *fill* in place of implied zeros."""
        out = np.full(self.size, fill, dtype=self.dtype)
        out[self.indices] = self.values
        return out

    def dense_lookup(self, fill=0) -> tuple[np.ndarray, np.ndarray]:
        """``(values, present)`` dense arrays for O(1) gather by index.

        The default (``fill=0``) pair is built once and memoized
        (read-only) — the schedule layer's dense-frontier fast path, so
        repeated dispatches against the same vector (engine fallback
        retries, multi-op iterations) scatter at most once."""
        zero_fill = isinstance(fill, (int, float, bool)) and fill == 0

        def build():
            vals = np.full(self.size, 0 if zero_fill else fill, dtype=self.dtype)
            present = np.zeros(self.size, dtype=bool)
            vals[self.indices] = self.values
            present[self.indices] = True
            if zero_fill:
                vals.setflags(write=False)
                present.setflags(write=False)
            return vals, present

        if zero_fill:
            return self._memo("dense", build)
        return build()

    def get(self, i: int, default=None):
        """Stored value at index *i*, or *default*."""
        if not 0 <= i < self.size:
            raise IndexOutOfBounds(f"index {i} out of range for size {self.size}")
        pos = np.searchsorted(self.indices, i)
        if pos < self.indices.size and self.indices[pos] == i:
            return self.values[pos]
        return default

    def bool_indices(self) -> np.ndarray:
        """Indices of entries whose value coerces to True (mask support).

        Memoized (read-only): masks are consulted by both the schedule
        resolver and the write-back stage of the same dispatch."""
        def build():
            out = self.indices[self.values.astype(bool)]
            out.setflags(write=False)
            return out

        return self._memo("bool", build)

    def true_bitmap(self) -> np.ndarray:
        """Dense boolean bitmap of the true-valued entries — the schedule
        layer's dense frontier representation (memoized, read-only)."""
        def build():
            bitmap = np.zeros(self.size, dtype=bool)
            bitmap[self.bool_indices()] = True
            bitmap.setflags(write=False)
            return bitmap

        return self._memo("bitmap", build)

    def _memo(self, key: str, build):
        """Double-checked memoization: lock-free on a hit; on a miss,
        *build* runs exactly once under the module lock.  Without the
        lock, two server threads touching a shared vector could each
        build the representation and one could publish into a dict the
        other just replaced, losing the memo."""
        cache = self._repr_cache
        if cache is not None:
            value = cache.get(key)
            if value is not None:
                return value
        with _MEMO_LOCK:
            if self._repr_cache is None:
                self._repr_cache = {}
            value = self._repr_cache.get(key)
            if value is None:
                value = build()
                self._repr_cache[key] = value
            return value

    def astype(self, dtype) -> "SparseVector":
        dt = normalize_dtype(dtype)
        if dt == self.dtype:
            return self
        return SparseVector(self.size, self.indices, self.values.astype(dt))

    def copy(self) -> "SparseVector":
        return SparseVector(self.size, self.indices.copy(), self.values.copy())

    def to_dict(self) -> dict[int, object]:
        """Plain ``{index: value}`` dict (reference-implementation format)."""
        return {int(i): self.values[k].item() for k, i in enumerate(self.indices)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SparseVector(size={self.size}, nvals={self.nvals}, dtype={self.dtype})"
        )
