"""Row-blocked CSR storage for the tiled data plane.

:class:`TiledMatrix` is a :class:`SparseMatrix` whose row space carries a
partition into contiguous row blocks with nnz-balanced boundaries (computed
from the memoized ``row_lengths()`` cumulative sums already stored in
``indptr``).  Because it *is* a ``SparseMatrix`` — same arrays, same
invariants — every existing kernel can consume it monolithically; the
``PartitionedEngine`` in ``core/dispatch.py`` additionally knows how to fan
row-disjoint operations out over the blocks and merge the partial results.

Tiles themselves are plain ``SparseMatrix`` zero-copy views: block *k*
covering rows ``[r0, r1)`` shares ``indices``/``values`` slices and rebases
``indptr`` by a single vectorised subtraction.  The helpers below implement
the row-space algebra the executor needs: slicing vectors, masks and
descriptors down to a block, and concatenating per-block outputs back into
one container (CSR stacking for matrices, index rebasing for vectors).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..types import normalize_dtype
from .smatrix import SparseMatrix
from .svector import SparseVector

__all__ = [
    "TiledMatrix",
    "nnz_balanced_splits",
    "row_block",
    "slice_vec_rows",
    "slice_desc_rows",
    "concat_vec_parts",
    "concat_mat_parts",
]


def nnz_balanced_splits(indptr: np.ndarray, nrows: int, ntiles: int) -> np.ndarray:
    """Row boundaries ``[0, r1, ..., nrows]`` splitting the matrix into at
    most *ntiles* contiguous blocks with roughly equal nnz.

    ``indptr`` already *is* the cumulative row-length sum, so the k-th
    boundary is just a ``searchsorted`` for ``k/ntiles`` of the total nnz —
    no rescan of the row lengths.  Degenerate rows (a single hub holding
    most of the nnz) collapse neighbouring cuts; ``np.unique`` then yields
    fewer, still-balanced tiles rather than empty ones.
    """
    n = min(int(ntiles), max(int(nrows), 1))
    if n <= 1 or nrows <= 1:
        return np.array([0, nrows], dtype=np.int64)
    nnz = int(indptr[-1]) if len(indptr) else 0
    if nnz == 0:
        cuts = np.linspace(0, nrows, n + 1).astype(np.int64)
    else:
        targets = np.arange(1, n, dtype=np.float64) * (nnz / n)
        inner = np.searchsorted(indptr, targets, side="left").astype(np.int64)
        inner = np.clip(inner, 1, nrows - 1)
        cuts = np.concatenate(([0], inner, [nrows]))
    return np.unique(cuts)


def row_block(m: SparseMatrix, r0: int, r1: int) -> SparseMatrix:
    """Rows ``[r0, r1)`` of *m* as a plain CSR view (zero-copy data)."""
    lo = int(m.indptr[r0])
    hi = int(m.indptr[r1])
    return SparseMatrix(
        r1 - r0,
        m.ncols,
        m.indptr[r0 : r1 + 1] - lo,
        m.indices[lo:hi],
        m.values[lo:hi],
    )


class TiledMatrix(SparseMatrix):
    """CSR matrix carrying an nnz-balanced row partition.

    Invariants: ``splits`` is a strictly increasing int64 array starting at
    0 and ending at ``nrows``; ``ntiles == len(splits) - 1``.  A trivial
    partition (``[0, nrows]``) is allowed and means "monolithic".
    """

    __slots__ = ("splits", "_tiles_cache")

    def __init__(self, nrows, ncols, indptr, indices, values, splits=None):
        super().__init__(nrows, ncols, indptr, indices, values)
        if splits is None:
            splits = np.array([0, self.nrows], dtype=np.int64)
        self.splits = splits
        self._tiles_cache: list[SparseMatrix] | None = None

    @classmethod
    def from_monolithic(cls, m: SparseMatrix, ntiles: int) -> "TiledMatrix":
        """Re-view *m*'s arrays under an nnz-balanced partition (no copy).

        The degree-statistic memos carry over (read-only arrays, same
        data); the transpose cache does not — a tiled matrix transposes
        into a tiled matrix with its own row-balanced splits.
        """
        t = cls(
            m.nrows,
            m.ncols,
            m.indptr,
            m.indices,
            m.values,
            nnz_balanced_splits(m.indptr, m.nrows, ntiles),
        )
        t._lengths_cache = m._lengths_cache
        t._degree_stats_cache = m._degree_stats_cache
        return t

    @property
    def ntiles(self) -> int:
        return len(self.splits) - 1

    def tiles(self) -> list[SparseMatrix]:
        """The row blocks as plain CSR views (lazy, cached)."""
        if self._tiles_cache is None:
            self._tiles_cache = [
                row_block(self, int(self.splits[k]), int(self.splits[k + 1]))
                for k in range(self.ntiles)
            ]
        return self._tiles_cache

    def transposed(self) -> "TiledMatrix":
        if self._transpose_cache is None:
            rows, cols, vals = self.coo()
            order = np.lexsort((rows, cols))
            base = SparseMatrix.from_coo_sorted(
                self.ncols, self.nrows, cols[order], rows[order], vals[order]
            )
            t = TiledMatrix.from_monolithic(base, self.ntiles)
            t._transpose_cache = self
            self._transpose_cache = t
        return self._transpose_cache

    def astype(self, dtype) -> "TiledMatrix":
        dt = normalize_dtype(dtype)
        if dt == self.dtype:
            return self
        return TiledMatrix(
            self.nrows,
            self.ncols,
            self.indptr,
            self.indices,
            self.values.astype(dt),
            self.splits,
        )

    def copy(self) -> "TiledMatrix":
        return TiledMatrix(
            self.nrows,
            self.ncols,
            self.indptr.copy(),
            self.indices.copy(),
            self.values.copy(),
            self.splits.copy(),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TiledMatrix(shape={self.shape}, nvals={self.nvals}, "
            f"dtype={self.dtype}, ntiles={self.ntiles})"
        )


def slice_vec_rows(v: SparseVector, r0: int, r1: int) -> SparseVector:
    """Entries of *v* with index in ``[r0, r1)``, rebased to the block."""
    lo = int(np.searchsorted(v.indices, r0))
    hi = int(np.searchsorted(v.indices, r1))
    return SparseVector.from_sorted(r1 - r0, v.indices[lo:hi] - r0, v.values[lo:hi])


def slice_desc_rows(desc, r0: int, r1: int):
    """Descriptor restricted to output rows ``[r0, r1)``.

    Masks are positionwise, so slicing the mask's row range commutes with
    ``finalize`` — this is what makes per-block finalize + concat
    bit-identical to the monolithic path.  ``accum``/``replace``/
    ``complement`` carry over unchanged.
    """
    mask = desc.mask
    if mask is None:
        return desc
    if isinstance(mask, SparseMatrix):
        sliced = row_block(mask, r0, r1)
    else:
        sliced = slice_vec_rows(mask, r0, r1)
    return dataclasses.replace(desc, mask=sliced)


def concat_vec_parts(parts, size: int, splits: np.ndarray) -> SparseVector:
    """Merge per-block vector outputs: rebase indices by the block start
    and concatenate (blocks are row-disjoint and in ascending order)."""
    idx = [
        p.indices + int(splits[k]) for k, p in enumerate(parts) if p.indices.size
    ]
    if not idx:
        return SparseVector.from_sorted(
            size, np.empty(0, dtype=np.int64), np.empty(0, dtype=parts[0].values.dtype)
        )
    vals = [p.values for p in parts if p.indices.size]
    return SparseVector.from_sorted(size, np.concatenate(idx), np.concatenate(vals))


def concat_mat_parts(parts, ncols: int) -> SparseMatrix:
    """Merge per-block matrix outputs by CSR stacking: shift each block's
    row pointer by the running nnz offset and concatenate the data."""
    nrows = sum(p.nrows for p in parts)
    indptrs = [np.asarray(parts[0].indptr, dtype=np.int64)]
    off = int(parts[0].indptr[-1])
    for p in parts[1:]:
        indptrs.append(p.indptr[1:] + off)
        off += int(p.indptr[-1])
    return SparseMatrix(
        nrows,
        ncols,
        np.concatenate(indptrs),
        np.concatenate([p.indices for p in parts]),
        np.concatenate([p.values for p in parts]),
    )
