"""The PyGB DSL: containers, operators, context managers and deferred
expressions (the paper's primary contribution, Secs. III-IV)."""

from .operators import (
    Accumulator,
    BinaryOp,
    Monoid,
    Semiring,
    UnaryOp,
)
from .context import Replace, current_backend_engine, current_raw_engine, use_engine
from .matrix import Matrix
from .vector import Vector
from .functions import apply, kron, reduce, select, transpose
from .nonblocking import nonblocking, wait

__all__ = [
    "Matrix",
    "Vector",
    "UnaryOp",
    "BinaryOp",
    "Monoid",
    "Semiring",
    "Accumulator",
    "Replace",
    "apply",
    "reduce",
    "transpose",
    "select",
    "kron",
    "use_engine",
    "current_backend_engine",
    "current_raw_engine",
    "nonblocking",
    "wait",
]
