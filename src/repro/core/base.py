"""Shared container behaviour for :class:`~repro.core.matrix.Matrix` and
:class:`~repro.core.vector.Vector`.

The write-side protocol (paper Sec. IV):

* ``C = A @ B`` rebinds ``C`` to a brand-new container;
* ``C[None] = A @ B`` evaluates into the existing container (retaining
  the reference, GBTL's ``NoMask``);
* ``C[None] += expr`` accumulates with the operator inferred from context;
* ``C[M] = expr`` / ``C[~M] = expr`` / ``C[M, True] = expr`` mask the
  write (optionally complemented / with the replace flag).
"""

from __future__ import annotations

import numbers

import numpy as np

from ..exceptions import InvalidValue
from . import operators
from .expressions import Apply, EWiseAdd, EWiseMult, Expression, TransposeView, TransposeExpr
from .masks import (
    ACCUM_APPLIED,
    AccumExpr,
    Complemented,
    MaskedView,
    SetKey,
    build_desc,
    parse_mask_key,
)

__all__ = ["Container"]


def _is_scalar(value) -> bool:
    return isinstance(value, (numbers.Number, np.number, np.bool_))


class Container:
    """Base class: operator overloads and the subscript protocol."""

    is_vector = False
    _backing = None  # backend SparseMatrix / SparseVector
    _nb_entry = None  # pending nonblocking-queue entry writing this container

    # ------------------------------------------------------------------
    # the store accessor doubles as the nonblocking observation point:
    # any read of a pending container's store flushes the lazy queue
    # first (program order), so every conversion / extraction / mask use
    # stays correct in nonblocking mode without per-call-site hooks
    # ------------------------------------------------------------------
    @property
    def _store(self):
        if self._nb_entry is not None:
            from .nonblocking import flush

            flush("observe")
        return self._backing

    @_store.setter
    def _store(self, store):
        if self._nb_entry is not None:
            # an out-of-band rebind (clear(), io helpers) while a write is
            # pending: run the pending program-order writes first
            from .nonblocking import flush

            flush("store-rebind")
        self._backing = store

    # ------------------------------------------------------------------
    # shared properties
    # ------------------------------------------------------------------
    @property
    def nvals(self) -> int:
        """Number of stored values (``GrB_nvals``) — an observation, so it
        flushes pending nonblocking work."""
        return self._store.nvals

    @property
    def dtype(self) -> np.dtype:
        # dtype is write-invariant (kernels preserve the output dtype), so
        # reading it must not force a nonblocking flush
        return self._backing.dtype

    # ------------------------------------------------------------------
    # arithmetic operators build deferred expressions
    # ------------------------------------------------------------------
    def __add__(self, other):
        if _is_scalar(other):
            return Apply(self, operators.UnaryOp(operators.resolve_ewise_add_op(), other))
        return EWiseAdd(self, other)

    def __radd__(self, other):
        if _is_scalar(other):
            return Apply(
                self, operators.UnaryOp(operators.resolve_ewise_add_op(), other, bind="first")
            )
        return EWiseAdd(other, self)

    def __mul__(self, other):
        if _is_scalar(other):
            return Apply(self, operators.UnaryOp(operators.resolve_ewise_mult_op(), other))
        return EWiseMult(self, other)

    def __rmul__(self, other):
        if _is_scalar(other):
            return Apply(
                self, operators.UnaryOp(operators.resolve_ewise_mult_op(), other, bind="first")
            )
        return EWiseMult(other, self)

    def __invert__(self):
        """``~C``: complement when used in mask position (Sec. III)."""
        return Complemented(self)

    def __iadd__(self, other):
        """Plain ``C += expr``: in-place accumulate with the context
        operator — shorthand for ``C[None] += expr``."""
        self.__setitem__(None, AccumExpr(other))
        return self

    # ------------------------------------------------------------------
    # subscript protocol
    # ------------------------------------------------------------------
    def __getitem__(self, key):
        setkey = parse_mask_key(key)
        if setkey is not None:
            return MaskedView(self, setkey)
        return self._extract(key)

    def __setitem__(self, key, value):
        if value is ACCUM_APPLIED:
            # trailing half of `C[M] += expr`: MaskedView.__iadd__ already
            # applied the accumulate with the view's own SetKey
            return
        accum = None
        if isinstance(value, AccumExpr):
            value = value.value
            accum = operators.resolve_accum_op()
        setkey = parse_mask_key(key)
        if setkey is None:
            self._assign(SetKey(), key, value, accum)
        else:
            self._set_masked(setkey, value, accum)

    def _set_masked(self, setkey: SetKey, value, accum: str | None):
        from .nonblocking import enabled, enqueue_set

        if enabled() and enqueue_set(self, setkey, value, accum):
            return
        self._set_masked_exec(setkey, value, accum)

    def _set_masked_exec(self, setkey: SetKey, value, accum: str | None):
        """The dispatching tail of :meth:`_set_masked` — runs eagerly in
        blocking mode, and at flush time (with a frozen ``setkey``) for
        deferred statements."""
        from .plan import evaluate

        desc = build_desc(setkey, accum)
        if isinstance(value, Expression):
            evaluate(value, self, desc)
        elif isinstance(value, TransposeView):
            evaluate(TransposeExpr(value.parent), self, desc)
        elif isinstance(value, Container):
            # C[M] = A: identity-apply of A into C under the mask; also
            # performs the dtype cast of `m[None] = graph` (Fig. 7 line 8)
            evaluate(Apply(value, operators.UnaryOp("Identity")), self, desc)
        elif _is_scalar(value):
            # C[M] = s: masked constant fill over the whole container
            self._assign(setkey, self._full_slice(), value, accum)
        else:
            raise InvalidValue(f"cannot assign object of type {type(value).__name__}")

    def _assign(self, setkey: SetKey, index_key, value, accum=None):
        from .nonblocking import enabled, enqueue_assign

        if enabled() and enqueue_assign(self, setkey, index_key, value, accum):
            return
        self._assign_exec(setkey, index_key, value, accum)

    # subclasses implement:
    def _extract(self, key):  # pragma: no cover - interface
        raise NotImplementedError

    def _assign_exec(self, setkey: SetKey, index_key, value, accum=None):  # pragma: no cover
        raise NotImplementedError

    def _full_slice(self):  # pragma: no cover - interface
        raise NotImplementedError

    # ------------------------------------------------------------------
    # comparisons for tests/debugging (not GraphBLAS operations)
    # ------------------------------------------------------------------
    def isequal(self, other) -> bool:
        """Same shape, same stored pattern, equal stored values."""
        if self.is_vector != getattr(other, "is_vector", None):
            return False
        mine, theirs = self._store, other._store
        if self.is_vector:
            if mine.size != theirs.size:
                return False
        elif mine.shape != theirs.shape:
            return False
        if mine.nvals != theirs.nvals:
            return False
        return self._store.to_dict() == other._store.to_dict()
