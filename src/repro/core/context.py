"""The operator context stack (paper Sec. IV).

``with Semiring(PlusMonoid, "Times"): C = A @ B`` works by pushing the
semiring onto a stack; when an operation later needs an operator it walks
the stack from the innermost entry outward and takes the first object it
can use ("an operation will use the corresponding operator with the
highest precedence, i.e. lowest nested with block with a matching
operator").

The paper notes multi-threading would require one stack per thread; we
store the stack in ``threading.local`` so each thread transparently gets
its own, which is strictly more permissive than the paper's
single-threaded assumption and costs nothing.
"""

from __future__ import annotations

import os
import threading

from .. import obs

__all__ = [
    "push",
    "pop",
    "stack_snapshot",
    "find",
    "Replace",
    "replace_active",
    "use_engine",
    "current_backend_engine",
    "current_raw_engine",
]

_state = threading.local()


def _stack() -> list:
    try:
        return _state.stack
    except AttributeError:
        _state.stack = []
        return _state.stack


def push(obj) -> None:
    """Push an operator (or flag) for the duration of a ``with`` block."""
    _stack().append(obj)


def pop(obj) -> None:
    """Pop *obj*; context managers unwind strictly LIFO, so *obj* must be
    on top (a mismatch indicates interleaved, non-nested ``with`` blocks)."""
    stack = _stack()
    if not stack or stack[-1] is not obj:
        raise RuntimeError(
            "operator context stack corrupted: __exit__ out of LIFO order"
        )
    stack.pop()


def stack_snapshot() -> tuple:
    """The current stack, innermost last (for diagnostics and tests)."""
    return tuple(_stack())


def find(predicate):
    """Innermost stack entry satisfying *predicate*, or None."""
    for obj in reversed(_stack()):
        if predicate(obj):
            return obj
    return None


class _ReplaceFlag:
    """The ``z`` (replace) output flag as a context manager.

    ``with gb.LogicalSemiring, gb.Replace:`` (paper Fig. 2b) clears masked
    output containers before assignment instead of merging.
    """

    def __enter__(self):
        push(self)
        return self

    def __exit__(self, *exc):
        pop(self)
        return False

    def __repr__(self) -> str:
        return "Replace"


Replace = _ReplaceFlag()


def replace_active() -> bool:
    """True when a ``with gb.Replace`` block encloses the call site."""
    return find(lambda o: o is Replace) is not None


# ----------------------------------------------------------------------
# execution-engine selection (interpreted / Python JIT / C++ JIT)
# ----------------------------------------------------------------------

_engine_state = threading.local()


def _default_engine_name() -> str:
    return os.environ.get("PYGB_BACKEND", "pyjit")


#: where an *environment-selected* engine degrades to when it cannot even
#: be constructed (e.g. ``PYGB_BACKEND=cpp`` on a machine with no
#: compiler).  An engine requested explicitly through :func:`use_engine`
#: never degrades — that is a configuration error and raises eagerly.
_ENGINE_DEGRADATION = {"cpp": "pyjit"}


def current_backend_engine():
    """The engine executing GraphBLAS operations for this thread.

    Resolved lazily from ``$PYGB_BACKEND`` (``interpreted``, ``pyjit`` —
    the default — or ``cpp``); override per-scope with :func:`use_engine`.
    When the env-selected engine is unavailable on this machine (no C++
    toolchain) the thread degrades to the next engine down with a warning
    instead of failing the first operation — unless ``PYGB_JIT_STRICT``
    is set.
    """
    engine = getattr(_engine_state, "engine", None)
    if engine is None:
        from ..exceptions import BackendUnavailable, JitFallbackWarning
        from ..jit.health import jit_strict
        from .dispatch import make_engine

        name = _default_engine_name()
        try:
            engine = make_engine(name)
        except BackendUnavailable as exc:
            fallback = _ENGINE_DEGRADATION.get(name)
            if fallback is None or jit_strict():
                raise
            import warnings

            warnings.warn(
                f"pygb: $PYGB_BACKEND={name} is unavailable ({exc}); "
                f"using the {fallback} engine instead "
                "(set PYGB_JIT_STRICT=1 to raise)",
                JitFallbackWarning,
                stacklevel=2,
            )
            engine = make_engine(fallback)
        _engine_state.engine = engine
    # the observability hook: one predicated branch per operation when
    # tracing is off (the layer's zero-cost contract; see repro/obs)
    if obs.ACTIVE:
        return obs.wrap_engine(engine)
    return engine


def current_raw_engine():
    """The thread's engine *without* the observability wrapper.

    The nonblocking queue captures this per entry so deferred statements
    replay on the engine that was current when they were issued; the
    flush re-enters through :func:`current_backend_engine`, which applies
    the tracing wrapper exactly once."""
    engine = getattr(_engine_state, "engine", None)
    if engine is None:
        current_backend_engine()  # resolve (and possibly degrade) once
        engine = _engine_state.engine
    return engine


class use_engine:
    """Context manager (and direct setter) for the execution engine.

    ``use_engine("cpp")`` switches permanently; ``with use_engine("cpp"):``
    switches for a block.  Used by benchmarks to compare the paper's three
    execution versions.
    """

    def __init__(self, name_or_engine):
        from .dispatch import make_engine

        self._previous = getattr(_engine_state, "engine", None)
        if isinstance(name_or_engine, str):
            _engine_state.engine = make_engine(name_or_engine)
        else:
            _engine_state.engine = name_or_engine

    def __enter__(self):
        return _engine_state.engine

    def __exit__(self, *exc):
        _engine_state.engine = self._previous
        return False
