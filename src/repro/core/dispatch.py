"""Execution-engine abstraction — the paper's Fig. 9 dispatch stage.

Every DSL operation funnels through an *engine* exposing one method per
GraphBLAS operation on backend containers.  Three engines implement the
interface:

``interpreted``
    Calls :mod:`repro.backend.kernels` directly, resolving operator names
    through the operator table on **every** call.  This is the "union
    type / generic interpreter" design the paper rejects in Sec. V, kept
    here as the ablation baseline.
``pyjit``  (default)
    The Fig. 9 pipeline with Python code generation: on first use of an
    ``(operation, dtypes, operators, flags)`` combination a specialised
    module is generated, written to the disk cache, and dynamically
    imported; later calls hit the in-memory module cache.
``cpp``
    Identical pipeline, but the generated module is a C++ translation
    unit compiled with ``g++`` against the bundled mini-GBTL header and
    loaded through ``ctypes`` — the paper's actual design.
"""

from __future__ import annotations

from ..backend import kernels as K
from ..exceptions import BackendUnavailable, CompilationError

__all__ = ["InterpretedEngine", "CountingEngine", "ResilientEngine", "make_engine"]


class InterpretedEngine:
    """Direct kernel calls with per-call operator resolution (no JIT)."""

    name = "interpreted"
    #: the planner never rewrites plans for this engine — it is the
    #: unfused ablation baseline the differential tests compare against
    supports_fusion = False

    # -- multiplication ------------------------------------------------
    def mxm(self, out, a, b, add, mult, desc, ta=False, tb=False):
        return K.mxm(out, a, b, add, mult, desc, ta, tb)

    def mxv(self, out, a, u, add, mult, desc, ta=False, sched=None):
        return K.mxv(out, a, u, add, mult, desc, ta, sched)

    def vxm(self, out, u, a, add, mult, desc, ta=False, sched=None):
        return K.vxm(out, u, a, add, mult, desc, ta, sched)

    # -- elementwise ---------------------------------------------------
    def ewise_add_mat(self, out, a, b, op, desc, ta=False, tb=False):
        return K.ewise_add_mat(out, a, b, op, desc, ta, tb)

    def ewise_add_vec(self, out, u, v, op, desc):
        return K.ewise_add_vec(out, u, v, op, desc)

    def ewise_mult_mat(self, out, a, b, op, desc, ta=False, tb=False):
        return K.ewise_mult_mat(out, a, b, op, desc, ta, tb)

    def ewise_mult_vec(self, out, u, v, op, desc):
        return K.ewise_mult_vec(out, u, v, op, desc)

    # -- apply / reduce / transpose -------------------------------------
    def apply_mat(self, out, a, op_spec, desc, ta=False):
        return K.apply_mat(out, a, op_spec, desc, ta)

    def apply_vec(self, out, u, op_spec, desc):
        return K.apply_vec(out, u, op_spec, desc)

    def reduce_mat_scalar(self, a, op, identity):
        return K.reduce_mat_scalar(a, op, identity)

    def reduce_vec_scalar(self, u, op, identity):
        return K.reduce_vec_scalar(u, op, identity)

    def reduce_rows(self, out, a, op, desc, ta=False):
        return K.reduce_rows(out, a, op, desc, ta)

    def transpose(self, out, a, desc):
        return K.transpose(out, a, desc)

    def select_mat(self, out, a, op, thunk, desc, ta=False):
        return K.select_mat(out, a, op, thunk, desc, ta)

    def select_vec(self, out, u, op, thunk, desc):
        return K.select_vec(out, u, op, thunk, desc)

    def kronecker(self, out, a, b, op, desc, ta=False, tb=False):
        return K.kronecker(out, a, b, op, desc, ta, tb)

    # -- extract / assign ------------------------------------------------
    def extract_mat(self, out, a, rows, cols, desc, ta=False):
        return K.extract_mat(out, a, rows, cols, desc, ta)

    def extract_vec(self, out, u, idx, desc):
        return K.extract_vec(out, u, idx, desc)

    def assign_mat(self, out, a, rows, cols, desc, ta=False):
        return K.assign_mat(out, a, rows, cols, desc, ta)

    def assign_vec(self, out, u, idx, desc):
        return K.assign_vec(out, u, idx, desc)

    def assign_mat_scalar(self, out, value, rows, cols, desc):
        return K.assign_mat_scalar(out, value, rows, cols, desc)

    def assign_vec_scalar(self, out, value, idx, desc):
        return K.assign_vec_scalar(out, value, idx, desc)

    # -- fused reference kernels -----------------------------------------
    # Exposed so the differential tests can call the two-step reference
    # compositions directly; the planner itself skips this engine
    # (supports_fusion is False), so normal dispatch never reaches these.
    def mxv_apply(self, out, a, u, add, mult, op_spec, desc, ta=False):
        return K.mxv_apply(out, a, u, add, mult, op_spec, desc, ta)

    def vxm_apply(self, out, u, a, add, mult, op_spec, desc, ta=False):
        return K.vxm_apply(out, u, a, add, mult, op_spec, desc, ta)

    def ewise_add_vec_apply(self, out, u, v, op, op_spec, desc):
        return K.ewise_add_vec_apply(out, u, v, op, op_spec, desc)

    def ewise_mult_vec_apply(self, out, u, v, op, op_spec, desc):
        return K.ewise_mult_vec_apply(out, u, v, op, op_spec, desc)

    def ewise_add_mat_apply(self, out, a, b, op, op_spec, desc, ta=False, tb=False):
        return K.ewise_add_mat_apply(out, a, b, op, op_spec, desc, ta, tb)

    def ewise_mult_mat_apply(self, out, a, b, op, op_spec, desc, ta=False, tb=False):
        return K.ewise_mult_mat_apply(out, a, b, op, op_spec, desc, ta, tb)

    def mxm_reduce_rows(self, out, a, b, add, mult, rop, desc, ta=False, tb=False):
        return K.mxm_reduce_rows(out, a, b, add, mult, rop, desc, ta, tb)

    def apply_assign_vec(self, out, u, op_spec, idx, desc):
        return K.apply_assign_vec(out, u, op_spec, idx, desc)

    def ewise_add_vec_reduce_scalar(self, u, v, op, rop, identity):
        return K.ewise_add_vec_reduce_scalar(u, v, op, rop, identity)

    def ewise_mult_vec_reduce_scalar(self, u, v, op, rop, identity):
        return K.ewise_mult_vec_reduce_scalar(u, v, op, rop, identity)


class CountingEngine:
    """Wraps any engine, counting calls per method name — the measurement
    device behind the "fusion saves engine calls" tests and benchmarks."""

    def __init__(self, inner):
        self._inner = inner
        self.counts: dict = {}
        self.name = f"counting({inner.name})"
        self.supports_fusion = getattr(inner, "supports_fusion", False)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def __getattr__(self, attr):
        value = getattr(self._inner, attr)
        if not callable(value):
            return value
        counts = self.counts

        def counted(*args, **kwargs):
            counts[attr] = counts.get(attr, 0) + 1
            return value(*args, **kwargs)

        return counted


#: the full engine interface (InterpretedEngine implements every method,
#: including the fused reference kernels) — only these are wrapped with
#: fallback logic; any other attribute forwards to the primary engine
_DISPATCH_METHODS = frozenset(
    name
    for name, value in vars(InterpretedEngine).items()
    if callable(value) and not name.startswith("_")
)


class ResilientEngine:
    """Fallback chain around the JIT engines: no compile/load failure may
    break a program the interpreter could run.

    Wraps an ordered engine chain (``cpp → pyjit → interpreted`` or
    ``pyjit → interpreted``).  A dispatch method that raises
    :class:`CompilationError` (including the quarantine fast-fail) or
    :class:`BackendUnavailable` on one engine is retried verbatim on the
    next; the per-spec circuit breaker lives below, in the engines'
    module-retrieval step, so retries after the first failure skip the
    doomed compile entirely.  ``$PYGB_JIT_STRICT=1`` bypasses this
    wrapper (``make_engine`` returns the bare engine).
    """

    def __init__(self, chain):
        self._chain = list(chain)
        self.primary = self._chain[0]
        self.name = self.primary.name

    @property
    def supports_fusion(self) -> bool:
        return getattr(self.primary, "supports_fusion", False)

    def __getattr__(self, attr):
        value = getattr(self.primary, attr)  # AttributeError propagates
        if attr not in _DISPATCH_METHODS or not callable(value):
            return value
        chain = self._chain

        def dispatch(*args, **kwargs):
            last_exc = None
            for position, engine in enumerate(chain):
                method = getattr(engine, attr, None)
                if method is None:
                    continue
                if last_exc is not None:
                    cache = getattr(engine, "cache", None) or getattr(
                        chain[0], "cache", None
                    )
                    if cache is not None:
                        cache.note_fallback()
                try:
                    return method(*args, **kwargs)
                except (CompilationError, BackendUnavailable) as exc:
                    last_exc = exc
            raise last_exc

        dispatch.__name__ = attr
        return dispatch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResilientEngine({' -> '.join(e.name for e in self._chain)})"


def make_engine(name: str):
    """Instantiate an engine by name (``interpreted``, ``pyjit``, ``cpp``).

    The JIT engines come wrapped in the :class:`ResilientEngine` fallback
    chain unless ``$PYGB_JIT_STRICT`` is set; ``cpp`` still raises
    :class:`BackendUnavailable` **eagerly** when no compiler exists —
    an explicitly requested engine that can never work is a configuration
    error, not a degradation case.
    """
    from ..jit.health import jit_strict

    if name == "interpreted":
        return InterpretedEngine()
    if name == "pyjit":
        from ..jit.pyengine import PyJitEngine

        engine = PyJitEngine()
        if jit_strict():
            return engine
        return ResilientEngine([engine, InterpretedEngine()])
    if name == "cpp":
        from ..jit.cppengine import CppJitEngine
        from ..jit.pyengine import PyJitEngine

        engine = CppJitEngine()
        if jit_strict():
            return engine
        return ResilientEngine(
            [engine, PyJitEngine(engine.cache), InterpretedEngine()]
        )
    raise BackendUnavailable(
        f"unknown engine {name!r}; valid: interpreted, pyjit, cpp"
    )
