"""Execution-engine abstraction — the paper's Fig. 9 dispatch stage.

Every DSL operation funnels through an *engine* exposing one method per
GraphBLAS operation on backend containers.  Three engines implement the
interface:

``interpreted``
    Calls :mod:`repro.backend.kernels` directly, resolving operator names
    through the operator table on **every** call.  This is the "union
    type / generic interpreter" design the paper rejects in Sec. V, kept
    here as the ablation baseline.
``pyjit``  (default)
    The Fig. 9 pipeline with Python code generation: on first use of an
    ``(operation, dtypes, operators, flags)`` combination a specialised
    module is generated, written to the disk cache, and dynamically
    imported; later calls hit the in-memory module cache.
``cpp``
    Identical pipeline, but the generated module is a C++ translation
    unit compiled with ``g++`` against the bundled mini-GBTL header and
    loaded through ``ctypes`` — the paper's actual design.
"""

from __future__ import annotations

import numpy as np

from ..backend import kernels as K
from ..backend import tiled as T
from ..backend.kernels.select_ import POSITIONAL_SELECT_OPS, SELECT_OPS
from ..backend.tiled import TiledMatrix
from ..exceptions import (
    BackendUnavailable,
    CompilationError,
    KernelExecutionError,
    OperationCancelled,
    OperationTimeout,
)
from ..testing.faults import FAULTS

__all__ = [
    "InterpretedEngine",
    "CountingEngine",
    "PartitionedEngine",
    "ResilientEngine",
    "make_engine",
]


class InterpretedEngine:
    """Direct kernel calls with per-call operator resolution (no JIT)."""

    name = "interpreted"
    #: the planner never rewrites plans for this engine — it is the
    #: unfused ablation baseline the differential tests compare against
    supports_fusion = False

    # -- multiplication ------------------------------------------------
    def mxm(self, out, a, b, add, mult, desc, ta=False, tb=False):
        return K.mxm(out, a, b, add, mult, desc, ta, tb)

    def mxv(self, out, a, u, add, mult, desc, ta=False, sched=None):
        return K.mxv(out, a, u, add, mult, desc, ta, sched)

    def vxm(self, out, u, a, add, mult, desc, ta=False, sched=None):
        return K.vxm(out, u, a, add, mult, desc, ta, sched)

    # -- elementwise ---------------------------------------------------
    def ewise_add_mat(self, out, a, b, op, desc, ta=False, tb=False):
        return K.ewise_add_mat(out, a, b, op, desc, ta, tb)

    def ewise_add_vec(self, out, u, v, op, desc):
        return K.ewise_add_vec(out, u, v, op, desc)

    def ewise_mult_mat(self, out, a, b, op, desc, ta=False, tb=False):
        return K.ewise_mult_mat(out, a, b, op, desc, ta, tb)

    def ewise_mult_vec(self, out, u, v, op, desc):
        return K.ewise_mult_vec(out, u, v, op, desc)

    # -- apply / reduce / transpose -------------------------------------
    def apply_mat(self, out, a, op_spec, desc, ta=False):
        return K.apply_mat(out, a, op_spec, desc, ta)

    def apply_vec(self, out, u, op_spec, desc):
        return K.apply_vec(out, u, op_spec, desc)

    def reduce_mat_scalar(self, a, op, identity):
        return K.reduce_mat_scalar(a, op, identity)

    def reduce_vec_scalar(self, u, op, identity):
        return K.reduce_vec_scalar(u, op, identity)

    def reduce_rows(self, out, a, op, desc, ta=False):
        return K.reduce_rows(out, a, op, desc, ta)

    def transpose(self, out, a, desc):
        return K.transpose(out, a, desc)

    def select_mat(self, out, a, op, thunk, desc, ta=False):
        return K.select_mat(out, a, op, thunk, desc, ta)

    def select_vec(self, out, u, op, thunk, desc):
        return K.select_vec(out, u, op, thunk, desc)

    def kronecker(self, out, a, b, op, desc, ta=False, tb=False):
        return K.kronecker(out, a, b, op, desc, ta, tb)

    # -- extract / assign ------------------------------------------------
    def extract_mat(self, out, a, rows, cols, desc, ta=False):
        return K.extract_mat(out, a, rows, cols, desc, ta)

    def extract_vec(self, out, u, idx, desc):
        return K.extract_vec(out, u, idx, desc)

    def assign_mat(self, out, a, rows, cols, desc, ta=False):
        return K.assign_mat(out, a, rows, cols, desc, ta)

    def assign_vec(self, out, u, idx, desc):
        return K.assign_vec(out, u, idx, desc)

    def assign_mat_scalar(self, out, value, rows, cols, desc):
        return K.assign_mat_scalar(out, value, rows, cols, desc)

    def assign_vec_scalar(self, out, value, idx, desc):
        return K.assign_vec_scalar(out, value, idx, desc)

    # -- fused reference kernels -----------------------------------------
    # Exposed so the differential tests can call the two-step reference
    # compositions directly; the planner itself skips this engine
    # (supports_fusion is False), so normal dispatch never reaches these.
    def mxv_apply(self, out, a, u, add, mult, op_spec, desc, ta=False):
        return K.mxv_apply(out, a, u, add, mult, op_spec, desc, ta)

    def vxm_apply(self, out, u, a, add, mult, op_spec, desc, ta=False):
        return K.vxm_apply(out, u, a, add, mult, op_spec, desc, ta)

    def ewise_add_vec_apply(self, out, u, v, op, op_spec, desc):
        return K.ewise_add_vec_apply(out, u, v, op, op_spec, desc)

    def ewise_mult_vec_apply(self, out, u, v, op, op_spec, desc):
        return K.ewise_mult_vec_apply(out, u, v, op, op_spec, desc)

    def ewise_add_mat_apply(self, out, a, b, op, op_spec, desc, ta=False, tb=False):
        return K.ewise_add_mat_apply(out, a, b, op, op_spec, desc, ta, tb)

    def ewise_mult_mat_apply(self, out, a, b, op, op_spec, desc, ta=False, tb=False):
        return K.ewise_mult_mat_apply(out, a, b, op, op_spec, desc, ta, tb)

    def mxm_reduce_rows(self, out, a, b, add, mult, rop, desc, ta=False, tb=False):
        return K.mxm_reduce_rows(out, a, b, add, mult, rop, desc, ta, tb)

    def apply_assign_vec(self, out, u, op_spec, idx, desc):
        return K.apply_assign_vec(out, u, op_spec, idx, desc)

    def ewise_add_vec_reduce_scalar(self, u, v, op, rop, identity):
        return K.ewise_add_vec_reduce_scalar(u, v, op, rop, identity)

    def ewise_mult_vec_reduce_scalar(self, u, v, op, rop, identity):
        return K.ewise_mult_vec_reduce_scalar(u, v, op, rop, identity)


class CountingEngine:
    """Wraps any engine, counting calls per method name — the measurement
    device behind the "fusion saves engine calls" tests and benchmarks."""

    def __init__(self, inner):
        self._inner = inner
        self.counts: dict = {}
        self.name = f"counting({inner.name})"
        self.supports_fusion = getattr(inner, "supports_fusion", False)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def __getattr__(self, attr):
        value = getattr(self._inner, attr)
        if not callable(value):
            return value
        counts = self.counts

        def counted(*args, **kwargs):
            counts[attr] = counts.get(attr, 0) + 1
            return value(*args, **kwargs)

        return counted


#: the full engine interface (InterpretedEngine implements every method,
#: including the fused reference kernels) — only these are wrapped with
#: fallback logic; any other attribute forwards to the primary engine
_DISPATCH_METHODS = frozenset(
    name
    for name, value in vars(InterpretedEngine).items()
    if callable(value) and not name.startswith("_")
)


class ResilientEngine:
    """Fallback chain around the JIT engines: no compile/load failure may
    break a program the interpreter could run.

    Wraps an ordered engine chain (``cpp → pyjit → interpreted`` or
    ``pyjit → interpreted``).  A dispatch method that raises
    :class:`CompilationError` (including the quarantine fast-fail),
    :class:`BackendUnavailable`, or a runtime
    :class:`KernelExecutionError` on one engine is retried verbatim on
    the next; the per-spec circuit breaker lives below, in the engines'
    module-retrieval step, so retries after the first failure skip the
    doomed compile entirely.  ``$PYGB_JIT_STRICT=1`` bypasses this
    wrapper (``make_engine`` returns the bare engine).

    The ``kernel_fail`` and ``slow_kernel`` runtime faults hook in here,
    per engine attempt — inside the chain loop, so an injected crash on
    the primary engine exercises exactly the fallback path a real kernel
    crash would take.
    """

    def __init__(self, chain):
        self._chain = list(chain)
        self.primary = self._chain[0]
        self.name = self.primary.name

    @property
    def supports_fusion(self) -> bool:
        return getattr(self.primary, "supports_fusion", False)

    def __getattr__(self, attr):
        value = getattr(self.primary, attr)  # AttributeError propagates
        if attr not in _DISPATCH_METHODS or not callable(value):
            return value
        chain = self._chain

        def dispatch(*args, **kwargs):
            last_exc = None
            for position, engine in enumerate(chain):
                method = getattr(engine, attr, None)
                if method is None:
                    continue
                if last_exc is not None:
                    cache = getattr(engine, "cache", None) or getattr(
                        chain[0], "cache", None
                    )
                    if cache is not None:
                        cache.note_fallback()
                try:
                    if FAULTS.fire("kernel_fail"):
                        raise KernelExecutionError(
                            f"injected kernel failure in {engine.name}.{attr}"
                        )
                    if FAULTS.fire("slow_kernel"):
                        from .. import guard

                        guard.cooperative_sleep(guard.fault_sleep_seconds())
                    return method(*args, **kwargs)
                except (CompilationError, BackendUnavailable, KernelExecutionError) as exc:
                    last_exc = exc
            raise last_exc

        dispatch.__name__ = attr
        return dispatch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResilientEngine({' -> '.join(e.name for e in self._chain)})"


def _vec_mask_ok(desc, out) -> bool:
    """Mask either absent or conformant — nonconformant masks forward to
    the monolithic kernel so its canonical error surfaces."""
    m = desc.mask
    return m is None or getattr(m, "size", None) == out.size


def _mat_mask_ok(desc, out) -> bool:
    m = desc.mask
    return m is None or getattr(m, "shape", None) == out.shape


class PartitionedEngine:
    """Row-tile fan-out around any engine — the tiled data plane's
    executor (``make_engine`` wraps every engine it builds, so the full
    runtime stack is ``Tracing(Partitioned(Resilient(jit)))``).

    A dispatch whose output rows follow a matrix operand's rows is
    *partitionable*: each row block computes independently on a worker
    thread (the kernels are reentrant — they only read operands and
    allocate fresh outputs) and the per-block partials merge by
    row-disjoint concatenation.  ``finalize_vec``/``finalize_mat`` are
    positionwise, so slicing the output, the mask, and the descriptor to
    the block's row range commutes with finalize — the merged result is
    bit-identical to the monolithic call.  Scalar reductions merge by a
    monoid fold instead, and only when the fold is exactly associative
    for the dtype (ints/bools always; floats only for order-insensitive
    monoids) — otherwise the dispatch forwards monolithically.  Assigns
    carry read-after-write hazards across arbitrary target rows, so they
    always execute monolithically, in program order, on the dispatch
    thread (the "hazard-aware ordering" policy).

    Everything not explicitly partitioned here forwards untouched via
    ``__getattr__`` — including ``primary``/``cache``/``prefetch_jobs``,
    which the nonblocking queue and resilience layer reach through this
    wrapper.
    """

    def __init__(self, inner):
        self._inner = inner
        self.name = getattr(inner, "name", "?")

    @property
    def supports_fusion(self) -> bool:
        return getattr(self._inner, "supports_fusion", False)

    def __getattr__(self, attr):
        return getattr(self._inner, attr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PartitionedEngine({self._inner!r})"

    # -- fan-out / merge internals --------------------------------------
    def _note_forward_if_tiled(self, op: str, a) -> None:
        from .. import tiling

        if isinstance(a, TiledMatrix) and a.ntiles > 1:
            tiling.note_forward(op)

    def _fan_vec(self, op, part, out, desc, call, mono, sched=None, edges=None):
        """Fan a vector-output dispatch over *part*'s row blocks.

        Each task slices the output vector and the mask down to its row
        range, runs the per-tile kernel, and the partials concatenate
        with rebased indices.  When a (dense-direction) schedule rides
        along, the examined-edge counter is credited once, on the
        dispatch thread, with exactly the monolithic count, and the tile
        and worker choices are annotated on the schedule for the tracer.

        *mono* re-executes the dispatch monolithically with its original
        arguments: the degradation path when tiling is quarantined for
        this op or a tile worker crashes/hangs mid-fan-out.  Deadline
        expiry and cancellation re-raise instead — re-running a blown
        budget monolithically would only waste more of it.
        """
        from .. import guard, tiling

        if guard.tiling_quarantined(op):
            tiling.note_forward(op)
            return mono()
        splits = part.splits
        tiles = part.tiles()
        workers = min(tiling.workers_count(), len(tiles))
        tiling.note_partition(op, len(tiles), workers)

        def task(k, tile):
            r0, r1 = int(splits[k]), int(splits[k + 1])
            return call(tile, T.slice_vec_rows(out, r0, r1), T.slice_desc_rows(desc, r0, r1))

        try:
            parts = tiling.run_tile_tasks(
                [lambda k=k, tile=tile: task(k, tile) for k, tile in enumerate(tiles)]
            )
        except (OperationCancelled, OperationTimeout):
            raise
        except Exception as exc:
            guard.note_tile_failure(op, exc)
            return mono()
        tiling.note_merge("concat")
        w = T.concat_vec_parts(parts, out.size, splits)
        if sched is not None:
            from .. import schedule

            schedule.note_edges("dense", edges)
            sched.tiles = len(tiles)
            sched.workers = workers
        return w

    def _fan_mat(self, op, part, out, desc, call, mono):
        """Fan a matrix-output dispatch over *part*'s row blocks and
        merge by CSR stacking; the merged store re-tiles under the
        active configuration so tiling persists across ops.  *mono* is
        the monolithic degradation path (see :meth:`_fan_vec`); its
        result re-tiles the same way the forwarded paths do."""
        from .. import guard, tiling

        if guard.tiling_quarantined(op):
            tiling.note_forward(op)
            return tiling.maybe_tile(mono())
        splits = part.splits
        tiles = part.tiles()
        workers = min(tiling.workers_count(), len(tiles))
        tiling.note_partition(op, len(tiles), workers)

        def task(k, tile):
            r0, r1 = int(splits[k]), int(splits[k + 1])
            return call(tile, T.row_block(out, r0, r1), T.slice_desc_rows(desc, r0, r1), r0, r1)

        try:
            parts = tiling.run_tile_tasks(
                [lambda k=k, tile=tile: task(k, tile) for k, tile in enumerate(tiles)]
            )
        except (OperationCancelled, OperationTimeout):
            raise
        except Exception as exc:
            guard.note_tile_failure(op, exc)
            return tiling.maybe_tile(mono())
        tiling.note_merge("concat")
        return tiling.maybe_tile(T.concat_mat_parts(parts, out.ncols))

    # -- matrix-vector multiplication -----------------------------------
    def mxv(self, out, a, u, add, mult, desc, ta=False, sched=None):
        from .. import tiling

        inner = self._inner
        if sched is not None and sched.direction in ("push", "pull"):
            # push/pull kernels walk frontier-driven row sets, not row
            # blocks — pinned directions stay monolithic (and skip any
            # transpose build the monolithic kernel would also skip)
            self._note_forward_if_tiled("mxv", a)
            return inner.mxv(out, a, u, add, mult, desc, ta, sched)
        if not tiling.wants_partition(a):
            return inner.mxv(out, a, u, add, mult, desc, ta, sched)
        g = a.transposed() if ta else a  # the gather matrix: output rows = g rows
        part = None
        if u.size == g.ncols and out.size == g.nrows and _vec_mask_ok(desc, out):
            part = tiling.partition_for(g)
        if part is None:
            self._note_forward_if_tiled("mxv", a)
            return inner.mxv(out, a, u, add, mult, desc, ta, sched)
        u.dense_lookup()  # warm the shared gather memo on the dispatch thread
        return self._fan_vec(
            "mxv", part, out, desc,
            lambda tile, w, d: inner.mxv(w, tile, u, add, mult, d, False, None),
            lambda: inner.mxv(out, a, u, add, mult, desc, ta, sched),
            sched=sched, edges=int(g.indices.size),
        )

    def vxm(self, out, u, a, add, mult, desc, ta=False, sched=None):
        from .. import tiling

        inner = self._inner
        if sched is not None and sched.direction in ("push", "pull"):
            self._note_forward_if_tiled("vxm", a)
            return inner.vxm(out, u, a, add, mult, desc, ta, sched)
        if not tiling.wants_partition(a):
            return inner.vxm(out, u, a, add, mult, desc, ta, sched)
        g = a if ta else a.transposed()  # vxm gathers along the transpose
        part = None
        if u.size == g.ncols and out.size == g.nrows and _vec_mask_ok(desc, out):
            part = tiling.partition_for(g)
        if part is None:
            self._note_forward_if_tiled("vxm", a)
            return inner.vxm(out, u, a, add, mult, desc, ta, sched)
        u.dense_lookup()
        return self._fan_vec(
            "vxm", part, out, desc,
            # a row block of g is a column block of the vxm operand, so
            # the per-tile call flips to the ta=True orientation whose
            # gather matrix is the tile itself — no per-tile transposes
            lambda tile, w, d: inner.vxm(w, u, tile, add, mult, d, True, None),
            lambda: inner.vxm(out, u, a, add, mult, desc, ta, sched),
            sched=sched, edges=int(g.indices.size),
        )

    def mxv_apply(self, out, a, u, add, mult, op_spec, desc, ta=False):
        from .. import tiling

        inner = self._inner
        if not tiling.wants_partition(a):
            return inner.mxv_apply(out, a, u, add, mult, op_spec, desc, ta)
        g = a.transposed() if ta else a
        part = None
        if u.size == g.ncols and out.size == g.nrows and _vec_mask_ok(desc, out):
            part = tiling.partition_for(g)
        if part is None:
            self._note_forward_if_tiled("mxv_apply", a)
            return inner.mxv_apply(out, a, u, add, mult, op_spec, desc, ta)
        u.dense_lookup()
        return self._fan_vec(
            "mxv_apply", part, out, desc,
            lambda tile, w, d: inner.mxv_apply(w, tile, u, add, mult, op_spec, d, False),
            lambda: inner.mxv_apply(out, a, u, add, mult, op_spec, desc, ta),
        )

    def vxm_apply(self, out, u, a, add, mult, op_spec, desc, ta=False):
        from .. import tiling

        inner = self._inner
        if not tiling.wants_partition(a):
            return inner.vxm_apply(out, u, a, add, mult, op_spec, desc, ta)
        g = a if ta else a.transposed()
        part = None
        if u.size == g.ncols and out.size == g.nrows and _vec_mask_ok(desc, out):
            part = tiling.partition_for(g)
        if part is None:
            self._note_forward_if_tiled("vxm_apply", a)
            return inner.vxm_apply(out, u, a, add, mult, op_spec, desc, ta)
        u.dense_lookup()
        return self._fan_vec(
            "vxm_apply", part, out, desc,
            lambda tile, w, d: inner.vxm_apply(w, u, tile, add, mult, op_spec, d, True),
            lambda: inner.vxm_apply(out, u, a, add, mult, op_spec, desc, ta),
        )

    # -- matrix-matrix multiplication -----------------------------------
    def mxm(self, out, a, b, add, mult, desc, ta=False, tb=False):
        from .. import tiling

        inner = self._inner
        if not tiling.wants_partition(a):
            return tiling.maybe_tile(inner.mxm(out, a, b, add, mult, desc, ta, tb))
        g = a.transposed() if ta else a
        bshape = (b.ncols, b.nrows) if tb else b.shape
        part = None
        if (
            g.ncols == bshape[0]
            and out.shape == (g.nrows, bshape[1])
            and _mat_mask_ok(desc, out)
        ):
            part = tiling.partition_for(g)
        if part is None:
            self._note_forward_if_tiled("mxm", a)
            return tiling.maybe_tile(inner.mxm(out, a, b, add, mult, desc, ta, tb))
        if tb:
            b.transposed()  # materialise once before the fan-out
        return self._fan_mat(
            "mxm", part, out, desc,
            lambda tile, c, d, r0, r1: inner.mxm(c, tile, b, add, mult, d, False, tb),
            lambda: inner.mxm(out, a, b, add, mult, desc, ta, tb),
        )

    def mxm_reduce_rows(self, out, a, b, add, mult, rop, desc, ta=False, tb=False):
        from .. import tiling

        inner = self._inner
        if not tiling.wants_partition(a):
            return inner.mxm_reduce_rows(out, a, b, add, mult, rop, desc, ta, tb)
        g = a.transposed() if ta else a
        bshape = (b.ncols, b.nrows) if tb else b.shape
        part = None
        if g.ncols == bshape[0] and out.size == g.nrows and _vec_mask_ok(desc, out):
            part = tiling.partition_for(g)
        if part is None:
            self._note_forward_if_tiled("mxm_reduce_rows", a)
            return inner.mxm_reduce_rows(out, a, b, add, mult, rop, desc, ta, tb)
        if tb:
            b.transposed()
        # the row reduction never crosses a tile boundary (tiles are whole
        # rows), so any monoid — float Plus included — stays bit-identical
        return self._fan_vec(
            "mxm_reduce_rows", part, out, desc,
            lambda tile, w, d: inner.mxm_reduce_rows(w, tile, b, add, mult, rop, d, False, tb),
            lambda: inner.mxm_reduce_rows(out, a, b, add, mult, rop, desc, ta, tb),
        )

    # -- elementwise ----------------------------------------------------
    def _ewise_mat(self, op, out, a, b, desc, ta, tb, mono, per_tile):
        from .. import tiling

        if not tiling.wants_partition(a):
            return tiling.maybe_tile(mono())
        g = a.transposed() if ta else a
        hshape = (b.ncols, b.nrows) if tb else b.shape
        part = None
        if g.shape == hshape and out.shape == g.shape and _mat_mask_ok(desc, out):
            part = tiling.partition_for(g)
        if part is None:
            self._note_forward_if_tiled(op, a)
            return tiling.maybe_tile(mono())
        h = b.transposed() if tb else b
        return self._fan_mat(
            op, part, out, desc,
            lambda tile, c, d, r0, r1: per_tile(tile, T.row_block(h, r0, r1), c, d),
            mono,
        )

    def ewise_add_mat(self, out, a, b, op, desc, ta=False, tb=False):
        inner = self._inner
        return self._ewise_mat(
            "ewise_add_mat", out, a, b, desc, ta, tb,
            lambda: inner.ewise_add_mat(out, a, b, op, desc, ta, tb),
            lambda tile, bblk, c, d: inner.ewise_add_mat(c, tile, bblk, op, d, False, False),
        )

    def ewise_mult_mat(self, out, a, b, op, desc, ta=False, tb=False):
        inner = self._inner
        return self._ewise_mat(
            "ewise_mult_mat", out, a, b, desc, ta, tb,
            lambda: inner.ewise_mult_mat(out, a, b, op, desc, ta, tb),
            lambda tile, bblk, c, d: inner.ewise_mult_mat(c, tile, bblk, op, d, False, False),
        )

    def ewise_add_mat_apply(self, out, a, b, op, op_spec, desc, ta=False, tb=False):
        inner = self._inner
        return self._ewise_mat(
            "ewise_add_mat_apply", out, a, b, desc, ta, tb,
            lambda: inner.ewise_add_mat_apply(out, a, b, op, op_spec, desc, ta, tb),
            lambda tile, bblk, c, d: inner.ewise_add_mat_apply(
                c, tile, bblk, op, op_spec, d, False, False
            ),
        )

    def ewise_mult_mat_apply(self, out, a, b, op, op_spec, desc, ta=False, tb=False):
        inner = self._inner
        return self._ewise_mat(
            "ewise_mult_mat_apply", out, a, b, desc, ta, tb,
            lambda: inner.ewise_mult_mat_apply(out, a, b, op, op_spec, desc, ta, tb),
            lambda tile, bblk, c, d: inner.ewise_mult_mat_apply(
                c, tile, bblk, op, op_spec, d, False, False
            ),
        )

    # -- apply / select / reduce ----------------------------------------
    def apply_mat(self, out, a, op_spec, desc, ta=False):
        from .. import tiling

        inner = self._inner
        if not tiling.wants_partition(a):
            return tiling.maybe_tile(inner.apply_mat(out, a, op_spec, desc, ta))
        g = a.transposed() if ta else a
        part = None
        if out.shape == g.shape and _mat_mask_ok(desc, out):
            part = tiling.partition_for(g)
        if part is None:
            self._note_forward_if_tiled("apply_mat", a)
            return tiling.maybe_tile(inner.apply_mat(out, a, op_spec, desc, ta))
        return self._fan_mat(
            "apply_mat", part, out, desc,
            lambda tile, c, d, r0, r1: inner.apply_mat(c, tile, op_spec, d, False),
            lambda: inner.apply_mat(out, a, op_spec, desc, ta),
        )

    def select_mat(self, out, a, op, thunk, desc, ta=False):
        from .. import tiling

        inner = self._inner
        rebase = op in POSITIONAL_SELECT_OPS and isinstance(thunk, (int, np.integer))
        if not tiling.wants_partition(a) or not (rebase or op in SELECT_OPS):
            return tiling.maybe_tile(inner.select_mat(out, a, op, thunk, desc, ta))
        g = a.transposed() if ta else a
        part = None
        if out.shape == g.shape and _mat_mask_ok(desc, out):
            part = tiling.partition_for(g)
        if part is None:
            self._note_forward_if_tiled("select_mat", a)
            return tiling.maybe_tile(inner.select_mat(out, a, op, thunk, desc, ta))
        return self._fan_mat(
            "select_mat", part, out, desc,
            # a row block sees local row numbers, so the row-relative
            # predicates (col REL row + k) shift their thunk by the
            # block's first global row
            lambda tile, c, d, r0, r1: inner.select_mat(
                c, tile, op, thunk + r0 if rebase else thunk, d, False
            ),
            lambda: inner.select_mat(out, a, op, thunk, desc, ta),
        )

    def reduce_rows(self, out, a, op, desc, ta=False):
        from .. import tiling

        inner = self._inner
        if not tiling.wants_partition(a):
            return inner.reduce_rows(out, a, op, desc, ta)
        g = a.transposed() if ta else a
        part = None
        if out.size == g.nrows and _vec_mask_ok(desc, out):
            part = tiling.partition_for(g)
        if part is None:
            self._note_forward_if_tiled("reduce_rows", a)
            return inner.reduce_rows(out, a, op, desc, ta)
        return self._fan_vec(
            "reduce_rows", part, out, desc,
            lambda tile, w, d: inner.reduce_rows(w, tile, op, d, False),
            lambda: inner.reduce_rows(out, a, op, desc, ta),
        )

    def reduce_mat_scalar(self, a, op, identity):
        from .. import tiling

        inner = self._inner
        if not tiling.wants_partition(a):
            return inner.reduce_mat_scalar(a, op, identity)
        if not tiling.exact_fold(op, a.dtype):
            # float Plus/Times would be reassociated by the tile
            # boundaries (NumPy reduces pairwise) — forward for
            # bit-identity with the monolithic path
            self._note_forward_if_tiled("reduce_mat_scalar", a)
            return inner.reduce_mat_scalar(a, op, identity)
        part = tiling.partition_for(a)
        if part is None:
            self._note_forward_if_tiled("reduce_mat_scalar", a)
            return inner.reduce_mat_scalar(a, op, identity)
        from .. import guard

        if guard.tiling_quarantined("reduce_mat_scalar"):
            tiling.note_forward("reduce_mat_scalar")
            return inner.reduce_mat_scalar(a, op, identity)
        live = [t for t in part.tiles() if t.nvals]
        if not live:
            return inner.reduce_mat_scalar(a, op, identity)
        workers = min(tiling.workers_count(), len(live))
        tiling.note_partition("reduce_mat_scalar", part.ntiles, workers)
        try:
            partials = tiling.run_tile_tasks(
                [lambda t=t: inner.reduce_mat_scalar(t, op, identity) for t in live]
            )
        except (OperationCancelled, OperationTimeout):
            raise
        except Exception as exc:
            guard.note_tile_failure("reduce_mat_scalar", exc)
            return inner.reduce_mat_scalar(a, op, identity)
        tiling.note_merge("fold")
        return tiling.fold_scalars(op, partials, a.dtype)

    # -- structure-changing ops: monolithic, with re-tiled outputs -------
    def transpose(self, out, a, desc):
        from .. import tiling

        return tiling.maybe_tile(self._inner.transpose(out, a, desc))

    def kronecker(self, out, a, b, op, desc, ta=False, tb=False):
        from .. import tiling

        return tiling.maybe_tile(self._inner.kronecker(out, a, b, op, desc, ta, tb))

    def extract_mat(self, out, a, rows, cols, desc, ta=False):
        from .. import tiling

        return tiling.maybe_tile(self._inner.extract_mat(out, a, rows, cols, desc, ta))

    def assign_mat(self, out, a, rows, cols, desc, ta=False):
        from .. import tiling

        # assigns scatter into arbitrary target rows — cross-block
        # read-after-write hazards — so they run monolithically, in
        # program order, on the dispatch thread
        self._note_forward_if_tiled("assign_mat", out)
        return tiling.maybe_tile(self._inner.assign_mat(out, a, rows, cols, desc, ta))

    def assign_mat_scalar(self, out, value, rows, cols, desc):
        from .. import tiling

        self._note_forward_if_tiled("assign_mat_scalar", out)
        return tiling.maybe_tile(
            self._inner.assign_mat_scalar(out, value, rows, cols, desc)
        )


def make_engine(name: str):
    """Instantiate an engine by name (``interpreted``, ``pyjit``, ``cpp``).

    Every engine comes wrapped in the :class:`PartitionedEngine` tiled
    data plane (inert until ``$PYGB_TILES``/``gb.tiled`` ask for tiles)
    and, outermost, the runtime-guardrail layer
    (:class:`~repro.guard.GuardedEngine`, inert until a
    ``gb.deadline(...)`` scope or ``$PYGB_OP_TIMEOUT`` arms it) — with
    tracing on, the full stack is
    ``Tracing(Guard(Partitioned(Resilient(jit))))``.  Both wrappers stay
    outside the per-dispatch hot path the overhead guards measure.
    The JIT engines additionally sit in the :class:`ResilientEngine`
    fallback chain unless ``$PYGB_JIT_STRICT`` is set; ``cpp`` still raises
    :class:`BackendUnavailable` **eagerly** when no compiler exists —
    an explicitly requested engine that can never work is a configuration
    error, not a degradation case.
    """
    from ..guard import GuardedEngine
    from ..jit.health import jit_strict

    if name == "interpreted":
        return GuardedEngine(PartitionedEngine(InterpretedEngine()))
    if name == "pyjit":
        from ..jit.pyengine import PyJitEngine

        engine = PyJitEngine()
        if jit_strict():
            return GuardedEngine(PartitionedEngine(engine))
        return GuardedEngine(
            PartitionedEngine(ResilientEngine([engine, InterpretedEngine()]))
        )
    if name == "cpp":
        from ..jit.cppengine import CppJitEngine
        from ..jit.pyengine import PyJitEngine

        engine = CppJitEngine()
        if jit_strict():
            return GuardedEngine(PartitionedEngine(engine))
        return GuardedEngine(
            PartitionedEngine(
                ResilientEngine([engine, PyJitEngine(engine.cache), InterpretedEngine()])
            )
        )
    raise BackendUnavailable(
        f"unknown engine {name!r}; valid: interpreted, pyjit, cpp"
    )
