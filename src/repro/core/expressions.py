"""Deferred expression objects (paper Sec. IV, "PyGB uses deferred
operator evaluation to enable the expression syntax without excessive
copying of data").

``A @ B`` does not compute anything: it returns an :class:`MXM` object
wrapping the operands and the semiring captured from the enclosing
``with`` block.  The expression is evaluated

* inside ``C.__setitem__`` — directly into ``C`` with ``C``'s mask,
  accumulator and replace flag, with no temporary container; or
* by a *terminating operation*: any use that treats the expression like a
  container (reading ``nvals``, combining it with another container,
  reducing it, converting it) forces evaluation into a fresh container,
  which is what plain ``C = A @ B`` yields.

This is the runtime analog of C++ expression templates the paper draws
the comparison to.
"""

from __future__ import annotations

import numpy as np

from ..backend.kernels import OpDesc
from ..backend.ops_table import binary_result_dtype
from . import operators
from .context import current_backend_engine

__all__ = [
    "Expression",
    "TransposeView",
    "MXM",
    "MXV",
    "VXM",
    "EWiseAdd",
    "EWiseMult",
    "Apply",
    "ReduceRows",
    "ExtractMat",
    "ExtractVec",
    "Select",
    "Kronecker",
    "TransposeExpr",
]


def _unwrap(operand):
    """``(dsl_container, transpose_flag)`` for a container or its ``.T``."""
    if isinstance(operand, TransposeView):
        return operand.parent, True
    return operand, False


def _as_container(operand):
    """Materialise expression operands (a terminating operation: combining
    an expression with another container forces its evaluation)."""
    if isinstance(operand, Expression):
        return operand.new()
    if isinstance(operand, TransposeView):
        return operand  # resolved later via the transpose flag
    return operand


class Expression:
    """Base class for all deferred operations."""

    #: subclasses set: does this expression produce a Matrix or a Vector?
    produces_matrix = True

    def __init__(self):
        self._materialized = None

    # -- interface implemented by subclasses -----------------------------
    def result_shape(self):
        raise NotImplementedError

    def result_dtype(self) -> np.dtype:
        raise NotImplementedError

    def eval_into(self, out, desc: OpDesc):
        """Evaluate directly into DSL container *out* (no temporaries)."""
        raise NotImplementedError

    # -- materialisation --------------------------------------------------
    def new(self, dtype=None):
        """Force evaluation into a brand-new container (the behaviour of
        plain ``C = A @ B``)."""
        if self._materialized is not None and dtype is None:
            return self._materialized
        from .matrix import Matrix
        from .vector import Vector

        out_dtype = dtype if dtype is not None else self.result_dtype()
        if self.produces_matrix:
            out = Matrix(shape=self.result_shape(), dtype=out_dtype)
        else:
            out = Vector(shape=self.result_shape(), dtype=out_dtype)
        self.eval_into(out, OpDesc())
        if dtype is None:
            self._materialized = out
        return out

    # -- terminating operations (treat the expression like a container) --
    @property
    def shape(self):
        return self.new().shape

    @property
    def nvals(self):
        return self.new().nvals

    @property
    def dtype(self):
        return self.new().dtype

    @property
    def T(self):
        return self.new().T

    def __matmul__(self, other):
        return self.new() @ other

    def __rmatmul__(self, other):
        return _as_container(other) @ self.new()

    def __add__(self, other):
        return self.new() + other

    def __radd__(self, other):
        return _as_container(other) + self.new()

    def __mul__(self, other):
        return self.new() * other

    def __rmul__(self, other):
        return _as_container(other) * self.new()

    def __invert__(self):
        return ~self.new()

    def __getitem__(self, key):
        return self.new()[key]

    def to_numpy(self):
        return self.new().to_numpy()


class TransposeView:
    """``A.T`` — a zero-copy view; materialised only when assigned
    (``C[None] = A.T``) or combined outside a transposing operation."""

    __slots__ = ("parent",)

    def __init__(self, parent):
        self.parent = parent

    @property
    def T(self):
        return self.parent

    @property
    def shape(self):
        r, c = self.parent.shape
        return (c, r)

    @property
    def dtype(self):
        return self.parent.dtype

    @property
    def nvals(self):
        return self.parent.nvals

    def __matmul__(self, other):
        other = _as_container(other)
        if getattr(other, "is_vector", False):
            return MXV(self, other)
        return MXM(self, other)

    def __rmatmul__(self, other):
        other = _as_container(other)
        if getattr(other, "is_vector", False):
            return VXM(other, self)
        return MXM(other, self)

    def __add__(self, other):
        return EWiseAdd(self, _as_container(other))

    def __mul__(self, other):
        return EWiseMult(self, _as_container(other))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.parent!r}.T"


class MXM(Expression):
    """``A ⊕.⊗ B`` — semiring captured at construction time."""

    produces_matrix = True

    def __init__(self, a, b, semiring=None):
        super().__init__()
        self.a, self.ta = _unwrap(_as_container(a))
        self.b, self.tb = _unwrap(_as_container(b))
        self.add_op, self.mult_op = operators.resolve_semiring(semiring)

    def result_shape(self):
        ar, ac = self.a.shape if not self.ta else self.a.shape[::-1]
        br, bc = self.b.shape if not self.tb else self.b.shape[::-1]
        return (ar, bc)

    def result_dtype(self):
        t = binary_result_dtype(self.mult_op, self.a.dtype, self.b.dtype)
        return binary_result_dtype(self.add_op, t, t)

    def eval_into(self, out, desc):
        out._store = current_backend_engine().mxm(
            out._store, self.a._store, self.b._store,
            self.add_op, self.mult_op, desc, self.ta, self.tb,
        )


class MXV(Expression):
    """``A ⊕.⊗ u``."""

    produces_matrix = False

    def __init__(self, a, u, semiring=None):
        super().__init__()
        self.a, self.ta = _unwrap(_as_container(a))
        self.u = _as_container(u)
        self.add_op, self.mult_op = operators.resolve_semiring(semiring)

    def result_shape(self):
        ar = self.a.shape[1] if self.ta else self.a.shape[0]
        return (ar,)

    def result_dtype(self):
        t = binary_result_dtype(self.mult_op, self.a.dtype, self.u.dtype)
        return binary_result_dtype(self.add_op, t, t)

    def eval_into(self, out, desc):
        out._store = current_backend_engine().mxv(
            out._store, self.a._store, self.u._store,
            self.add_op, self.mult_op, desc, self.ta,
        )


class VXM(Expression):
    """``u ⊕.⊗ A`` — a row vector times a matrix (PageRank's
    ``page_rank @ m``)."""

    produces_matrix = False

    def __init__(self, u, a, semiring=None):
        super().__init__()
        self.u = _as_container(u)
        self.a, self.ta = _unwrap(_as_container(a))
        self.add_op, self.mult_op = operators.resolve_semiring(semiring)

    def result_shape(self):
        ac = self.a.shape[0] if self.ta else self.a.shape[1]
        return (ac,)

    def result_dtype(self):
        t = binary_result_dtype(self.mult_op, self.u.dtype, self.a.dtype)
        return binary_result_dtype(self.add_op, t, t)

    def eval_into(self, out, desc):
        out._store = current_backend_engine().vxm(
            out._store, self.u._store, self.a._store,
            self.add_op, self.mult_op, desc, self.ta,
        )


class _EWise(Expression):
    resolve = None  # set by subclasses
    engine_mat = ""
    engine_vec = ""

    def __init__(self, a, b, op=None):
        super().__init__()
        a = _as_container(a)
        b = _as_container(b)
        self.a, self.ta = _unwrap(a)
        self.b, self.tb = _unwrap(b)
        self.op = type(self).resolve(op)
        self.produces_matrix = not getattr(self.a, "is_vector", False)

    def result_shape(self):
        if self.produces_matrix and self.ta:
            return self.a.shape[::-1]
        return self.a.shape

    def result_dtype(self):
        return binary_result_dtype(self.op, self.a.dtype, self.b.dtype)

    def eval_into(self, out, desc):
        eng = current_backend_engine()
        if self.produces_matrix:
            out._store = getattr(eng, self.engine_mat)(
                out._store, self.a._store, self.b._store, self.op, desc,
                self.ta, self.tb,
            )
        else:
            out._store = getattr(eng, self.engine_vec)(
                out._store, self.a._store, self.b._store, self.op, desc
            )


class EWiseAdd(_EWise):
    """``A ⊕ B`` / ``u ⊕ v`` — union structure (``+`` operator)."""

    resolve = staticmethod(operators.resolve_ewise_add_op)
    engine_mat = "ewise_add_mat"
    engine_vec = "ewise_add_vec"


class EWiseMult(_EWise):
    """``A ⊗ B`` / ``u ⊗ v`` — intersection structure (``*`` operator)."""

    resolve = staticmethod(operators.resolve_ewise_mult_op)
    engine_mat = "ewise_mult_mat"
    engine_vec = "ewise_mult_vec"


class Apply(Expression):
    """``fᵤ(A)`` — unary operator captured from context or given
    explicitly (``gb.apply``)."""

    def __init__(self, a, op=None):
        super().__init__()
        a = _as_container(a)
        self.a, self.ta = _unwrap(a)
        self.op_spec = operators.resolve_unary_spec(op)
        self.produces_matrix = not getattr(self.a, "is_vector", False)

    def result_shape(self):
        if self.produces_matrix and self.ta:
            return self.a.shape[::-1]
        return self.a.shape

    def result_dtype(self):
        if self.op_spec[0] == "bind":
            const = np.asarray(self.op_spec[2])
            return binary_result_dtype(self.op_spec[1], self.a.dtype, const.dtype)
        if self.op_spec[1] == "LogicalNot":
            return np.dtype(np.bool_)
        return self.a.dtype

    def eval_into(self, out, desc):
        eng = current_backend_engine()
        if self.produces_matrix:
            out._store = eng.apply_mat(out._store, self.a._store, self.op_spec, desc, self.ta)
        else:
            out._store = eng.apply_vec(out._store, self.a._store, self.op_spec, desc)


class ReduceRows(Expression):
    """``[⊕ⱼ A(:, j)]`` — row-wise monoid reduction to a vector."""

    produces_matrix = False

    def __init__(self, a, monoid=None):
        super().__init__()
        a = _as_container(a)
        self.a, self.ta = _unwrap(a)
        self.op, self.identity = operators.resolve_reduce_monoid(monoid)

    def result_shape(self):
        return (self.a.shape[1] if self.ta else self.a.shape[0],)

    def result_dtype(self):
        return self.a.dtype

    def eval_into(self, out, desc):
        out._store = current_backend_engine().reduce_rows(
            out._store, self.a._store, self.op, desc, self.ta
        )


class ExtractMat(Expression):
    """``A(i, j)`` as a sub-matrix."""

    produces_matrix = True

    def __init__(self, a, rows, cols, ta=False):
        super().__init__()
        self.a = a
        self.rows = rows
        self.cols = cols
        self.ta = ta

    def result_shape(self):
        return (self.rows.size, self.cols.size)

    def result_dtype(self):
        return self.a.dtype

    def eval_into(self, out, desc):
        out._store = current_backend_engine().extract_mat(
            out._store, self.a._store, self.rows, self.cols, desc, self.ta
        )


class ExtractVec(Expression):
    """``u(i)`` — also covers row/column extraction from a matrix, which
    the containers lower to an index list over the (possibly transposed)
    matrix before building this expression."""

    produces_matrix = False

    def __init__(self, source_vec_store_fn, size, indices):
        super().__init__()
        self._store_fn = source_vec_store_fn
        self._size = size
        self.indices = indices

    def result_shape(self):
        return (self.indices.size,)

    def result_dtype(self):
        return self._store_fn().dtype

    def eval_into(self, out, desc):
        out._store = current_backend_engine().extract_vec(
            out._store, self._store_fn(), self.indices, desc
        )


class Select(Expression):
    """``select(op, A, k)`` — keep stored entries satisfying a positional
    or value predicate (``GrB_select``)."""

    def __init__(self, a, op, thunk=0):
        super().__init__()
        a = _as_container(a)
        self.a, self.ta = _unwrap(a)
        self.op = op
        self.thunk = thunk
        self.produces_matrix = not getattr(self.a, "is_vector", False)

    def result_shape(self):
        if self.produces_matrix and self.ta:
            return self.a.shape[::-1]
        return self.a.shape

    def result_dtype(self):
        return self.a.dtype

    def eval_into(self, out, desc):
        eng = current_backend_engine()
        if self.produces_matrix:
            out._store = eng.select_mat(
                out._store, self.a._store, self.op, self.thunk, desc, self.ta
            )
        else:
            out._store = eng.select_vec(
                out._store, self.a._store, self.op, self.thunk, desc
            )


class Kronecker(Expression):
    """``kron(A, B)`` over a binary ``⊗`` (``GrB_kronecker``)."""

    produces_matrix = True

    def __init__(self, a, b, op=None):
        super().__init__()
        self.a, self.ta = _unwrap(_as_container(a))
        self.b, self.tb = _unwrap(_as_container(b))
        self.op = operators.resolve_ewise_mult_op(op)

    def result_shape(self):
        ar, ac = self.a.shape if not self.ta else self.a.shape[::-1]
        br, bc = self.b.shape if not self.tb else self.b.shape[::-1]
        return (ar * br, ac * bc)

    def result_dtype(self):
        return binary_result_dtype(self.op, self.a.dtype, self.b.dtype)

    def eval_into(self, out, desc):
        out._store = current_backend_engine().kronecker(
            out._store, self.a._store, self.b._store, self.op, desc, self.ta, self.tb
        )


class TransposeExpr(Expression):
    """``Aᵀ`` in assignment position: ``C[M] = A.T``."""

    produces_matrix = True

    def __init__(self, a):
        super().__init__()
        self.a = a

    def result_shape(self):
        return self.a.shape[::-1]

    def result_dtype(self):
        return self.a.dtype

    def eval_into(self, out, desc):
        out._store = current_backend_engine().transpose(out._store, self.a._store, desc)
