"""Deferred expression objects (paper Sec. IV, "PyGB uses deferred
operator evaluation to enable the expression syntax without excessive
copying of data").

``A @ B`` does not compute anything: it returns an :class:`MXM` object
wrapping the operands and the semiring captured from the enclosing
``with`` block.  Operands that are themselves expressions stay deferred
too, so ``apply(A @ u)`` is a two-node DAG rather than a forced temporary
plus a node.  The tree is evaluated

* inside ``C.__setitem__`` — lowered through :mod:`repro.core.plan` into
  ``C`` with ``C``'s mask, accumulator and replace flag (and, when the
  engine supports it, with adjacent nodes fused into single kernels); or
* by a *terminating operation*: any use that treats the expression like a
  container (reading ``nvals``, indexing it, converting it) forces
  evaluation into a fresh container, which is what plain ``C = A @ B``
  yields.

This is the runtime analog of C++ expression templates the paper draws
the comparison to.
"""

from __future__ import annotations

import numbers
import time

import numpy as np

from .. import schedule as _schedule
from ..backend.kernels import OpDesc
from ..backend.ops_table import binary_result_dtype
from ..exceptions import InvalidValue
from . import operators
from .context import current_backend_engine

__all__ = [
    "Expression",
    "TransposeView",
    "MXM",
    "MXV",
    "VXM",
    "EWiseAdd",
    "EWiseMult",
    "Apply",
    "ReduceRows",
    "ExtractMat",
    "ExtractVec",
    "Select",
    "Kronecker",
    "TransposeExpr",
]


def _is_scalar(value) -> bool:
    return isinstance(value, (numbers.Number, np.number, np.bool_))


def _unwrap(operand):
    """``(dsl_container, transpose_flag)`` for a container or its ``.T``;
    expressions pass through untransposed (``.T`` on an expression is a
    terminating operation, so they never carry a flag)."""
    if isinstance(operand, TransposeView):
        return operand.parent, True
    return operand, False


def _as_container(operand):
    """Materialise expression operands.  Only the call sites that truly
    need a container use this (the result is cached on the expression, so
    an operand shared by two enclosing expressions evaluates once)."""
    if isinstance(operand, Expression):
        return operand.new()
    if isinstance(operand, TransposeView):
        return operand  # resolved later via the transpose flag
    return operand


# -- deferred-operand helpers: expressions stay lazy in operand slots ----

def _store_of(operand):
    """Backend store of an operand, materialising expressions (once —
    ``new`` caches) at evaluation time."""
    if isinstance(operand, Expression):
        return operand.new()._store
    return operand._store


def _shape_of(operand):
    if isinstance(operand, Expression):
        return operand.result_shape()
    return operand.shape


def _dtype_of(operand):
    if isinstance(operand, Expression):
        return operand.result_dtype()
    return operand.dtype


def _is_vec(operand) -> bool:
    if isinstance(operand, Expression):
        return not operand.produces_matrix
    return bool(getattr(operand, "is_vector", False))


def _dispatch_scheduled(method, sched, *args):
    """Invoke an engine traversal method under a resolved schedule,
    feeding the wall-clock latency back to the autotuner when this
    dispatch is one it is sampling (``sched.wants_timing``)."""
    if sched.wants_timing:
        t0 = time.perf_counter_ns()
        result = method(*args, sched=sched)
        sched.note_latency(time.perf_counter_ns() - t0)
        return result
    return method(*args, sched=sched)


class Expression:
    """Base class for all deferred operations."""

    #: subclasses set: does this expression produce a Matrix or a Vector?
    produces_matrix = True
    #: plan-IR metadata: the node kind and the attribute names holding
    #: operands that may themselves be deferred expressions
    kind = "op"
    operand_slots: tuple = ()

    def __init__(self):
        self._materialized = None

    # -- interface implemented by subclasses -----------------------------
    def result_shape(self):
        raise NotImplementedError

    def result_dtype(self) -> np.dtype:
        raise NotImplementedError

    def eval_into(self, out, desc: OpDesc):
        """Evaluate directly into DSL container *out* (no temporaries)."""
        raise NotImplementedError

    # -- plan-IR interface ------------------------------------------------
    @property
    def plan_kind(self) -> str:
        """The node kind the planner's peephole rules match on."""
        return self.kind

    def plan_children(self):
        """``(slot, child_expression)`` pairs for deferred operands."""
        out = []
        for slot in self.operand_slots:
            child = getattr(self, slot)
            if isinstance(child, Expression):
                out.append((slot, child))
        return out

    # -- materialisation --------------------------------------------------
    def new(self, dtype=None):
        """Force evaluation into a brand-new container (the behaviour of
        plain ``C = A @ B``).

        The natural-dtype result is computed once and cached on the
        expression, so an expression used as an operand of two enclosing
        expressions is not evaluated twice; an explicit *dtype* is a cast
        of the cached result."""
        if self._materialized is None:
            from .matrix import Matrix
            from .plan import evaluate
            from .vector import Vector

            if self.produces_matrix:
                out = Matrix(shape=self.result_shape(), dtype=self.result_dtype())
            else:
                out = Vector(shape=self.result_shape(), dtype=self.result_dtype())
            evaluate(self, out, OpDesc())
            self._materialized = out
        if dtype is None:
            return self._materialized
        from .matrix import Matrix
        from .vector import Vector

        cls = Matrix if self.produces_matrix else Vector
        return cls(self._materialized, dtype=dtype)

    # -- composition: operands stay deferred ------------------------------
    def __matmul__(self, other):
        if self.produces_matrix:
            if _is_vec(other):
                return MXV(self, other)
            return MXM(self, other)
        if _is_vec(other):
            raise InvalidValue("a Vector can only be matmul-ed with a Matrix")
        return VXM(self, other)

    def __rmatmul__(self, other):
        if self.produces_matrix:
            return MXM(other, self)
        return MXV(other, self)

    def __add__(self, other):
        if _is_scalar(other):
            return Apply(self, operators.UnaryOp(operators.resolve_ewise_add_op(), other))
        return EWiseAdd(self, other)

    def __radd__(self, other):
        if _is_scalar(other):
            return Apply(
                self, operators.UnaryOp(operators.resolve_ewise_add_op(), other, bind="first")
            )
        return EWiseAdd(other, self)

    def __mul__(self, other):
        if _is_scalar(other):
            return Apply(self, operators.UnaryOp(operators.resolve_ewise_mult_op(), other))
        return EWiseMult(self, other)

    def __rmul__(self, other):
        if _is_scalar(other):
            return Apply(
                self, operators.UnaryOp(operators.resolve_ewise_mult_op(), other, bind="first")
            )
        return EWiseMult(other, self)

    # -- shape/dtype are derivable without evaluation ----------------------
    @property
    def shape(self):
        return self.result_shape()

    @property
    def dtype(self):
        return np.dtype(self.result_dtype())

    # -- terminating operations (treat the expression like a container) --
    @property
    def nvals(self):
        return self.new().nvals

    @property
    def T(self):
        return self.new().T

    def __invert__(self):
        return ~self.new()

    def __getitem__(self, key):
        return self.new()[key]

    def to_numpy(self):
        return self.new().to_numpy()


class TransposeView:
    """``A.T`` — a zero-copy view; materialised only when assigned
    (``C[None] = A.T``) or combined outside a transposing operation."""

    __slots__ = ("parent",)

    def __init__(self, parent):
        self.parent = parent

    @property
    def T(self):
        return self.parent

    @property
    def shape(self):
        r, c = self.parent.shape
        return (c, r)

    @property
    def dtype(self):
        return self.parent.dtype

    @property
    def nvals(self):
        return self.parent.nvals

    def __matmul__(self, other):
        if _is_vec(other):
            return MXV(self, other)
        return MXM(self, other)

    def __rmatmul__(self, other):
        if _is_vec(other):
            return VXM(other, self)
        return MXM(other, self)

    def __add__(self, other):
        return EWiseAdd(self, other)

    def __mul__(self, other):
        return EWiseMult(self, other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.parent!r}.T"


class MXM(Expression):
    """``A ⊕.⊗ B`` — semiring captured at construction time."""

    produces_matrix = True
    kind = "mxm"
    operand_slots = ("a", "b")

    def __init__(self, a, b, semiring=None):
        super().__init__()
        self.a, self.ta = _unwrap(a)
        self.b, self.tb = _unwrap(b)
        self.add_op, self.mult_op = operators.resolve_semiring(semiring)

    def result_shape(self):
        ar, ac = _shape_of(self.a) if not self.ta else _shape_of(self.a)[::-1]
        br, bc = _shape_of(self.b) if not self.tb else _shape_of(self.b)[::-1]
        return (ar, bc)

    def result_dtype(self):
        t = binary_result_dtype(self.mult_op, _dtype_of(self.a), _dtype_of(self.b))
        return binary_result_dtype(self.add_op, t, t)

    def eval_into(self, out, desc):
        out._store = current_backend_engine().mxm(
            out._store, _store_of(self.a), _store_of(self.b),
            self.add_op, self.mult_op, desc, self.ta, self.tb,
        )


class MXV(Expression):
    """``A ⊕.⊗ u``."""

    produces_matrix = False
    kind = "mxv"
    operand_slots = ("a", "u")

    def __init__(self, a, u, semiring=None):
        super().__init__()
        self.a, self.ta = _unwrap(a)
        self.u = u
        self.add_op, self.mult_op = operators.resolve_semiring(semiring)
        self.schedule = _schedule.Schedule.capture()

    def result_shape(self):
        shape = _shape_of(self.a)
        return (shape[1] if self.ta else shape[0],)

    def result_dtype(self):
        t = binary_result_dtype(self.mult_op, _dtype_of(self.a), _dtype_of(self.u))
        return binary_result_dtype(self.add_op, t, t)

    def eval_into(self, out, desc):
        a_store, u_store = _store_of(self.a), _store_of(self.u)
        sched = self.schedule.resolve(
            "mxv", a_store, u_store, desc, self.ta, self.add_op
        )
        out._store = _dispatch_scheduled(
            current_backend_engine().mxv, sched,
            out._store, a_store, u_store,
            self.add_op, self.mult_op, desc, self.ta,
        )


class VXM(Expression):
    """``u ⊕.⊗ A`` — a row vector times a matrix (PageRank's
    ``page_rank @ m``)."""

    produces_matrix = False
    kind = "vxm"
    operand_slots = ("u", "a")

    def __init__(self, u, a, semiring=None):
        super().__init__()
        self.u = u
        self.a, self.ta = _unwrap(a)
        self.add_op, self.mult_op = operators.resolve_semiring(semiring)
        self.schedule = _schedule.Schedule.capture()

    def result_shape(self):
        shape = _shape_of(self.a)
        return (shape[0] if self.ta else shape[1],)

    def result_dtype(self):
        t = binary_result_dtype(self.mult_op, _dtype_of(self.u), _dtype_of(self.a))
        return binary_result_dtype(self.add_op, t, t)

    def eval_into(self, out, desc):
        u_store, a_store = _store_of(self.u), _store_of(self.a)
        sched = self.schedule.resolve(
            "vxm", a_store, u_store, desc, self.ta, self.add_op
        )
        out._store = _dispatch_scheduled(
            current_backend_engine().vxm, sched,
            out._store, u_store, a_store,
            self.add_op, self.mult_op, desc, self.ta,
        )


class _EWise(Expression):
    resolve = None  # set by subclasses
    engine_mat = ""
    engine_vec = ""
    operand_slots = ("a", "b")

    def __init__(self, a, b, op=None):
        super().__init__()
        self.a, self.ta = _unwrap(a)
        self.b, self.tb = _unwrap(b)
        self.op = type(self).resolve(op)
        self.produces_matrix = not _is_vec(self.a)

    @property
    def plan_kind(self):
        return f"{self.kind}_{'mat' if self.produces_matrix else 'vec'}"

    def result_shape(self):
        if self.produces_matrix and self.ta:
            return _shape_of(self.a)[::-1]
        return _shape_of(self.a)

    def result_dtype(self):
        return binary_result_dtype(self.op, _dtype_of(self.a), _dtype_of(self.b))

    def eval_into(self, out, desc):
        eng = current_backend_engine()
        if self.produces_matrix:
            out._store = getattr(eng, self.engine_mat)(
                out._store, _store_of(self.a), _store_of(self.b), self.op, desc,
                self.ta, self.tb,
            )
        else:
            out._store = getattr(eng, self.engine_vec)(
                out._store, _store_of(self.a), _store_of(self.b), self.op, desc
            )


class EWiseAdd(_EWise):
    """``A ⊕ B`` / ``u ⊕ v`` — union structure (``+`` operator)."""

    resolve = staticmethod(operators.resolve_ewise_add_op)
    engine_mat = "ewise_add_mat"
    engine_vec = "ewise_add_vec"
    kind = "ewise_add"


class EWiseMult(_EWise):
    """``A ⊗ B`` / ``u ⊗ v`` — intersection structure (``*`` operator)."""

    resolve = staticmethod(operators.resolve_ewise_mult_op)
    engine_mat = "ewise_mult_mat"
    engine_vec = "ewise_mult_vec"
    kind = "ewise_mult"


class Apply(Expression):
    """``fᵤ(A)`` — unary operator captured from context or given
    explicitly (``gb.apply``)."""

    kind = "apply"
    operand_slots = ("a",)

    def __init__(self, a, op=None):
        super().__init__()
        self.a, self.ta = _unwrap(a)
        self.op_spec = operators.resolve_unary_spec(op)
        self.produces_matrix = not _is_vec(self.a)

    @property
    def plan_kind(self):
        return f"apply_{'mat' if self.produces_matrix else 'vec'}"

    def result_shape(self):
        if self.produces_matrix and self.ta:
            return _shape_of(self.a)[::-1]
        return _shape_of(self.a)

    def result_dtype(self):
        if self.op_spec[0] == "bind":
            const = np.asarray(self.op_spec[2])
            return binary_result_dtype(self.op_spec[1], _dtype_of(self.a), const.dtype)
        if self.op_spec[1] == "LogicalNot":
            return np.dtype(np.bool_)
        return _dtype_of(self.a)

    def eval_into(self, out, desc):
        eng = current_backend_engine()
        if self.produces_matrix:
            out._store = eng.apply_mat(out._store, _store_of(self.a), self.op_spec, desc, self.ta)
        else:
            out._store = eng.apply_vec(out._store, _store_of(self.a), self.op_spec, desc)


class ReduceRows(Expression):
    """``[⊕ⱼ A(:, j)]`` — row-wise monoid reduction to a vector."""

    produces_matrix = False
    kind = "reduce_rows"
    operand_slots = ("a",)

    def __init__(self, a, monoid=None):
        super().__init__()
        self.a, self.ta = _unwrap(a)
        self.op, self.identity = operators.resolve_reduce_monoid(monoid)

    def result_shape(self):
        shape = _shape_of(self.a)
        return (shape[1] if self.ta else shape[0],)

    def result_dtype(self):
        return _dtype_of(self.a)

    def eval_into(self, out, desc):
        out._store = current_backend_engine().reduce_rows(
            out._store, _store_of(self.a), self.op, desc, self.ta
        )


class ExtractMat(Expression):
    """``A(i, j)`` as a sub-matrix."""

    produces_matrix = True
    kind = "extract_mat"
    operand_slots = ("a",)

    def __init__(self, a, rows, cols, ta=False):
        super().__init__()
        self.a = a
        self.rows = rows
        self.cols = cols
        self.ta = ta

    def result_shape(self):
        return (self.rows.size, self.cols.size)

    def result_dtype(self):
        return _dtype_of(self.a)

    def eval_into(self, out, desc):
        out._store = current_backend_engine().extract_mat(
            out._store, _store_of(self.a), self.rows, self.cols, desc, self.ta
        )


class ExtractVec(Expression):
    """``u(i)`` — also covers row/column extraction from a matrix, which
    the containers lower to an index list over the (possibly transposed)
    matrix before building this expression."""

    produces_matrix = False
    kind = "extract_vec"

    def __init__(self, source_vec_store_fn, size, indices):
        super().__init__()
        self._store_fn = source_vec_store_fn
        self._size = size
        self.indices = indices

    def result_shape(self):
        return (self.indices.size,)

    def result_dtype(self):
        return self._store_fn().dtype

    def eval_into(self, out, desc):
        out._store = current_backend_engine().extract_vec(
            out._store, self._store_fn(), self.indices, desc
        )


class Select(Expression):
    """``select(op, A, k)`` — keep stored entries satisfying a positional
    or value predicate (``GrB_select``)."""

    kind = "select"
    operand_slots = ("a",)

    def __init__(self, a, op, thunk=0):
        super().__init__()
        self.a, self.ta = _unwrap(a)
        self.op = op
        self.thunk = thunk
        self.produces_matrix = not _is_vec(self.a)

    @property
    def plan_kind(self):
        return f"select_{'mat' if self.produces_matrix else 'vec'}"

    def result_shape(self):
        if self.produces_matrix and self.ta:
            return _shape_of(self.a)[::-1]
        return _shape_of(self.a)

    def result_dtype(self):
        return _dtype_of(self.a)

    def eval_into(self, out, desc):
        eng = current_backend_engine()
        if self.produces_matrix:
            out._store = eng.select_mat(
                out._store, _store_of(self.a), self.op, self.thunk, desc, self.ta
            )
        else:
            out._store = eng.select_vec(
                out._store, _store_of(self.a), self.op, self.thunk, desc
            )


class Kronecker(Expression):
    """``kron(A, B)`` over a binary ``⊗`` (``GrB_kronecker``)."""

    produces_matrix = True
    kind = "kronecker"
    operand_slots = ("a", "b")

    def __init__(self, a, b, op=None):
        super().__init__()
        self.a, self.ta = _unwrap(a)
        self.b, self.tb = _unwrap(b)
        self.op = operators.resolve_ewise_mult_op(op)

    def result_shape(self):
        ar, ac = _shape_of(self.a) if not self.ta else _shape_of(self.a)[::-1]
        br, bc = _shape_of(self.b) if not self.tb else _shape_of(self.b)[::-1]
        return (ar * br, ac * bc)

    def result_dtype(self):
        return binary_result_dtype(self.op, _dtype_of(self.a), _dtype_of(self.b))

    def eval_into(self, out, desc):
        out._store = current_backend_engine().kronecker(
            out._store, _store_of(self.a), _store_of(self.b), self.op, desc,
            self.ta, self.tb,
        )


class TransposeExpr(Expression):
    """``Aᵀ`` in assignment position: ``C[M] = A.T``."""

    produces_matrix = True
    kind = "transpose"
    operand_slots = ("a",)

    def __init__(self, a):
        super().__init__()
        self.a = a

    def result_shape(self):
        return _shape_of(self.a)[::-1]

    def result_dtype(self):
        return _dtype_of(self.a)

    def eval_into(self, out, desc):
        out._store = current_backend_engine().transpose(out._store, _store_of(self.a), desc)
