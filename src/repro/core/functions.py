"""Free-function operations of the DSL: ``reduce``, ``apply`` and
``transpose`` (Table I rows *reduce*, *apply*, *transpose*).

Signatures follow the paper's usage:

* ``gb.reduce(A)`` / ``gb.reduce(u)`` — reduce to a Python scalar with the
  monoid from context (defaulting to the Plus monoid, as in Fig. 5's
  triangle count and Fig. 7's ``squared_error``);
* ``gb.reduce(monoid, A)`` — row-wise reduction producing a deferred
  vector expression (Table I *reduce (row)*);
* ``gb.apply(A)`` — unary apply with the operator from context (Fig. 7);
  ``gb.apply(op, A)`` passes it explicitly;
* ``gb.transpose(A)`` — deferred ``Aᵀ`` for assignment position.
"""

from __future__ import annotations

from ..exceptions import InvalidValue
from . import operators
from .context import current_backend_engine
from .expressions import (
    Apply,
    EWiseAdd,
    EWiseMult,
    Expression,
    Kronecker,
    ReduceRows,
    Select,
    TransposeExpr,
    TransposeView,
    _store_of,
)

__all__ = ["reduce", "apply", "transpose", "select", "kron"]


def _materialize(x):
    return x.new() if isinstance(x, Expression) else x


def reduce(*args):
    """``reduce(x)`` -> scalar; ``reduce(monoid, x)`` -> scalar for a
    vector operand or a deferred row-reduction for a matrix operand."""
    if len(args) == 1:
        monoid, operand = None, args[0]
    elif len(args) == 2:
        monoid, operand = args
    else:
        raise InvalidValue(f"reduce takes 1 or 2 arguments, got {len(args)}")
    if isinstance(operand, TransposeView):
        operand = operand.parent  # reduction to scalar ignores transposition
    if isinstance(operand, Expression):
        is_vector = not operand.produces_matrix
        if monoid is not None and not is_vector:
            return ReduceRows(operand, monoid)  # stays deferred → may fuse
        op, identity = operators.resolve_reduce_monoid(monoid)
        eng = current_backend_engine()
        # fold an elementwise producer straight into the reduction when
        # the planner is on and the engine has the fused kernel
        if is_vector and operand._materialized is None:
            from .plan import fusion_enabled

            fused_name = {EWiseAdd: "ewise_add_vec_reduce_scalar",
                          EWiseMult: "ewise_mult_vec_reduce_scalar"}.get(type(operand))
            if (
                fused_name is not None
                and fusion_enabled()
                and getattr(eng, "supports_fusion", False)
                and hasattr(eng, fused_name)
            ):
                result = getattr(eng, fused_name)(
                    _store_of(operand.a), _store_of(operand.b),
                    operand.op, op, identity,
                )
                return result.item() if hasattr(result, "item") else result
        operand = operand.new()
    is_vector = getattr(operand, "is_vector", None)
    if is_vector is None:
        raise InvalidValue("reduce expects a Matrix or Vector operand")
    if monoid is not None and not is_vector:
        return ReduceRows(operand, monoid)
    op, identity = operators.resolve_reduce_monoid(monoid)
    eng = current_backend_engine()
    if is_vector:
        result = eng.reduce_vec_scalar(operand._store, op, identity)
    else:
        result = eng.reduce_mat_scalar(operand._store, op, identity)
    return result.item() if hasattr(result, "item") else result


def apply(*args):
    """``apply(x)`` with a context operator or ``apply(op, x)`` — a
    deferred elementwise map over the stored values."""
    if len(args) == 1:
        op, operand = None, args[0]
    elif len(args) == 2:
        op, operand = args
    else:
        raise InvalidValue(f"apply takes 1 or 2 arguments, got {len(args)}")
    if op is not None and not isinstance(op, operators.UnaryOp):
        raise InvalidValue("the explicit operator for apply must be a UnaryOp")
    return Apply(operand, op)  # operand stays deferred (planner may fuse it)


def transpose(a):
    """Deferred transpose: ``C[M] = gb.transpose(A)``."""
    a = _materialize(a)
    if isinstance(a, TransposeView):
        return a.parent
    return TransposeExpr(a)


def select(op, operand, thunk=0):
    """``C[M] = gb.select("Tril", A)`` — deferred entry filter by a
    positional (``Tril``/``Triu``/``Diag``/``Offdiag``) or value
    (``NonZero``, ``ValueGT`` …) predicate with optional scalar *thunk*."""
    from ..backend.kernels import SELECT_OPS

    if op not in SELECT_OPS:
        raise InvalidValue(
            f"unknown select operator {op!r}; valid names: {sorted(SELECT_OPS)}"
        )
    return Select(operand, op, thunk)


def kron(a, b, op=None):
    """``C[M] = gb.kron(A, B)`` — deferred Kronecker product; ``⊗`` comes
    from *op* or the operator context (default ``Times``)."""
    return Kronecker(a, b, op)
