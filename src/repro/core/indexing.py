"""Index normalisation for extract/assign subscripts.

Translates Python's indexing vocabulary (ints, slices, lists, ranges,
NumPy arrays) into the explicit int64 index lists the backend kernels
consume, and classifies the result shape (scalar / row / column /
sub-matrix) the way Table I's extract rows imply.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import IndexOutOfBounds, InvalidValue

__all__ = ["normalize_index", "parse_matrix_indices", "parse_vector_index"]


def normalize_index(ix, dim: int) -> np.ndarray:
    """A single axis subscript -> explicit int64 index array.

    Raises :class:`IndexOutOfBounds` (the GraphBLAS C API's
    ``GrB_INDEX_OUT_OF_BOUNDS``) at parse time for any position outside
    ``[-dim, dim)`` so no engine ever sees a wrapped or wild index —
    the C++ kernels would otherwise read/write out of bounds silently.
    Slices are exempt: Python slice semantics clamp to the dimension.
    """
    if isinstance(ix, slice):
        return np.arange(*ix.indices(dim), dtype=np.int64)
    if isinstance(ix, (int, np.integer)):
        i = int(ix)
        if i < 0:
            i += dim
        if i < 0 or i >= dim:
            raise IndexOutOfBounds(
                f"index {int(ix)} is out of bounds for dimension of size {dim}"
            )
        return np.array([i], dtype=np.int64)
    arr = np.asarray(ix)
    if arr.dtype == bool:
        raise InvalidValue(
            "boolean arrays are not valid indices; use a container as a mask"
        )
    arr = arr.astype(np.int64).ravel()
    arr = np.where(arr < 0, arr + dim, arr)
    if arr.size and ((arr < 0).any() or (arr >= dim).any()):
        bad = arr[(arr < 0) | (arr >= dim)][0]
        orig = bad - dim if bad < 0 else bad
        raise IndexOutOfBounds(
            f"index {int(orig)} is out of bounds for dimension of size {dim}"
        )
    return arr


def parse_matrix_indices(key, shape: tuple[int, int]):
    """``(rows, cols, kind)`` where kind is how the result collapses:
    ``"scalar"`` (two ints), ``"row"``/``"col"`` (one int, one list), or
    ``"mat"``."""
    if not isinstance(key, tuple) or len(key) != 2:
        raise InvalidValue(
            f"matrix subscripts need a (row, column) pair, got {key!r}"
        )
    ri, ci = key
    r_scalar = isinstance(ri, (int, np.integer))
    c_scalar = isinstance(ci, (int, np.integer))
    rows = normalize_index(ri, shape[0])
    cols = normalize_index(ci, shape[1])
    if r_scalar and c_scalar:
        kind = "scalar"
    elif r_scalar:
        kind = "row"
    elif c_scalar:
        kind = "col"
    else:
        kind = "mat"
    return rows, cols, kind


def parse_vector_index(key, size: int):
    """``(indices, kind)`` with kind ``"scalar"`` or ``"vec"``."""
    scalar = isinstance(key, (int, np.integer))
    idx = normalize_index(key, size)
    return idx, ("scalar" if scalar else "vec")
