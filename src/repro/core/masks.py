"""Masks, masked views and the ``+=`` accumulate marker.

This module implements the square-bracket write syntax of Table I:

* ``C[None] = expr`` — NoMask in-place update (container reuse, Sec. IV);
* ``C[M] = expr`` — value mask (mask data "coerced to boolean values");
* ``C[~M] = expr`` — complemented mask via Python's ``~`` operator;
* ``C[M, True] = expr`` — explicit replace flag ``z`` as in ``C⟨M, z⟩``;
* ``C[None] += expr`` — accumulate (``⊙``) through ``__iadd__``;
* ``levels[front][:] = depth`` — masked constant assignment via a
  :class:`MaskedView`;
* ``C[M][i, j] = A`` — masked sub-assign.
"""

from __future__ import annotations

import numpy as np

from ..backend.kernels import OpDesc
from ..exceptions import InvalidValue
from . import context

__all__ = ["Complemented", "MaskedView", "AccumExpr", "SetKey", "parse_mask_key", "build_desc"]


class _AccumApplied:
    """Sentinel returned by eager ``__iadd__`` implementations so the
    trailing ``__setitem__`` of the ``C[M] += expr`` statement knows the
    accumulate already happened and must not run a second time."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<accumulate already applied>"


ACCUM_APPLIED = _AccumApplied()


class Complemented:
    """A complemented mask: ``~M``.  Only meaningful in mask position."""

    __slots__ = ("container",)

    def __init__(self, container):
        self.container = container

    def __invert__(self):
        return self.container

    def __repr__(self) -> str:
        return f"~{self.container!r}"


class AccumExpr:
    """Marker produced by ``__iadd__`` on containers and masked views so
    the subsequent ``__setitem__`` knows to bind an accumulate operator."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class SetKey:
    """Parsed form of a square-bracket key on the write side."""

    __slots__ = ("mask", "complement", "replace", "indices")

    def __init__(self, mask=None, complement=False, replace=None, indices=None):
        self.mask = mask  #: DSL container used as mask, or None
        self.complement = complement
        self.replace = replace  #: explicit bool, or None -> from context
        self.indices = indices  #: raw index tuple for assign, or None

    def resolved_replace(self) -> bool:
        if self.replace is not None:
            return self.replace
        return context.replace_active()

    def frozen(self) -> "SetKey":
        """Snapshot with the replace flag resolved against the *current*
        operator context — the nonblocking queue captures this at enqueue
        time so a flush never re-reads the (long unwound) context stack."""
        return SetKey(self.mask, self.complement, self.resolved_replace(), self.indices)


def _is_container(obj) -> bool:
    # late import breaks the container<->mask cycle
    from .base import Container

    return isinstance(obj, Container)


def _is_indexish(obj) -> bool:
    return isinstance(obj, (int, np.integer, slice, list, np.ndarray, range))


def parse_mask_key(key) -> SetKey | None:
    """Interpret *key* as a mask key (None / container / ~container /
    ``(mask, replace)``); return None when it is an index key instead."""
    if key is None:
        return SetKey(mask=None)
    if _is_container(key):
        return SetKey(mask=key)
    if isinstance(key, Complemented):
        return SetKey(mask=key.container, complement=True)
    if isinstance(key, tuple) and len(key) == 2 and isinstance(key[1], (bool, np.bool_)):
        first = key[0]
        replace = bool(key[1])
        if first is None:
            return SetKey(mask=None, replace=replace)
        if _is_container(first):
            return SetKey(mask=first, replace=replace)
        if isinstance(first, Complemented):
            return SetKey(mask=first.container, complement=True, replace=replace)
    if _is_indexish(key):
        return None
    if isinstance(key, tuple) and all(_is_indexish(k) for k in key):
        return None
    raise InvalidValue(f"cannot interpret subscript key {key!r}")


def build_desc(setkey: SetKey, accum: str | None = None) -> OpDesc:
    """Backend operation descriptor from a parsed key + accumulate op."""
    mask_store = setkey.mask._store if setkey.mask is not None else None
    return OpDesc(
        mask=mask_store,
        complement=setkey.complement,
        replace=setkey.resolved_replace(),
        accum=accum,
    )


class MaskedView:
    """The object returned by ``C[M]`` (and ``C[None]``): a deferred
    masked write target.

    Reading through a view is intentionally unsupported — GraphBLAS masks
    only govern writes; ``C[M]`` by itself has no value.
    """

    __slots__ = ("container", "setkey")

    def __init__(self, container, setkey: SetKey):
        self.container = container
        self.setkey = setkey

    def __iadd__(self, value):
        """``C[M, True] += expr``: accumulate under this view's mask.

        Applied eagerly with the view's own parsed :class:`SetKey`, so an
        explicit replace flag always survives the ``__iadd__`` →
        ``__setitem__`` round-trip (it is never re-derived from the raw
        key or the ambient context).  Eager application also makes
        ``mv = C[M]; mv += expr`` perform the write — previously that
        spelling silently rebound ``mv`` to an inert marker.  The
        trailing ``C.__setitem__`` of the statement form receives
        :data:`ACCUM_APPLIED` and is a no-op.
        """
        from . import operators

        self.container._set_masked(self.setkey, value, operators.resolve_accum_op())
        return ACCUM_APPLIED

    def __getitem__(self, index_key):
        """``C[M][i, j]`` names a sub-region of the masked write target
        (reading through a mask stays unsupported); it exists so
        ``C[M][i, j] += v`` can desugar into a masked sub-assign with an
        accumulate operator."""
        return _MaskedRegion(self, index_key)

    def __setitem__(self, index_key, value):
        """``C[M][i, j] = A`` / ``levels[front][:] = depth`` — a masked
        assign into the addressed region."""
        if value is ACCUM_APPLIED:
            return  # the region's __iadd__ already did the write
        accum = None
        if isinstance(value, AccumExpr):
            from . import operators

            value = value.value
            accum = operators.resolve_accum_op()
        self.container._assign(self.setkey, index_key, value, accum)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MaskedView({self.container!r}, mask={self.setkey.mask!r})"


class _MaskedRegion:
    """``C[M][i, j]`` — an addressed sub-region of a masked write target.

    Write-only, like the view that produced it: the only supported
    operation is ``+=``, which performs the masked sub-assign accumulate
    eagerly (with the view's SetKey, so replace/complement survive) and
    hands :data:`ACCUM_APPLIED` back to ``MaskedView.__setitem__``.
    """

    __slots__ = ("view", "index_key")

    def __init__(self, view: MaskedView, index_key):
        self.view = view
        self.index_key = index_key

    def __iadd__(self, value):
        from . import operators

        self.view.container._assign(
            self.view.setkey, self.index_key, value, operators.resolve_accum_op()
        )
        return ACCUM_APPLIED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_MaskedRegion({self.view!r}, {self.index_key!r})"
