"""Masks, masked views and the ``+=`` accumulate marker.

This module implements the square-bracket write syntax of Table I:

* ``C[None] = expr`` — NoMask in-place update (container reuse, Sec. IV);
* ``C[M] = expr`` — value mask (mask data "coerced to boolean values");
* ``C[~M] = expr`` — complemented mask via Python's ``~`` operator;
* ``C[M, True] = expr`` — explicit replace flag ``z`` as in ``C⟨M, z⟩``;
* ``C[None] += expr`` — accumulate (``⊙``) through ``__iadd__``;
* ``levels[front][:] = depth`` — masked constant assignment via a
  :class:`MaskedView`;
* ``C[M][i, j] = A`` — masked sub-assign.
"""

from __future__ import annotations

import numpy as np

from ..backend.kernels import OpDesc
from ..exceptions import InvalidValue
from . import context

__all__ = ["Complemented", "MaskedView", "AccumExpr", "SetKey", "parse_mask_key", "build_desc"]


class Complemented:
    """A complemented mask: ``~M``.  Only meaningful in mask position."""

    __slots__ = ("container",)

    def __init__(self, container):
        self.container = container

    def __invert__(self):
        return self.container

    def __repr__(self) -> str:
        return f"~{self.container!r}"


class AccumExpr:
    """Marker produced by ``__iadd__`` on containers and masked views so
    the subsequent ``__setitem__`` knows to bind an accumulate operator."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


class SetKey:
    """Parsed form of a square-bracket key on the write side."""

    __slots__ = ("mask", "complement", "replace", "indices")

    def __init__(self, mask=None, complement=False, replace=None, indices=None):
        self.mask = mask  #: DSL container used as mask, or None
        self.complement = complement
        self.replace = replace  #: explicit bool, or None -> from context
        self.indices = indices  #: raw index tuple for assign, or None

    def resolved_replace(self) -> bool:
        if self.replace is not None:
            return self.replace
        return context.replace_active()


def _is_container(obj) -> bool:
    # late import breaks the container<->mask cycle
    from .base import Container

    return isinstance(obj, Container)


def _is_indexish(obj) -> bool:
    return isinstance(obj, (int, np.integer, slice, list, np.ndarray, range))


def parse_mask_key(key) -> SetKey | None:
    """Interpret *key* as a mask key (None / container / ~container /
    ``(mask, replace)``); return None when it is an index key instead."""
    if key is None:
        return SetKey(mask=None)
    if _is_container(key):
        return SetKey(mask=key)
    if isinstance(key, Complemented):
        return SetKey(mask=key.container, complement=True)
    if isinstance(key, tuple) and len(key) == 2 and isinstance(key[1], bool):
        first = key[0]
        if first is None:
            return SetKey(mask=None, replace=key[1])
        if _is_container(first):
            return SetKey(mask=first, replace=key[1])
        if isinstance(first, Complemented):
            return SetKey(mask=first.container, complement=True, replace=key[1])
    if _is_indexish(key):
        return None
    if isinstance(key, tuple) and all(_is_indexish(k) for k in key):
        return None
    raise InvalidValue(f"cannot interpret subscript key {key!r}")


def build_desc(setkey: SetKey, accum: str | None = None) -> OpDesc:
    """Backend operation descriptor from a parsed key + accumulate op."""
    mask_store = setkey.mask._store if setkey.mask is not None else None
    return OpDesc(
        mask=mask_store,
        complement=setkey.complement,
        replace=setkey.resolved_replace(),
        accum=accum,
    )


class MaskedView:
    """The object returned by ``C[M]`` (and ``C[None]``): a deferred
    masked write target.

    Reading through a view is intentionally unsupported — GraphBLAS masks
    only govern writes; ``C[M]`` by itself has no value.
    """

    __slots__ = ("container", "setkey")

    def __init__(self, container, setkey: SetKey):
        self.container = container
        self.setkey = setkey

    def __iadd__(self, value):
        return AccumExpr(value)

    def __setitem__(self, index_key, value):
        """``C[M][i, j] = A`` / ``levels[front][:] = depth`` — a masked
        assign into the addressed region."""
        self.container._assign(self.setkey, index_key, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MaskedView({self.container!r}, mask={self.setkey.mask!r})"
