"""The PyGB ``Matrix`` container (paper Sec. III, Fig. 3).

Construction mirrors the paper's examples::

    m = gb.Matrix((vals, (row_idx, col_idx)), shape=(r, c))   # sparse COO
    m = gb.Matrix([[1, 2, 3], [4, 5, 6]])                     # dense rows
    m = gb.Matrix(np.random.rand(3, 3))                       # NumPy
    m = gb.Matrix(sc.sparse.diags([1, 1, 1], [-1, 0, 1]))     # SciPy sparse
    m = gb.Matrix(nx.balanced_tree(r=4, h=8))                 # NetworkX
    m = gb.Matrix(shape=(r, c), dtype=float)                  # empty

Construction copies the data (the paper does the same and lists zero-copy
sharing as future work).
"""

from __future__ import annotations

import numpy as np

from ..backend.smatrix import SparseMatrix
from ..exceptions import EmptyObject, InvalidValue
from ..types import default_dtype_for, normalize_dtype
from .base import Container, _is_scalar
from .context import current_backend_engine
from .expressions import (
    Expression,
    ExtractMat,
    ExtractVec,
    MXM,
    MXV,
    TransposeView,
)
from .indexing import parse_matrix_indices
from .masks import SetKey, build_desc

__all__ = ["Matrix"]


class Matrix(Container):
    """A GraphBLAS matrix: a 2-D container of stored values over an
    implied-zero background."""

    is_vector = False

    def __init__(self, data=None, shape=None, dtype=None):
        from ..tiling import maybe_tile

        if isinstance(data, SparseMatrix):  # internal: wrap a backend store
            self._store = maybe_tile(data if dtype is None else data.astype(dtype))
            return
        if isinstance(data, Expression):
            self._store = data.new(dtype=dtype)._store
            return
        if isinstance(data, TransposeView):
            self._store = data.parent._store.transposed()
            if dtype is not None:
                self._store = self._store.astype(dtype)
            self._store = maybe_tile(self._store)
            return
        if isinstance(data, Matrix):
            src = data._store
            store = src.astype(dtype) if dtype is not None else src.copy()
            if store is src:
                # astype() to the same dtype returns the source store;
                # container semantics promise an independent copy, so
                # never alias (mutating either matrix would corrupt the
                # other, along with its cached transpose/degree memos)
                store = src.copy()
            self._store = maybe_tile(store)
            return
        if data is None:
            if shape is None:
                raise InvalidValue("an empty Matrix needs an explicit shape")
            self._store = maybe_tile(SparseMatrix.empty(
                shape[0], shape[1], normalize_dtype(dtype) if dtype is not None else np.float64
            ))
            return
        if isinstance(data, tuple) and len(data) == 2:
            vals, rc = data
            if not (isinstance(rc, tuple) and len(rc) == 2):
                raise InvalidValue(
                    "sparse construction expects (values, (row_idx, col_idx))"
                )
            rows, cols = rc
            vals_arr = np.asarray(vals)
            if shape is None:
                r = int(np.max(rows)) + 1 if len(rows) else 0
                c = int(np.max(cols)) + 1 if len(cols) else 0
                shape = (r, c)
            dt = normalize_dtype(dtype) if dtype is not None else default_dtype_for(vals_arr)
            self._store = maybe_tile(
                SparseMatrix.from_coo(shape[0], shape[1], rows, cols, vals_arr, dt)
            )
            return
        if hasattr(data, "tocoo"):  # SciPy sparse (duck-typed)
            coo = data.tocoo()
            dt = normalize_dtype(dtype) if dtype is not None else default_dtype_for(coo.data)
            self._store = maybe_tile(SparseMatrix.from_coo(
                coo.shape[0], coo.shape[1], coo.row, coo.col, coo.data, dt
            ))
            return
        if hasattr(data, "adjacency"):  # NetworkX graph (duck-typed)
            from ..io.convert import networkx_to_coo

            nrows, ncols, rows, cols, vals = networkx_to_coo(data)
            dt = normalize_dtype(dtype) if dtype is not None else default_dtype_for(vals)
            self._store = maybe_tile(
                SparseMatrix.from_coo(nrows, ncols, rows, cols, vals, dt)
            )
            return
        arr = np.asarray(data)
        if arr.ndim != 2:
            raise InvalidValue(f"cannot build a Matrix from {arr.ndim}-D data")
        dt = normalize_dtype(dtype) if dtype is not None else default_dtype_for(arr)
        self._store = maybe_tile(SparseMatrix.from_dense(arr, dt))

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        # extent is write-invariant: no nonblocking flush on shape reads
        return self._backing.shape

    @property
    def nrows(self) -> int:
        return self._backing.nrows

    @property
    def ncols(self) -> int:
        return self._backing.ncols

    @property
    def T(self) -> TransposeView:
        """Transpose view; materialised only where needed (Table I)."""
        return TransposeView(self)

    # ------------------------------------------------------------------
    # multiplication builds deferred expressions
    # ------------------------------------------------------------------
    def __matmul__(self, other):
        from .expressions import _is_vec

        if _is_vec(other):
            return MXV(self, other)
        return MXM(self, other)

    def __rmatmul__(self, other):
        return MXM(other, self)

    # ------------------------------------------------------------------
    # extract / assign
    # ------------------------------------------------------------------
    def _full_slice(self):
        return (slice(None), slice(None))

    def _extract(self, key):
        rows, cols, kind = parse_matrix_indices(key, self.shape)
        if kind == "scalar":
            val = self._store.get(int(rows[0]), int(cols[0]))
            if val is None:
                raise EmptyObject(
                    f"no stored value at ({int(rows[0])}, {int(cols[0])})"
                )
            return val.item() if hasattr(val, "item") else val
        if kind == "row":
            i = int(rows[0])
            return ExtractVec(lambda: self._store.row_vector(i), self.ncols, cols)
        if kind == "col":
            j = int(cols[0])
            return ExtractVec(
                lambda: self._store.transposed().row_vector(j), self.nrows, rows
            )
        return ExtractMat(self, rows, cols)

    def _validate_index(self, index_key) -> None:
        parse_matrix_indices(index_key, self.shape)

    def _assign_exec(self, setkey: SetKey, index_key, value, accum=None):
        from .vector import Vector

        rows, cols, kind = parse_matrix_indices(index_key, self.shape)
        desc = build_desc(setkey, accum)
        eng = current_backend_engine()
        if isinstance(value, Expression):
            # e.g. C[2:4, 2:4] = A @ B: GBTL cannot fuse mxm+assign, so the
            # expression is forced into a temporary first (paper Sec. IV)
            value = value.new()
        if _is_scalar(value):
            self._store = eng.assign_mat_scalar(self._store, value, rows, cols, desc)
            return
        ta = False
        if isinstance(value, TransposeView):
            value, ta = value.parent, True
        if isinstance(value, Vector):
            # row / column assign: embed the vector as a 1×n or n×1 matrix
            vs = value._store
            if kind == "row":
                src = SparseMatrix.from_coo_sorted(
                    1, vs.size, np.zeros(vs.nvals, dtype=np.int64), vs.indices, vs.values
                )
            elif kind == "col":
                src = SparseMatrix.from_coo_sorted(
                    vs.size, 1, vs.indices, np.zeros(vs.nvals, dtype=np.int64), vs.values
                )
            else:
                raise InvalidValue("a Vector can only be assigned to a row or column")
            self._store = eng.assign_mat(self._store, src, rows, cols, desc)
            return
        if isinstance(value, Matrix):
            self._store = eng.assign_mat(self._store, value._store, rows, cols, desc, ta)
            return
        raise InvalidValue(f"cannot assign object of type {type(value).__name__}")

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_numpy(self, fill=0) -> np.ndarray:
        """Dense ndarray copy with *fill* for implied zeros."""
        return self._store.to_dense(fill)

    def to_coo(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(rows, cols, values)`` copies of the stored entries."""
        r, c, v = self._store.coo()
        return r.copy(), c.copy(), v.copy()

    def get(self, i: int, j: int, default=None):
        """Stored value at ``(i, j)`` or *default* (non-throwing extract)."""
        val = self._store.get(i, j)
        if val is None:
            return default
        return val.item() if hasattr(val, "item") else val

    def dup(self) -> "Matrix":
        """Deep copy (``GrB_Matrix_dup``)."""
        return Matrix(self._store.copy())

    def clear(self) -> None:
        """Remove every stored value, keeping shape and dtype."""
        self._store = SparseMatrix.empty(self.nrows, self.ncols, self.dtype)

    def __repr__(self) -> str:
        return (
            f"<Matrix {self.nrows}x{self.ncols}, {self.nvals} stored values, "
            f"dtype={self.dtype}>"
        )
