"""Nonblocking execution mode (GraphBLAS ``GrB_NONBLOCKING``).

In blocking mode every ``C[...] = expr`` statement dispatches kernels
before returning.  Under ``with gb.nonblocking():`` (or
``PYGB_MODE=nonblocking``) assignments *enqueue* instead: each statement
becomes an entry in a per-thread :class:`LazyQueue`, and nothing executes
until the queue flushes.  Flushes happen

* on **observation** — any read of a pending container's store (``nvals``,
  ``to_numpy``, ``to_coo``, ``get``, extraction, ``isequal``, use as a
  mask, export, …) goes through the ``Container._store`` property, which
  flushes first;
* on explicit :func:`wait`;
* on ``nonblocking()`` context exit;
* when the queue reaches ``$PYGB_QUEUE_MAX`` entries (default 256).

What the queue buys over per-statement dispatch:

* **cross-statement fusion** — when statement N writes a temporary that
  statement N+1 consumes, the consumer's expression tree is stitched to
  the producer's *at enqueue time*.  If the temporary is then overwritten
  (dead), the producer entry is skipped and the stitched multi-statement
  DAG reaches the fusion planner (:mod:`repro.jit.fusion`) as one graph,
  so ``t[None] = u + v; w[None] = gb.apply(t); t[None] = ...`` collapses
  into a single ``ewise_add_vec_apply`` kernel;
* **dead-store elimination** — a full overwrite whose value is never
  read is dropped entirely;
* **copy elision** — ``w[:] = u`` / ``C[None] = A`` with no mask or
  accumulator becomes a store aliasing at flush (backend stores are
  immutable-by-convention: kernels always return new stores), costing
  zero dispatches;
* **compile prefetch** — on the cpp engine, enqueueing starts background
  JIT compilation for the kernel specs the flush will need, so the
  compile latency overlaps with Python-side queue building (gate:
  ``$PYGB_PREFETCH``, default on).

Hazard rules (all verified by ``tests/test_nonblocking.py``):

* entries execute **in program order** at flush, so RAW hazards on
  late-bound container operands resolve naturally;
* WAW: a full unmasked overwrite marks the previous full overwrite of
  the same container dead (unless a later statement reads its store);
* WAR: when a dead producer's *expression* is still referenced by a
  consumer (substitution) and one of its inputs is overwritten by an
  intermediate statement, the producer is force-evaluated at its own
  queue position instead of being skipped, so the consumer sees the
  pre-overwrite value;
* statements the queue cannot represent exactly (extractions with
  late-binding closures, expressions shared across statements, scalar
  observations) fall back to the blocking path, whose operand reads
  auto-flush — correctness never depends on a statement being deferrable.

Results are bit-identical to blocking mode: deferred entries replay the
same kernels with the same descriptors in the same order, minus the
work that blocking mode would have thrown away.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from .. import obs
from ..backend.kernels import OpDesc
from ..testing.faults import FAULTS
from .context import current_raw_engine, use_engine
from .expressions import (
    Apply,
    EWiseAdd,
    EWiseMult,
    Expression,
    ExtractMat,
    Kronecker,
    MXM,
    MXV,
    ReduceRows,
    Select,
    TransposeExpr,
    VXM,
)

__all__ = ["nonblocking", "wait", "enabled", "flush", "stats", "reset_stats", "set_mode"]


#: expression types the queue can hold: every operand slot contains either
#: a DSL container (late-bound: its store is read at flush time, in
#: program order) or another deferrable expression.  ``ExtractVec`` is
#: excluded — it captures its source in a closure the queue cannot
#: introspect, so extraction statements take the auto-flushing blocking
#: path instead.
_DEFERRABLE = frozenset(
    {MXM, MXV, VXM, EWiseAdd, EWiseMult, Apply, ReduceRows, ExtractMat, Select,
     Kronecker, TransposeExpr}
)

_COUNTER_KEYS = (
    "enqueued", "flushes", "dead_stores", "copy_elisions", "substitutions",
    "forced_evals", "prefetch_submitted", "flush_errors",
)


class _Entry:
    """One deferred statement.

    kind:
      ``expr``  — full unmasked overwrite ``C[None] = expression``;
      ``copy``  — full unmasked overwrite by a plain container (elided to
                  a store aliasing at flush);
      ``thunk`` — anything opaque (masked / accumulated / sub-indexed
                  writes), replayed verbatim at flush with a frozen
                  descriptor.
    """

    __slots__ = (
        "target", "kind", "expr", "desc", "thunk", "source", "engine",
        "consumers", "store_needed", "dead", "force_eval", "reads",
        "read_refs", "subst_ok", "seq",
    )

    def __init__(self, target, kind):
        self.target = target
        self.kind = kind
        self.expr = None
        self.desc = None
        self.thunk = None
        self.source = None
        self.engine = None
        self.consumers = 0      #: times self.expr was stitched into a later entry
        self.store_needed = False  #: a later statement reads target's store
        self.dead = False       #: overwritten before any store read
        self.force_eval = False  #: dead, but consumers need the pre-WAR value
        self.reads = set()      #: id() of containers read (late-bound)
        self.read_refs = []     #: the read containers themselves (incl. inherited)
        self.subst_ok = False   #: expr's natural dtype == target dtype
        self.seq = -1           #: queue position (for read-overwrite ordering)


class LazyQueue:
    """Per-thread deferred-statement queue."""

    __slots__ = ("entries", "expr_ids", "refs", "counters", "flushing", "max_len")

    def __init__(self, max_len: int):
        self.entries: list[_Entry] = []
        self.expr_ids: set[int] = set()  #: id() of every enqueued expression node
        self.refs: list = []  #: keeps read containers alive so ids stay unique
        self.counters = dict.fromkeys(_COUNTER_KEYS, 0)
        self.flushing = False
        self.max_len = max_len


class _State:
    __slots__ = ("depth", "default_on", "queue")

    def __init__(self):
        self.depth = 0
        self.default_on = (
            os.environ.get("PYGB_MODE", "").strip().lower() == "nonblocking"
        )
        self.queue = LazyQueue(_env_queue_max())


def _env_queue_max() -> int:
    try:
        return max(1, int(os.environ.get("PYGB_QUEUE_MAX", "256")))
    except ValueError:
        return 256


_tls = threading.local()


def _st() -> _State:
    st = getattr(_tls, "st", None)
    if st is None:
        st = _State()
        _tls.st = st
    return st


def enabled() -> bool:
    """True when the current thread is in nonblocking mode (and not
    currently replaying a flush)."""
    st = _st()
    if st.depth == 0 and not st.default_on:
        return False
    return not st.queue.flushing


def set_mode(mode: str) -> None:
    """Set the thread's default execution mode (``blocking`` /
    ``nonblocking``); the CLI's ``--mode`` flag lands here.  Switching to
    blocking flushes any pending work first."""
    if mode not in ("blocking", "nonblocking"):
        raise ValueError(f"unknown execution mode {mode!r}")
    st = _st()
    if mode == "blocking" and (st.default_on or st.depth):
        flush("mode-switch")
    st.default_on = mode == "nonblocking"


class nonblocking:
    """``with gb.nonblocking(): ...`` — defer dispatch inside the block;
    the queue flushes on exit (and on any observation inside)."""

    def __enter__(self):
        _st().depth += 1
        return self

    def __exit__(self, exc_type, exc, tb):
        st = _st()
        st.depth -= 1
        # flush even when unwinding an exception: the statements before
        # the raise were issued, and blocking mode would have run them
        flush("context-exit")
        return False


def wait() -> None:
    """Execute every pending operation (``GrB_wait`` for the thread)."""
    flush("wait")


# ----------------------------------------------------------------------
# enqueue: called from Container._set_masked / _assign when enabled()
# ----------------------------------------------------------------------

def enqueue_set(target, setkey, value, accum) -> bool:
    """Try to defer ``target[setkey] = value``; False ⇒ take the blocking
    path (whose operand reads auto-flush, keeping order correct)."""
    from . import operators
    from .base import Container
    from .expressions import TransposeView

    q = _st().queue
    if isinstance(value, TransposeView):
        value = TransposeExpr(value.parent)
    elif isinstance(value, Container):
        if (
            setkey.mask is None
            and accum is None
            and _enqueue_copy(q, target, value)
        ):
            return True
        value = Apply(value, operators.UnaryOp("Identity"))
    if not isinstance(value, Expression):
        from .base import _is_scalar

        if _is_scalar(value):
            # same routing blocking mode uses: a masked constant fill is a
            # full-extent assign
            return enqueue_assign(target, setkey, target._full_slice(), value, accum)
        return False  # invalid value: let the blocking path raise eagerly
    if not _deferrable(value, q, set()):
        return False
    if setkey.mask is None and accum is None:
        return _enqueue_expr(q, target, value, setkey)
    return _enqueue_thunk_set(q, target, value, setkey, accum)


def enqueue_assign(target, setkey, index_key, value, accum) -> bool:
    """Try to defer ``target[setkey][index_key] = value``."""
    from .base import Container, _is_scalar
    from .expressions import TransposeView

    q = _st().queue
    if (
        setkey.mask is None
        and accum is None
        and isinstance(value, Container)
        and _is_full_slice(index_key, target)
        and _enqueue_copy(q, target, value)
    ):
        return True

    entry = _Entry(target, "thunk")
    if isinstance(value, Expression):
        if value._materialized is None and not _deferrable(value, q, set()):
            return False
        _substitute(value, q, entry, set())
    elif isinstance(value, TransposeView):
        _register_read(value.parent, q, entry)
    elif isinstance(value, Container):
        _register_read(value, q, entry)
    elif not _is_scalar(value):
        return False  # invalid value: let the blocking path raise eagerly
    frozen = setkey.frozen()
    index_key = _freeze_index(index_key)
    # bounds-check eagerly: blocking mode raises IndexOutOfBounds at the
    # statement, and a poisoned entry must never sit in the queue waiting
    # to detonate under an unrelated observation
    target._validate_index(index_key)
    _register_read(target, q, entry)  # read-modify-write
    if frozen.mask is not None:
        _register_read(frozen.mask, q, entry)
    entry.engine = current_raw_engine()
    entry.thunk = lambda: target._assign_exec(frozen, index_key, value, accum)
    _commit(q, target, entry, kill=False)
    return True


def _enqueue_copy(q, target, source) -> bool:
    """Full unmasked container copy → store aliasing at flush.  Only taken
    for equal dtypes: a cross-dtype copy must replay blocking mode's cast
    kernel to stay bit-identical, so it falls through to the identity-apply
    path (return False)."""
    from .base import Container

    if not isinstance(source, Container) or source.is_vector != target.is_vector:
        return False
    if not _same_extent(source, target):
        return False  # dimension mismatch: let the blocking path raise now
    if source._backing.dtype != target._backing.dtype:
        return False
    entry = _Entry(target, "copy")
    src_entry = source._nb_entry
    if src_entry is not None and src_entry.kind == "expr" and src_entry.subst_ok:
        # copying a pending expression result: share the expression so the
        # copy stays correct even if `source` is overwritten in between
        entry.kind = "expr"
        entry.expr = src_entry.expr
        entry.desc = OpDesc()
        entry.subst_ok = True  # dtypes equal and producer was subst_ok
        src_entry.consumers += 1
        entry.reads |= src_entry.reads
        entry.read_refs.extend(src_entry.read_refs)
    else:
        _register_read(source, q, entry)
    entry.source = source
    entry.engine = current_raw_engine()
    _commit(q, target, entry)
    q.counters["copy_elisions"] += 1
    return True


def _enqueue_expr(q, target, expr, setkey) -> bool:
    if expr._materialized is not None:
        # re-assigning an already-materialised expression: blocking mode
        # re-dispatches; keep dispatch parity by not short-circuiting
        return False
    entry = _Entry(target, "expr")
    _substitute(expr, q, entry, set())
    entry.expr = expr
    entry.desc = OpDesc(replace=setkey.resolved_replace())
    entry.subst_ok = np.dtype(expr.result_dtype()) == target._backing.dtype
    entry.engine = current_raw_engine()
    _commit(q, target, entry)
    _maybe_prefetch(q, entry)
    return True


def _enqueue_thunk_set(q, target, expr, setkey, accum) -> bool:
    entry = _Entry(target, "thunk")
    _substitute(expr, q, entry, set())
    frozen = setkey.frozen()
    _register_read(target, q, entry)  # masked/accumulated writes merge into target
    if frozen.mask is not None:
        _register_read(frozen.mask, q, entry)
    entry.engine = current_raw_engine()
    entry.thunk = lambda: target._set_masked_exec(frozen, expr, accum)
    _commit(q, target, entry, kill=False)
    return True


# ----------------------------------------------------------------------
# expression walking: validation, stitching, read registration
# ----------------------------------------------------------------------

def _deferrable(expr, q, seen) -> bool:
    """Pure check (no mutation): can the queue hold this expression?"""
    if expr._materialized is not None:
        # the program already observed this node: blocking mode dispatches
        # the rest of the tree against the cached value right away, so
        # deferring here would move dispatches out of the statement's
        # engine/tracing scope — keep parity by taking the eager path
        return False
    if type(expr) not in _DEFERRABLE:
        return False
    if id(expr) in q.expr_ids:
        return False  # same node already enqueued by an earlier statement
    if id(expr) in seen:
        return True  # diamond inside one statement: the plan dedups by id
    seen.add(id(expr))
    for slot in expr.operand_slots:
        child = getattr(expr, slot)
        if isinstance(child, Expression) and not _deferrable(child, q, seen):
            return False
    return True


def _substitute(expr, q, entry, seen) -> None:
    """Stitch pending producers into *expr*'s container slots and register
    late-bound reads.  Only called after :func:`_deferrable` passed, so it
    cannot fail midway."""
    if expr._materialized is not None or id(expr) in seen:
        return
    seen.add(id(expr))
    q.expr_ids.add(id(expr))
    for slot in expr.operand_slots:
        child = getattr(expr, slot)
        if isinstance(child, Expression):
            _substitute(child, q, entry, seen)
            continue
        producer = getattr(child, "_nb_entry", None)
        if (
            producer is not None
            and producer.kind == "expr"
            and producer.subst_ok
            and not producer.dead
        ):
            # RAW through a pending temporary: splice the producer's tree
            # in; if the temporary later dies this becomes one fused DAG.
            # The consumer inherits the producer's reads so WAR detection
            # stays transitive through chains of stitched producers.
            producer.consumers += 1
            setattr(expr, slot, producer.expr)
            entry.reads |= producer.reads
            entry.read_refs.extend(producer.read_refs)
            q.counters["substitutions"] += 1
        else:
            _register_read(child, q, entry)


def _register_read(container, q, entry) -> None:
    entry.reads.add(id(container))
    entry.read_refs.append(container)
    q.refs.append(container)
    pending = container._nb_entry
    if pending is not None:
        pending.store_needed = True


def _reads_overwritten(entry) -> bool:
    """True when any container *entry* reads has a pending write enqueued
    after it — i.e. in-order replay at *entry*'s own position would see a
    value newer than the one the statement observed."""
    for rc in entry.read_refs:
        later = rc._nb_entry
        if later is not None and later.seq > entry.seq:
            return True
    return False


def _commit(q, target, entry, kill: bool = True) -> None:
    entry.seq = len(q.entries)
    prev = target._nb_entry
    if prev is not None and kill and prev.kind in ("expr", "copy") and not prev.store_needed:
        # WAW: full overwrite of a value nobody read — drop the old write
        prev.dead = True
        q.counters["dead_stores"] += 1
        if prev.consumers and _reads_overwritten(prev):
            # WAR: a consumer stitched prev's expression, but one of its
            # inputs already has a later pending overwrite — evaluating
            # lazily at the consumer's position would see the new value,
            # so evaluate prev at its own position instead
            prev.force_eval = True
            q.counters["forced_evals"] += 1
    # WAR: a dead producer whose expression is still stitched into a live
    # consumer must evaluate before this overwrite lands
    tid = id(target)
    for e in q.entries:
        if e.dead and e.consumers and not e.force_eval and tid in e.reads:
            e.force_eval = True
            q.counters["forced_evals"] += 1
    q.entries.append(entry)
    q.refs.append(target)
    target._nb_entry = entry
    q.counters["enqueued"] += 1
    if obs.ACTIVE:
        obs.record_event(
            "nb.enqueue", "queue", kind=entry.kind, depth=len(q.entries)
        )
    if len(q.entries) >= q.max_len:
        flush("queue-cap")
    elif FAULTS.fire("queue_overflow"):
        # injected overflow: exercise the cap-flush path deterministically
        # regardless of the configured PYGB_QUEUE_MAX
        flush("overflow")


def _is_full_slice(index_key, target) -> bool:
    full = slice(None)
    if target.is_vector:
        return index_key == full
    return (
        isinstance(index_key, tuple)
        and len(index_key) == 2
        and index_key[0] == full
        and index_key[1] == full
    )


def _same_extent(source, target) -> bool:
    a, b = source._backing, target._backing
    if target.is_vector:
        return a.size == b.size
    return a.shape == b.shape


def _freeze_index(index_key):
    """Snapshot mutable index containers so a caller mutating its index
    array after the statement cannot retroactively change it."""
    if isinstance(index_key, (list, np.ndarray)):
        return np.array(index_key)
    if isinstance(index_key, tuple):
        return tuple(_freeze_index(k) for k in index_key)
    return index_key


# ----------------------------------------------------------------------
# flush
# ----------------------------------------------------------------------

def flush(reason: str = "explicit") -> None:
    """Execute every pending entry in program order, skipping dead stores.

    Replay is failure-isolated: an entry that raises (a runtime kernel
    fault, a deadline expiry, ...) is counted in ``flush_errors`` and its
    target simply keeps its pre-statement value, but the remaining
    entries still replay in order — one poisoned statement must not drop
    or double-apply the stores queued after it.  The first exception is
    re-raised once the queue is fully drained, so nonblocking code sees
    the same error eager code would (just later, per the nonblocking
    contract)."""
    st = _st()
    q = st.queue
    if q.flushing or not q.entries:
        return
    t0 = time.perf_counter_ns()
    entries = q.entries
    q.flushing = True
    executed = 0
    errors = 0
    first_exc = None
    try:
        # detach first: store reads during replay must not re-enter
        for e in entries:
            if e.target._nb_entry is e:
                e.target._nb_entry = None
        q.entries = []
        q.expr_ids = set()
        q.refs = []
        for e in entries:
            if e.dead and not e.force_eval:
                continue
            executed += 1
            try:
                with use_engine(e.engine):
                    _execute(e)
            except Exception as exc:
                errors += 1
                q.counters["flush_errors"] += 1
                if first_exc is None:
                    first_exc = exc
        q.counters["flushes"] += 1
    finally:
        q.flushing = False
    if obs.ACTIVE:
        obs.record_span(
            "nb.flush",
            "queue",
            t0,
            time.perf_counter_ns() - t0,
            reason=reason,
            entries=len(entries),
            executed=executed,
            errors=errors,
        )
    if first_exc is not None:
        raise first_exc


def _execute(entry: _Entry) -> None:
    from .plan import evaluate

    if entry.kind == "copy":
        # store aliasing instead of an identity-apply dispatch: backend
        # stores are immutable-by-convention (kernels return new stores)
        store = entry.source._store
        target_dtype = entry.target._backing.dtype
        if store.dtype != target_dtype:
            store = store.astype(target_dtype)
        entry.target._backing = store
    elif entry.kind == "expr":
        if entry.dead:  # force_eval: WAR hazard — cache the value, skip the store
            entry.expr.new()
            return
        if entry.expr._materialized is not None:
            # a consumer (or an earlier flush trigger) already evaluated it
            entry.target._backing = entry.expr._materialized._store
        elif entry.consumers:
            # evaluate through new() so later stitched consumers reuse the
            # cached result instead of re-dispatching
            entry.target._backing = entry.expr.new()._store
        else:
            evaluate(entry.expr, entry.target, entry.desc)
    else:
        entry.thunk()


# ----------------------------------------------------------------------
# background JIT prefetch (cpp engine)
# ----------------------------------------------------------------------

_prefetch_pool = None
_prefetch_seen: set[str] = set()
_prefetch_lock = threading.Lock()


def _prefetch_enabled() -> bool:
    return os.environ.get("PYGB_PREFETCH", "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def _maybe_prefetch(q, entry: _Entry) -> None:
    """Start compiling the kernel specs this entry will need, so the g++
    latency overlaps with queue building instead of stalling the flush."""
    engine = getattr(entry.engine, "primary", entry.engine)
    jobs_fn = getattr(engine, "prefetch_jobs", None)
    if jobs_fn is None or not _prefetch_enabled():
        return
    try:
        jobs = [
            job
            for job in jobs_fn(entry.expr, entry.target._backing.dtype, entry.desc)
            if job[0].key not in _prefetch_seen
        ]
        if not jobs:
            return
        with _prefetch_lock:
            jobs = [j for j in jobs if j[0].key not in _prefetch_seen]
            _prefetch_seen.update(j[0].key for j in jobs)
        _submit_prefetch(engine, jobs)
        q.counters["prefetch_submitted"] += len(jobs)
    except Exception:  # best-effort: a prefetch failure must never surface
        pass


def _submit_prefetch(engine, jobs) -> None:
    global _prefetch_pool
    with _prefetch_lock:
        if _prefetch_pool is None:
            from concurrent.futures import ThreadPoolExecutor

            _prefetch_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="pygb-prefetch"
            )
        pool = _prefetch_pool

    def _run():
        try:
            engine.cache.precompile(jobs, max_workers=1)
        except Exception:
            pass

    pool.submit(_run)


# ----------------------------------------------------------------------
# introspection (tests, `python -m repro stats`)
# ----------------------------------------------------------------------

def stats() -> dict:
    """This thread's cumulative queue counters."""
    return dict(_st().queue.counters)


def reset_stats() -> None:
    q = _st().queue
    for key in _COUNTER_KEYS:
        q.counters[key] = 0


def pending() -> int:
    """Number of enqueued-but-unflushed entries (diagnostics)."""
    return len(_st().queue.entries)
