"""PyGB operator objects: ``UnaryOp``, ``BinaryOp``, ``Monoid``,
``Semiring`` and ``Accumulator`` (paper Sec. III, Fig. 6).

All operator objects are context managers — entering one pushes it onto
the operator stack of :mod:`~repro.core.context` so subsequent operations
can infer it ("PyGB operators are Python objects ... brought into
context").  They can also be passed explicitly to ``gb.apply`` and
``gb.reduce``.

Construction follows the paper's examples::

    AdditiveInv = gb.UnaryOp("AdditiveInverse")
    ScaleOp     = gb.UnaryOp("Times", 0.85)          # Bind2nd form (Fig. 7)
    PlusOp      = gb.BinaryOp("Plus")
    PlusMonoid  = gb.Monoid(PlusOp, 0)
    MinMonoid   = gb.Monoid("Min", "MinIdentity")
    ArithmeticSR = gb.Semiring(PlusMonoid, "Times")
    MinAccum    = gb.Accumulator("Min")
"""

from __future__ import annotations

from ..backend import ops_table
from ..exceptions import UnknownOperator
from . import context

__all__ = [
    "UnaryOp",
    "BinaryOp",
    "Monoid",
    "Semiring",
    "Accumulator",
    "resolve_semiring",
    "resolve_ewise_add_op",
    "resolve_ewise_mult_op",
    "resolve_accum_op",
    "resolve_reduce_monoid",
    "resolve_unary_spec",
]


class _ContextOperator:
    """Base: every operator participates in ``with`` blocks."""

    def __enter__(self):
        context.push(self)
        return self

    def __exit__(self, *exc):
        context.pop(self)
        return False


class BinaryOp(_ContextOperator):
    """A named GBTL binary operator (Fig. 6)."""

    __slots__ = ("name",)

    def __init__(self, name):
        if isinstance(name, BinaryOp):
            name = name.name
        ops_table.binary_def(name)  # validate eagerly
        self.name = name

    @classmethod
    def define(cls, name, func, cxx=None, kind="arith", associative=False,
               vectorized=False) -> "BinaryOp":
        """Define a new binary operator from a Python function (and an
        optional C++ expression for the ``cpp`` engine) and return it as a
        ready-to-use ``BinaryOp`` — the paper's Sec. VIII future-work item::

            Hypot = gb.BinaryOp.define(
                "Hypot", lambda a, b: (a*a + b*b) ** 0.5,
                cxx="std::sqrt(double(({a})*({a}) + ({b})*({b})))",
            )
            with Hypot:
                C[None] = A + B
        """
        ops_table.register_binary_op(
            name, func, cxx=cxx, kind=kind, associative=associative,
            vectorized=vectorized,
        )
        return cls(name)

    def __repr__(self) -> str:
        return f"BinaryOp({self.name!r})"

    def __eq__(self, other):
        return isinstance(other, BinaryOp) and other.name == self.name

    def __hash__(self):
        return hash(("BinaryOp", self.name))


class UnaryOp(_ContextOperator):
    """A named GBTL unary operator, or a binary operator with a bound
    constant (GBTL's ``BinaryOp_Bind1st``/``Bind2nd``).

    ``UnaryOp("AdditiveInverse")`` is the plain form;
    ``UnaryOp("Times", 0.85)`` binds the constant as the *second* operand
    (matching Fig. 7/8, where ``GB::BinaryOp_Bind2nd`` appears in the C++);
    pass ``bind="first"`` to bind on the left instead.
    """

    __slots__ = ("name", "const", "side")

    def __init__(self, name, const=None, bind="second"):
        if const is None:
            ops_table.unary_def(name)
        else:
            ops_table.binary_def(name)
            if bind not in ("first", "second"):
                raise ValueError(f"bind must be 'first' or 'second', got {bind!r}")
        self.name = name
        self.const = const
        self.side = bind

    @property
    def spec(self) -> tuple:
        """Backend op spec: ``("unary", name)`` or ``("bind", name, c, side)``."""
        if self.const is None:
            return ("unary", self.name)
        return ("bind", self.name, self.const, self.side)

    @classmethod
    def define(cls, name, func, cxx=None, vectorized=False) -> "UnaryOp":
        """Define a new unary operator from a Python function (optional
        C++ expression with an ``{a}`` placeholder for the ``cpp``
        engine); see :meth:`BinaryOp.define`."""
        ops_table.register_unary_op(name, func, cxx=cxx, vectorized=vectorized)
        return cls(name)

    def __repr__(self) -> str:
        if self.const is None:
            return f"UnaryOp({self.name!r})"
        return f"UnaryOp({self.name!r}, {self.const!r}, bind={self.side!r})"


class Monoid(_ContextOperator):
    """A commutative-monoid: an associative binary operator plus identity.

    The identity may be a literal value, a named identity such as
    ``"MinIdentity"`` (resolved per-dtype at execution time), or omitted to
    use the operator's canonical identity.
    """

    __slots__ = ("op", "identity")

    def __init__(self, op, identity=None):
        self.op = BinaryOp(op)
        ops_table.reduce_ufunc(self.op.name)  # must be associative
        if identity is None:
            identity = ops_table.DEFAULT_IDENTITY_NAME[self.op.name]
        if isinstance(identity, str) and identity not in ops_table.IDENTITIES:
            raise UnknownOperator(f"unknown identity name {identity!r}")
        self.identity = identity

    def __repr__(self) -> str:
        return f"Monoid({self.op.name!r}, {self.identity!r})"


class Semiring(_ContextOperator):
    """A GraphBLAS semiring: an additive monoid ``⊕`` and a multiplicative
    binary operator ``⊗`` (whose annihilator is the monoid identity)."""

    __slots__ = ("monoid", "mult")

    def __init__(self, add, mult):
        self.monoid = add if isinstance(add, Monoid) else Monoid(add)
        self.mult = BinaryOp(mult)

    @property
    def add_op(self) -> str:
        return self.monoid.op.name

    @property
    def mult_op(self) -> str:
        return self.mult.name

    def __repr__(self) -> str:
        return f"Semiring({self.monoid!r}, {self.mult.name!r})"


class Accumulator(_ContextOperator):
    """The ``⊙`` accumulate operator: governs how operation results merge
    into existing output values (paper Sec. II)."""

    __slots__ = ("op",)

    def __init__(self, op):
        self.op = BinaryOp(op)

    @property
    def name(self) -> str:
        return self.op.name

    def __repr__(self) -> str:
        return f"Accumulator({self.op.name!r})"


# ----------------------------------------------------------------------
# context resolution: "when an operation is called, it searches through
# the stack to find the first operator that it can use" (Sec. IV)
# ----------------------------------------------------------------------

#: defaults used when the stack holds no usable operator; these give the
#: conventional arithmetic interpretation (Fig. 7 uses ``delta * delta``
#: and ``gb.reduce(delta)`` outside of any ``with`` block).
_DEFAULT_SEMIRING_OPS = ("Plus", "Times")


def resolve_semiring(explicit: Semiring | None = None) -> tuple[str, str]:
    """``(add_op, mult_op)`` for mxm/mxv/vxm."""
    if explicit is not None:
        return explicit.add_op, explicit.mult_op
    sr = context.find(lambda o: isinstance(o, Semiring))
    if sr is not None:
        return sr.add_op, sr.mult_op
    return _DEFAULT_SEMIRING_OPS


def resolve_ewise_add_op(explicit=None) -> str:
    """Binary op for ``A + B``: nearest BinaryOp, Monoid or Semiring (its
    ``⊕``); defaults to ``Plus``."""
    if explicit is not None:
        return BinaryOp(explicit).name
    obj = context.find(lambda o: isinstance(o, (BinaryOp, Monoid, Semiring)))
    if isinstance(obj, BinaryOp):
        return obj.name
    if isinstance(obj, Monoid):
        return obj.op.name
    if isinstance(obj, Semiring):
        return obj.add_op
    return "Plus"


def resolve_ewise_mult_op(explicit=None) -> str:
    """Binary op for ``A * B``: nearest BinaryOp, Monoid or Semiring (its
    ``⊗``); defaults to ``Times``."""
    if explicit is not None:
        return BinaryOp(explicit).name
    obj = context.find(lambda o: isinstance(o, (BinaryOp, Monoid, Semiring)))
    if isinstance(obj, BinaryOp):
        return obj.name
    if isinstance(obj, Monoid):
        return obj.op.name
    if isinstance(obj, Semiring):
        return obj.mult_op
    return "Times"


def resolve_accum_op() -> str:
    """Accumulate op for ``+=``: the innermost Accumulator anywhere on the
    stack; only when none exists, the ``⊕`` of the nearest Monoid/Semiring
    (the paper's SSSP omits ``Accumulator("Min")`` and falls back to the
    MinPlusSemiring's MinMonoid); otherwise ``Plus``.

    An Accumulator outranks a more deeply nested Semiring because the two
    serve different operation slots — Fig. 7's
    ``with gb.Accumulator("Second"), gb.Semiring(gb.PlusMonoid, "Times")``
    expects the Second accumulator even though the semiring is innermost.
    """
    obj = context.find(lambda o: isinstance(o, Accumulator))
    if isinstance(obj, Accumulator):
        return obj.op.name
    obj = context.find(lambda o: isinstance(o, (Monoid, Semiring)))
    if isinstance(obj, Monoid):
        return obj.op.name
    if isinstance(obj, Semiring):
        return obj.add_op
    return "Plus"


def resolve_reduce_monoid(explicit: Monoid | None = None) -> tuple[str, object]:
    """``(op, identity)`` for reduce: nearest Monoid/Semiring monoid;
    defaults to the Plus monoid."""
    if explicit is not None:
        if isinstance(explicit, Semiring):
            explicit = explicit.monoid
        if isinstance(explicit, (str, BinaryOp)):
            explicit = Monoid(explicit)
        return explicit.op.name, explicit.identity
    obj = context.find(lambda o: isinstance(o, (Monoid, Semiring)))
    if isinstance(obj, Semiring):
        obj = obj.monoid
    if isinstance(obj, Monoid):
        return obj.op.name, obj.identity
    return "Plus", "PlusIdentity"


def resolve_unary_spec(explicit: UnaryOp | None = None) -> tuple:
    """Op spec for apply: nearest UnaryOp; defaults to Identity."""
    if explicit is not None:
        return explicit.spec
    obj = context.find(lambda o: isinstance(o, UnaryOp))
    if obj is not None:
        return obj.spec
    return ("unary", "Identity")
