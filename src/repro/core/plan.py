"""The plan IR: expression trees lowered into an explicit ``OpNode``
graph before dispatch.

The paper's deferred evaluation (Sec. IV) stops at single-operation
granularity — every ``C[mask] = expr`` recursion bottoms out in one
engine call per expression node, materialising a temporary between each
pair.  This module inserts a planning stage between the expression tree
and the engine:

1. :class:`Plan` lowers the (already deferred) expression DAG into
   ``OpNode``\\ s with explicit child/parent edges, deduplicating shared
   subexpressions by object identity (the operand cache on
   ``Expression.new`` then guarantees a shared node is evaluated once);
2. the planner pass (:mod:`repro.jit.fusion`) runs peephole rules over
   the node graph, collapsing producer/consumer pairs into single fused
   kernels;
3. :func:`evaluate` hands the (possibly rewritten) root back to the
   engine via ``eval_into``.

The ``PYGB_FUSION`` environment switch (default: on) disables step 2,
restoring the one-call-per-node behaviour for A/B benchmarking; the
``interpreted`` engine never fuses (``supports_fusion = False``) and is
the ablation baseline the differential tests compare against.
"""

from __future__ import annotations

import os

__all__ = ["OpNode", "Plan", "fusion_enabled", "evaluate"]


def fusion_enabled() -> bool:
    """The ``$PYGB_FUSION`` runtime switch (default: on).  Re-read on
    every dispatch so tests and benchmarks can toggle it per call."""
    value = os.environ.get("PYGB_FUSION")
    if value is None:
        return True
    return value.strip().lower() not in ("", "0", "false", "off", "no")


class OpNode:
    """One operation of the plan graph.

    ``kind`` is the expression's ``plan_kind`` (``mxv``, ``apply_vec``,
    ...); ``children`` holds ``(slot, OpNode)`` pairs for the deferred
    operands; ``parents`` holds ``(parent_expr, slot)`` pairs — one per
    consumer edge, so ``len(parents)`` is the node's consumer count.
    ``schedule`` carries the traversal-shaped expressions'
    :class:`repro.schedule.Schedule` annotation (``None`` for every
    other kind) so planner passes can see — and refuse to fuse across —
    a direction-optimized dispatch.
    """

    __slots__ = ("expr", "kind", "children", "parents", "schedule")

    def __init__(self, expr):
        self.expr = expr
        self.kind = expr.plan_kind
        self.schedule = getattr(expr, "schedule", None)
        self.children: list = []
        self.parents: list = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<OpNode {self.kind} x{len(self.parents)}>"


class Plan:
    """Post-order lowering of an expression DAG into :class:`OpNode`\\ s.

    ``order`` lists nodes children-first (a topological order), which is
    the traversal the peephole pass wants: a producer/consumer pair is
    considered only after every deeper pair had its chance, so chains
    fuse bottom-up.
    """

    def __init__(self, root):
        self.root = root
        self.nodes: dict[int, OpNode] = {}
        self.order: list[OpNode] = []
        self._lower(root)

    def _lower(self, expr) -> OpNode:
        node = self.nodes.get(id(expr))
        if node is not None:
            return node  # shared subexpression: one node, many parents
        node = OpNode(expr)
        self.nodes[id(expr)] = node
        for slot, child in expr.plan_children():
            cnode = self._lower(child)
            cnode.parents.append((expr, slot))
            node.children.append((slot, cnode))
        self.order.append(node)
        return node


def evaluate(expr, out, desc) -> None:
    """Dispatch *expr* into container *out* under descriptor *desc*.

    This is the single entry point all write sites funnel through
    (``__setitem__`` and ``Expression.new``): lower to a plan, let the
    planner fuse what the current engine supports, then execute."""
    from .context import current_backend_engine

    eng = current_backend_engine()
    if fusion_enabled() and getattr(eng, "supports_fusion", False):
        from ..jit.fusion import fuse_expression

        expr = fuse_expression(expr, eng)
    expr.eval_into(out, desc)
