"""Predefined monoids and semirings matching GBTL's ``algebra.hpp``.

These are ordinary :class:`~repro.core.operators.Monoid` /
:class:`~repro.core.operators.Semiring` instances, usable both explicitly
and as context managers (``with gb.LogicalSemiring: ...``), exactly as in
the paper's BFS/SSSP/triangle-count listings.
"""

from __future__ import annotations

from .operators import Monoid, Semiring

__all__ = [
    "PlusMonoid",
    "TimesMonoid",
    "MinMonoid",
    "MaxMonoid",
    "LogicalOrMonoid",
    "LogicalAndMonoid",
    "LogicalXorMonoid",
    "ArithmeticSemiring",
    "LogicalSemiring",
    "MinPlusSemiring",
    "MaxPlusSemiring",
    "MinTimesSemiring",
    "MaxTimesSemiring",
    "MinSelect1stSemiring",
    "MinSelect2ndSemiring",
    "MaxSelect1stSemiring",
    "MaxSelect2ndSemiring",
]

# -- monoids -----------------------------------------------------------
PlusMonoid = Monoid("Plus", "PlusIdentity")
TimesMonoid = Monoid("Times", "TimesIdentity")
MinMonoid = Monoid("Min", "MinIdentity")
MaxMonoid = Monoid("Max", "MaxIdentity")
LogicalOrMonoid = Monoid("LogicalOr", "LogicalOrIdentity")
LogicalAndMonoid = Monoid("LogicalAnd", "LogicalAndIdentity")
LogicalXorMonoid = Monoid("LogicalXor", "LogicalXorIdentity")

# -- semirings ---------------------------------------------------------
#: the conventional (+, ×) semiring of linear algebra
ArithmeticSemiring = Semiring(PlusMonoid, "Times")
#: the (∨, ∧) Boolean semiring used by BFS (Fig. 2)
LogicalSemiring = Semiring(LogicalOrMonoid, "LogicalAnd")
#: the tropical (min, +) semiring used by SSSP (Fig. 4)
MinPlusSemiring = Semiring(MinMonoid, "Plus")
MaxPlusSemiring = Semiring(MaxMonoid, "Plus")
MinTimesSemiring = Semiring(MinMonoid, "Times")
MaxTimesSemiring = Semiring(MaxMonoid, "Times")
#: select semirings: ⊗ keeps one operand (used by e.g. MSSP variants)
MinSelect1stSemiring = Semiring(MinMonoid, "First")
MinSelect2ndSemiring = Semiring(MinMonoid, "Second")
MaxSelect1stSemiring = Semiring(MaxMonoid, "First")
MaxSelect2ndSemiring = Semiring(MaxMonoid, "Second")
