"""The PyGB ``Vector`` container (paper Sec. III, Fig. 3).

Construction mirrors the paper's examples::

    v = gb.Vector((vals, idx), shape=(l,))     # sparse coordinates
    v = gb.Vector([1, 2, 3, 4, 5])             # dense list
    v = gb.Vector(np.arange(10.0))             # NumPy
    v = gb.Vector(shape=(n,), dtype=float)     # empty
"""

from __future__ import annotations

import numpy as np

from ..backend.svector import SparseVector
from ..exceptions import EmptyObject, InvalidValue
from ..types import default_dtype_for, normalize_dtype
from .base import Container, _is_scalar
from .context import current_backend_engine
from .expressions import (
    Apply,
    Expression,
    ExtractVec,
    MXV,
    VXM,
    TransposeView,
    _store_of,
)
from .indexing import parse_vector_index
from .masks import SetKey, build_desc

__all__ = ["Vector"]


def _shape_to_size(shape) -> int:
    if isinstance(shape, tuple):
        if len(shape) != 1:
            raise InvalidValue(f"a Vector shape must be (n,), got {shape!r}")
        return int(shape[0])
    return int(shape)


class Vector(Container):
    """A GraphBLAS vector: a 1-D container of stored values over an
    implied-zero background."""

    is_vector = True

    def __init__(self, data=None, shape=None, dtype=None):
        if isinstance(data, SparseVector):  # internal: wrap a backend store
            self._store = data if dtype is None else data.astype(dtype)
            return
        if isinstance(data, Expression):
            self._store = data.new(dtype=dtype)._store
            return
        if isinstance(data, Vector):
            src = data._store
            store = src.astype(dtype) if dtype is not None else src.copy()
            if store is src:
                # astype() to the same dtype returns the source store;
                # the copy-construction contract requires independent
                # storage, so never alias the source (or its memoized
                # dense-lookup/bitmap frontier representations)
                store = src.copy()
            self._store = store
            return
        if data is None:
            if shape is None:
                raise InvalidValue("an empty Vector needs an explicit shape")
            self._store = SparseVector.empty(
                _shape_to_size(shape),
                normalize_dtype(dtype) if dtype is not None else np.float64,
            )
            return
        if isinstance(data, tuple) and len(data) == 2:
            vals, idx = data
            vals_arr = np.asarray(vals)
            size = (
                _shape_to_size(shape)
                if shape is not None
                else (int(np.max(idx)) + 1 if len(idx) else 0)
            )
            dt = normalize_dtype(dtype) if dtype is not None else default_dtype_for(vals_arr)
            self._store = SparseVector.from_coo(size, idx, vals_arr, dt)
            return
        arr = np.asarray(data)
        if arr.ndim != 1:
            raise InvalidValue(f"cannot build a Vector from {arr.ndim}-D data")
        dt = normalize_dtype(dtype) if dtype is not None else default_dtype_for(arr)
        self._store = SparseVector.from_dense(arr, dt)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        # extent is write-invariant: no nonblocking flush on shape reads
        return self._backing.size

    @property
    def shape(self) -> tuple[int]:
        return (self._backing.size,)

    # ------------------------------------------------------------------
    # multiplication builds deferred expressions
    # ------------------------------------------------------------------
    def __matmul__(self, other):
        """``u @ A`` — vector-matrix product (PageRank Fig. 7 line 22)."""
        from .matrix import Matrix

        if isinstance(other, (Matrix, TransposeView)) or (
            isinstance(other, Expression) and other.produces_matrix
        ):
            return VXM(self, other)
        raise InvalidValue("a Vector can only be matmul-ed with a Matrix")

    def __rmatmul__(self, other):
        return MXV(other, self)

    # ------------------------------------------------------------------
    # extract / assign
    # ------------------------------------------------------------------
    def _full_slice(self):
        return slice(None)

    def _extract(self, key):
        idx, kind = parse_vector_index(key, self.size)
        if kind == "scalar":
            val = self._store.get(int(idx[0]))
            if val is None:
                raise EmptyObject(f"no stored value at index {int(idx[0])}")
            return val.item() if hasattr(val, "item") else val
        return ExtractVec(lambda: self._store, self.size, idx)

    def _validate_index(self, index_key) -> None:
        parse_vector_index(index_key, self.size)

    def _assign_exec(self, setkey: SetKey, index_key, value, accum=None):
        idx, _kind = parse_vector_index(index_key, self.size)
        desc = build_desc(setkey, accum)
        eng = current_backend_engine()
        if isinstance(value, Expression):
            fused = self._try_apply_assign(eng, value, idx, desc)
            if fused:
                return
            value = value.new()
        if _is_scalar(value):
            self._store = eng.assign_vec_scalar(self._store, value, idx, desc)
            return
        if isinstance(value, Vector):
            self._store = eng.assign_vec(self._store, value._store, idx, desc)
            return
        raise InvalidValue(f"cannot assign object of type {type(value).__name__}")

    def _try_apply_assign(self, eng, value, idx, desc) -> bool:
        """The ``apply + assign-with-mask`` fusion rule: ``w[M][i] = f(u)``
        runs as one kernel instead of materialising ``f(u)`` first."""
        from .plan import fusion_enabled

        if not (
            isinstance(value, Apply)
            and not value.produces_matrix
            and value._materialized is None
            and not value.ta
            and fusion_enabled()
            and getattr(eng, "supports_fusion", False)
            and hasattr(eng, "apply_assign_vec")
        ):
            return False
        operand = value.a
        if not (isinstance(operand, Expression) or hasattr(operand, "_store")):
            return False
        self._store = eng.apply_assign_vec(
            self._store, _store_of(operand), value.op_spec, idx, desc
        )
        return True

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_numpy(self, fill=0) -> np.ndarray:
        """Dense ndarray copy with *fill* for implied zeros."""
        return self._store.to_dense(fill)

    def to_coo(self) -> tuple[np.ndarray, np.ndarray]:
        """``(indices, values)`` copies of the stored entries."""
        return self._store.indices.copy(), self._store.values.copy()

    def get(self, i: int, default=None):
        """Stored value at *i* or *default* (non-throwing extract)."""
        val = self._store.get(i)
        if val is None:
            return default
        return val.item() if hasattr(val, "item") else val

    def dup(self) -> "Vector":
        """Deep copy (``GrB_Vector_dup``)."""
        return Vector(self._store.copy())

    def clear(self) -> None:
        """Remove every stored value, keeping size and dtype."""
        self._store = SparseVector.empty(self.size, self.dtype)

    def __repr__(self) -> str:
        return f"<Vector size={self.size}, {self.nvals} stored values, dtype={self.dtype}>"
