"""Exception hierarchy for PyGB.

Mirrors the error classes implied by the GraphBLAS C API specification
(dimension mismatch, domain mismatch, invalid values) plus errors specific
to the dynamic-compilation pipeline of the paper (Sec. V).
"""

from __future__ import annotations


class GraphBLASError(Exception):
    """Base class for every error raised by this library."""


class DimensionMismatch(GraphBLASError):
    """Operand shapes are incompatible for the requested operation."""


class DomainMismatch(GraphBLASError):
    """Operand dtypes cannot be promoted to a common domain."""


class InvalidValue(GraphBLASError):
    """An argument value is outside its permitted range (e.g. bad index)."""


class IndexOutOfBounds(InvalidValue):
    """A row/column index exceeds the container dimensions."""


class EmptyObject(GraphBLASError):
    """An operation required a stored value that is not present."""


class NoOperatorInContext(GraphBLASError):
    """An operation needed an operator but none was found on the context
    stack and none was supplied explicitly (Sec. IV of the paper)."""


class UnknownOperator(GraphBLASError):
    """An operator name is not in the GBTL operator table (Fig. 6)."""


class CompilationError(GraphBLASError):
    """The JIT backend failed to compile a generated module (Sec. V)."""


class KernelQuarantined(CompilationError):
    """A kernel spec is circuit-broken: its compile/load failed recently
    and the backoff window has not expired, so the engine refuses to
    re-attempt the build.  Dispatch treats this exactly like a fresh
    :class:`CompilationError` (fall back to the next engine), but without
    paying for the doomed compile again."""


class BackendUnavailable(GraphBLASError):
    """The requested execution backend (e.g. ``cpp``) cannot be used on
    this machine (no compiler found)."""


class JitFallbackWarning(UserWarning):
    """The JIT runtime degraded gracefully: a compile/load failure sent a
    kernel to the next engine in the fallback chain, or the cache
    relocated to a temporary directory.  The program keeps running on a
    slower-but-correct path; set ``PYGB_JIT_STRICT=1`` to turn these
    situations back into hard errors."""
