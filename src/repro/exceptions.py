"""Exception hierarchy for PyGB.

Mirrors the error classes implied by the GraphBLAS C API specification
(dimension mismatch, domain mismatch, invalid values) plus errors specific
to the dynamic-compilation pipeline of the paper (Sec. V).
"""

from __future__ import annotations


class GraphBLASError(Exception):
    """Base class for every error raised by this library."""


class DimensionMismatch(GraphBLASError):
    """Operand shapes are incompatible for the requested operation."""


class DomainMismatch(GraphBLASError):
    """Operand dtypes cannot be promoted to a common domain."""


class InvalidValue(GraphBLASError):
    """An argument value is outside its permitted range (e.g. bad index)."""


class IndexOutOfBounds(InvalidValue):
    """A row/column index exceeds the container dimensions."""


class EmptyObject(GraphBLASError):
    """An operation required a stored value that is not present."""


class NoOperatorInContext(GraphBLASError):
    """An operation needed an operator but none was found on the context
    stack and none was supplied explicitly (Sec. IV of the paper)."""


class UnknownOperator(GraphBLASError):
    """An operator name is not in the GBTL operator table (Fig. 6)."""


class CompilationError(GraphBLASError):
    """The JIT backend failed to compile a generated module (Sec. V)."""


class KernelQuarantined(CompilationError):
    """A kernel spec is circuit-broken: its compile/load failed recently
    and the backoff window has not expired, so the engine refuses to
    re-attempt the build.  Dispatch treats this exactly like a fresh
    :class:`CompilationError` (fall back to the next engine), but without
    paying for the doomed compile again."""


class BackendUnavailable(GraphBLASError):
    """The requested execution backend (e.g. ``cpp``) cannot be used on
    this machine (no compiler found)."""


class KernelExecutionError(GraphBLASError):
    """A kernel failed *at runtime* (after a successful compile/load).
    The resilience chain treats this like a compile failure — the
    dispatch retries verbatim on the next engine down — but the
    circuit breaker is keyed separately because the artifact itself is
    healthy."""


class _GuardrailError(GraphBLASError):
    """Base for the runtime-guardrail exceptions: carries the op name,
    the engine it ran on, and the elapsed wall time at the point the
    guard intervened (``repro/guard.py``)."""

    def __init__(self, message: str, *, op: str | None = None,
                 engine: str | None = None, elapsed: float | None = None,
                 budget: float | None = None):
        super().__init__(message)
        self.op = op
        self.engine = engine
        self.elapsed = elapsed
        self.budget = budget


class OperationTimeout(_GuardrailError):
    """An operation exceeded its deadline budget (``gb.deadline(...)``
    scope or ``$PYGB_OP_TIMEOUT``).  Catchable: the process stays
    functional — pending nonblocking entries are flushed, worker pools
    stay clean, and the next operation starts from a fresh budget."""


class OperationCancelled(_GuardrailError):
    """An operation was cancelled cooperatively — an explicit
    ``deadline.cancel()``, or a kernel observing the cancellation flag.
    When the cause was deadline expiry the guard layer re-raises it as
    :class:`OperationTimeout` with the budget attached."""


class CatalogError(GraphBLASError):
    """A pre-built kernel catalog could not be used: missing or garbled
    ``catalog.json``, or version stamps from an incompatible library
    (stale catalogs are rejected wholesale — individual entries never
    load from a pack whose codegen/cache-format versions mismatch)."""


class JitFallbackWarning(UserWarning):
    """The JIT runtime degraded gracefully: a compile/load failure sent a
    kernel to the next engine in the fallback chain, or the cache
    relocated to a temporary directory.  The program keeps running on a
    slower-but-correct path; set ``PYGB_JIT_STRICT=1`` to turn these
    situations back into hard errors."""
