"""Runtime guardrails: operation deadlines, cooperative cancellation,
and the degradation ladder.

PR 3 made *compilation* fault tolerant (fallback chain, quarantine,
compile timeouts); this module does the same for *execution*.  It is the
robustness substrate the serve-mode roadmap item sits on: a hung kernel,
a crashed tile worker, or a runaway nonblocking queue must degrade a
single operation, never wedge the process.

The engine stack becomes ``Tracing(Guard(Partitioned(Resilient(...))))``:

* :class:`GuardedEngine` wraps every dispatch method.  With no deadline
  scope active and no ``$PYGB_OP_TIMEOUT`` set, the wrapper is a single
  predicated branch (the same zero-cost-when-off contract as ``obs``,
  held to <=2% by ``benchmarks/check_guard_overhead.py``).
* ``with gb.deadline(seconds=...)`` establishes a per-scope budget
  (scopes nest; the effective deadline is the minimum).  A lazy watchdog
  thread arms one timer per guarded op; expiry flips the cooperative
  cancellation signals and the op raises a catchable
  :class:`~repro.exceptions.OperationTimeout` carrying op/engine/elapsed.
* Cancellation is **cooperative** at every layer: pyjit kernels call
  :func:`check_cancelled` on entry, the tile executor checks between
  tiles and bounds its future waits, and C++ kernels poll an atomic flag
  exported over the FFI boundary (``pygb_request_cancel`` /
  ``pygb_cancel_requested`` externs; the kernel returns the ``-2``
  sentinel instead of unwinding C++ exceptions across OpenMP regions or
  ``extern "C"`` frames, which would be undefined behaviour).
* The **degradation ladder** for the tiled plane: a tile worker that
  raises or hangs cancels the remaining futures, discards partials, and
  transparently re-executes the op monolithically; repeated failures
  quarantine tiling for that op signature through the
  ``jit/health.py`` circuit breaker (exponential backoff,
  doctor-visible).

Every guard intervention (timeout, cancel, degrade, quarantine) is a
deterministic counter in :func:`stats` and — when tracing is active — an
``obs`` instant event in the ``guard`` category, rolled up by
``python -m repro stats`` and ``python -m repro doctor``.
"""

from __future__ import annotations

import heapq
import os
import threading
import time
import warnings

from .exceptions import OperationCancelled, OperationTimeout

__all__ = [
    "deadline",
    "current_scope",
    "op_timeout",
    "worker_timeout",
    "check_cancelled",
    "cooperative_sleep",
    "bound_op",
    "current_op",
    "op_deadline_at",
    "GuardedEngine",
    "register_cancel_lib",
    "tiling_health",
    "tiling_quarantined",
    "note_tile_failure",
    "stats",
    "reset_stats",
    "DEFAULT_WORKER_TIMEOUT",
]

_FALSEY = frozenset({"0", "false", "off", "no"})

#: ceiling on how long the tile executor waits for a single worker before
#: declaring it hung (``$PYGB_WORKER_TIMEOUT`` overrides; falsey disables)
DEFAULT_WORKER_TIMEOUT = 60.0

_TLS = threading.local()

#: number of currently armed guards, process-wide.  ``check_cancelled``
#: (called from every pyjit kernel and between tiles) returns on a single
#: global read when nothing is armed; only the guarded slow path touches
#: it, under the watchdog lock.
_ACTIVE = 0


# ----------------------------------------------------------------------
# configuration knobs
# ----------------------------------------------------------------------


def op_timeout() -> float | None:
    """The per-operation budget from ``$PYGB_OP_TIMEOUT`` in seconds, or
    ``None`` when unset/falsey.  Re-read per operation, like the other
    execution flags."""
    raw = os.environ.get("PYGB_OP_TIMEOUT", "").strip().lower()
    if not raw or raw in _FALSEY:
        return None
    try:
        v = float(raw)
    except ValueError:
        warnings.warn(
            f"pygb: bad $PYGB_OP_TIMEOUT={raw!r} (valid: seconds > 0); ignoring",
            stacklevel=2,
        )
        return None
    return v if v > 0 else None


def worker_timeout() -> float | None:
    """How long the tile executor waits on one worker future before
    treating it as hung (``$PYGB_WORKER_TIMEOUT``, default
    :data:`DEFAULT_WORKER_TIMEOUT`; ``0``/falsey disables the bound)."""
    raw = os.environ.get("PYGB_WORKER_TIMEOUT", "").strip().lower()
    if raw in _FALSEY:
        return None
    if not raw:
        return DEFAULT_WORKER_TIMEOUT
    try:
        v = float(raw)
    except ValueError:
        warnings.warn(
            f"pygb: bad $PYGB_WORKER_TIMEOUT={raw!r} (valid: seconds, or 0 to "
            "disable); using the default",
            stacklevel=2,
        )
        return DEFAULT_WORKER_TIMEOUT
    return v if v > 0 else None


def fault_sleep_seconds() -> float:
    """Sleep injected by the ``slow_kernel`` fault (``$PYGB_FAULT_SLEEP``,
    default 0.05s — long enough to trip sub-50ms deadlines, short enough
    for chaos CI)."""
    raw = os.environ.get("PYGB_FAULT_SLEEP", "").strip()
    try:
        return float(raw) if raw else 0.05
    except ValueError:
        return 0.05


def hang_seconds() -> float:
    """Stall injected by the ``worker_hang`` fault (``$PYGB_FAULT_HANG``,
    default 30s — far past any test's worker timeout, so the hang is
    always detected rather than waited out)."""
    raw = os.environ.get("PYGB_FAULT_HANG", "").strip()
    try:
        return float(raw) if raw else 30.0
    except ValueError:
        return 30.0


# ----------------------------------------------------------------------
# deadline scopes
# ----------------------------------------------------------------------


def _scope_stack() -> list:
    stack = getattr(_TLS, "scopes", None)
    if stack is None:
        stack = _TLS.scopes = []
    return stack


def current_scope():
    """The innermost active :class:`deadline` scope on this thread."""
    stack = getattr(_TLS, "scopes", None)
    return stack[-1] if stack else None


class deadline:
    """Establish a wall-clock budget for every operation in a block::

        with gb.deadline(seconds=0.5) as dl:
            ranks = pagerank(graph)      # raises OperationTimeout if late

    Scopes nest; the effective deadline is the minimum of the block's own
    budget and any enclosing scope.  ``seconds=None`` creates a pure
    cancellation scope: no timer, but :meth:`cancel` (callable from any
    thread) makes the in-flight and all subsequent operations raise
    :class:`~repro.exceptions.OperationCancelled`.

    A scope that expires or is cancelled stays that way — later ops in
    the block fail fast instead of running on a blown budget — but the
    process remains fully functional once the block exits."""

    def __init__(self, seconds: float | None = None):
        if seconds is not None:
            seconds = float(seconds)
            if seconds <= 0:
                raise ValueError(f"deadline(seconds={seconds}): budget must be > 0")
        self.seconds = seconds
        self.deadline_at: float | None = None
        self.cancelled = False
        self.expired = False
        self._entered = False

    def __enter__(self):
        stack = _scope_stack()
        parent = stack[-1] if stack else None
        if self.seconds is not None:
            self.deadline_at = time.monotonic() + self.seconds
        if parent is not None and parent.deadline_at is not None:
            if self.deadline_at is None or parent.deadline_at < self.deadline_at:
                self.deadline_at = parent.deadline_at
        stack.append(self)
        self._entered = True
        return self

    def __exit__(self, *exc):
        stack = _scope_stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # defensive: tolerate out-of-order exits
            try:
                stack.remove(self)
            except ValueError:
                pass
        _clear_cancel(self)
        return False

    def cancel(self) -> None:
        """Cancel the scope (thread-safe, idempotent).  The operation
        currently running under it observes the flag at its next
        checkpoint and raises ``OperationCancelled``; operations started
        afterwards fail fast at dispatch entry."""
        self.cancelled = True
        _assert_cancel(self)

    def remaining(self) -> float | None:
        """Seconds left on the budget (``None`` for pure-cancel scopes)."""
        if self.deadline_at is None:
            return None
        return max(0.0, self.deadline_at - time.monotonic())

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else ("expired" if self.expired else "active")
        return f"deadline(seconds={self.seconds!r}, {state})"


# ----------------------------------------------------------------------
# per-op guards + the watchdog
# ----------------------------------------------------------------------


class _OpGuard:
    """One armed operation: what the watchdog times and what worker
    threads consult through :func:`check_cancelled`."""

    __slots__ = (
        "op", "engine", "scope", "event", "deadline_at", "from_scope",
        "budget", "t0", "done", "fired",
    )

    def __init__(self, op, engine, scope, deadline_at, from_scope, budget, t0):
        self.op = op
        self.engine = engine
        self.scope = scope
        self.event = threading.Event()
        self.deadline_at = deadline_at
        self.from_scope = from_scope
        self.budget = budget
        self.t0 = t0
        self.done = False
        self.fired = False


class _Watchdog:
    """Singleton timer thread.  Guards are pushed on a heap keyed by
    deadline; the (lazily started, daemon) thread sleeps until the
    earliest one and fires it.  Disarm is lazy — done guards are skipped
    when they surface at the top of the heap — so the per-op cost is one
    push and one notify."""

    def __init__(self):
        self._cond = threading.Condition()
        self._heap: list = []
        self._seq = 0
        self._thread: threading.Thread | None = None

    def arm(self, og: _OpGuard) -> None:
        global _ACTIVE
        with self._cond:
            _ACTIVE += 1
            if og.deadline_at is not None:
                self._seq += 1
                heapq.heappush(self._heap, (og.deadline_at, self._seq, og))
                if self._thread is None or not self._thread.is_alive():
                    self._thread = threading.Thread(
                        target=self._run, name="pygb-guard-watchdog", daemon=True
                    )
                    self._thread.start()
                self._cond.notify()

    def disarm(self, og: _OpGuard) -> None:
        global _ACTIVE
        og.done = True
        with self._cond:
            _ACTIVE -= 1
            self._cond.notify()

    def _run(self) -> None:
        while True:
            fire = None
            with self._cond:
                while True:
                    while self._heap and self._heap[0][2].done:
                        heapq.heappop(self._heap)
                    if not self._heap:
                        self._cond.wait()
                        continue
                    delay = self._heap[0][0] - time.monotonic()
                    if delay <= 0:
                        fire = heapq.heappop(self._heap)[2]
                        break
                    self._cond.wait(timeout=delay)
            if fire is not None and not fire.done:
                _fire(fire)


_WATCHDOG = _Watchdog()


def _fire(og: _OpGuard) -> None:
    """Deadline expiry: flip every cooperative cancellation signal the
    running op might be watching."""
    og.fired = True
    if og.from_scope and og.scope is not None:
        og.scope.expired = True
    og.event.set()
    _assert_cancel(og)


def current_op() -> _OpGuard | None:
    """The guard armed for the operation running on this thread."""
    return getattr(_TLS, "op_guard", None)


def op_deadline_at() -> float | None:
    """Monotonic deadline of the current guarded op (``None`` unguarded).
    The tile executor uses this to bound its future waits."""
    og = getattr(_TLS, "op_guard", None)
    return og.deadline_at if og is not None else None


class bound_op:
    """Propagate the dispatching thread's guard into a worker thread::

        og = guard.current_op()
        pool.submit(lambda: run_with(bound_op(og)))

    so checkpoints inside per-tile kernels observe the same deadline and
    cancellation state as the op that fanned them out."""

    def __init__(self, og: _OpGuard | None):
        self._og = og
        self._prev = None

    def __enter__(self):
        self._prev = getattr(_TLS, "op_guard", None)
        _TLS.op_guard = self._og
        return self._og

    def __exit__(self, *exc):
        _TLS.op_guard = self._prev
        return False


def check_cancelled() -> None:
    """Cooperative checkpoint: raise ``OperationCancelled`` when the
    current op's scope was cancelled or its deadline has passed.  Called
    from generated pyjit kernels and between tiles; a single global read
    when no guard is armed anywhere in the process."""
    if not _ACTIVE:
        return
    og = getattr(_TLS, "op_guard", None)
    if og is None or og.done:
        return
    scope = og.scope
    if scope is not None and scope.cancelled:
        raise OperationCancelled(
            f"operation {og.op!r} cancelled",
            op=og.op, engine=og.engine, elapsed=time.monotonic() - og.t0,
        )
    if og.event.is_set() or (
        og.deadline_at is not None and time.monotonic() >= og.deadline_at
    ):
        # mark the expiry so the guard wrapper converts this to
        # OperationTimeout even if the watchdog has not fired yet
        og.fired = True
        if og.from_scope and scope is not None:
            scope.expired = True
        raise OperationCancelled(
            f"operation {og.op!r} cancelled (deadline reached)",
            op=og.op, engine=og.engine, elapsed=time.monotonic() - og.t0,
        )


def cooperative_sleep(seconds: float, extra_event: threading.Event | None = None) -> bool:
    """Sleep in small slices, honouring cancellation at each slice.
    Returns ``True`` after a full sleep, ``False`` when *extra_event* was
    set first; raises through :func:`check_cancelled` on cancellation.
    Fault hooks (``slow_kernel``, ``worker_hang``) stall through here so
    injected delays stay interruptible."""
    end = time.monotonic() + seconds
    while True:
        check_cancelled()
        if extra_event is not None and extra_event.is_set():
            return False
        remaining = end - time.monotonic()
        if remaining <= 0:
            return True
        time.sleep(min(0.01, remaining))


# ----------------------------------------------------------------------
# the C++ cancellation flag registry
# ----------------------------------------------------------------------

# ctypes loads each kernel .so RTLD_LOCAL, so every library carries its
# own `static std::atomic` flag; asserting a cancel means setting it on
# every loaded library.  Tokens (the scope or guard that asserted) are
# tracked so concurrent guards don't clobber each other's flag: the flag
# drops to 0 only when the last asserter clears.
_CANCEL_LOCK = threading.Lock()
_CANCEL_LIBS: list = []
_ASSERTED: set = set()


def register_cancel_lib(lib) -> None:
    """Register a loaded kernel library exporting ``pygb_request_cancel``
    (cppengine calls this at dlopen time) so watchdog fires reach it."""
    with _CANCEL_LOCK:
        if any(existing is lib for existing in _CANCEL_LIBS):
            return
        _CANCEL_LIBS.append(lib)
        try:
            lib.pygb_request_cancel(1 if _ASSERTED else 0)
        except Exception:
            pass


def _assert_cancel(token) -> None:
    with _CANCEL_LOCK:
        _ASSERTED.add(token)
        for lib in _CANCEL_LIBS:
            try:
                lib.pygb_request_cancel(1)
            except Exception:
                pass


def _clear_cancel(token) -> None:
    with _CANCEL_LOCK:
        _ASSERTED.discard(token)
        if _ASSERTED:
            return
        for lib in _CANCEL_LIBS:
            try:
                lib.pygb_request_cancel(0)
            except Exception:
                pass


# ----------------------------------------------------------------------
# deterministic guard counters
# ----------------------------------------------------------------------


class _GuardStats:
    __slots__ = ("timeouts", "cancels", "degrades", "quarantines")

    def __init__(self):
        self.reset()

    def reset(self):
        self.timeouts = {}
        self.cancels = {}
        self.degrades = {}
        self.quarantines = {}


_STATS = _GuardStats()
_STATS_LOCK = threading.Lock()


def _bump(table: dict, op: str) -> None:
    with _STATS_LOCK:
        table[op] = table.get(op, 0) + 1


def _note_timeout(op: str, engine: str, elapsed: float, budget) -> None:
    _bump(_STATS.timeouts, op)
    from . import obs

    if obs.ACTIVE:
        obs.record_event(
            "guard.timeout", "guard", op=op, engine=engine,
            elapsed=round(elapsed, 6), budget=budget,
        )


def _note_cancel(op: str, engine: str, elapsed: float) -> None:
    _bump(_STATS.cancels, op)
    from . import obs

    if obs.ACTIVE:
        obs.record_event(
            "guard.cancel", "guard", op=op, engine=engine, elapsed=round(elapsed, 6)
        )


def stats() -> dict:
    """Snapshot of the deterministic guard counters (per-op dicts plus
    totals), mirroring ``tiling.stats()`` / ``schedule.stats()``."""
    with _STATS_LOCK:
        return {
            "timeouts": dict(_STATS.timeouts),
            "timeouts_total": sum(_STATS.timeouts.values()),
            "cancels": dict(_STATS.cancels),
            "cancels_total": sum(_STATS.cancels.values()),
            "degrades": dict(_STATS.degrades),
            "degrades_total": sum(_STATS.degrades.values()),
            "quarantines": dict(_STATS.quarantines),
            "quarantines_total": sum(_STATS.quarantines.values()),
        }


def reset_stats() -> None:
    """Zero the guard counters."""
    with _STATS_LOCK:
        _STATS.reset()


# ----------------------------------------------------------------------
# tiling quarantine: the degradation ladder's circuit breaker
# ----------------------------------------------------------------------

_TILING_HEALTH = None
_TILING_HEALTH_LOCK = threading.Lock()

_TILING_WARN = (
    "pygb: tiled execution of {key} failed ({error}); degraded to "
    "monolithic execution and quarantined with backoff "
    "(see `python -m repro doctor`)"
)


def tiling_health():
    """The circuit breaker quarantining tiled fan-out per op signature
    (lazy singleton; same exponential-backoff machinery as the JIT
    quarantine, keyed under the pseudo-engine name ``tiling``)."""
    global _TILING_HEALTH
    if _TILING_HEALTH is None:
        with _TILING_HEALTH_LOCK:
            if _TILING_HEALTH is None:
                from .jit.health import EngineHealth

                _TILING_HEALTH = EngineHealth(
                    warn_template=_TILING_WARN,
                    event_name="guard.quarantine",
                    event_cat="guard",
                )
    return _TILING_HEALTH


def tiling_quarantined(op: str) -> bool:
    """Whether tiled fan-out for *op* is currently circuit-broken (the
    partitioned executor then forwards the op monolithically without
    paying for another doomed fan-out)."""
    if _TILING_HEALTH is None:
        return False
    return _TILING_HEALTH.quarantined("tiling", op)


def note_tile_failure(op: str, error: BaseException) -> None:
    """A tiled fan-out failed and the op is being re-executed
    monolithically: count the degrade, trace it, and advance the
    quarantine circuit breaker."""
    _bump(_STATS.degrades, op)
    from . import obs

    if obs.ACTIVE:
        obs.record_event(
            "guard.degrade", "guard", op=op,
            error=str(error).splitlines()[0][:200] if str(error) else type(error).__name__,
        )
    newly = tiling_health().record_failure("tiling", op, error)
    if newly:
        _bump(_STATS.quarantines, op)


# ----------------------------------------------------------------------
# the engine wrapper
# ----------------------------------------------------------------------

_METHODS = None


def _dispatch_methods():
    global _METHODS
    if _METHODS is None:
        from .core.dispatch import _DISPATCH_METHODS

        _METHODS = _DISPATCH_METHODS
    return _METHODS


def _run_guarded(op, engine_name, scope, timeout, method, args, kwargs):
    now = time.monotonic()
    deadline_at = None
    from_scope = False
    budget = None
    if scope is not None:
        if scope.cancelled:
            _note_cancel(op, engine_name, 0.0)
            raise OperationCancelled(
                f"operation {op!r} cancelled before it started "
                "(enclosing deadline scope was cancelled)",
                op=op, engine=engine_name, elapsed=0.0,
            )
        if scope.deadline_at is not None:
            deadline_at = scope.deadline_at
            from_scope = True
            budget = scope.seconds
    if timeout is not None and (deadline_at is None or now + timeout < deadline_at):
        deadline_at = now + timeout
        from_scope = False
        budget = timeout
    if deadline_at is not None and now >= deadline_at:
        if from_scope:
            scope.expired = True
        _note_timeout(op, engine_name, 0.0, budget)
        raise OperationTimeout(
            f"operation {op!r} not started: deadline budget already exhausted",
            op=op, engine=engine_name, elapsed=0.0, budget=budget,
        )
    og = _OpGuard(op, engine_name, scope, deadline_at, from_scope, budget, now)
    _WATCHDOG.arm(og)
    binder = bound_op(og)
    try:
        binder.__enter__()
        try:
            result = method(*args, **kwargs)
        finally:
            binder.__exit__()
    except OperationCancelled as exc:
        elapsed = time.monotonic() - og.t0
        if og.fired or (scope is not None and scope.expired):
            _note_timeout(op, engine_name, elapsed, budget)
            raise OperationTimeout(
                f"operation {op!r} on engine {engine_name!r} exceeded its "
                f"deadline budget of {budget}s (elapsed {elapsed:.3f}s)",
                op=op, engine=engine_name, elapsed=elapsed, budget=budget,
            ) from exc
        _note_cancel(op, engine_name, elapsed)
        if exc.op is None:
            exc.op, exc.engine, exc.elapsed = op, engine_name, elapsed
        raise
    finally:
        _WATCHDOG.disarm(og)
        _clear_cancel(og)
    elapsed = time.monotonic() - og.t0
    if og.fired or (deadline_at is not None and time.monotonic() >= deadline_at):
        # the kernel finished, but past its budget: the result is
        # discarded so deadline semantics stay deterministic for callers
        if from_scope:
            scope.expired = True
        _note_timeout(op, engine_name, elapsed, budget)
        raise OperationTimeout(
            f"operation {op!r} on engine {engine_name!r} finished after its "
            f"deadline budget of {budget}s (elapsed {elapsed:.3f}s); "
            "result discarded",
            op=op, engine=engine_name, elapsed=elapsed, budget=budget,
        )
    if scope is not None and scope.cancelled:
        _note_cancel(op, engine_name, elapsed)
        raise OperationCancelled(
            f"operation {op!r} cancelled",
            op=op, engine=engine_name, elapsed=elapsed,
        )
    return result


class GuardedEngine:
    """Deadline/cancellation wrapper around the partitioned engine stack.

    Dispatch methods are wrapped lazily (first use) and the wrapper is
    cached on the instance; each call re-reads the scope stack and
    ``$PYGB_OP_TIMEOUT`` so guards engage mid-program.  With neither
    active, the wrapper costs one thread-local read and one env read."""

    def __init__(self, inner):
        self._inner = inner

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def supports_fusion(self) -> bool:
        return getattr(self._inner, "supports_fusion", False)

    def __getattr__(self, attr):
        inner = object.__getattribute__(self, "_inner")
        value = getattr(inner, attr)
        if attr.startswith("_") or attr not in _dispatch_methods() or not callable(value):
            return value

        def guarded(*args, __method=value, __op=attr, __inner=inner, **kwargs):
            scope = current_scope()
            timeout = op_timeout()
            if scope is None and timeout is None:
                return __method(*args, **kwargs)
            return _run_guarded(
                __op, __inner.name, scope, timeout, __method, args, kwargs
            )

        guarded.__name__ = attr
        guarded.__qualname__ = f"GuardedEngine.{attr}"
        self.__dict__[attr] = guarded
        return guarded

    def __repr__(self) -> str:
        return f"GuardedEngine({self._inner!r})"
