"""Input/output and workload generation.

* :mod:`~repro.io.matrixmarket` — MatrixMarket coordinate files (the
  read-matrix-from-disk path measured in the paper's Fig. 11);
* :mod:`~repro.io.generators` — synthetic graphs, foremost the
  Erdős–Rényi family with ``|E| = |V|^1.5`` used throughout Fig. 10;
* :mod:`~repro.io.convert` — NumPy / SciPy / NetworkX adapters (Fig. 3b).
"""

from .matrixmarket import mmread, mmwrite
from .fastload import mmread_fast, fast_loader_available
from .generators import erdos_renyi, ring_graph, grid_graph, scale_free
from .convert import (
    from_networkx,
    from_scipy_sparse,
    to_networkx,
    to_scipy_sparse,
)

__all__ = [
    "mmread",
    "mmwrite",
    "mmread_fast",
    "fast_loader_available",
    "erdos_renyi",
    "ring_graph",
    "grid_graph",
    "scale_free",
    "from_networkx",
    "from_scipy_sparse",
    "to_networkx",
    "to_scipy_sparse",
]
