"""Adapters between PyGB containers and the Python scientific stack
(paper Sec. III: "Containers can also be constructed from NumPy arrays,
SciPy.sparse matrices, and NetworkX graphs").

Conversion copies the data, matching the paper's current behaviour
("PyGB currently performs a data copy at construction").
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "networkx_to_coo",
    "from_networkx",
    "from_scipy_sparse",
    "to_networkx",
    "to_scipy_sparse",
]


def networkx_to_coo(graph):
    """``(nrows, ncols, rows, cols, vals)`` from a NetworkX graph.

    Edge weights come from the ``weight`` attribute (default 1);
    undirected graphs contribute both orientations, matching
    ``networkx.adjacency_matrix``.
    """
    nodes = list(graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    rows, cols, vals = [], [], []
    directed = graph.is_directed()
    for u, v, data in graph.edges(data=True):
        w = data.get("weight", 1)
        rows.append(index[u])
        cols.append(index[v])
        vals.append(w)
        if not directed and u != v:
            rows.append(index[v])
            cols.append(index[u])
            vals.append(w)
    n = len(nodes)
    return n, n, np.asarray(rows), np.asarray(cols), np.asarray(vals)


def from_networkx(graph, dtype=None):
    """Adjacency :class:`~repro.core.matrix.Matrix` of a NetworkX graph."""
    from ..core.matrix import Matrix

    return Matrix(graph, dtype=dtype)


def from_scipy_sparse(sp_matrix, dtype=None):
    """:class:`~repro.core.matrix.Matrix` from any SciPy sparse format."""
    from ..core.matrix import Matrix

    return Matrix(sp_matrix, dtype=dtype)


def to_scipy_sparse(matrix):
    """CSR ``scipy.sparse`` copy of a PyGB Matrix."""
    import scipy.sparse as sp

    store = matrix._store
    return sp.csr_matrix(
        (store.values.copy(), store.indices.copy(), store.indptr.copy()),
        shape=store.shape,
    )


def to_networkx(matrix, directed: bool = True):
    """NetworkX graph whose weighted edges are the stored entries."""
    import networkx as nx

    g = nx.DiGraph() if directed else nx.Graph()
    g.add_nodes_from(range(matrix.nrows))
    rows, cols, vals = matrix.to_coo()
    g.add_weighted_edges_from(
        (int(i), int(j), v.item() if hasattr(v, "item") else v)
        for i, j, v in zip(rows, cols, vals)
    )
    return g
