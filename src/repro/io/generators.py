"""Synthetic graph generators for the evaluation workloads.

The paper's Fig. 10/11 experiments run on Erdős–Rényi graphs "with
density |E| = O(|V|^1.5)"; :func:`erdos_renyi` reproduces exactly that
family.  The extra generators cover the example applications (road-like
grids, rings, and a preferential-attachment web graph for PageRank).

All generators are deterministic under a given seed and return
``(rows, cols, values)`` COO arrays plus helpers that wrap them in a DSL
:class:`~repro.core.matrix.Matrix`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "erdos_renyi_coo",
    "erdos_renyi",
    "ring_graph",
    "grid_graph",
    "scale_free",
    "rmat_coo",
    "rmat",
]


def erdos_renyi_coo(
    nodes: int,
    nedges: int | None = None,
    seed: int = 0,
    weighted: bool = False,
    self_loops: bool = False,
):
    """COO arrays of a directed G(n, m) graph.

    With *nedges* omitted, ``m = round(n ** 1.5)`` — the paper's density.
    Duplicate edges are discarded and re-drawn, so exactly *nedges*
    distinct edges result (when the graph can hold them).
    """
    rng = np.random.default_rng(seed)
    if nedges is None:
        nedges = int(round(nodes**1.5))
    capacity = nodes * nodes - (0 if self_loops else nodes)
    nedges = min(nedges, capacity)
    chosen = np.empty(0, dtype=np.int64)
    while chosen.size < nedges:
        need = nedges - chosen.size
        flat = rng.integers(0, nodes * nodes, size=int(need * 1.2) + 8, dtype=np.int64)
        if not self_loops:
            flat = flat[flat // nodes != flat % nodes]
        chosen = np.unique(np.concatenate([chosen, flat]))
    if chosen.size > nedges:
        chosen = rng.choice(chosen, size=nedges, replace=False)
        chosen.sort()
    rows, cols = chosen // nodes, chosen % nodes
    if weighted:
        vals = rng.uniform(1.0, 10.0, size=rows.size)
    else:
        vals = np.ones(rows.size, dtype=np.int64)
    return rows, cols, vals


def erdos_renyi(
    nodes: int,
    nedges: int | None = None,
    seed: int = 0,
    weighted: bool = False,
    dtype=None,
):
    """Erdős–Rényi graph as a DSL Matrix (``|E| = |V|^1.5`` by default)."""
    from ..core.matrix import Matrix

    rows, cols, vals = erdos_renyi_coo(nodes, nedges, seed, weighted)
    return Matrix((vals, (rows, cols)), shape=(nodes, nodes), dtype=dtype)


def ring_graph(nodes: int, weighted: bool = False, seed: int = 0, dtype=None):
    """A directed cycle 0→1→…→n-1→0 (worst case for BFS depth)."""
    from ..core.matrix import Matrix

    rows = np.arange(nodes, dtype=np.int64)
    cols = (rows + 1) % nodes
    if weighted:
        vals = np.random.default_rng(seed).uniform(1.0, 10.0, size=nodes)
    else:
        vals = np.ones(nodes, dtype=np.int64)
    return Matrix((vals, (rows, cols)), shape=(nodes, nodes), dtype=dtype)


def grid_graph(side: int, weighted: bool = False, seed: int = 0, dtype=None):
    """A 4-neighbour ``side × side`` grid, both edge orientations — the
    road-network-like workload of the SSSP example."""
    from ..core.matrix import Matrix

    n = side * side
    ids = np.arange(n, dtype=np.int64).reshape(side, side)
    right_src = ids[:, :-1].ravel()
    right_dst = ids[:, 1:].ravel()
    down_src = ids[:-1, :].ravel()
    down_dst = ids[1:, :].ravel()
    rows = np.concatenate([right_src, right_dst, down_src, down_dst])
    cols = np.concatenate([right_dst, right_src, down_dst, down_src])
    if weighted:
        rng = np.random.default_rng(seed)
        half = rng.uniform(1.0, 10.0, size=right_src.size + down_src.size)
        # symmetric weights: both orientations of an edge share a value
        vals = np.concatenate(
            [half[: right_src.size], half[: right_src.size],
             half[right_src.size:], half[right_src.size:]]
        )
    else:
        vals = np.ones(rows.size, dtype=np.int64)
    return Matrix((vals, (rows, cols)), shape=(n, n), dtype=dtype)


def rmat_coo(
    scale: int,
    edge_factor: int = 16,
    seed: int = 0,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    weighted: bool = False,
):
    """Graph500-style R-MAT power-law COO edge list.

    ``2**scale`` vertices and ``edge_factor * 2**scale`` drawn directed
    edges; each edge picks one adjacency-matrix quadrant per bit level
    with probabilities ``(a, b, c, 1-a-b-c)`` — the Graph500 defaults
    give the skewed degree distribution (a few massive hubs, a long tail
    of low-degree vertices) that makes direction-optimizing traversal
    pay off.  Self-loops and duplicate edges are removed after
    generation, so the realized edge count is somewhat lower than drawn.
    Fully vectorised (one uniform draw per edge per bit) and
    deterministic under a given seed.
    """
    rng = np.random.default_rng(seed)
    n = 1 << scale
    m = edge_factor * n
    rows = np.zeros(m, dtype=np.int64)
    cols = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        r = rng.random(m)
        # quadrants in draw order: [0,a) → (0,0), [a,a+b) → (0,1),
        # [a+b,a+b+c) → (1,0), rest → (1,1)
        row_bit = r >= a + b
        col_bit = ((r >= a) & (r < a + b)) | (r >= a + b + c)
        rows |= row_bit.astype(np.int64) << level
        cols |= col_bit.astype(np.int64) << level
    keep = rows != cols
    flat = np.unique(rows[keep] * np.int64(n) + cols[keep])
    rows, cols = flat // n, flat % n
    if weighted:
        vals = rng.uniform(1.0, 10.0, size=rows.size)
    else:
        vals = np.ones(rows.size, dtype=np.int64)
    return rows, cols, vals


def rmat(
    scale: int,
    edge_factor: int = 16,
    seed: int = 0,
    weighted: bool = False,
    dtype=None,
):
    """R-MAT power-law graph as a DSL Matrix (``2**scale`` vertices)."""
    from ..core.matrix import Matrix

    n = 1 << scale
    rows, cols, vals = rmat_coo(scale, edge_factor, seed, weighted=weighted)
    return Matrix((vals, (rows, cols)), shape=(n, n), dtype=dtype)


def scale_free(
    nodes: int, out_degree: int = 4, seed: int = 0, dtype=None
):
    """A preferential-attachment (Barabási–Albert-flavoured) digraph for
    the PageRank example: node ``t`` links to *out_degree* earlier nodes
    sampled proportionally to in-degree-so-far plus one.

    A directed ring 0→1→…→n-1→0 is superimposed so every vertex has both
    an in-edge and an out-edge.  The power iteration of the paper's
    Fig. 7 assumes exactly this (its ``Second``-accumulated ``vxm`` keeps
    stale rank for in-edge-free vertices and drops the mass of
    out-edge-free ones); the paper's Erdős–Rényi workloads satisfy the
    assumption with high probability, and the ring keeps it deterministic.
    """
    from ..core.matrix import Matrix

    rng = np.random.default_rng(seed)
    rows, cols = [], []
    weights = np.ones(nodes, dtype=np.float64)
    start = max(out_degree, 1)
    for t in range(start, nodes):
        p = weights[:t] / weights[:t].sum()
        targets = rng.choice(t, size=min(out_degree, t), replace=False, p=p)
        for j in targets:
            rows.append(t)
            cols.append(int(j))
            weights[j] += 1.0
    # seed edges: a small clique among the first nodes keeps them reachable
    for i in range(start):
        for j in range(start):
            if i != j:
                rows.append(i)
                cols.append(j)
    # ring backbone: guarantees one in- and one out-edge per vertex
    for i in range(nodes):
        j = (i + 1) % nodes
        if i != j:
            rows.append(i)
            cols.append(j)
    vals = np.ones(len(rows), dtype=np.int64)
    return Matrix(
        (vals, (np.asarray(rows), np.asarray(cols))), shape=(nodes, nodes), dtype=dtype
    )
