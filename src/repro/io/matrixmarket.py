"""MatrixMarket coordinate-format reader/writer.

The paper's Fig. 11 times "read a matrix from a file in disk"; this module
is that code path, implemented from scratch (no SciPy dependency) so the
Python-loop vs vectorised-parse comparison in the Fig. 11 benchmark is
meaningful.

Supported: ``matrix coordinate (real|integer|pattern) (general|symmetric)``.
"""

from __future__ import annotations

import io
import os

import numpy as np

from ..exceptions import InvalidValue

__all__ = ["mmread", "mmwrite"]

_HEADER = "%%MatrixMarket"


def _parse_header(line: str):
    parts = line.strip().split()
    if len(parts) != 5 or parts[0] != _HEADER:
        raise InvalidValue(f"not a MatrixMarket header: {line.strip()!r}")
    _, obj, fmt, field, symmetry = (p.lower() for p in parts)
    if obj != "matrix" or fmt != "coordinate":
        raise InvalidValue(f"only 'matrix coordinate' files are supported, got {obj} {fmt}")
    if field not in ("real", "integer", "pattern"):
        raise InvalidValue(f"unsupported field type {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise InvalidValue(f"unsupported symmetry {symmetry!r}")
    return field, symmetry


def mmread(path, dtype=None):
    """Read a MatrixMarket file into a :class:`~repro.core.matrix.Matrix`.

    Indices in the file are 1-based per the format; ``pattern`` files get
    value 1 for every listed coordinate; ``symmetric`` files mirror
    off-diagonal entries.
    """
    from ..core.matrix import Matrix

    with open(path, "rt") as fh:
        header = fh.readline()
        field, symmetry = _parse_header(header)
        line = fh.readline()
        while line.startswith("%"):
            line = fh.readline()
        dims = line.split()
        if len(dims) != 3:
            raise InvalidValue(f"bad size line: {line.strip()!r}")
        nrows, ncols, nnz = (int(x) for x in dims)
        body = fh.read()
    if not body.strip():
        # empty coordinate section: loadtxt warns on empty input
        if nnz != 0:
            raise InvalidValue(f"size line promised {nnz} entries, file has 0")
        empty = np.empty(0, dtype=np.int64)
        vals = np.empty(0, dtype=np.int64 if field != "real" else np.float64)
        return Matrix((vals, (empty, empty)), shape=(nrows, ncols), dtype=dtype)
    if field == "pattern":
        raw = np.loadtxt(io.StringIO(body), dtype=np.int64, ndmin=2)
        if raw.size == 0:
            raw = raw.reshape(0, 2)
        rows, cols = raw[:, 0] - 1, raw[:, 1] - 1
        vals = np.ones(rows.size, dtype=np.int64)
    else:
        raw = np.loadtxt(io.StringIO(body), dtype=np.float64, ndmin=2)
        if raw.size == 0:
            raw = raw.reshape(0, 3)
        rows = raw[:, 0].astype(np.int64) - 1
        cols = raw[:, 1].astype(np.int64) - 1
        vals = raw[:, 2]
        if field == "integer":
            vals = vals.astype(np.int64)
    if rows.size != nnz:
        raise InvalidValue(f"size line promised {nnz} entries, file has {rows.size}")
    if symmetry == "symmetric":
        off = rows != cols
        rows, cols, vals = (
            np.concatenate([rows, cols[off]]),
            np.concatenate([cols, rows[off]]),
            np.concatenate([vals, vals[off]]),
        )
    return Matrix((vals, (rows, cols)), shape=(nrows, ncols), dtype=dtype)


def mmwrite(path, matrix, comment: str | None = None) -> None:
    """Write a PyGB Matrix as ``matrix coordinate real|integer general``."""
    store = matrix._store
    rows, cols, vals = store.coo()
    field = "integer" if store.dtype.kind in "iub" else "real"
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wt") as fh:
        fh.write(f"{_HEADER} matrix coordinate {field} general\n")
        if comment:
            for line in comment.splitlines():
                fh.write(f"%{line}\n")
        fh.write(f"{store.nrows} {store.ncols} {store.nvals}\n")
        if field == "integer":
            np.savetxt(fh, np.column_stack([rows + 1, cols + 1, vals.astype(np.int64)]), fmt="%d")
        else:
            out = np.column_stack([rows + 1, cols + 1, vals])
            np.savetxt(fh, out, fmt=("%d", "%d", "%.17g"))
    os.replace(tmp, path)
