"""The dynamic-compilation pipeline (paper Sec. V, Fig. 9).

Execution of a DSL operation flows

    expression construction → evaluation → dispatch →
    module retrieval (memory cache → catalog → disk cache → compile) →
    kernel invocation

with the *module retrieval* stage owned by this package:

* :mod:`~repro.jit.spec` — the canonical kernel specification (operation
  name, operand dtypes, operator names, descriptor flags) and its stable
  hash — the analog of the paper's ``hash(kwargs)``;
* :mod:`~repro.jit.cache` — memory → catalog → disk → compile lookup,
  with hit/miss/compile-time statistics;
* :mod:`~repro.jit.catalog` — the AOT kernel catalog: ``repro bake``
  compiles the hot spec space into a redistributable pack that
  ``$PYGB_CATALOG`` serves without any inline compilation;
* :mod:`~repro.jit.pycodegen` / :mod:`~repro.jit.pyengine` — specialised
  *Python* kernel modules (portable default);
* :mod:`~repro.jit.gbtl_lite` / :mod:`~repro.jit.cppcodegen` /
  :mod:`~repro.jit.cppengine` — per-spec C++ binding files compiled with
  ``g++`` against a bundled mini-GBTL template header and loaded through
  ``ctypes`` (the paper's actual design);
* :mod:`~repro.jit.algorithm_codegen` — whole-algorithm C++ modules (the
  paper's "version 2"/"version 3" measurement points).
"""

from .cache import JitCache, cache_statistics, clear_memory_cache, default_cache
from .catalog import (
    KernelCatalog,
    bake_catalog,
    catalog_kernel_specs,
    load_catalog,
    pyjit_kernel_specs,
    validate_catalog,
)
from .precompile import algorithm_kernel_specs, algorithm_module_specs, warm_cache
from .spec import KernelSpec

__all__ = [
    "KernelSpec",
    "JitCache",
    "default_cache",
    "cache_statistics",
    "clear_memory_cache",
    "warm_cache",
    "algorithm_kernel_specs",
    "algorithm_module_specs",
    "KernelCatalog",
    "bake_catalog",
    "catalog_kernel_specs",
    "load_catalog",
    "pyjit_kernel_specs",
    "validate_catalog",
]
