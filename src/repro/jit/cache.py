"""Module retrieval: memory cache → disk cache → compile (paper Fig. 9).

The paper's ``get_module`` checks an in-memory dict, then the filesystem,
and only then invokes the compiler; compiled binaries persist on disk so
"the cost of compiling the code can be amortized over future runs of the
same code".  :class:`JitCache` reproduces that lookup order for both the
Python and the C++ code generators and counts every outcome, which is
what the compilation-time experiment (EXPERIMENTS.md) reports.

Locking is per spec, not global: two threads racing on the *same* spec
dedupe into one compile, while different specs generate and compile
concurrently — which is what :meth:`JitCache.precompile` exploits to fan
``g++`` jobs out over a thread pool (compilation is subprocess-bound, so
Python threads are enough).
"""

from __future__ import annotations

import importlib.util
import os
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import CompilationError
from .spec import KernelSpec

__all__ = [
    "CacheStatistics",
    "JitCache",
    "default_cache",
    "cache_statistics",
    "clear_memory_cache",
    "default_compile_jobs",
]


def default_compile_jobs() -> int:
    """Worker count for parallel compilation: ``$PYGB_COMPILE_JOBS``, else
    a small multiple of the core count (``g++`` is subprocess-bound, so a
    little oversubscription hides process-spawn latency)."""
    env = os.environ.get("PYGB_COMPILE_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(2, min(8, 2 * (os.cpu_count() or 1)))


@dataclass
class CacheStatistics:
    """Counters for the three lookup outcomes plus time spent compiling."""

    memory_hits: int = 0
    disk_hits: int = 0
    compiles: int = 0
    generate_seconds: float = 0.0
    compile_seconds: float = 0.0
    import_seconds: float = 0.0
    per_func: dict = field(default_factory=dict)

    def snapshot(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "compiles": self.compiles,
            "generate_seconds": self.generate_seconds,
            "compile_seconds": self.compile_seconds,
            "import_seconds": self.import_seconds,
            "per_func": dict(self.per_func),
        }

    def reset(self) -> None:
        self.memory_hits = self.disk_hits = self.compiles = 0
        self.generate_seconds = self.compile_seconds = self.import_seconds = 0.0
        self.per_func.clear()


def _default_cache_dir() -> Path:
    env = os.environ.get("PYGB_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "pygb"


class JitCache:
    """Memory → disk → compile module store, safe under threads.

    Writers produce the artifact under a temporary name and ``os.replace``
    it into place, so concurrent processes racing to compile the same spec
    each end up importing a complete file.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else _default_cache_dir()
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStatistics()
        self._modules: dict[tuple[str, str], object] = {}
        # guards _modules, _key_locks and stats; never held across a compile
        self._lock = threading.Lock()
        self._key_locks: dict[tuple[str, str], threading.Lock] = {}

    # ------------------------------------------------------------------
    def get_module(self, spec: KernelSpec, generate, suffix: str = ".py", compiler=None):
        """The paper's ``get_module``: return the loaded module for
        *spec*, generating (and optionally *compiler*-ing) it on a miss.

        ``generate(spec) -> str`` produces source text; for C++ specs
        ``compiler(src_path, out_path)`` turns it into a shared object and
        the import step is replaced by the engine's ``ctypes`` loader
        (in which case the returned object is whatever *compiler* loads).

        Thread-safe with per-spec granularity: a miss only blocks callers
        of the *same* spec while it generates/compiles; other specs
        proceed concurrently.
        """
        # the same spec may exist as a Python module AND a compiled shared
        # object (the engines share one cache), so the artifact kind is
        # part of the memory key
        kind = ".so" if compiler else suffix
        key = (spec.key_hash, kind)
        with self._lock:
            mod = self._modules.get(key)
            if mod is not None:
                self.stats.memory_hits += 1
                return mod
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            # a racer on the same spec may have built it while we waited
            with self._lock:
                mod = self._modules.get(key)
                if mod is not None:
                    self.stats.memory_hits += 1
                    return mod
            artifact = self.cache_dir / f"{spec.module_stem}{kind}"
            if artifact.exists():
                with self._lock:
                    self.stats.disk_hits += 1
            else:
                t0 = time.perf_counter()
                source = generate(spec)
                generate_s = time.perf_counter() - t0
                src_path = self.cache_dir / f"{spec.module_stem}{suffix}"
                self._atomic_write(src_path, source)
                compile_s = 0.0
                if compiler is not None:
                    t0 = time.perf_counter()
                    compiler(src_path, artifact)
                    compile_s = time.perf_counter() - t0
                with self._lock:
                    self.stats.generate_seconds += generate_s
                    self.stats.compile_seconds += compile_s
                    self.stats.compiles += 1
                    self.stats.per_func[spec.func] = self.stats.per_func.get(spec.func, 0) + 1
            t0 = time.perf_counter()
            if compiler is not None:
                mod = artifact  # engines wrap the .so path in ctypes themselves
            else:
                mod = self._import_py(artifact, spec)
            import_s = time.perf_counter() - t0
            with self._lock:
                self.stats.import_seconds += import_s
                self._modules[key] = mod
            return mod

    # ------------------------------------------------------------------
    def precompile(self, jobs, max_workers: int | None = None) -> dict:
        """Build many specs concurrently (the non-blocking compile path).

        *jobs* is an iterable of ``(spec, generate, suffix, compiler)``
        tuples — the same arguments :meth:`get_module` takes.  Each job
        runs through the normal lookup (so warm artifacts are hits, not
        rebuilds) on a thread pool; per-spec locking means distinct specs
        really do compile in parallel.  Failures are collected, not
        raised.  Returns a report dict.
        """
        jobs = list(jobs)
        workers = max_workers if max_workers else default_compile_jobs()
        workers = max(1, min(workers, len(jobs)) if jobs else 1)
        before = self.stats.snapshot()
        failed: list[tuple[str, str]] = []
        t0 = time.perf_counter()
        if jobs:
            with ThreadPoolExecutor(max_workers=workers, thread_name_prefix="pygb-jit") as pool:
                futures = {
                    pool.submit(self.get_module, spec, generate, suffix, compiler): spec
                    for spec, generate, suffix, compiler in jobs
                }
                for fut in as_completed(futures):
                    spec = futures[fut]
                    try:
                        fut.result()
                    except Exception as exc:  # report, keep building the rest
                        failed.append((spec.key, str(exc)))
        after = self.stats.snapshot()
        return {
            "requested": len(jobs),
            "compiled": after["compiles"] - before["compiles"],
            "disk_hits": after["disk_hits"] - before["disk_hits"],
            "memory_hits": after["memory_hits"] - before["memory_hits"],
            "failed": failed,
            "seconds": time.perf_counter() - t0,
            "jobs": workers,
        }

    # ------------------------------------------------------------------
    def _atomic_write(self, path: Path, text: str) -> None:
        tmp = path.with_name(f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        tmp.write_text(text)
        os.replace(tmp, path)

    def _import_py(self, path: Path, spec: KernelSpec):
        name = f"_pygb_jit.{spec.module_stem}"
        loader_spec = importlib.util.spec_from_file_location(name, path)
        if loader_spec is None or loader_spec.loader is None:
            raise CompilationError(f"cannot import generated module {path}")
        module = importlib.util.module_from_spec(loader_spec)
        sys.modules[name] = module
        try:
            loader_spec.loader.exec_module(module)
        except Exception as exc:  # surface codegen bugs with the file kept
            raise CompilationError(
                f"generated module {path} failed to import: {exc}"
            ) from exc
        return module

    def clear_memory(self) -> None:
        """Forget loaded modules (disk artifacts stay — next lookup is a
        disk hit; used by the compilation-time benchmarks)."""
        with self._lock:
            self._modules.clear()

    def clear_disk(self) -> None:
        """Delete every cached artifact of this cache directory."""
        with self._lock:
            for p in self.cache_dir.glob("pygb_*"):
                p.unlink(missing_ok=True)
            self._modules.clear()


_default: JitCache | None = None
_default_lock = threading.Lock()


def default_cache() -> JitCache:
    """The process-wide cache shared by all JIT engines."""
    global _default
    with _default_lock:
        if _default is None:
            _default = JitCache()
        return _default


def cache_statistics() -> dict:
    """Snapshot of the default cache's counters."""
    return default_cache().stats.snapshot()


def clear_memory_cache() -> None:
    default_cache().clear_memory()
