"""Module retrieval: memory cache → disk cache → compile (paper Fig. 9).

The paper's ``get_module`` checks an in-memory dict, then the filesystem,
and only then invokes the compiler; compiled binaries persist on disk so
"the cost of compiling the code can be amortized over future runs of the
same code".  :class:`JitCache` reproduces that lookup order for both the
Python and the C++ code generators and counts every outcome, which is
what the compilation-time experiment (EXPERIMENTS.md) reports.

Locking is per spec, not global: two threads racing on the *same* spec
dedupe into one compile, while different specs generate and compile
concurrently — which is what :meth:`JitCache.precompile` exploits to fan
``g++`` jobs out over a thread pool (compilation is subprocess-bound, so
Python threads are enough).

The disk cache is also the JIT runtime's only persistent state, so it
defends itself (the resilience layer's "cache integrity" half):

* every artifact gets a sidecar **manifest** recording SHA-256 checksums
  of the generated source and the built artifact; a disk hit whose
  checksum no longer matches (truncated ``.so`` from a killed compile,
  disk corruption) is discarded and rebuilt instead of being loaded;
* a ``CACHE_FORMAT`` **version stamp** in the cache directory invalidates
  layouts written by incompatible library versions wholesale;
* orphaned ``*.tmp`` files (writers that died between ``write`` and
  ``os.replace``) are swept at construction;
* an unwritable cache directory relocates to a fresh temporary directory
  with a warning rather than failing every compile.
"""

from __future__ import annotations

import hashlib
import importlib.util
import json
import os
import sys
import tempfile
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path

from .. import obs
from ..exceptions import CompilationError, JitFallbackWarning
from .health import EngineHealth
from .spec import KernelSpec

__all__ = [
    "CacheStatistics",
    "JitCache",
    "default_cache",
    "cache_statistics",
    "clear_memory_cache",
    "reset_default_cache",
    "default_compile_jobs",
    "CACHE_FORMAT_VERSION",
]

#: bumped whenever the on-disk cache layout changes (artifact naming,
#: manifest schema); a stamp mismatch sweeps the directory on startup.
CACHE_FORMAT_VERSION = 1

_FORMAT_STAMP = "CACHE_FORMAT"
#: orphaned .tmp files whose writer pid cannot be determined are only
#: swept once they are this old (an active writer replaces its .tmp
#: within seconds)
_TMP_GRACE_SECONDS = 3600.0


#: warn about a bad $PYGB_COMPILE_JOBS once per process, like the other
#: env knobs (tiling, schedule) — not once per precompile call
_jobs_env_warned = False


def default_compile_jobs() -> int:
    """Worker count for parallel compilation: ``$PYGB_COMPILE_JOBS``, else
    a small multiple of the core count (``g++`` is subprocess-bound, so a
    little oversubscription hides process-spawn latency).  An unparseable
    or non-positive value warns once and falls back to the default —
    ``0`` means "you pick", not "one worker"."""
    global _jobs_env_warned
    default = max(2, min(8, 2 * (os.cpu_count() or 1)))
    env = os.environ.get("PYGB_COMPILE_JOBS")
    if env:
        try:
            n = int(env)
        except ValueError:
            n = None
        if n is not None and n >= 1:
            return n
        if not _jobs_env_warned:
            _jobs_env_warned = True
            warnings.warn(
                f"pygb: bad $PYGB_COMPILE_JOBS={env!r} (valid: integer >= 1); "
                f"using {default}",
                stacklevel=2,
            )
    return default


@dataclass
class CacheStatistics:
    """Counters for the three lookup outcomes, time spent compiling, and
    the resilience layer's recovery events."""

    memory_hits: int = 0
    disk_hits: int = 0
    compiles: int = 0
    #: lookups served from an attached AOT kernel pack (jit/catalog.py)
    catalog_hits: int = 0
    #: lookups that consulted an attached pack and fell through
    catalog_misses: int = 0
    generate_seconds: float = 0.0
    compile_seconds: float = 0.0
    import_seconds: float = 0.0
    per_func: dict = field(default_factory=dict)
    #: compile/load failures recorded against any engine
    jit_failures: int = 0
    #: dispatches served by a lower engine after a JIT failure
    fallbacks: int = 0
    #: corrupt/truncated artifacts detected and rebuilt
    integrity_rebuilds: int = 0
    #: orphaned .tmp files removed at cache construction
    tmp_swept: int = 0

    def snapshot(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "compiles": self.compiles,
            "catalog_hits": self.catalog_hits,
            "catalog_misses": self.catalog_misses,
            "generate_seconds": self.generate_seconds,
            "compile_seconds": self.compile_seconds,
            "import_seconds": self.import_seconds,
            "per_func": dict(self.per_func),
            "jit_failures": self.jit_failures,
            "fallbacks": self.fallbacks,
            "integrity_rebuilds": self.integrity_rebuilds,
            "tmp_swept": self.tmp_swept,
        }

    def reset(self) -> None:
        self.memory_hits = self.disk_hits = self.compiles = 0
        self.catalog_hits = self.catalog_misses = 0
        self.generate_seconds = self.compile_seconds = self.import_seconds = 0.0
        self.per_func.clear()
        self.jit_failures = self.fallbacks = 0
        self.integrity_rebuilds = self.tmp_swept = 0


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
        return True
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but not ours


def _default_cache_dir() -> Path:
    env = os.environ.get("PYGB_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "pygb"


class JitCache:
    """Memory → disk → compile module store, safe under threads.

    Writers produce the artifact under a temporary name and ``os.replace``
    it into place, so concurrent processes racing to compile the same spec
    each end up importing a complete file.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None):
        self.stats = CacheStatistics()
        self.health = EngineHealth()
        self.relocated = False
        requested = Path(cache_dir) if cache_dir is not None else _default_cache_dir()
        self.cache_dir = self._prepare_dir(requested)
        self._modules: dict[tuple[str, str], object] = {}
        # guards _modules, _key_locks and stats; never held across a compile
        self._lock = threading.Lock()
        self._key_locks: dict[tuple[str, str], threading.Lock] = {}
        self._check_format_stamp()
        self.stats.tmp_swept = self._sweep_orphaned_tmp()
        #: AOT kernel pack consulted between the memory and disk tiers
        #: (jit/catalog.py); None when no pack is attached
        self.catalog = None
        #: why $PYGB_CATALOG could not be attached, for `repro doctor`
        self.catalog_error: str | None = None
        env_pack = os.environ.get("PYGB_CATALOG")
        if env_pack:
            self._attach_catalog_env(env_pack)

    def attach_catalog(self, catalog) -> None:
        """Install *catalog* (a :class:`~repro.jit.catalog.KernelCatalog`)
        as this cache's pack tier; ``None`` detaches."""
        self.catalog = catalog
        self.catalog_error = None

    def _attach_catalog_env(self, path: str) -> None:
        """$PYGB_CATALOG attach: a missing/garbled/stale pack degrades to
        a warning (the process runs on the normal compile path) instead
        of failing at import time; ``repro doctor`` surfaces the reason."""
        from ..exceptions import CatalogError

        from .catalog import KernelCatalog  # late: catalog imports this module

        try:
            self.catalog = KernelCatalog.load(path)
        except CatalogError as exc:
            self.catalog_error = str(exc)
            warnings.warn(
                f"pygb: ignoring $PYGB_CATALOG: {exc}",
                JitFallbackWarning,
                stacklevel=4,
            )

    # ------------------------------------------------------------------
    # directory preparation (relocation, format stamp, tmp sweep)
    # ------------------------------------------------------------------
    def _prepare_dir(self, requested: Path) -> Path:
        """*requested* if it can be created and written, else a fresh
        temporary directory (read-only mounts, wrong-owner dirs)."""
        try:
            requested.mkdir(parents=True, exist_ok=True)
            probe = requested / f".pygb_probe.{os.getpid()}.{threading.get_ident()}"
            probe.write_text("")
            probe.unlink()
            return requested
        except OSError as exc:
            fallback = Path(tempfile.mkdtemp(prefix="pygb-cache-"))
            warnings.warn(
                f"pygb: cache directory {requested} is not writable ({exc}); "
                f"using temporary cache {fallback} for this process "
                "(compiled kernels will not be amortised across runs)",
                JitFallbackWarning,
                stacklevel=4,
            )
            self.relocated = True
            return fallback

    def _check_format_stamp(self) -> None:
        """Sweep artifacts written under a different cache-format version
        (or before versioning existed), then stamp the directory."""
        stamp = self.cache_dir / _FORMAT_STAMP
        current = None
        try:
            current = int(stamp.read_text().strip())
        except (OSError, ValueError):
            pass
        if current == CACHE_FORMAT_VERSION:
            return
        for p in self.cache_dir.glob("pygb_*"):
            try:
                p.unlink()
            except OSError:
                pass
        self._atomic_write(stamp, f"{CACHE_FORMAT_VERSION}\n")

    def _sweep_orphaned_tmp(self) -> int:
        """Delete ``*.tmp`` leftovers from writers that died mid-compile.
        Temp names embed the writer's pid (``<name>.<pid>.<tid>.tmp``);
        a dead pid means the file can never be renamed into place.  Files
        with unparseable names are only removed once older than an hour."""
        swept = 0
        # wall clock on purpose: compared against st_mtime, which is wall
        # time too.  Interval *timing* elsewhere uses perf_counter.
        now = time.time()
        for p in self.cache_dir.glob("*.tmp"):
            parts = p.name.split(".")
            stale = False
            try:
                pid = int(parts[-3])
                stale = pid != os.getpid() and not _pid_alive(pid)
            except (IndexError, ValueError):
                try:
                    stale = now - p.stat().st_mtime > _TMP_GRACE_SECONDS
                except OSError:
                    continue
            if stale:
                try:
                    p.unlink()
                    swept += 1
                except OSError:
                    pass
        return swept

    # ------------------------------------------------------------------
    # artifact integrity (sidecar manifests)
    # ------------------------------------------------------------------
    @staticmethod
    def _manifest_path(artifact: Path) -> Path:
        return artifact.with_name(artifact.name + ".manifest.json")

    @staticmethod
    def _sha256_file(path: Path) -> str:
        h = hashlib.sha256()
        with open(path, "rb") as fh:
            for chunk in iter(lambda: fh.read(1 << 16), b""):
                h.update(chunk)
        return h.hexdigest()

    def _write_manifest(self, spec: KernelSpec, src_path: Path, artifact: Path) -> None:
        data = {
            "format": CACHE_FORMAT_VERSION,
            "key": spec.key,
            "source": src_path.name,
            "source_sha256": self._sha256_file(src_path),
            "artifact": artifact.name,
            "artifact_sha256": self._sha256_file(artifact),
            "artifact_size": artifact.stat().st_size,
        }
        self._atomic_write(
            self._manifest_path(artifact), json.dumps(data, indent=1, sort_keys=True)
        )

    def _artifact_intact(self, artifact: Path) -> bool:
        """Whether the on-disk artifact matches its manifest (size fast
        path, then full checksum).  Missing/garbled manifests count as
        corrupt — pre-manifest caches are invalidated by the format stamp
        anyway."""
        try:
            data = json.loads(self._manifest_path(artifact).read_text())
            if data.get("format") != CACHE_FORMAT_VERSION:
                return False
            if artifact.stat().st_size != data.get("artifact_size"):
                return False
            return self._sha256_file(artifact) == data.get("artifact_sha256")
        except (OSError, ValueError):
            return False

    def _discard_artifact(self, artifact: Path) -> None:
        artifact.unlink(missing_ok=True)
        self._manifest_path(artifact).unlink(missing_ok=True)

    def note_jit_failure(self) -> None:
        with self._lock:
            self.stats.jit_failures += 1
        if obs.ACTIVE:
            obs.record_event("jit_failure", "cache")

    def note_fallback(self) -> None:
        with self._lock:
            self.stats.fallbacks += 1
        if obs.ACTIVE:
            obs.record_event("fallback", "cache")

    def invalidate(self, spec: KernelSpec, kind: str) -> None:
        """Forget *spec*'s artifact of *kind* everywhere (memory entry,
        disk file, manifest) so the next lookup rebuilds it — the engines
        call this when a checksum-clean artifact still fails to load."""
        with self._lock:
            self._modules.pop((spec.key_hash, kind), None)
            self.stats.integrity_rebuilds += 1
        if obs.ACTIVE:
            obs.record_event("integrity_rebuild", "cache", spec=spec.key, kind=kind)
        if self.catalog is not None:
            # the pack artifact itself is never deleted (packs may be
            # read-only); quarantining the entry makes the next lookup
            # fall through to a fresh compile instead
            self.catalog.quarantine(spec.key_hash, kind)
        self._discard_artifact(self.cache_dir / f"{spec.module_stem}{kind}")

    # ------------------------------------------------------------------
    def get_module(self, spec: KernelSpec, generate, suffix: str = ".py", compiler=None):
        """The paper's ``get_module``: return the loaded module for
        *spec*, generating (and optionally *compiler*-ing) it on a miss.

        ``generate(spec) -> str`` produces source text; for C++ specs
        ``compiler(src_path, out_path)`` turns it into a shared object and
        the import step is replaced by the engine's ``ctypes`` loader
        (in which case the returned object is whatever *compiler* loads).

        Thread-safe with per-spec granularity: a miss only blocks callers
        of the *same* spec while it generates/compiles; other specs
        proceed concurrently.
        """
        return self._get_module(spec, generate, suffix, compiler)[0]

    def _try_catalog(self, spec: KernelSpec, kind: str, compiler):
        """The pack tier: the entry's artifact served straight from the
        catalog directory (no copy — packs may be read-only).  Returns
        the loaded module or ``None`` to fall through to disk/compile.
        Only consulted (and only counted) when a catalog is attached."""
        entry = self.catalog.entry(spec.key_hash, kind)
        mod = None
        reason = "absent"
        if entry is not None:
            if self.catalog.verify(entry):
                path = self.catalog.artifact_path(entry)
                if compiler is not None:
                    mod = path  # engines wrap the .so path in ctypes themselves
                else:
                    try:
                        mod = self._import_py(path, spec)
                    except CompilationError:
                        # quarantine, fall through to the normal build
                        self.catalog.quarantine(spec.key_hash, kind)
                        reason = "import_failed"
            else:
                reason = "checksum"
        with self._lock:
            if mod is not None:
                self.stats.catalog_hits += 1
            else:
                self.stats.catalog_misses += 1
        if obs.ACTIVE:
            if mod is not None:
                obs.record_event("catalog_hit", "cache", spec=spec.key, kind=kind)
            else:
                obs.record_event(
                    "catalog_miss", "cache", spec=spec.key, kind=kind, reason=reason
                )
        return mod

    def _get_module(self, spec: KernelSpec, generate, suffix: str = ".py", compiler=None):
        """:meth:`get_module` plus the lookup outcome — ``(module, one of
        "memory" | "catalog" | "disk" | "compiled")`` — so
        :meth:`precompile` can attribute results to its own jobs instead
        of diffing the global counters."""
        # the same spec may exist as a Python module AND a compiled shared
        # object (the engines share one cache), so the artifact kind is
        # part of the memory key
        kind = ".so" if compiler else suffix
        key = (spec.key_hash, kind)
        with self._lock:
            mod = self._modules.get(key)
            if mod is not None:
                self.stats.memory_hits += 1
                if obs.ACTIVE:
                    obs.record_event("memory_hit", "cache", spec=spec.key, kind=kind)
                return mod, "memory"
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            # a racer on the same spec may have built it while we waited
            with self._lock:
                mod = self._modules.get(key)
                if mod is not None:
                    self.stats.memory_hits += 1
                    if obs.ACTIVE:
                        obs.record_event("memory_hit", "cache", spec=spec.key, kind=kind)
                    return mod, "memory"
            if self.catalog is not None:
                mod = self._try_catalog(spec, kind, compiler)
                if mod is not None:
                    with self._lock:
                        self._modules[key] = mod
                        self._key_locks.pop(key, None)
                    return mod, "catalog"
            artifact = self.cache_dir / f"{spec.module_stem}{kind}"

            def build() -> None:
                t0 = time.perf_counter()
                source = generate(spec)
                generate_s = time.perf_counter() - t0
                src_path = self.cache_dir / f"{spec.module_stem}{suffix}"
                self._atomic_write(src_path, source)
                compile_s = 0.0
                if compiler is not None:
                    t0c = time.perf_counter()
                    try:
                        compiler(src_path, artifact)
                    except Exception:
                        # leave nothing half-usable behind for later lookups
                        self._discard_artifact(artifact)
                        raise
                    compile_s = time.perf_counter() - t0c
                self._write_manifest(spec, src_path, artifact)
                with self._lock:
                    self.stats.generate_seconds += generate_s
                    self.stats.compile_seconds += compile_s
                    self.stats.compiles += 1
                    self.stats.per_func[spec.func] = self.stats.per_func.get(spec.func, 0) + 1
                if obs.ACTIVE:
                    obs.record_event(
                        "compile",
                        "cache",
                        spec=spec.key,
                        kind=kind,
                        generate_ms=round(generate_s * 1e3, 3),
                        compile_ms=round(compile_s * 1e3, 3),
                    )

            built_now = False
            if artifact.exists() and self._artifact_intact(artifact):
                with self._lock:
                    self.stats.disk_hits += 1
                if obs.ACTIVE:
                    obs.record_event("disk_hit", "cache", spec=spec.key, kind=kind)
            else:
                if artifact.exists():
                    # truncated/corrupt leftover (killed compile, disk
                    # fault, stale manifest): rebuild instead of loading
                    self._discard_artifact(artifact)
                    with self._lock:
                        self.stats.integrity_rebuilds += 1
                    if obs.ACTIVE:
                        obs.record_event(
                            "integrity_rebuild", "cache", spec=spec.key, kind=kind
                        )
                build()
                built_now = True
            t0 = time.perf_counter()
            if compiler is not None:
                mod = artifact  # engines wrap the .so path in ctypes themselves
            else:
                try:
                    mod = self._import_py(artifact, spec)
                except CompilationError:
                    if built_now:
                        raise  # freshly generated and still broken: codegen bug
                    # checksum-clean disk artifact that won't import
                    # (e.g. manifest and file corrupted together):
                    # invalidate and rebuild exactly once
                    self._discard_artifact(artifact)
                    with self._lock:
                        self.stats.integrity_rebuilds += 1
                    if obs.ACTIVE:
                        obs.record_event(
                            "integrity_rebuild", "cache", spec=spec.key, kind=kind
                        )
                    build()
                    mod = self._import_py(artifact, spec)
            import_s = time.perf_counter() - t0
            with self._lock:
                self.stats.import_seconds += import_s
                self._modules[key] = mod
                # once the module is resident every future lookup returns
                # from the memory tier above, so the per-key lock has done
                # its job — drop it (a long-running service dispatches
                # unboundedly many distinct specs; bake enumerates
                # hundreds in one process)
                self._key_locks.pop(key, None)
            return mod, ("compiled" if built_now else "disk")

    # ------------------------------------------------------------------
    def precompile(self, jobs, max_workers: int | None = None) -> dict:
        """Build many specs concurrently (the non-blocking compile path).

        *jobs* is an iterable of ``(spec, generate, suffix, compiler)``
        tuples — the same arguments :meth:`get_module` takes.  Each job
        runs through the normal lookup (so warm artifacts are hits, not
        rebuilds) on a thread pool; per-spec locking means distinct specs
        really do compile in parallel.  Failures are collected, not
        raised.  Returns a report dict.

        The report counts the outcome of each *submitted job* — not
        global-counter deltas, which concurrent foreground dispatch on
        other threads would inflate.
        """
        outcome_keys = {
            "compiled": "compiled",
            "disk": "disk_hits",
            "memory": "memory_hits",
            "catalog": "catalog_hits",
        }
        jobs = list(jobs)
        workers = max_workers if max_workers else default_compile_jobs()
        workers = max(1, min(workers, len(jobs)) if jobs else 1)
        counts = {k: 0 for k in outcome_keys.values()}
        failed: list[tuple[str, str]] = []
        t0 = time.perf_counter()
        if jobs:
            with ThreadPoolExecutor(max_workers=workers, thread_name_prefix="pygb-jit") as pool:
                futures = {
                    pool.submit(self._get_module, spec, generate, suffix, compiler): spec
                    for spec, generate, suffix, compiler in jobs
                }
                for fut in as_completed(futures):
                    spec = futures[fut]
                    try:
                        _, outcome = fut.result()
                    except Exception as exc:  # report, keep building the rest
                        failed.append((spec.key, str(exc)))
                    else:
                        counts[outcome_keys[outcome]] += 1
        return {
            "requested": len(jobs),
            **counts,
            "failed": failed,
            "seconds": time.perf_counter() - t0,
            "jobs": workers,
        }

    # ------------------------------------------------------------------
    def _atomic_write(self, path: Path, text: str) -> None:
        tmp = path.with_name(f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        tmp.write_text(text)
        os.replace(tmp, path)

    def _import_py(self, path: Path, spec: KernelSpec):
        name = f"_pygb_jit.{spec.module_stem}"
        loader_spec = importlib.util.spec_from_file_location(name, path)
        if loader_spec is None or loader_spec.loader is None:
            raise CompilationError(f"cannot import generated module {path}")
        module = importlib.util.module_from_spec(loader_spec)
        sys.modules[name] = module
        try:
            loader_spec.loader.exec_module(module)
        except Exception as exc:  # surface codegen bugs with the file kept
            raise CompilationError(
                f"generated module {path} failed to import: {exc}"
            ) from exc
        return module

    def clear_memory(self) -> None:
        """Forget loaded modules (disk artifacts stay — next lookup is a
        disk hit; used by the compilation-time benchmarks)."""
        with self._lock:
            self._modules.clear()

    def clear_disk(self) -> None:
        """Delete every cached artifact of this cache directory."""
        with self._lock:
            for p in self.cache_dir.glob("pygb_*"):
                p.unlink(missing_ok=True)
            self._modules.clear()


_default: JitCache | None = None
_default_lock = threading.Lock()


def default_cache() -> JitCache:
    """The process-wide cache shared by all JIT engines."""
    global _default
    with _default_lock:
        if _default is None:
            _default = JitCache()
        return _default


def reset_default_cache() -> JitCache:
    """Drop and rebuild the process-wide cache singleton (re-reading
    ``$PYGB_CACHE_DIR``).  Engines constructed earlier keep their old
    cache reference; used by tests and by operators who repoint the cache
    directory mid-process."""
    global _default
    with _default_lock:
        _default = JitCache()
        return _default


def cache_statistics() -> dict:
    """Snapshot of the default cache's counters, including the engine
    health report (failure counters and quarantine state)."""
    cache = default_cache()
    snap = cache.stats.snapshot()
    snap["health"] = cache.health.snapshot()
    return snap


def clear_memory_cache() -> None:
    default_cache().clear_memory()
