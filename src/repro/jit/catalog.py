"""AOT kernel catalog: a redistributable pack of pre-built kernels.

The paper amortizes dynamic compilation "over future runs of the same
code", but every *first* ``(op, dtypes, operators)`` spec in a fresh
cache directory still pays an inline ``g++`` compile.  DAPHNE's
``genKernelInst.py`` pre-instantiation pipeline and GraphBLAST's fixed
pre-built kernel library show the hot spec space is enumerable ahead of
time; this module does exactly that for PyGB:

* :func:`catalog_kernel_specs` enumerates the hot spec space — the
  traced algorithm kernel set from :mod:`~repro.jit.precompile` (kept
  honest by its drift guard), a predefined-semiring × dtype ×
  schedule-direction grid, and the fused-pair shapes from
  :mod:`~repro.jit.fused_ops`;
* :func:`bake_catalog` batch-builds those specs with the existing
  concurrent compile pool (:meth:`JitCache.precompile`) into one shared
  pack directory and emits ``catalog.json`` — spec key hash → artifact
  name + sha256, stamped with ``CODEGEN_VERSION`` and
  ``CACHE_FORMAT_VERSION``;
* :class:`KernelCatalog` / :func:`load_catalog` attach a baked pack to
  a :class:`JitCache`, which then serves lookups from the pack *between*
  its memory and disk tiers — a fresh process's first op becomes a
  catalog hit, not a compile.

Invalidation is two-level, mirroring the disk cache: a pack whose
version stamps mismatch is rejected **wholesale** at load time
(:class:`~repro.exceptions.CatalogError`); an individual entry whose
artifact fails its checksum (or fails to load) is quarantined and the
lookup falls through to the normal disk → compile path.  The pack itself
is never written to at serve time, so read-only catalog directories
(container images, shared network mounts) work.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from ..exceptions import BackendUnavailable, CatalogError
from .cache import CACHE_FORMAT_VERSION, JitCache, default_cache
from .fused_ops import FUSED_OPS
from .precompile import algorithm_kernel_specs, algorithm_module_specs
from .spec import CODEGEN_VERSION, KernelSpec

__all__ = [
    "CATALOG_FILENAME",
    "CATALOG_SCHEMA_VERSION",
    "KernelCatalog",
    "catalog_kernel_specs",
    "pyjit_kernel_specs",
    "bake_catalog",
    "validate_catalog",
    "load_catalog",
]

CATALOG_FILENAME = "catalog.json"

#: bumped whenever the catalog.json layout changes.
CATALOG_SCHEMA_VERSION = 1

#: ``(add, mult)`` of every predefined semiring (core/predefined.py) —
#: the grid axis the ISSUE calls "predefined semirings".
_SEMIRING_PAIRS: tuple[tuple[str, str], ...] = (
    ("Plus", "Times"),          # ArithmeticSemiring
    ("LogicalOr", "LogicalAnd"),  # LogicalSemiring
    ("Min", "Plus"),            # MinPlusSemiring
    ("Max", "Plus"),            # MaxPlusSemiring
    ("Min", "Times"),           # MinTimesSemiring
    ("Max", "Times"),           # MaxTimesSemiring
    ("Min", "First"),           # MinSelect1stSemiring
    ("Min", "Second"),          # MinSelect2ndSemiring
    ("Max", "First"),           # MaxSelect1stSemiring
    ("Max", "Second"),          # MaxSelect2ndSemiring
)

#: the dtypes the bundled algorithms and examples actually traffic in.
_GRID_DTYPES = ("int64", "float64")

_UNMASKED = dict(mask="none", comp=0, repl=0, accum="none")
#: the traversal shape: structural-complement mask, replace semantics —
#: what direction-optimized BFS/SSSP frontier expansion dispatches.
_MASKED = dict(mask="value", comp=1, repl=1, accum="none")


def _result_dtypes(add: str, mult: str, d: str) -> tuple[str, str]:
    """``(t_dtype, c)`` for a semiring applied to operands of dtype *d*,
    computed exactly the way the cpp engine does at dispatch time."""
    from ..backend.ops_table import binary_result_dtype

    t = KernelSpec.dt(binary_result_dtype(mult, d, d))
    c = KernelSpec.dt(binary_result_dtype(add, t, t))
    return t, c


def _semiring_grid(parallel: bool) -> list[KernelSpec]:
    """mxv/vxm over every predefined semiring × grid dtype, in every
    schedule direction the engine can actually pick: ``dense`` and
    ``push`` unmasked, ``push``/``pull`` under the traversal mask
    (``schedule.resolve`` only offers ``pull`` when a mask bounds the
    gather candidates, so there is no unmasked-pull variant to bake)."""
    from .cppcodegen import PARALLEL_FUNCS

    specs = []
    for add, mult in _SEMIRING_PAIRS:
        # the logical semiring's native operand dtype is bool (BFS
        # frontiers); the arithmetic-flavoured pairs never see it
        dtypes = _GRID_DTYPES
        if (add, mult) == ("LogicalOr", "LogicalAnd"):
            dtypes = _GRID_DTYPES + ("bool",)
        for d in dtypes:
            t, c = _result_dtypes(add, mult, d)
            base = dict(a=d, u=d, c=c, t_dtype=t, add=add, mult=mult)
            shapes = [
                ("mxv", dict(base, **_UNMASKED)),
                ("mxv", dict(base, dir="push", **_UNMASKED)),
                ("mxv", dict(base, dir="push", **_MASKED)),
                ("mxv", dict(base, dir="pull", **_MASKED)),
                # the relaxation idiom (`d[:] accum= A @ d` with the add
                # monoid as accumulator — SSSP/Bellman-Ford steps)
                ("mxv", dict(base, **{**_UNMASKED, "accum": add})),
                ("mxv", dict(base, dir="push",
                             **{**_UNMASKED, "accum": add})),
                ("vxm", dict(base, **_UNMASKED)),
                ("vxm", dict(base, dir="push", **_UNMASKED)),
                # the frontier-update idiom (`w[...] << v.vxm(A)` with
                # Second accumulation) that PageRank-style loops dispatch
                ("vxm", dict(base, dir="push",
                             **{**_UNMASKED, "accum": "Second"})),
            ]
            for func, params in shapes:
                if parallel and func in PARALLEL_FUNCS:
                    params["par"] = True
                specs.append(KernelSpec.make(func, **params))
    return specs


def _reduction_grid(parallel: bool) -> list[KernelSpec]:
    """``reduce_rows`` over every monoid a predefined semiring adds
    with, per grid dtype — the rank-normalisation step of PageRank-style
    loops (`v << A.reduce_rows()`)."""
    from ..backend.ops_table import binary_result_dtype
    from .cppcodegen import PARALLEL_FUNCS

    monoids = sorted({add for add, _ in _SEMIRING_PAIRS})
    specs = []
    for op in monoids:
        for d in _GRID_DTYPES:
            c = KernelSpec.dt(binary_result_dtype(op, d, d))
            params = dict(a=d, c=c, op=op, **_UNMASKED)
            if parallel and "reduce_rows" in PARALLEL_FUNCS:
                params["par"] = True
            specs.append(KernelSpec.make("reduce_rows", **params))
    return specs


def _elementwise_grid(parallel: bool) -> list[KernelSpec]:
    """The hot non-semiring companions every algorithm-shaped loop
    dispatches between its mxv/vxm steps: vector eWise combine, the
    scalar-bound apply (PageRank's damping multiply), and whole-container
    scalar reductions (convergence checks, sums)."""
    from ..backend.ops_table import binary_result_dtype
    from .cppcodegen import PARALLEL_FUNCS

    specs = []
    for d in _GRID_DTYPES:
        shapes = []
        for func, op in (("ewise_add_vec", "Plus"), ("ewise_add_vec", "Min"),
                         ("ewise_mult_vec", "Times")):
            t = KernelSpec.dt(binary_result_dtype(op, d, d))
            shapes.append((func, dict(a=d, b=d, c=t, t_dtype=t, op=op,
                                      **_UNMASKED)))
        for op in ("Times", "Plus"):
            shapes.append(("apply_vec", dict(a=d, c=d, form="bind", op=op,
                                             side="second", **_UNMASKED)))
        for func in ("reduce_mat_scalar", "reduce_vec_scalar"):
            for op in ("Plus", "Min", "Max"):
                shapes.append((func, dict(a=d, op=op)))
        for func, params in shapes:
            if parallel and func in PARALLEL_FUNCS:
                params["par"] = True
            specs.append(KernelSpec.make(func, **params))
    return specs


def _fused_grid(parallel: bool) -> list[KernelSpec]:
    """One representative spec per fused-pair shape in ``FUSED_OPS``,
    instantiated for the float64 arithmetic semiring with the planner's
    most common absorbed apply (``x * const`` — PageRank's damping
    step), mirroring the spec construction in ``cppengine``."""
    from .cppcodegen import PARALLEL_FUNCS

    f = "float64"
    apply_parts = dict(form="bind", uop="Times", side="second")
    by_name = {
        "mxv_apply": dict(a=f, u=f, c=f, t_dtype=f, p=f, add="Plus",
                          mult="Times", **apply_parts),
        "vxm_apply": dict(a=f, u=f, c=f, t_dtype=f, p=f, add="Plus",
                          mult="Times", **apply_parts),
        "ewise_add_vec_apply": dict(a=f, b=f, c=f, t_dtype=f, p=f,
                                    op="Plus", **apply_parts),
        "ewise_mult_vec_apply": dict(a=f, b=f, c=f, t_dtype=f, p=f,
                                     op="Times", **apply_parts),
        "ewise_add_mat_apply": dict(a=f, b=f, c=f, t_dtype=f, p=f,
                                    op="Plus", **apply_parts),
        "ewise_mult_mat_apply": dict(a=f, b=f, c=f, t_dtype=f, p=f,
                                     op="Times", **apply_parts),
        "mxm_reduce_rows": dict(a=f, b=f, c=f, t_dtype=f, p=f, add="Plus",
                                mult="Times", rop="Plus"),
        "apply_assign_vec": dict(a=f, c=f, p=f, **apply_parts),
        # reduce-site fusions carry no descriptor (scalar output)
        "ewise_add_vec_reduce_scalar": dict(a=f, b=f, p=f, op="Plus",
                                            rop="Plus"),
        "ewise_mult_vec_reduce_scalar": dict(a=f, b=f, p=f, op="Times",
                                             rop="Plus"),
    }
    specs = []
    for rule in FUSED_OPS:
        params = dict(by_name[rule.name], fused=True)
        if rule.output != "scalar":
            params.update(_UNMASKED)
        if parallel and rule.name in PARALLEL_FUNCS:
            params["par"] = True
        specs.append(KernelSpec.make(rule.name, **params))
    return specs


def _dedup(specs: list[KernelSpec]) -> list[KernelSpec]:
    seen: set[str] = set()
    out = []
    for spec in specs:
        if spec.key_hash not in seen:
            seen.add(spec.key_hash)
            out.append(spec)
    return out


def catalog_kernel_specs(parallel: bool = False) -> list[KernelSpec]:
    """The hot per-operation spec space, deduplicated by key hash:
    the traced algorithm kernel set (tier 1 — reuses ``precompile.py``'s
    list and therefore its drift guard), the predefined-semiring grid
    with its row-reduction companions (tier 2) and the fused-pair
    shapes (tier 3)."""
    return _dedup(
        algorithm_kernel_specs(parallel)
        + _semiring_grid(parallel)
        + _reduction_grid(parallel)
        + _elementwise_grid(parallel)
        + _fused_grid(parallel)
    )


#: the pyjit engine keeps transposition inside the generated kernel, so
#: its specs carry ``ta`` (and ``tb``) flags the cpp engine resolves by
#: pre-transposing the operand instead (cppengine transposes, pyengine
#: specialises) — mirror that when baking the .py flavour
_PYJIT_TA_FUNCS = frozenset({
    "mxv", "vxm", "apply_mat", "reduce_rows", "select_mat", "extract_mat",
    "assign_mat", "mxv_apply", "vxm_apply",
})
_PYJIT_TATB_FUNCS = frozenset({
    "mxm", "ewise_add_mat", "ewise_mult_mat", "kronecker",
    "ewise_add_mat_apply", "ewise_mult_mat_apply", "mxm_reduce_rows",
})


def pyjit_kernel_specs() -> list[KernelSpec]:
    """The catalog spec space as the *pyjit* engine would key it: the
    same enumeration re-shaped with the pyjit-only ``ta``/``tb`` params,
    restricted to funcs the Python code generator covers.  Traversal
    funcs additionally get the transposed variant (``A.T @ u`` /
    ``L @ U.T`` — reverse-edge walks and triangle counting), which the
    cpp engine needs no extra kernel for (it pre-transposes)."""
    from .pycodegen import GENERATORS

    specs = []
    for spec in catalog_kernel_specs(parallel=False):
        if spec.func not in GENERATORS:
            continue
        params = dict(spec.params)
        if spec.func in _PYJIT_TA_FUNCS:
            params.setdefault("ta", "0")
        elif spec.func in _PYJIT_TATB_FUNCS:
            params.setdefault("ta", "0")
            params.setdefault("tb", "0")
        specs.append(KernelSpec.make(spec.func, **params))
        if spec.func in ("mxv", "vxm"):
            specs.append(KernelSpec.make(spec.func,
                                         **dict(params, ta="1")))
        elif spec.func == "mxm":
            specs.append(KernelSpec.make(spec.func,
                                         **dict(params, tb="1")))
    # pyjit runs the float->float identity cast the cpp engine traced as
    # int64 input (the engines promote dtypes at different points)
    specs.append(KernelSpec.make(
        "apply_mat", a="float64", c="float64", form="unary", op="Identity",
        side="none", ta=False, **_UNMASKED,
    ))
    return _dedup(specs)


# ----------------------------------------------------------------------
# the catalog object (read side)
# ----------------------------------------------------------------------
class KernelCatalog:
    """A loaded, version-checked ``catalog.json``.

    Entry lookups are by ``(key_hash, kind)`` where *kind* is the
    artifact suffix (``.so`` for compiled shared objects, ``.py`` for
    generated Python modules).  Checksums are verified lazily on first
    use of each entry and the verdict memoized; a failing entry is
    quarantined so later lookups miss immediately.
    """

    def __init__(self, root: Path, data: dict):
        self.root = Path(root)
        self.parallel = bool(data.get("parallel", False))
        self.entries: dict[tuple[str, str], dict] = {}
        for entry in data.get("entries", []):
            self.entries[(entry["key_hash"], entry["kind"])] = entry
        self._verified: dict[tuple[str, str], bool] = {}
        self._lock = threading.Lock()

    @classmethod
    def load(cls, root: str | os.PathLike) -> "KernelCatalog":
        """Parse and version-check ``<root>/catalog.json``; raises
        :class:`CatalogError` on a missing/garbled file or any stamp
        mismatch — stale catalogs are rejected wholesale, never entry by
        entry."""
        root = Path(root)
        path = root / CATALOG_FILENAME
        try:
            data = json.loads(path.read_text())
        except OSError as exc:
            raise CatalogError(f"cannot read kernel catalog {path}: {exc}") from exc
        except ValueError as exc:
            raise CatalogError(f"garbled kernel catalog {path}: {exc}") from exc
        if not isinstance(data, dict) or not isinstance(data.get("entries"), list):
            raise CatalogError(f"garbled kernel catalog {path}: not a catalog object")
        stamps = (
            ("schema", data.get("schema"), CATALOG_SCHEMA_VERSION),
            ("codegen_version", data.get("codegen_version"), CODEGEN_VERSION),
            ("cache_format_version", data.get("cache_format_version"),
             CACHE_FORMAT_VERSION),
        )
        for name, got, want in stamps:
            if got != want:
                raise CatalogError(
                    f"stale kernel catalog {path}: {name}={got!r} but this "
                    f"library expects {want!r} — re-run `python -m repro bake`"
                )
        try:
            return cls(root, data)
        except (KeyError, TypeError) as exc:
            raise CatalogError(f"garbled kernel catalog {path}: {exc}") from exc

    def __len__(self) -> int:
        return len(self.entries)

    def entry(self, key_hash: str, kind: str) -> dict | None:
        """The catalog entry for ``(key_hash, kind)``, or ``None`` when
        absent or quarantined."""
        key = (key_hash, kind)
        with self._lock:
            if self._verified.get(key) is False:
                return None
        return self.entries.get(key)

    def artifact_path(self, entry: dict) -> Path:
        return self.root / entry["artifact"]

    def verify(self, entry: dict) -> bool:
        """Whether the entry's artifact matches its recorded sha256 and
        size.  Hashing happens once per entry per process; failures are
        sticky (the entry is quarantined)."""
        key = (entry["key_hash"], entry["kind"])
        with self._lock:
            cached = self._verified.get(key)
        if cached is not None:
            return cached
        path = self.artifact_path(entry)
        try:
            ok = (
                path.stat().st_size == entry.get("size")
                and JitCache._sha256_file(path) == entry.get("sha256")
            )
        except OSError:
            ok = False
        with self._lock:
            self._verified[key] = ok
        return ok

    def quarantine(self, key_hash: str, kind: str) -> None:
        """Mark an entry bad (checksum-clean artifact that still failed
        to dlopen/import) so later lookups fall through to compile."""
        with self._lock:
            self._verified[(key_hash, kind)] = False


def load_catalog(path: str | os.PathLike, cache: JitCache | None = None) -> KernelCatalog:
    """Programmatic attach: load the pack at *path* and install it as the
    catalog tier of *cache* (the process-wide default cache when omitted).
    Unlike the ``$PYGB_CATALOG`` env path — which degrades to a warning —
    this raises :class:`CatalogError` on any problem."""
    catalog = KernelCatalog.load(path)
    cache = cache if cache is not None else default_cache()
    cache.attach_catalog(catalog)
    return catalog


# ----------------------------------------------------------------------
# baking (write side)
# ----------------------------------------------------------------------
def bake_catalog(
    out_dir: str | os.PathLike,
    parallel: bool | None = None,
    max_workers: int | None = None,
    include_pyjit: bool = True,
    include_cpp: bool = True,
) -> dict:
    """Build the full catalog spec space into *out_dir* and write
    ``catalog.json``.

    The pack directory doubles as a :class:`JitCache` directory during
    the bake, so re-baking into an existing pack is incremental (warm
    artifacts are disk hits, not recompiles) and every artifact gets the
    cache's usual sidecar manifest — the catalog's per-entry sha256 is
    read back from those manifests rather than hashed twice.

    Without a C++ toolchain the cpp flavour is skipped with a note in
    the report; the ``.py`` flavour (*include_pyjit*) always bakes, so
    toolchain-free hosts can still produce packs that accelerate the
    pyjit engine.  Failures are collected per spec, not raised.
    """
    from .pycodegen import generate_source

    out_dir = Path(out_dir)
    cache = JitCache(out_dir)
    if cache.relocated:
        raise CatalogError(f"catalog output directory {out_dir} is not writable")

    jobs = []
    cpp_specs: list[KernelSpec] = []
    cpp_skipped = None
    if include_cpp:
        try:
            from .algorithm_codegen import generate_algorithm_source
            from .cppcodegen import generate_cpp_source
            from .cppengine import CppJitEngine

            engine = CppJitEngine(cache)
            if parallel is None:
                parallel = engine.parallel_enabled()
            kernel_specs = catalog_kernel_specs(parallel)
            module_specs = algorithm_module_specs(parallel)
            cpp_specs = kernel_specs + module_specs
            for spec in kernel_specs:
                jobs.append((spec, generate_cpp_source, ".cpp", engine.compiler_for(spec)))
            for spec in module_specs:
                jobs.append((spec, generate_algorithm_source, ".cpp",
                             engine.compiler_for(spec)))
        except BackendUnavailable as exc:
            cpp_skipped = str(exc)
    parallel = bool(parallel)

    py_specs: list[KernelSpec] = []
    if include_pyjit:
        py_specs = pyjit_kernel_specs()
        jobs += [(spec, generate_source, ".py", None) for spec in py_specs]

    t0 = time.perf_counter()
    report = cache.precompile(jobs, max_workers=max_workers)

    entries = []
    missing = []
    for spec, kind in [(s, ".so") for s in cpp_specs] + [(s, ".py") for s in py_specs]:
        artifact = out_dir / f"{spec.module_stem}{kind}"
        manifest = JitCache._manifest_path(artifact)
        try:
            mdata = json.loads(manifest.read_text())
        except (OSError, ValueError):
            missing.append((spec.key, kind))
            continue
        entries.append({
            "key": spec.key,
            "key_hash": spec.key_hash,
            "func": spec.func,
            "kind": kind,
            "artifact": artifact.name,
            "sha256": mdata.get("artifact_sha256"),
            "size": mdata.get("artifact_size"),
        })
    entries.sort(key=lambda e: (e["func"], e["key_hash"], e["kind"]))

    catalog_data = {
        "schema": CATALOG_SCHEMA_VERSION,
        "codegen_version": CODEGEN_VERSION,
        "cache_format_version": CACHE_FORMAT_VERSION,
        "parallel": parallel,
        "entries": entries,
    }
    cache._atomic_write(out_dir / CATALOG_FILENAME,
                        json.dumps(catalog_data, indent=1, sort_keys=True))

    report.update(
        out=str(out_dir),
        entries=len(entries),
        cpp_entries=sum(1 for e in entries if e["kind"] == ".so"),
        py_entries=sum(1 for e in entries if e["kind"] == ".py"),
        missing=missing,
        parallel=parallel,
        cpp_skipped=cpp_skipped,
        seconds=time.perf_counter() - t0,
    )
    return report


def validate_catalog(path: str | os.PathLike) -> dict:
    """Round-trip check of a baked pack: load (version stamps) then
    verify every entry's checksum.  Returns ``{"entries", "ok", "bad"}``
    where *bad* lists the keys of entries whose artifacts fail."""
    catalog = KernelCatalog.load(path)
    bad = [entry["key"] for entry in catalog.entries.values()
           if not catalog.verify(entry)]
    return {"entries": len(catalog), "ok": len(catalog) - len(bad), "bad": bad}
