"""The ``cpp`` execution engine: dynamic compilation into C++ (the
paper's actual design).

On the first use of an ``(operation, dtypes, operators, flags)``
combination the engine writes the binding translation unit produced by
:mod:`~repro.jit.cppcodegen` into the cache directory, compiles it with
``g++ -std=c++17 -O2 -shared -fPIC`` against the bundled mini-GBTL header,
and loads the shared object through :mod:`ctypes`; later calls hit the
memory/disk caches.  Buffers flow between NumPy and C++ as raw pointers —
one FFI call per GraphBLAS operation, mirroring the paper's pybind-style
boundary.

Operations without a native C++ binding (the index-heavy matrix
assign/extract forms and standalone transpose — none of which appear in
the evaluated algorithms' hot loops) delegate to the Python JIT engine;
the native set is ``repro.jit.cppcodegen.CPP_SUPPORTED``.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from ctypes import POINTER, byref, c_double, c_int64, c_void_p
from pathlib import Path

import numpy as np

from .. import obs, schedule as _schedule
from ..backend.ops_table import (
    DEFAULT_IDENTITY_NAME,
    binary_result_dtype,
    identity_value,
)
from ..backend.smatrix import SparseMatrix
from ..backend.svector import SparseVector
from ..exceptions import BackendUnavailable, CompilationError, OperationCancelled
from ..testing.faults import FAULTS
from .cache import JitCache, default_cache
from .cppcodegen import PARALLEL_FUNCS, generate_cpp_source
from .gbtl_lite import GBTL_LITE_HEADER, HEADER_FILENAME
from .pyengine import PyJitEngine, _desc_params
from .spec import KernelSpec

__all__ = [
    "CppJitEngine",
    "find_cxx_compiler",
    "compiler_available",
    "toolchain_works",
    "openmp_available",
    "parallel_requested",
    "compile_timeout",
]

DEFAULT_COMPILE_TIMEOUT = 120.0


def compile_timeout() -> float | None:
    """Wall-clock limit for one compiler invocation, in seconds
    (``$PYGB_COMPILE_TIMEOUT``, default 120; 0 or negative disables).
    A wedged compiler otherwise hangs the calling thread — and the
    precompile pool — forever."""
    env = os.environ.get("PYGB_COMPILE_TIMEOUT")
    if env:
        try:
            value = float(env)
            return value if value > 0 else None
        except ValueError:
            pass
    return DEFAULT_COMPILE_TIMEOUT

_I64 = np.dtype(np.int64)


def find_cxx_compiler() -> str | None:
    """Path of the C++ compiler (``$PYGB_CXX`` override, else ``g++``,
    else ``c++``), or None when this machine has none."""
    env = os.environ.get("PYGB_CXX")
    if env:
        return env if shutil.which(env) else None
    for cand in ("g++", "c++"):
        path = shutil.which(cand)
        if path:
            return path
    return None


def compiler_available() -> bool:
    return find_cxx_compiler() is not None


# ----------------------------------------------------------------------
# OpenMP support probe (one tiny test compile per compiler, memoised)
# ----------------------------------------------------------------------
_OPENMP_PROBES: dict[str, bool] = {}
_PROBE_LOCK = threading.Lock()


def _probe_openmp(cxx: str) -> bool:
    source = (
        "#include <omp.h>\n"
        'extern "C" int pygb_probe() { return omp_get_max_threads(); }\n'
    )
    try:
        with tempfile.TemporaryDirectory(prefix="pygb_omp_probe_") as td:
            src = Path(td) / "probe.cpp"
            src.write_text(source)
            out = Path(td) / "probe.so"
            proc = subprocess.run(
                [cxx, "-std=c++17", "-shared", "-fPIC", "-fopenmp",
                 str(src), "-o", str(out)],
                capture_output=True,
                text=True,
            )
            return proc.returncode == 0 and out.exists()
    except OSError:
        return False


def openmp_available(cxx: str | None = None) -> bool:
    """Whether *cxx* (default: the discovered compiler) accepts
    ``-fopenmp``; probed once per compiler path with a tiny test compile
    and cached for the life of the process."""
    cxx = cxx or find_cxx_compiler()
    if cxx is None:
        return False
    with _PROBE_LOCK:
        cached = _OPENMP_PROBES.get(cxx)
    if cached is not None:
        return cached
    result = _probe_openmp(cxx)
    with _PROBE_LOCK:
        _OPENMP_PROBES[cxx] = result
    return result


_TOOLCHAIN_PROBES: dict[str, bool] = {}


def _probe_toolchain(cxx: str) -> bool:
    source = 'extern "C" int pygb_probe() { return 42; }\n'
    try:
        with tempfile.TemporaryDirectory(prefix="pygb_cxx_probe_") as td:
            src = Path(td) / "probe.cpp"
            src.write_text(source)
            out = Path(td) / "probe.so"
            proc = subprocess.run(
                [cxx, "-std=c++17", "-shared", "-fPIC", str(src), "-o", str(out)],
                capture_output=True,
                text=True,
                timeout=60,
            )
            return proc.returncode == 0 and out.exists()
    except (OSError, subprocess.TimeoutExpired):
        return False


def toolchain_works(cxx: str | None = None) -> bool:
    """Whether the discovered compiler can actually build a shared object.

    :func:`compiler_available` only checks PATH resolution; a compiler
    that resolves but fails every invocation (a broken install, or the
    fault-tolerance CI leg's ``PYGB_CXX=/bin/false``) passes that check
    and fails this one.  Probed once per compiler path with a tiny test
    compile and memoised for the life of the process."""
    cxx = cxx or find_cxx_compiler()
    if cxx is None:
        return False
    with _PROBE_LOCK:
        cached = _TOOLCHAIN_PROBES.get(cxx)
    if cached is not None:
        return cached
    result = _probe_toolchain(cxx)
    with _PROBE_LOCK:
        _TOOLCHAIN_PROBES[cxx] = result
    return result


def parallel_requested() -> bool:
    """The ``$PYGB_PARALLEL`` runtime switch (default: on).  Re-read on
    every dispatch so it can be toggled without rebuilding engines."""
    value = os.environ.get("PYGB_PARALLEL")
    if value is None:
        return True
    return value.strip().lower() not in ("", "0", "false", "off", "no")


def _scalar_pair(value, prefer_float: bool):
    """``(c_double, c_int64)`` encodings of a scalar; the generated C++
    selects one by element type, so the other leg may be lossy or zero
    (``int(inf)`` would raise — the unused leg is zeroed instead)."""
    if prefer_float:
        return c_double(float(value)), c_int64(0)
    try:
        ival = int(value)
    except (OverflowError, ValueError):
        ival = 0
    return c_double(float(value)), c_int64(ival)


class _Args:
    """Argument list builder that owns every temporary buffer it creates,
    keeping the pointers alive for the duration of the ctypes call."""

    def __init__(self):
        self.args: list = []
        self._hold: list[np.ndarray] = []

    def _keep(self, arr: np.ndarray) -> np.ndarray:
        self._hold.append(arr)
        return arr

    def ptr(self, arr: np.ndarray):
        arr = self._keep(np.ascontiguousarray(arr))
        self.args.append(None if arr.size == 0 else arr.ctypes.data_as(c_void_p))

    def int64(self, x: int):
        self.args.append(c_int64(int(x)))

    def raw(self, ctypes_value):
        self.args.append(ctypes_value)

    def values_ptr(self, arr: np.ndarray):
        """Value buffer with bool reinterpreted as uint8 (C++ bool is one
        byte)."""
        if arr.dtype == np.bool_:
            arr = np.ascontiguousarray(arr).view(np.uint8)
        self.ptr(arr)

    def csr(self, m: SparseMatrix, with_dims: bool = True):
        if with_dims:
            self.int64(m.nrows)
            self.int64(m.ncols)
        self.ptr(np.asarray(m.indptr, _I64))
        self.ptr(np.asarray(m.indices, _I64))
        self.values_ptr(m.values)

    def vec(self, v: SparseVector, with_size: bool = True):
        if with_size:
            self.int64(v.size)
        self.ptr(np.asarray(v.indices, _I64))
        self.values_ptr(v.values)
        self.int64(v.nvals)

    def mask_vec(self, mask: SparseVector | None):
        if mask is None:
            self.args += [None, None]
            self.int64(0)
        else:
            self.ptr(np.asarray(mask.indices, _I64))
            self.ptr(np.ascontiguousarray(mask.values.astype(bool)).view(np.uint8))
            self.int64(mask.nvals)

    def mask_mat(self, mask: SparseMatrix | None):
        if mask is None:
            self.args += [None, None, None]
        else:
            self.ptr(np.asarray(mask.indptr, _I64))
            self.ptr(np.asarray(mask.indices, _I64))
            self.ptr(np.ascontiguousarray(mask.values.astype(bool)).view(np.uint8))

    def index_list(self, idx) -> None:
        arr = np.ascontiguousarray(idx, _I64)
        self.ptr(arr)
        self.int64(arr.size)


class CppJitEngine:
    """Engine-interface implementation backed by JIT-compiled C++."""

    name = "cpp"
    supports_fusion = True

    def __init__(self, cache: JitCache | None = None):
        self.cxx = find_cxx_compiler()
        if self.cxx is None:
            raise BackendUnavailable(
                "the cpp engine needs a C++ compiler (g++/c++) on PATH; "
                "set $PYGB_CXX or use the pyjit engine"
            )
        self.cache = cache if cache is not None else default_cache()
        self._fallback = PyJitEngine(self.cache)
        self._libs: dict[str, ctypes.CDLL] = {}
        self._libs_lock = threading.Lock()
        self._header_lock = threading.Lock()
        self._header_written = False

    # ------------------------------------------------------------------
    # compilation plumbing
    # ------------------------------------------------------------------
    def parallel_enabled(self) -> bool:
        """Whether new specs should request OpenMP kernels: the
        ``$PYGB_PARALLEL`` switch is on *and* the compiler passed the
        ``-fopenmp`` probe (silent serial fallback otherwise)."""
        return parallel_requested() and openmp_available(self.cxx)

    def _spec(self, func: str, **params) -> KernelSpec:
        """Build the kernel spec, marking parallel-capable operations
        ``par=1`` so serial and OpenMP artifacts hash (and cache)
        separately."""
        if func in PARALLEL_FUNCS and self.parallel_enabled():
            params["par"] = True
        return KernelSpec.make(func, **params)

    def _ensure_header(self) -> None:
        if self._header_written:
            return
        with self._header_lock:
            if self._header_written:
                return
            path = self.cache.cache_dir / HEADER_FILENAME
            if not path.exists() or path.read_text() != GBTL_LITE_HEADER:
                tmp = path.with_name(
                    f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
                )
                tmp.write_text(GBTL_LITE_HEADER)
                os.replace(tmp, path)
            self._header_written = True

    def _compile(self, src_path: Path, out_path: Path, parallel: bool = False) -> None:
        self._ensure_header()
        if FAULTS.fire("compile_fail"):
            raise CompilationError(f"injected compile failure for {src_path.name}")
        tmp = out_path.with_name(
            f"{out_path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        cmd = [self.cxx, "-std=c++17", "-O2", "-shared", "-fPIC"]
        if parallel and openmp_available(self.cxx):
            cmd.append("-fopenmp")
        cmd += [f"-I{self.cache.cache_dir}", str(src_path), "-o", str(tmp)]
        timeout = compile_timeout()
        if FAULTS.fire("slow_compile"):
            # a sleeper in place of the compiler, so the timeout
            # machinery below trips exactly as it would for a wedged g++
            delay = 4 * (timeout if timeout is not None else 1.0)
            cmd = [sys.executable, "-c", f"import time; time.sleep({delay})"]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True, timeout=timeout)
        except subprocess.TimeoutExpired:
            tmp.unlink(missing_ok=True)
            raise CompilationError(
                f"C++ compiler timed out after {timeout:g}s for {src_path.name} "
                "(raise $PYGB_COMPILE_TIMEOUT for very large translation units)"
            ) from None
        if proc.returncode != 0:
            tmp.unlink(missing_ok=True)
            raise CompilationError(
                f"g++ failed for {src_path.name}:\n{proc.stderr[-4000:]}"
            )
        os.replace(tmp, out_path)
        if FAULTS.fire("corrupt_so"):
            # truncate to the ELF header alone — a half-truncated .so can
            # still dlopen and then SIGBUS at call time, which no userspace
            # handler can recover from; header-only truncation guarantees
            # dlopen itself fails with a clean OSError
            data = out_path.read_bytes()
            out_path.write_bytes(data[:512])

    def _compile_parallel(self, src_path: Path, out_path: Path) -> None:
        self._compile(src_path, out_path, parallel=True)

    def compiler_for(self, spec: KernelSpec):
        """The compile callable matching *spec*: ``par=1`` specs build
        with ``-fopenmp`` (when supported), everything else with the
        serial flag set."""
        return self._compile_parallel if spec.flag("par") else self._compile

    def _lib(self, spec: KernelSpec, scalar_out: bool = False) -> ctypes.CDLL:
        """Compiled module for *spec*, with the resilience wrapper: a
        quarantined spec fails fast (:class:`KernelQuarantined`, caught by
        the dispatch fallback chain); compile/load failures are recorded
        against this engine's health so hot loops stop re-attempting a
        broken build."""
        health = self.cache.health
        health.check(self.name, spec.key)
        t0 = time.perf_counter_ns() if obs.ACTIVE else 0
        try:
            lib = self._load_lib(spec, scalar_out)
        except CompilationError as exc:
            self.cache.note_jit_failure()
            health.record_failure(self.name, spec.key, exc)
            raise
        health.record_success(self.name, spec.key)
        if obs.ACTIVE:
            tracer = obs.active_tracer()
            if tracer is not None:
                tracer.record(
                    "module_lookup",
                    "jit",
                    t0,
                    time.perf_counter_ns() - t0,
                    {"engine": self.name, "spec": spec.key},
                )
        return lib

    def _load_lib(self, spec: KernelSpec, scalar_out: bool) -> ctypes.CDLL:
        artifact = self.cache.get_module(
            spec, generate_cpp_source, suffix=".cpp", compiler=self.compiler_for(spec)
        )
        key = str(artifact)
        with self._libs_lock:
            lib = self._libs.get(key)
            if lib is not None:
                return lib
        try:
            lib = self._dlopen(artifact)
        except OSError as exc:
            # a truncated or corrupt shared object that slipped past the
            # manifest checksum (or an injected dlopen fault): invalidate
            # the artifact, recompile once, then give up on this engine
            self.cache.invalidate(spec, ".so")
            artifact = self.cache.get_module(
                spec, generate_cpp_source, suffix=".cpp",
                compiler=self.compiler_for(spec),
            )
            try:
                lib = self._dlopen(artifact)
            except OSError as exc2:
                raise CompilationError(
                    f"cannot load compiled kernel {artifact.name} even after "
                    f"rebuilding: {exc2} (first failure: {exc})"
                ) from exc2
        lib.pygb_run.restype = None if scalar_out else c_int64
        try:
            # observability accessor generated alongside every kernel
            # since CODEGEN_VERSION 7; guard for exotic/legacy artifacts
            lib.pygb_kernel_ns.restype = c_int64
        except AttributeError:  # pragma: no cover
            pass
        try:
            # deterministic traversal counter; pull TUs only (v8+)
            lib.pygb_edges_examined.restype = c_int64
        except AttributeError:
            pass
        try:
            # cooperative cancellation flag (v9+); the guard watchdog
            # asserts it from its own thread while a kernel is running
            lib.pygb_request_cancel.restype = None
            lib.pygb_request_cancel.argtypes = (c_int64,)
            lib.pygb_cancel_requested.restype = c_int64
        except AttributeError:  # pragma: no cover - legacy artifact
            pass
        else:
            from .. import guard

            guard.register_cancel_lib(lib)
        with self._libs_lock:
            return self._libs.setdefault(str(artifact), lib)

    @staticmethod
    def _dlopen(artifact) -> ctypes.CDLL:
        if FAULTS.fire("dlopen_fail"):
            raise OSError(f"injected dlopen failure for {artifact}")
        return ctypes.CDLL(str(artifact))

    # ------------------------------------------------------------------
    # the FFI boundary
    # ------------------------------------------------------------------
    def _ffi_call(self, lib, args):
        """One ``pygb_run`` invocation with the observability split:
        Python's monotonic clock around the whole call (FFI total) and
        the kernel's own C++-side clock pair read back through
        ``pygb_kernel_ns()``; the difference is the ctypes/marshalling
        boundary cost (the per-op overhead of paper Figs. 7/8)."""
        if not obs.ACTIVE:
            return lib.pygb_run(*args)
        tracer = obs.active_tracer()
        if tracer is None:
            return lib.pygb_run(*args)
        t0 = time.perf_counter_ns()
        try:
            return lib.pygb_run(*args)
        finally:
            dur = time.perf_counter_ns() - t0
            kernel_fn = getattr(lib, "pygb_kernel_ns", None)
            kernel_ns = int(kernel_fn()) if kernel_fn is not None else None
            tracer.record(
                "ffi_call",
                "ffi",
                t0,
                dur,
                {
                    "engine": "cpp",
                    "lib": os.path.basename(lib._name) if lib._name else None,
                    "kernel_ns": kernel_ns,
                    "boundary_ns": dur - kernel_ns if kernel_ns is not None else None,
                },
            )

    # ------------------------------------------------------------------
    # result unmarshalling
    # ------------------------------------------------------------------
    @staticmethod
    def _copy_values(ptr, nnz: int, dtype) -> np.ndarray:
        dt = np.dtype(dtype)
        cdt = np.dtype(np.uint8) if dt == np.bool_ else dt
        raw = ctypes.string_at(ptr, nnz * cdt.itemsize)
        vals = np.frombuffer(raw, dtype=cdt).copy()
        return vals.view(np.bool_) if dt == np.bool_ else vals

    def _run_vec_out(self, lib, packed: _Args, size: int, dtype) -> SparseVector:
        out_idx = POINTER(c_int64)()
        out_vals = c_void_p()
        nnz = self._ffi_call(lib, (*packed.args, byref(out_idx), byref(out_vals)))
        if nnz == -2:
            # cancellation sentinel: the kernel bailed before the writeback,
            # so no output buffers were allocated — nothing to free
            raise OperationCancelled("C++ kernel observed cancellation flag")
        if nnz < 0:
            raise CompilationError("C++ kernel signalled failure")
        if nnz > 0:
            idx = np.ctypeslib.as_array(out_idx, shape=(nnz,)).copy()
            vals = self._copy_values(out_vals, nnz, dtype)
        else:
            idx = np.empty(0, _I64)
            vals = np.empty(0, np.dtype(dtype))
        lib.pygb_free(out_idx)
        lib.pygb_free(out_vals)
        return SparseVector.from_sorted(size, idx, vals)

    def _run_mat_out(self, lib, packed: _Args, nrows, ncols, dtype) -> SparseMatrix:
        out_indptr = POINTER(c_int64)()
        out_indices = POINTER(c_int64)()
        out_values = c_void_p()
        nnz = self._ffi_call(
            lib,
            (*packed.args, byref(out_indptr), byref(out_indices), byref(out_values)),
        )
        if nnz == -2:
            raise OperationCancelled("C++ kernel observed cancellation flag")
        if nnz < 0:
            raise CompilationError("C++ kernel signalled failure")
        indptr = np.ctypeslib.as_array(out_indptr, shape=(nrows + 1,)).copy()
        if nnz > 0:
            indices = np.ctypeslib.as_array(out_indices, shape=(nnz,)).copy()
            values = self._copy_values(out_values, nnz, dtype)
        else:
            indices = np.empty(0, _I64)
            values = np.empty(0, np.dtype(dtype))
        lib.pygb_free(out_indptr)
        lib.pygb_free(out_indices)
        lib.pygb_free(out_values)
        return SparseMatrix(nrows, ncols, indptr, indices, values)

    # ------------------------------------------------------------------
    # engine interface
    # ------------------------------------------------------------------
    @staticmethod
    def _frontier_edges(s: SparseMatrix, u: SparseVector) -> int:
        """Σ degree(frontier) over the scatter matrix's row pointers —
        exactly the edges the GB::vxm scatter kernel walks."""
        if u.nvals == 0:
            return 0
        rows = np.asarray(u.indices, _I64)
        indptr = np.asarray(s.indptr)
        return int((indptr[rows + 1] - indptr[rows]).sum())

    @staticmethod
    def _note_pull_edges(lib) -> None:
        fn = getattr(lib, "pygb_edges_examined", None)
        _schedule.note_edges("pull", int(fn()) if fn is not None else 0)

    def mxv(self, out, a, u, add, mult, desc, ta=False, sched=None):
        direction = sched.direction if sched is not None else "dense"
        # orientation resolves here, as for plain transposes: dense/pull
        # TUs compile against the gather matrix, push TUs against its
        # transpose (the scatter form GB::vxm walks)
        if direction == "push":
            a = a if ta else a.transposed()
        elif ta:
            a = a.transposed()
        extra = {"dir": direction} if direction != "dense" else {}
        spec = self._spec(
            "mxv",
            a=KernelSpec.dt(a.dtype),
            u=KernelSpec.dt(u.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(binary_result_dtype(mult, a.dtype, u.dtype)),
            add=add,
            mult=mult,
            **extra,
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.csr(a)
        p.vec(u)
        p.vec(out)
        p.mask_vec(desc.mask)
        if direction == "pull":
            p.index_list(sched.candidates)
        result = self._run_vec_out(lib, p, out.size, out.dtype)
        if sched is not None:
            if direction == "pull":
                self._note_pull_edges(lib)
            elif direction == "push":
                _schedule.note_edges("push", self._frontier_edges(a, u))
            else:
                _schedule.note_edges("dense", int(a.indices.size))
        return result

    def vxm(self, out, u, a, add, mult, desc, ta=False, sched=None):
        direction = sched.direction if sched is not None else "dense"
        # GB::vxm is natively a scatter kernel, so dense and push share
        # the effective matrix (and the legacy spec/artifact); pull
        # gathers over its transpose with the mask's candidate rows
        if direction == "pull":
            a = a if ta else a.transposed()
        elif ta:
            a = a.transposed()
        extra = {"dir": "pull"} if direction == "pull" else {}
        spec = self._spec(
            "vxm",
            a=KernelSpec.dt(a.dtype),
            u=KernelSpec.dt(u.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(binary_result_dtype(mult, u.dtype, a.dtype)),
            add=add,
            mult=mult,
            **extra,
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.csr(a)
        p.vec(u)
        p.vec(out)
        p.mask_vec(desc.mask)
        if direction == "pull":
            p.index_list(sched.candidates)
        result = self._run_vec_out(lib, p, out.size, out.dtype)
        if sched is not None:
            if direction == "pull":
                self._note_pull_edges(lib)
            else:
                # the scatter kernel's scan is a frontier degree sum even
                # for the "dense" (legacy) schedule — count honestly
                _schedule.note_edges(direction, self._frontier_edges(a, u))
        return result

    def mxm(self, out, a, b, add, mult, desc, ta=False, tb=False):
        if ta:
            a = a.transposed()
        if tb:
            b = b.transposed()
        spec = self._spec(
            "mxm",
            a=KernelSpec.dt(a.dtype),
            b=KernelSpec.dt(b.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(binary_result_dtype(mult, a.dtype, b.dtype)),
            add=add,
            mult=mult,
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.csr(a)
        p.csr(b)
        p.csr(out)
        p.mask_mat(desc.mask)
        return self._run_mat_out(lib, p, out.nrows, out.ncols, out.dtype)

    def _ewise_vec(self, func, out, u, v, op, desc):
        spec = self._spec(
            func,
            a=KernelSpec.dt(u.dtype),
            b=KernelSpec.dt(v.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(binary_result_dtype(op, u.dtype, v.dtype)),
            op=op,
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.vec(u)
        p.vec(v, with_size=False)
        p.vec(out)
        p.mask_vec(desc.mask)
        return self._run_vec_out(lib, p, out.size, out.dtype)

    def ewise_add_vec(self, out, u, v, op, desc):
        return self._ewise_vec("ewise_add_vec", out, u, v, op, desc)

    def ewise_mult_vec(self, out, u, v, op, desc):
        return self._ewise_vec("ewise_mult_vec", out, u, v, op, desc)

    def _ewise_mat(self, func, out, a, b, op, desc, ta, tb):
        if ta:
            a = a.transposed()
        if tb:
            b = b.transposed()
        spec = self._spec(
            func,
            a=KernelSpec.dt(a.dtype),
            b=KernelSpec.dt(b.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(binary_result_dtype(op, a.dtype, b.dtype)),
            op=op,
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.csr(a)
        p.csr(b, with_dims=False)
        p.csr(out, with_dims=False)
        p.mask_mat(desc.mask)
        return self._run_mat_out(lib, p, out.nrows, out.ncols, out.dtype)

    def ewise_add_mat(self, out, a, b, op, desc, ta=False, tb=False):
        return self._ewise_mat("ewise_add_mat", out, a, b, op, desc, ta, tb)

    def ewise_mult_mat(self, out, a, b, op, desc, ta=False, tb=False):
        return self._ewise_mat("ewise_mult_mat", out, a, b, op, desc, ta, tb)

    @staticmethod
    def _apply_spec_parts(op_spec, out_dtype):
        if op_spec[0] == "unary":
            d, i = _scalar_pair(0, prefer_float=True)
            return d, i, "unary", op_spec[1], "none"
        _, name, const, side = op_spec
        prefer_float = np.dtype(out_dtype).kind == "f"
        d, i = _scalar_pair(const, prefer_float)
        return d, i, "bind", name, side

    def apply_vec(self, out, u, op_spec, desc):
        dconst, iconst, form, op, side = self._apply_spec_parts(op_spec, out.dtype)
        spec = self._spec(
            "apply_vec",
            a=KernelSpec.dt(u.dtype),
            c=KernelSpec.dt(out.dtype),
            form=form,
            op=op,
            side=side,
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.vec(u)
        p.vec(out)
        p.mask_vec(desc.mask)
        p.raw(dconst)
        p.raw(iconst)
        return self._run_vec_out(lib, p, out.size, out.dtype)

    def apply_mat(self, out, a, op_spec, desc, ta=False):
        if ta:
            a = a.transposed()
        dconst, iconst, form, op, side = self._apply_spec_parts(op_spec, out.dtype)
        spec = self._spec(
            "apply_mat",
            a=KernelSpec.dt(a.dtype),
            c=KernelSpec.dt(out.dtype),
            form=form,
            op=op,
            side=side,
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.csr(a)
        p.csr(out, with_dims=False)
        p.mask_mat(desc.mask)
        p.raw(dconst)
        p.raw(iconst)
        return self._run_mat_out(lib, p, out.nrows, out.ncols, out.dtype)

    def _reduce_scalar(self, func, x, op, identity, matrix: bool):
        if identity is None:
            identity = DEFAULT_IDENTITY_NAME[op]
        ident = identity_value(identity, x.dtype)
        spec = self._spec(func, a=KernelSpec.dt(x.dtype), op=op)
        lib = self._lib(spec, scalar_out=True)
        dt = np.dtype(x.dtype)
        out = np.zeros(1, dtype=np.uint8 if dt == np.bool_ else dt)
        p = _Args()
        if matrix:
            p.csr(x)
        else:
            p.vec(x)
        d, i = _scalar_pair(ident, prefer_float=dt.kind == "f")
        p.raw(d)
        p.raw(i)
        p.ptr(out.view(np.uint8) if dt == np.bool_ else out)
        self._ffi_call(lib, p.args)
        val = out.view(np.bool_)[0] if dt == np.bool_ else out[0]
        return dt.type(val)

    def reduce_mat_scalar(self, a, op, identity):
        return self._reduce_scalar("reduce_mat_scalar", a, op, identity, matrix=True)

    def reduce_vec_scalar(self, u, op, identity):
        return self._reduce_scalar("reduce_vec_scalar", u, op, identity, matrix=False)

    def reduce_rows(self, out, a, op, desc, ta=False):
        if ta:
            a = a.transposed()
        spec = self._spec(
            "reduce_rows",
            a=KernelSpec.dt(a.dtype),
            c=KernelSpec.dt(out.dtype),
            op=op,
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.csr(a)
        p.vec(out)
        p.mask_vec(desc.mask)
        return self._run_vec_out(lib, p, out.size, out.dtype)

    def assign_vec(self, out, u, idx, desc):
        spec = self._spec(
            "assign_vec",
            a=KernelSpec.dt(u.dtype),
            c=KernelSpec.dt(out.dtype),
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.vec(out)
        p.vec(u)
        p.index_list(idx)
        p.mask_vec(desc.mask)
        return self._run_vec_out(lib, p, out.size, out.dtype)

    def assign_vec_scalar(self, out, value, idx, desc):
        spec = self._spec(
            "assign_vec_scalar",
            c=KernelSpec.dt(out.dtype),
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.vec(out)
        d, i = _scalar_pair(value, prefer_float=np.dtype(out.dtype).kind == "f")
        p.raw(d)
        p.raw(i)
        p.index_list(idx)
        p.mask_vec(desc.mask)
        return self._run_vec_out(lib, p, out.size, out.dtype)

    def extract_vec(self, out, u, idx, desc):
        spec = self._spec(
            "extract_vec",
            a=KernelSpec.dt(u.dtype),
            c=KernelSpec.dt(out.dtype),
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.vec(out)
        p.vec(u)
        p.index_list(idx)
        p.mask_vec(desc.mask)
        return self._run_vec_out(lib, p, out.size, out.dtype)

    # ------------------------------------------------------------------
    # compile prefetch (nonblocking queue): predict the kernel specs a
    # deferred expression will dispatch so the JIT cache can start g++
    # in the background while the queue is still being built
    # ------------------------------------------------------------------
    def prefetch_jobs(self, expr, out_dtype, desc):
        """Best-effort ``(spec, generate, suffix, compiler)`` jobs for the
        kernels evaluating *expr* into a *out_dtype* container under
        *desc* will need — including the fused kernels the planner is
        predicted to emit for ``apply(producer)`` pairs.  Mispredictions
        are harmless: the flush compiles whatever is missing, and warm
        cache entries are hits, not rebuilds."""
        from ..backend.kernels import OpDesc
        from ..core import expressions as ex
        from ..core.plan import fusion_enabled

        jobs: list = []
        seen: set[int] = set()
        fuse = fusion_enabled()

        def dt(operand):
            return np.dtype(ex._dtype_of(operand))

        def add_job(spec):
            jobs.append(
                (spec, generate_cpp_source, ".cpp", self.compiler_for(spec))
            )

        def fused_apply(node, out_dt, dp):
            """Predict the planner's producer+apply fusion; returns True
            when a fused spec was emitted for this node."""
            child = node.a
            if (
                not isinstance(child, ex.Expression)
                or child._materialized is not None
                or getattr(node, "ta", False)
            ):
                return False
            _d, _i, form, uop, side = self._apply_spec_parts(node.op_spec, out_dt)
            ck = type(child)
            if ck in (ex.MXV, ex.VXM):
                lhs, rhs = (
                    (dt(child.a), dt(child.u))
                    if ck is ex.MXV
                    else (dt(child.u), dt(child.a))
                )
                tdt = binary_result_dtype(child.mult_op, lhs, rhs)
                pdt = binary_result_dtype(child.add_op, tdt, tdt)
                add_job(self._spec(
                    "mxv_apply" if ck is ex.MXV else "vxm_apply",
                    a=KernelSpec.dt(dt(child.a)),
                    u=KernelSpec.dt(dt(child.u)),
                    c=KernelSpec.dt(out_dt),
                    t_dtype=KernelSpec.dt(tdt),
                    p=KernelSpec.dt(pdt),
                    add=child.add_op,
                    mult=child.mult_op,
                    form=form,
                    uop=uop,
                    side=side,
                    fused=True,
                    **dp,
                ))
            elif ck in (ex.EWiseAdd, ex.EWiseMult):
                pdt = binary_result_dtype(child.op, dt(child.a), dt(child.b))
                shape = "mat" if child.produces_matrix else "vec"
                add_job(self._spec(
                    f"{child.kind}_{shape}_apply",
                    a=KernelSpec.dt(dt(child.a)),
                    b=KernelSpec.dt(dt(child.b)),
                    c=KernelSpec.dt(out_dt),
                    t_dtype=KernelSpec.dt(pdt),
                    p=KernelSpec.dt(pdt),
                    op=child.op,
                    form=form,
                    uop=uop,
                    side=side,
                    fused=True,
                    **dp,
                ))
            else:
                return False
            for slot in child.operand_slots:
                walk(getattr(child, slot), None, None)
            return True

        def walk(node, out_dt, node_desc):
            if not isinstance(node, ex.Expression) or node._materialized is not None:
                return
            if id(node) in seen:
                return
            seen.add(id(node))
            if out_dt is None:
                out_dt = dt(node)  # interior temporaries use natural dtype
            dp = _desc_params(node_desc if node_desc is not None else OpDesc())
            kind = type(node)
            if kind is ex.Apply and fuse and fused_apply(node, out_dt, dp):
                return
            if kind in (ex.MXV, ex.VXM):
                lhs, rhs = (
                    (dt(node.a), dt(node.u))
                    if kind is ex.MXV
                    else (dt(node.u), dt(node.a))
                )
                tdt = binary_result_dtype(node.mult_op, lhs, rhs)
                add_job(self._spec(
                    "mxv" if kind is ex.MXV else "vxm",
                    a=KernelSpec.dt(dt(node.a)),
                    u=KernelSpec.dt(dt(node.u)),
                    c=KernelSpec.dt(out_dt),
                    t_dtype=KernelSpec.dt(tdt),
                    add=node.add_op,
                    mult=node.mult_op,
                    **dp,
                ))
            elif kind is ex.MXM:
                tdt = binary_result_dtype(node.mult_op, dt(node.a), dt(node.b))
                add_job(self._spec(
                    "mxm",
                    a=KernelSpec.dt(dt(node.a)),
                    b=KernelSpec.dt(dt(node.b)),
                    c=KernelSpec.dt(out_dt),
                    t_dtype=KernelSpec.dt(tdt),
                    add=node.add_op,
                    mult=node.mult_op,
                    **dp,
                ))
            elif kind in (ex.EWiseAdd, ex.EWiseMult):
                tdt = binary_result_dtype(node.op, dt(node.a), dt(node.b))
                shape = "mat" if node.produces_matrix else "vec"
                add_job(self._spec(
                    f"{node.kind}_{shape}",
                    a=KernelSpec.dt(dt(node.a)),
                    b=KernelSpec.dt(dt(node.b)),
                    c=KernelSpec.dt(out_dt),
                    t_dtype=KernelSpec.dt(tdt),
                    op=node.op,
                    **dp,
                ))
            elif kind is ex.Apply:
                _d, _i, form, op, side = self._apply_spec_parts(node.op_spec, out_dt)
                shape = "mat" if node.produces_matrix else "vec"
                add_job(self._spec(
                    f"apply_{shape}",
                    a=KernelSpec.dt(dt(node.a)),
                    c=KernelSpec.dt(out_dt),
                    form=form,
                    op=op,
                    side=side,
                    **dp,
                ))
            elif kind is ex.ReduceRows:
                add_job(self._spec(
                    "reduce_rows",
                    a=KernelSpec.dt(dt(node.a)),
                    c=KernelSpec.dt(out_dt),
                    op=node.op,
                    **dp,
                ))
            # Select / Kronecker / Transpose / Extract are rare enough that
            # the flush-time compile is acceptable; operands still walk
            for slot in node.operand_slots:
                walk(getattr(node, slot), None, None)

        walk(expr, np.dtype(out_dtype), desc)
        return jobs

    # ------------------------------------------------------------------
    # fused kernels (planner output; one FFI call for a producer+consumer
    # pair, intermediate stays inside the shared object)
    # ------------------------------------------------------------------
    def mxv_apply(self, out, a, u, add, mult, op_spec, desc, ta=False):
        if ta:
            a = a.transposed()
        tdt = binary_result_dtype(mult, a.dtype, u.dtype)
        pdt = binary_result_dtype(add, tdt, tdt)
        dconst, iconst, form, uop, side = self._apply_spec_parts(op_spec, out.dtype)
        spec = self._spec(
            "mxv_apply",
            a=KernelSpec.dt(a.dtype),
            u=KernelSpec.dt(u.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(tdt),
            p=KernelSpec.dt(pdt),
            add=add,
            mult=mult,
            form=form,
            uop=uop,
            side=side,
            fused=True,
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.csr(a)
        p.vec(u)
        p.vec(out)
        p.mask_vec(desc.mask)
        p.raw(dconst)
        p.raw(iconst)
        return self._run_vec_out(lib, p, out.size, out.dtype)

    def vxm_apply(self, out, u, a, add, mult, op_spec, desc, ta=False):
        if ta:
            a = a.transposed()
        tdt = binary_result_dtype(mult, u.dtype, a.dtype)
        pdt = binary_result_dtype(add, tdt, tdt)
        dconst, iconst, form, uop, side = self._apply_spec_parts(op_spec, out.dtype)
        spec = self._spec(
            "vxm_apply",
            a=KernelSpec.dt(a.dtype),
            u=KernelSpec.dt(u.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(tdt),
            p=KernelSpec.dt(pdt),
            add=add,
            mult=mult,
            form=form,
            uop=uop,
            side=side,
            fused=True,
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.csr(a)
        p.vec(u)
        p.vec(out)
        p.mask_vec(desc.mask)
        p.raw(dconst)
        p.raw(iconst)
        return self._run_vec_out(lib, p, out.size, out.dtype)

    def _ewise_vec_apply(self, func, out, u, v, op, op_spec, desc):
        pdt = binary_result_dtype(op, u.dtype, v.dtype)
        dconst, iconst, form, uop, side = self._apply_spec_parts(op_spec, out.dtype)
        spec = self._spec(
            func,
            a=KernelSpec.dt(u.dtype),
            b=KernelSpec.dt(v.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(pdt),
            p=KernelSpec.dt(pdt),
            op=op,
            form=form,
            uop=uop,
            side=side,
            fused=True,
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.vec(u)
        p.vec(v, with_size=False)
        p.vec(out)
        p.mask_vec(desc.mask)
        p.raw(dconst)
        p.raw(iconst)
        return self._run_vec_out(lib, p, out.size, out.dtype)

    def ewise_add_vec_apply(self, out, u, v, op, op_spec, desc):
        return self._ewise_vec_apply("ewise_add_vec_apply", out, u, v, op, op_spec, desc)

    def ewise_mult_vec_apply(self, out, u, v, op, op_spec, desc):
        return self._ewise_vec_apply("ewise_mult_vec_apply", out, u, v, op, op_spec, desc)

    def _ewise_mat_apply(self, func, out, a, b, op, op_spec, desc, ta, tb):
        if ta:
            a = a.transposed()
        if tb:
            b = b.transposed()
        pdt = binary_result_dtype(op, a.dtype, b.dtype)
        dconst, iconst, form, uop, side = self._apply_spec_parts(op_spec, out.dtype)
        spec = self._spec(
            func,
            a=KernelSpec.dt(a.dtype),
            b=KernelSpec.dt(b.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(pdt),
            p=KernelSpec.dt(pdt),
            op=op,
            form=form,
            uop=uop,
            side=side,
            fused=True,
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.csr(a)
        p.csr(b, with_dims=False)
        p.csr(out, with_dims=False)
        p.mask_mat(desc.mask)
        p.raw(dconst)
        p.raw(iconst)
        return self._run_mat_out(lib, p, out.nrows, out.ncols, out.dtype)

    def ewise_add_mat_apply(self, out, a, b, op, op_spec, desc, ta=False, tb=False):
        return self._ewise_mat_apply(
            "ewise_add_mat_apply", out, a, b, op, op_spec, desc, ta, tb
        )

    def ewise_mult_mat_apply(self, out, a, b, op, op_spec, desc, ta=False, tb=False):
        return self._ewise_mat_apply(
            "ewise_mult_mat_apply", out, a, b, op, op_spec, desc, ta, tb
        )

    def mxm_reduce_rows(self, out, a, b, add, mult, rop, desc, ta=False, tb=False):
        if ta:
            a = a.transposed()
        if tb:
            b = b.transposed()
        tdt = binary_result_dtype(mult, a.dtype, b.dtype)
        pdt = binary_result_dtype(add, tdt, tdt)
        spec = self._spec(
            "mxm_reduce_rows",
            a=KernelSpec.dt(a.dtype),
            b=KernelSpec.dt(b.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(tdt),
            p=KernelSpec.dt(pdt),
            add=add,
            mult=mult,
            rop=rop,
            fused=True,
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.csr(a)
        p.csr(b)
        p.vec(out)
        p.mask_vec(desc.mask)
        return self._run_vec_out(lib, p, out.size, out.dtype)

    def apply_assign_vec(self, out, u, op_spec, idx, desc):
        from ..backend.kernels import apply_result_dtype

        pdt = apply_result_dtype(op_spec, u.dtype)
        dconst, iconst, form, uop, side = self._apply_spec_parts(op_spec, pdt)
        spec = self._spec(
            "apply_assign_vec",
            a=KernelSpec.dt(u.dtype),
            c=KernelSpec.dt(out.dtype),
            p=KernelSpec.dt(pdt),
            form=form,
            uop=uop,
            side=side,
            fused=True,
            **_desc_params(desc),
        )
        lib = self._lib(spec)
        p = _Args()
        p.vec(out)
        p.vec(u)
        p.index_list(idx)
        p.mask_vec(desc.mask)
        p.raw(dconst)
        p.raw(iconst)
        return self._run_vec_out(lib, p, out.size, out.dtype)

    def _ewise_reduce_scalar(self, func, u, v, op, rop, identity):
        pdt = np.dtype(binary_result_dtype(op, u.dtype, v.dtype))
        if identity is None:
            identity = DEFAULT_IDENTITY_NAME[rop]
        ident = identity_value(identity, pdt)
        spec = self._spec(
            func,
            a=KernelSpec.dt(u.dtype),
            b=KernelSpec.dt(v.dtype),
            p=KernelSpec.dt(pdt),
            op=op,
            rop=rop,
            fused=True,
        )
        lib = self._lib(spec, scalar_out=True)
        out = np.zeros(1, dtype=np.uint8 if pdt == np.bool_ else pdt)
        p = _Args()
        p.vec(u)
        p.vec(v, with_size=False)
        d, i = _scalar_pair(ident, prefer_float=pdt.kind == "f")
        p.raw(d)
        p.raw(i)
        p.ptr(out.view(np.uint8) if pdt == np.bool_ else out)
        self._ffi_call(lib, p.args)
        val = out.view(np.bool_)[0] if pdt == np.bool_ else out[0]
        return pdt.type(val)

    def ewise_add_vec_reduce_scalar(self, u, v, op, rop, identity=None):
        return self._ewise_reduce_scalar(
            "ewise_add_vec_reduce_scalar", u, v, op, rop, identity
        )

    def ewise_mult_vec_reduce_scalar(self, u, v, op, rop, identity=None):
        return self._ewise_reduce_scalar(
            "ewise_mult_vec_reduce_scalar", u, v, op, rop, identity
        )

    # -- Python-JIT fallbacks (index-heavy matrix forms) -----------------
    def transpose(self, out, a, desc):
        return self._fallback.transpose(out, a, desc)

    def extract_mat(self, out, a, rows, cols, desc, ta=False):
        return self._fallback.extract_mat(out, a, rows, cols, desc, ta)

    def assign_mat(self, out, a, rows, cols, desc, ta=False):
        return self._fallback.assign_mat(out, a, rows, cols, desc, ta)

    def assign_mat_scalar(self, out, value, rows, cols, desc):
        return self._fallback.assign_mat_scalar(out, value, rows, cols, desc)

    def select_mat(self, out, a, op, thunk, desc, ta=False):
        return self._fallback.select_mat(out, a, op, thunk, desc, ta)

    def select_vec(self, out, u, op, thunk, desc):
        return self._fallback.select_vec(out, u, op, thunk, desc)

    def kronecker(self, out, a, b, op, desc, ta=False, tb=False):
        return self._fallback.kronecker(out, a, b, op, desc, ta, tb)
