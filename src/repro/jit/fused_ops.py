"""The shared per-node description of every fused kernel.

This table is the single source of truth the planner
(:mod:`repro.jit.fusion`), both code generators
(:mod:`repro.jit.pycodegen`, :mod:`repro.jit.cppcodegen`), the reference
kernels (:mod:`repro.backend.kernels.fused`) and the precompiler key off —
adding a rule here and a generator in each codegen is the whole recipe, so
the two codegens cannot silently drift on *which* fusions exist (a
coverage test asserts every name below is registered in both).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FusedOp", "FUSED_OPS"]


@dataclass(frozen=True)
class FusedOp:
    """One peephole rule: *consumer* node absorbing the *producer* node
    feeding its operand *slot*.

    ``name`` is simultaneously the engine method, the ``KernelSpec`` func
    and the generator key.  ``where`` says which rewrite site applies the
    rule: ``plan`` rules run inside the planner pass over the expression
    graph; ``assign``/``reduce`` rules trigger at the two write sites the
    plan cannot see (``w[i] = f(u)`` subscript-assign and scalar
    ``gb.reduce``), where the "consumer" is the write site itself.
    """

    name: str
    producer: str  # producer node plan_kind
    consumer: str  # consumer node plan_kind (or the write-site kind)
    slot: str      # consumer operand slot the producer feeds
    output: str    # "vec" | "mat" | "scalar"
    where: str = "plan"
    #: whether the fused kernel still executes correctly per row tile.
    #: Every current rule is row-local (the PartitionedEngine fans the
    #: fused method itself over the blocks), but a rule whose kernel
    #: crosses a tile merge boundary must set False — the planner then
    #: refuses to absorb nodes with tiled matrix operands rather than
    #: silently discarding the partition.
    tile_safe: bool = True


FUSED_OPS = (
    FusedOp("mxv_apply", "mxv", "apply_vec", "a", "vec"),
    FusedOp("vxm_apply", "vxm", "apply_vec", "a", "vec"),
    FusedOp("ewise_add_vec_apply", "ewise_add_vec", "apply_vec", "a", "vec"),
    FusedOp("ewise_mult_vec_apply", "ewise_mult_vec", "apply_vec", "a", "vec"),
    FusedOp("ewise_add_mat_apply", "ewise_add_mat", "apply_mat", "a", "mat"),
    FusedOp("ewise_mult_mat_apply", "ewise_mult_mat", "apply_mat", "a", "mat"),
    FusedOp("mxm_reduce_rows", "mxm", "reduce_rows", "a", "vec"),
    FusedOp("apply_assign_vec", "apply_vec", "assign_vec", "a", "vec", where="assign"),
    FusedOp("ewise_add_vec_reduce_scalar", "ewise_add_vec", "reduce_vec_scalar", "a",
            "scalar", where="reduce"),
    FusedOp("ewise_mult_vec_reduce_scalar", "ewise_mult_vec", "reduce_vec_scalar", "a",
            "scalar", where="reduce"),
)
