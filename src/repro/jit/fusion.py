"""The planner pass: peephole rewriting of the plan IR.

``fuse_expression`` lowers the expression DAG to a :class:`~repro.core.plan.Plan`,
walks its nodes children-first and, for each producer/consumer edge that
matches a rule in :data:`~repro.jit.fused_ops.FUSED_OPS`, replaces the pair
with a single :class:`Fused` pseudo-expression whose ``eval_into`` calls
the engine's fused kernel — one dispatch, no intermediate container.

A producer is only absorbed when it is safe:

* the consumer is its *only* consumer (a shared subexpression must stay a
  separate node so its cached materialisation is reused), and
* it has not already been materialised (its cached container would then
  be free anyway), and
* the current engine actually implements the fused kernel (rules degrade
  to unfused dispatch per-engine, which is how ``interpreted`` opts out).
"""

from __future__ import annotations

from ..backend.tiled import TiledMatrix
from ..core.expressions import Expression, _store_of
from ..core.plan import Plan
from .fused_ops import FUSED_OPS

__all__ = ["Fused", "fuse_expression"]


def _crosses_tile_boundary(rule, node, cnode) -> bool:
    """True when a non-tile-safe rule would absorb a node holding a tiled
    matrix operand — the fused kernel would have to run monolithically,
    silently crossing the partition's merge boundary, so the planner
    keeps the pair as separate (individually partitionable) dispatches."""
    if rule.tile_safe:
        return False
    for pn in (node, cnode):
        expr = pn.expr
        for slot in getattr(expr, "operand_slots", ()):
            operand = getattr(expr, slot, None)
            target = getattr(operand, "parent", operand)  # TransposeView
            store = getattr(target, "_backing", None)
            if isinstance(store, TiledMatrix) and store.ntiles > 1:
                return True
    return False

#: (consumer plan_kind, producer plan_kind) -> rule, for planner rules
PAIRS = {(op.consumer, op.producer): op for op in FUSED_OPS if op.where == "plan"}


def _call_mxv_apply(m, out, p, c, desc):
    return m(out._store, _store_of(p.a), _store_of(p.u), p.add_op, p.mult_op,
             c.op_spec, desc, p.ta)


def _call_vxm_apply(m, out, p, c, desc):
    return m(out._store, _store_of(p.u), _store_of(p.a), p.add_op, p.mult_op,
             c.op_spec, desc, p.ta)


def _call_ewise_vec_apply(m, out, p, c, desc):
    return m(out._store, _store_of(p.a), _store_of(p.b), p.op, c.op_spec, desc)


def _call_ewise_mat_apply(m, out, p, c, desc):
    return m(out._store, _store_of(p.a), _store_of(p.b), p.op, c.op_spec, desc,
             p.ta, p.tb)


def _call_mxm_reduce_rows(m, out, p, c, desc):
    return m(out._store, _store_of(p.a), _store_of(p.b), p.add_op, p.mult_op,
             c.op, desc, p.ta, p.tb)


#: rule name -> adapter unpacking (producer, consumer) expression state
#: into the engine method's argument list
_CALLERS = {
    "mxv_apply": _call_mxv_apply,
    "vxm_apply": _call_vxm_apply,
    "ewise_add_vec_apply": _call_ewise_vec_apply,
    "ewise_mult_vec_apply": _call_ewise_vec_apply,
    "ewise_add_mat_apply": _call_ewise_mat_apply,
    "ewise_mult_mat_apply": _call_ewise_mat_apply,
    "mxm_reduce_rows": _call_mxm_reduce_rows,
}


class Fused(Expression):
    """A producer/consumer pair collapsed into one kernel dispatch."""

    kind = "fused"
    operand_slots = ()

    def __init__(self, op, producer, consumer):
        super().__init__()
        self.op = op
        self.producer = producer
        self.consumer = consumer
        self.produces_matrix = op.output == "mat"

    @property
    def plan_kind(self) -> str:
        return f"fused_{self.op.name}"

    def result_shape(self):
        return self.consumer.result_shape()

    def result_dtype(self):
        return self.consumer.result_dtype()

    def eval_into(self, out, desc):
        from ..core.context import current_backend_engine

        eng = current_backend_engine()
        method = getattr(eng, self.op.name, None)
        if method is None or not getattr(eng, "supports_fusion", False):
            # engine changed between planning and execution: fall back to
            # the unfused pair (consumer still sees the live producer)
            self.consumer.eval_into(out, desc)
            return
        out._store = _CALLERS[self.op.name](method, out, self.producer,
                                            self.consumer, desc)


def fuse_expression(root, engine):
    """Rewrite *root* (an expression DAG) for *engine*, returning the new
    root.  Interior edges are rewritten in place (the consumer's operand
    slot is pointed at the :class:`Fused` node); deeper chains fuse
    bottom-up because the plan order is children-first."""
    plan = Plan(root)
    consumed: set = set()
    for node in plan.order:
        for slot, cnode in node.children:
            cand = PAIRS.get((node.kind, cnode.kind))
            sched = cnode.schedule
            if (
                cand is None
                or slot != cand.slot
                or len(cnode.parents) != 1
                or cnode.expr._materialized is not None
                or id(cnode.expr) in consumed
                or id(node.expr) in consumed
                or not hasattr(engine, cand.name)
                # fused kernels run the dense traversal only — a node
                # pinned to push/pull must stay a standalone dispatch
                or (sched is not None and sched.pins_direction)
                or _crosses_tile_boundary(cand, node, cnode)
            ):
                continue
            fused = Fused(cand, cnode.expr, node.expr)
            consumed.add(id(cnode.expr))
            consumed.add(id(node.expr))
            if node.expr is root:
                root = fused
            else:
                for parent_expr, pslot in node.parents:
                    setattr(parent_expr, pslot, fused)
            break
    return root
