"""The bundled mini-GBTL C++17 header.

The paper compiles generated binding files against GBTL, the authors' C++
GraphBLAS template library.  GBTL is not vendored here, so this module
carries a from-scratch, self-contained replacement implementing the same
surface the binding files need: sparse containers, the Fig. 6 operator
functors under the same names, and templated kernels for every operation
the C++ engine compiles (semiring mxv/vxm/mxm with dense-accumulator
Gustavson SpGEMM, sorted-merge eWise ops, apply/reduce, assign/extract,
and the shared masked accumulate-write stage).

The hot kernels carry OpenMP row-parallel implementations guarded by
``#ifdef _OPENMP``: the *same* header compiles both the serial artifact
(no ``-fopenmp``, pragmas ignored, original single-threaded loops) and
the parallel one (``-fopenmp``, chosen per spec by the ``cpp`` engine —
see ``PYGB_PARALLEL``/``PYGB_THREADS`` in ``cppengine``).  Row-parallel
kernels (mxv, mxm, eWise mat, apply, reduce_rows) fold each row in the
serial order and are bit-identical to the serial build for any thread
count; vxm and the scalar reductions re-associate across fixed blocks,
which for non-associative float ⊕ may differ from serial by ULPs (the
sparsity pattern is always identical).

The header text is written once into the JIT cache directory; per-spec
binding translation units ``#include`` it (see
:mod:`~repro.jit.cppcodegen`).
"""

from __future__ import annotations

__all__ = ["GBTL_LITE_HEADER", "HEADER_FILENAME"]

HEADER_FILENAME = "gbtl_lite.hpp"

GBTL_LITE_HEADER = r"""
// gbtl_lite.hpp — mini-GBTL for the PyGB reproduction. Auto-written; do not edit.
#pragma once
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>
#ifdef _OPENMP
#include <omp.h>
#endif

namespace GB {

using Index = int64_t;

// ---------------------------------------------------------------------
// kernel-time observability.  Every generated pygb_run stack-allocates a
// KernelTimer; its destructor stores the kernel's wall time (monotonic
// clock — clock_gettime(CLOCK_MONOTONIC) under the hood) in a
// thread-local slot the binding exposes through pygb_kernel_ns().  The
// Python tracer subtracts this from its own around-the-FFI-call timing
// to split marshalling overhead from compute (paper Figs. 7/8).
// ---------------------------------------------------------------------
inline int64_t& last_kernel_ns_ref() {
    thread_local int64_t ns = 0;
    return ns;
}

struct KernelTimer {
    std::chrono::steady_clock::time_point t0{std::chrono::steady_clock::now()};
    ~KernelTimer() {
        last_kernel_ns_ref() = std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0).count();
    }
};

// edges examined by the most recent direction-optimized traversal kernel
// on this thread; push/pull binding TUs expose it through
// pygb_edges_examined() so the engine can feed the schedule-layer
// counters (the perf-trajectory metric behind the push/pull switch).
inline int64_t& edges_examined_ref() {
    thread_local int64_t edges = 0;
    return edges;
}

// ---------------------------------------------------------------------
// cooperative cancellation.  The Python watchdog thread asserts this flag
// through the FFI boundary (pygb_request_cancel) while a kernel runs on a
// DIFFERENT thread, so it must be one process-wide atomic per loaded
// library — NOT thread_local.  Long serial row sweeps poll it every 1024
// iterations and break; the generated writeback stage then returns the
// -2 sentinel instead of exporting a partial result (no C++ exception
// ever crosses an OpenMP region or the extern "C" frame — that would be
// undefined behaviour).  OpenMP-parallel paths run to completion; the
// sentinel check after them still discards the result promptly.
// ---------------------------------------------------------------------
inline std::atomic<int64_t>& cancel_flag_ref() {
    static std::atomic<int64_t> flag{0};
    return flag;
}

inline bool cancel_requested() {
    return cancel_flag_ref().load(std::memory_order_relaxed) != 0;
}

// ---------------------------------------------------------------------
// threading runtime.  Serial artifacts are compiled from this same file
// without -fopenmp: the pragmas vanish and num_threads() pins to 1, so
// every kernel below takes its original single-threaded path.
// ---------------------------------------------------------------------
inline int num_threads() {
#ifdef _OPENMP
    // re-read each call so PYGB_THREADS can be flipped at runtime
    if (const char* s = std::getenv("PYGB_THREADS")) {
        char* end = nullptr;
        const long v = std::strtol(s, &end, 10);
        if (end != s && v > 0) return static_cast<int>(v);
    }
    return omp_get_max_threads();
#else
    return 1;
#endif
}

// ---------------------------------------------------------------------
// operator functors (names match GBTL's algebra.hpp / paper Fig. 6)
// ---------------------------------------------------------------------
template <class T> struct Plus  { T operator()(T a, T b) const { return a + b; } };
template <class T> struct Minus { T operator()(T a, T b) const { return a - b; } };
template <class T> struct Times { T operator()(T a, T b) const { return a * b; } };
template <class T> struct Div {
    T operator()(T a, T b) const { return b == T(0) ? T(0) : T(a / b); }
};
template <class T> struct Min { T operator()(T a, T b) const { return b < a ? b : a; } };
template <class T> struct Max { T operator()(T a, T b) const { return a < b ? b : a; } };
template <class T> struct First  { T operator()(T a, T) const { return a; } };
template <class T> struct Second { T operator()(T, T b) const { return b; } };
template <class T> struct LogicalOr {
    T operator()(T a, T b) const { return T(bool(a) || bool(b)); }
};
template <class T> struct LogicalAnd {
    T operator()(T a, T b) const { return T(bool(a) && bool(b)); }
};
template <class T> struct LogicalXor {
    T operator()(T a, T b) const { return T(bool(a) != bool(b)); }
};
template <class T> struct Equal    { T operator()(T a, T b) const { return T(a == b); } };
template <class T> struct NotEqual { T operator()(T a, T b) const { return T(a != b); } };
template <class T> struct GreaterThan  { T operator()(T a, T b) const { return T(a > b); } };
template <class T> struct LessThan     { T operator()(T a, T b) const { return T(a < b); } };
template <class T> struct GreaterEqual { T operator()(T a, T b) const { return T(a >= b); } };
template <class T> struct LessEqual    { T operator()(T a, T b) const { return T(a <= b); } };

template <class T> struct Identity        { T operator()(T a) const { return a; } };
template <class T> struct AdditiveInverse { T operator()(T a) const { return T(-a); } };
template <class T> struct LogicalNot      { T operator()(T a) const { return T(!bool(a)); } };
template <class T> struct MultiplicativeInverse {
    T operator()(T a) const { return a == T(0) ? T(0) : T(T(1) / a); }
};

// binary op with a bound constant (GBTL's BinaryOp_Bind1st / Bind2nd)
template <class T, class Op> struct Bind1st {
    T c; Op op;
    explicit Bind1st(T c_) : c(c_) {}
    T operator()(T a) const { return op(c, a); }
};
template <class T, class Op> struct Bind2nd {
    T c; Op op;
    explicit Bind2nd(T c_) : c(c_) {}
    T operator()(T a) const { return op(a, c); }
};

// ---------------------------------------------------------------------
// containers
// ---------------------------------------------------------------------
template <class T> struct Vec {
    Index size = 0;
    std::vector<Index> idx;  // strictly increasing
    std::vector<T> val;
};

template <class T> struct CSR {
    Index nrows = 0, ncols = 0;
    std::vector<Index> indptr;   // nrows + 1
    std::vector<Index> indices;  // sorted within each row
    std::vector<T> values;
};

template <class T>
Vec<T> make_vec(Index size, const Index* idx, const T* val, Index nnz) {
    Vec<T> v; v.size = size;
    v.idx.assign(idx, idx + nnz);
    v.val.assign(val, val + nnz);
    return v;
}

template <class T>
CSR<T> make_csr(Index nrows, Index ncols, const Index* indptr, const Index* indices,
                const T* values) {
    CSR<T> m; m.nrows = nrows; m.ncols = ncols;
    m.indptr.assign(indptr, indptr + nrows + 1);
    const Index nnz = indptr[nrows];
    m.indices.assign(indices, indices + nnz);
    m.values.assign(values, values + nnz);
    return m;
}

// exported buffers are malloc'd so Python can free them with pygb_free()
template <class T>
Index export_vec(const Vec<T>& v, Index** out_idx, void** out_val) {
    const Index nnz = static_cast<Index>(v.idx.size());
    *out_idx = static_cast<Index*>(std::malloc(sizeof(Index) * std::max<Index>(nnz, 1)));
    T* vals = static_cast<T*>(std::malloc(sizeof(T) * std::max<Index>(nnz, 1)));
    std::memcpy(*out_idx, v.idx.data(), sizeof(Index) * nnz);
    std::memcpy(vals, v.val.data(), sizeof(T) * nnz);
    *out_val = vals;
    return nnz;
}

template <class T>
Index export_csr(const CSR<T>& m, Index** out_indptr, Index** out_indices, void** out_values) {
    const Index nnz = static_cast<Index>(m.indices.size());
    *out_indptr = static_cast<Index*>(std::malloc(sizeof(Index) * (m.nrows + 1)));
    *out_indices = static_cast<Index*>(std::malloc(sizeof(Index) * std::max<Index>(nnz, 1)));
    T* vals = static_cast<T*>(std::malloc(sizeof(T) * std::max<Index>(nnz, 1)));
    std::memcpy(*out_indptr, m.indptr.data(), sizeof(Index) * (m.nrows + 1));
    std::memcpy(*out_indices, m.indices.data(), sizeof(Index) * nnz);
    std::memcpy(vals, m.values.data(), sizeof(T) * nnz);
    *out_values = vals;
    return nnz;
}

// ---------------------------------------------------------------------
// computational kernels (produce the raw result T of the C API pipeline)
// ---------------------------------------------------------------------

// w = A ⊕.⊗ u : dense-accumulator row sweep, O(nnz(A))
template <class TT, class TA, class TU, class AddOp, class MultOp>
Vec<TT> mxv(const CSR<TA>& A, const Vec<TU>& u, AddOp add, MultOp mult) {
    std::vector<TT> ud(A.ncols);
    std::vector<uint8_t> up(A.ncols, 0);
    for (size_t k = 0; k < u.idx.size(); ++k) {
        ud[u.idx[k]] = static_cast<TT>(u.val[k]);
        up[u.idx[k]] = 1;
    }
    Vec<TT> out; out.size = A.nrows;
#ifdef _OPENMP
    if (num_threads() > 1 && A.nrows >= 256) {
        // row-parallel: each row folds in the serial order, so the result
        // is bit-identical to the serial build for any thread count
        std::vector<TT> racc(A.nrows);
        std::vector<uint8_t> rany(A.nrows, 0);
        #pragma omp parallel for schedule(dynamic, 512) num_threads(num_threads())
        for (Index i = 0; i < A.nrows; ++i) {
            TT acc{}; bool any = false;
            for (Index p = A.indptr[i]; p < A.indptr[i + 1]; ++p) {
                const Index j = A.indices[p];
                if (!up[j]) continue;
                const TT prod = mult(static_cast<TT>(A.values[p]), ud[j]);
                acc = any ? add(acc, prod) : prod;
                any = true;
            }
            racc[i] = acc; rany[i] = any;
        }
        for (Index i = 0; i < A.nrows; ++i)
            if (rany[i]) { out.idx.push_back(i); out.val.push_back(racc[i]); }
        return out;
    }
#endif
    for (Index i = 0; i < A.nrows; ++i) {
        if ((i & 1023) == 0 && cancel_requested()) break;
        TT acc{}; bool any = false;
        for (Index p = A.indptr[i]; p < A.indptr[i + 1]; ++p) {
            const Index j = A.indices[p];
            if (!up[j]) continue;
            const TT prod = mult(static_cast<TT>(A.values[p]), ud[j]);
            acc = any ? add(acc, prod) : prod;
            any = true;
        }
        if (any) { out.idx.push_back(i); out.val.push_back(acc); }
    }
    return out;
}

// w = u ⊕.⊗ A : scatter along the rows u touches, O(Σ nnz(A(k,:)))
template <class TT, class TA, class TU, class AddOp, class MultOp>
Vec<TT> vxm(const Vec<TU>& u, const CSR<TA>& A, AddOp add, MultOp mult) {
#ifdef _OPENMP
    const Index u_nnz = static_cast<Index>(u.idx.size());
    const int nt = num_threads();
    if (nt > 1 && u_nnz >= 64) {
        // each thread scatters a contiguous block of u's entries into a
        // private dense accumulator; blocks combine in block order, so
        // the output pattern is exactly the serial one and values only
        // re-associate across block boundaries (ULP-level for float ⊕)
        std::vector<std::vector<TT>> bacc(nt);
        std::vector<std::vector<uint8_t>> bhas(nt);
        #pragma omp parallel num_threads(nt)
        {
            const int t = omp_get_thread_num();
            auto& acc = bacc[t];
            auto& has = bhas[t];
            acc.assign(A.ncols, TT{});
            has.assign(A.ncols, 0);
            const Index lo = u_nnz * t / nt, hi = u_nnz * (t + 1) / nt;
            for (Index k = lo; k < hi; ++k) {
                const Index row = u.idx[k];
                const TT uv = static_cast<TT>(u.val[k]);
                for (Index p = A.indptr[row]; p < A.indptr[row + 1]; ++p) {
                    const Index j = A.indices[p];
                    const TT prod = mult(uv, static_cast<TT>(A.values[p]));
                    if (has[j]) acc[j] = add(acc[j], prod);
                    else { acc[j] = prod; has[j] = 1; }
                }
            }
        }
        Vec<TT> out; out.size = A.ncols;
        for (Index j = 0; j < A.ncols; ++j) {
            TT a{}; bool got = false;
            for (int t = 0; t < nt; ++t)
                if (bhas[t][j]) { a = got ? add(a, bacc[t][j]) : bacc[t][j]; got = true; }
            if (got) { out.idx.push_back(j); out.val.push_back(a); }
        }
        return out;
    }
#endif
    std::vector<TT> acc(A.ncols);
    std::vector<uint8_t> has(A.ncols, 0);
    for (size_t k = 0; k < u.idx.size(); ++k) {
        if ((k & 1023) == 0 && cancel_requested()) break;
        const Index row = u.idx[k];
        const TT uv = static_cast<TT>(u.val[k]);
        for (Index p = A.indptr[row]; p < A.indptr[row + 1]; ++p) {
            const Index j = A.indices[p];
            const TT prod = mult(uv, static_cast<TT>(A.values[p]));
            if (has[j]) acc[j] = add(acc[j], prod);
            else { acc[j] = prod; has[j] = 1; }
        }
    }
    Vec<TT> out; out.size = A.ncols;
    for (Index j = 0; j < A.ncols; ++j)
        if (has[j]) { out.idx.push_back(j); out.val.push_back(acc[j]); }
    return out;
}

// w<cand> = A ⊕.⊗ u over candidate rows only — the pull (gather)
// direction of a direction-optimized traversal.  Candidate rows are the
// positions the write mask can accept, so entries the masked finalize
// would discard are never computed.  Each row folds its present
// neighbours in stored (ascending-column) order, exactly as mxv()'s row
// sweep, so surviving entries are bit-identical to the dense form.
template <class TT, class TA, class TU, class AddOp, class MultOp>
Vec<TT> mxv_pull(const CSR<TA>& A, const Vec<TU>& u,
                 const Index* cand, Index n_cand, AddOp add, MultOp mult) {
    std::vector<TT> ud(A.ncols);
    std::vector<uint8_t> up(A.ncols, 0);
    for (size_t k = 0; k < u.idx.size(); ++k) {
        ud[u.idx[k]] = static_cast<TT>(u.val[k]);
        up[u.idx[k]] = 1;
    }
    Vec<TT> out; out.size = A.nrows;
    int64_t edges = 0;
    for (Index c = 0; c < n_cand; ++c) {
        if ((c & 1023) == 0 && cancel_requested()) break;
        const Index i = cand[c];
        edges += A.indptr[i + 1] - A.indptr[i];
        TT acc{}; bool any = false;
        for (Index p = A.indptr[i]; p < A.indptr[i + 1]; ++p) {
            const Index j = A.indices[p];
            if (!up[j]) continue;
            const TT prod = mult(static_cast<TT>(A.values[p]), ud[j]);
            acc = any ? add(acc, prod) : prod;
            any = true;
        }
        if (any) { out.idx.push_back(i); out.val.push_back(acc); }
    }
    edges_examined_ref() = edges;
    return out;
}

// Early-exiting pull for the LogicalOr add monoid (Beamer's bottom-up
// BFS step): a candidate row is finished at its first true product.  An
// output entry exists iff the row has any present neighbour (even an
// all-false one — implied-zero semantics of the full reduction) and its
// value is the OR of the products, so the result is independent of where
// the scan stops.  Neighbours are counted in the same geometrically
// growing blocks (4, 8, ... 4096) as the vectorised Python primitive
// spmv_pull_logical, and a row that retires mid-block still counts the
// whole block — the deterministic edges-examined figure is therefore
// identical across all three engines.
template <class TT, class TA, class TU, class MultOp>
Vec<TT> mxv_pull_or(const CSR<TA>& A, const Vec<TU>& u,
                    const Index* cand, Index n_cand, MultOp mult) {
    std::vector<TT> ud(A.ncols);
    std::vector<uint8_t> up(A.ncols, 0);
    for (size_t k = 0; k < u.idx.size(); ++k) {
        ud[u.idx[k]] = static_cast<TT>(u.val[k]);
        up[u.idx[k]] = 1;
    }
    Vec<TT> out; out.size = A.nrows;
    int64_t edges = 0;
    for (Index c = 0; c < n_cand; ++c) {
        if ((c & 1023) == 0 && cancel_requested()) break;
        const Index i = cand[c];
        Index cur = A.indptr[i];
        const Index end = A.indptr[i + 1];
        bool seen = false, hit = false;
        Index block = 4;
        while (cur < end && !hit) {
            Index take = end - cur;
            if (take > block) take = block;
            edges += take;
            for (Index p = cur; p < cur + take; ++p) {
                const Index j = A.indices[p];
                if (!up[j]) continue;
                seen = true;
                if (bool(mult(static_cast<TT>(A.values[p]), ud[j]))) hit = true;
            }
            cur += take;
            block = block * 2 > 4096 ? 4096 : block * 2;
        }
        if (seen) { out.idx.push_back(i); out.val.push_back(static_cast<TT>(hit)); }
    }
    edges_examined_ref() = edges;
    return out;
}

// C = A ⊕.⊗ B : Gustavson with a dense per-row workspace
template <class TT, class TA, class TB, class AddOp, class MultOp>
CSR<TT> mxm(const CSR<TA>& A, const CSR<TB>& B, AddOp add, MultOp mult) {
    CSR<TT> out; out.nrows = A.nrows; out.ncols = B.ncols;
    out.indptr.assign(A.nrows + 1, 0);
#ifdef _OPENMP
    if (num_threads() > 1 && A.nrows >= 64) {
        // parallel Gustavson: per-thread dense workspace, per-row result
        // buffers, then a prefix-sum stitch — rows compute in the serial
        // operation order, so the product is bit-identical to serial
        std::vector<std::vector<Index>> ridx(A.nrows);
        std::vector<std::vector<TT>> rval(A.nrows);
        #pragma omp parallel num_threads(num_threads())
        {
            std::vector<TT> acc(B.ncols);
            std::vector<Index> mark(B.ncols, -1);
            std::vector<Index> touched;
            #pragma omp for schedule(dynamic, 64)
            for (Index i = 0; i < A.nrows; ++i) {
                touched.clear();
                for (Index p = A.indptr[i]; p < A.indptr[i + 1]; ++p) {
                    const Index k = A.indices[p];
                    const TT av = static_cast<TT>(A.values[p]);
                    for (Index q = B.indptr[k]; q < B.indptr[k + 1]; ++q) {
                        const Index j = B.indices[q];
                        const TT prod = mult(av, static_cast<TT>(B.values[q]));
                        if (mark[j] == i) acc[j] = add(acc[j], prod);
                        else { mark[j] = i; acc[j] = prod; touched.push_back(j); }
                    }
                }
                std::sort(touched.begin(), touched.end());
                ridx[i].assign(touched.begin(), touched.end());
                rval[i].reserve(touched.size());
                for (const Index j : touched) rval[i].push_back(acc[j]);
            }
        }
        for (Index i = 0; i < A.nrows; ++i)
            out.indptr[i + 1] = out.indptr[i] + static_cast<Index>(ridx[i].size());
        out.indices.resize(out.indptr[A.nrows]);
        out.values.resize(out.indptr[A.nrows]);
        #pragma omp parallel for schedule(static) num_threads(num_threads())
        for (Index i = 0; i < A.nrows; ++i) {
            std::copy(ridx[i].begin(), ridx[i].end(), out.indices.begin() + out.indptr[i]);
            std::copy(rval[i].begin(), rval[i].end(), out.values.begin() + out.indptr[i]);
        }
        return out;
    }
#endif
    std::vector<TT> acc(B.ncols);
    std::vector<Index> mark(B.ncols, -1);
    std::vector<Index> touched;
    for (Index i = 0; i < A.nrows; ++i) {
        if ((i & 1023) == 0 && cancel_requested()) break;
        touched.clear();
        for (Index p = A.indptr[i]; p < A.indptr[i + 1]; ++p) {
            const Index k = A.indices[p];
            const TT av = static_cast<TT>(A.values[p]);
            for (Index q = B.indptr[k]; q < B.indptr[k + 1]; ++q) {
                const Index j = B.indices[q];
                const TT prod = mult(av, static_cast<TT>(B.values[q]));
                if (mark[j] == i) acc[j] = add(acc[j], prod);
                else { mark[j] = i; acc[j] = prod; touched.push_back(j); }
            }
        }
        std::sort(touched.begin(), touched.end());
        for (const Index j : touched) {
            out.indices.push_back(j);
            out.values.push_back(acc[j]);
        }
        out.indptr[i + 1] = static_cast<Index>(out.indices.size());
    }
    return out;
}

// eWiseAdd on vectors: union merge of two sorted coordinate lists
template <class TT, class TU, class TV, class Op>
Vec<TT> ewise_add(const Vec<TU>& u, const Vec<TV>& v, Op op) {
    Vec<TT> out; out.size = u.size;
    size_t i = 0, j = 0;
    while (i < u.idx.size() || j < v.idx.size()) {
        if (j >= v.idx.size() || (i < u.idx.size() && u.idx[i] < v.idx[j])) {
            out.idx.push_back(u.idx[i]);
            out.val.push_back(static_cast<TT>(u.val[i]));
            ++i;
        } else if (i >= u.idx.size() || v.idx[j] < u.idx[i]) {
            out.idx.push_back(v.idx[j]);
            out.val.push_back(static_cast<TT>(v.val[j]));
            ++j;
        } else {
            out.idx.push_back(u.idx[i]);
            out.val.push_back(op(static_cast<TT>(u.val[i]), static_cast<TT>(v.val[j])));
            ++i; ++j;
        }
    }
    return out;
}

// eWiseMult on vectors: intersection merge
template <class TT, class TU, class TV, class Op>
Vec<TT> ewise_mult(const Vec<TU>& u, const Vec<TV>& v, Op op) {
    Vec<TT> out; out.size = u.size;
    size_t i = 0, j = 0;
    while (i < u.idx.size() && j < v.idx.size()) {
        if (u.idx[i] < v.idx[j]) ++i;
        else if (v.idx[j] < u.idx[i]) ++j;
        else {
            out.idx.push_back(u.idx[i]);
            out.val.push_back(op(static_cast<TT>(u.val[i]), static_cast<TT>(v.val[j])));
            ++i; ++j;
        }
    }
    return out;
}

// matrix eWise ops: the vector merges applied row by row
template <class TT, class TA, class TB, class Op>
CSR<TT> ewise_add_mat(const CSR<TA>& A, const CSR<TB>& B, Op op) {
    CSR<TT> out; out.nrows = A.nrows; out.ncols = A.ncols;
    out.indptr.assign(A.nrows + 1, 0);
#ifdef _OPENMP
    if (num_threads() > 1 && A.nrows >= 256) {
        // two-pass union merge: count per row, prefix-sum, fill at fixed
        // offsets — bit-identical to the serial merge
        #pragma omp parallel for schedule(static) num_threads(num_threads())
        for (Index r = 0; r < A.nrows; ++r) {
            Index i = A.indptr[r], j = B.indptr[r], n = 0;
            const Index ie = A.indptr[r + 1], je = B.indptr[r + 1];
            while (i < ie || j < je) {
                if (j >= je || (i < ie && A.indices[i] < B.indices[j])) ++i;
                else if (i >= ie || B.indices[j] < A.indices[i]) ++j;
                else { ++i; ++j; }
                ++n;
            }
            out.indptr[r + 1] = n;
        }
        for (Index r = 0; r < A.nrows; ++r) out.indptr[r + 1] += out.indptr[r];
        out.indices.resize(out.indptr[A.nrows]);
        out.values.resize(out.indptr[A.nrows]);
        #pragma omp parallel for schedule(static) num_threads(num_threads())
        for (Index r = 0; r < A.nrows; ++r) {
            Index i = A.indptr[r], j = B.indptr[r], w = out.indptr[r];
            const Index ie = A.indptr[r + 1], je = B.indptr[r + 1];
            while (i < ie || j < je) {
                if (j >= je || (i < ie && A.indices[i] < B.indices[j])) {
                    out.indices[w] = A.indices[i];
                    out.values[w] = static_cast<TT>(A.values[i]);
                    ++i;
                } else if (i >= ie || B.indices[j] < A.indices[i]) {
                    out.indices[w] = B.indices[j];
                    out.values[w] = static_cast<TT>(B.values[j]);
                    ++j;
                } else {
                    out.indices[w] = A.indices[i];
                    out.values[w] =
                        op(static_cast<TT>(A.values[i]), static_cast<TT>(B.values[j]));
                    ++i; ++j;
                }
                ++w;
            }
        }
        return out;
    }
#endif
    for (Index r = 0; r < A.nrows; ++r) {
        Index i = A.indptr[r], j = B.indptr[r];
        const Index ie = A.indptr[r + 1], je = B.indptr[r + 1];
        while (i < ie || j < je) {
            if (j >= je || (i < ie && A.indices[i] < B.indices[j])) {
                out.indices.push_back(A.indices[i]);
                out.values.push_back(static_cast<TT>(A.values[i]));
                ++i;
            } else if (i >= ie || B.indices[j] < A.indices[i]) {
                out.indices.push_back(B.indices[j]);
                out.values.push_back(static_cast<TT>(B.values[j]));
                ++j;
            } else {
                out.indices.push_back(A.indices[i]);
                out.values.push_back(
                    op(static_cast<TT>(A.values[i]), static_cast<TT>(B.values[j])));
                ++i; ++j;
            }
        }
        out.indptr[r + 1] = static_cast<Index>(out.indices.size());
    }
    return out;
}

template <class TT, class TA, class TB, class Op>
CSR<TT> ewise_mult_mat(const CSR<TA>& A, const CSR<TB>& B, Op op) {
    CSR<TT> out; out.nrows = A.nrows; out.ncols = A.ncols;
    out.indptr.assign(A.nrows + 1, 0);
#ifdef _OPENMP
    if (num_threads() > 1 && A.nrows >= 256) {
        // two-pass intersection merge, same stitch as ewise_add_mat
        #pragma omp parallel for schedule(static) num_threads(num_threads())
        for (Index r = 0; r < A.nrows; ++r) {
            Index i = A.indptr[r], j = B.indptr[r], n = 0;
            const Index ie = A.indptr[r + 1], je = B.indptr[r + 1];
            while (i < ie && j < je) {
                if (A.indices[i] < B.indices[j]) ++i;
                else if (B.indices[j] < A.indices[i]) ++j;
                else { ++i; ++j; ++n; }
            }
            out.indptr[r + 1] = n;
        }
        for (Index r = 0; r < A.nrows; ++r) out.indptr[r + 1] += out.indptr[r];
        out.indices.resize(out.indptr[A.nrows]);
        out.values.resize(out.indptr[A.nrows]);
        #pragma omp parallel for schedule(static) num_threads(num_threads())
        for (Index r = 0; r < A.nrows; ++r) {
            Index i = A.indptr[r], j = B.indptr[r], w = out.indptr[r];
            const Index ie = A.indptr[r + 1], je = B.indptr[r + 1];
            while (i < ie && j < je) {
                if (A.indices[i] < B.indices[j]) ++i;
                else if (B.indices[j] < A.indices[i]) ++j;
                else {
                    out.indices[w] = A.indices[i];
                    out.values[w] =
                        op(static_cast<TT>(A.values[i]), static_cast<TT>(B.values[j]));
                    ++i; ++j; ++w;
                }
            }
        }
        return out;
    }
#endif
    for (Index r = 0; r < A.nrows; ++r) {
        Index i = A.indptr[r], j = B.indptr[r];
        const Index ie = A.indptr[r + 1], je = B.indptr[r + 1];
        while (i < ie && j < je) {
            if (A.indices[i] < B.indices[j]) ++i;
            else if (B.indices[j] < A.indices[i]) ++j;
            else {
                out.indices.push_back(A.indices[i]);
                out.values.push_back(
                    op(static_cast<TT>(A.values[i]), static_cast<TT>(B.values[j])));
                ++i; ++j;
            }
        }
        out.indptr[r + 1] = static_cast<Index>(out.indices.size());
    }
    return out;
}

template <class TT, class TU, class F>
Vec<TT> apply_vec(const Vec<TU>& u, F f) {
    Vec<TT> out; out.size = u.size;
    out.idx = u.idx;
    const Index n = static_cast<Index>(u.val.size());
    out.val.resize(n);
    // element-parallel map: trivially bit-identical
    #pragma omp parallel for schedule(static) num_threads(num_threads()) if (n >= 4096)
    for (Index k = 0; k < n; ++k) out.val[k] = f(static_cast<TT>(u.val[k]));
    return out;
}

template <class TT, class TA, class F>
CSR<TT> apply_mat(const CSR<TA>& A, F f) {
    CSR<TT> out; out.nrows = A.nrows; out.ncols = A.ncols;
    out.indptr = A.indptr;
    out.indices = A.indices;
    const Index n = static_cast<Index>(A.values.size());
    out.values.resize(n);
    #pragma omp parallel for schedule(static) num_threads(num_threads()) if (n >= 4096)
    for (Index k = 0; k < n; ++k) out.values[k] = f(static_cast<TT>(A.values[k]));
    return out;
}

template <class T, class Op>
T reduce_values(const std::vector<T>& vals, Op op, T identity) {
    const Index n = static_cast<Index>(vals.size());
    if (n == 0) return identity;
#ifdef _OPENMP
    constexpr Index kChunk = Index(1) << 15;
    if (num_threads() > 1 && n > 2 * kChunk) {
        // fixed-size chunks folded left-to-right: deterministic for any
        // thread count (chunking depends only on the data length)
        const Index nchunks = (n + kChunk - 1) / kChunk;
        std::vector<T> partial(nchunks);
        #pragma omp parallel for schedule(static) num_threads(num_threads())
        for (Index c = 0; c < nchunks; ++c) {
            const Index lo = c * kChunk;
            const Index hi = std::min(n, lo + kChunk);
            T a = vals[lo];
            for (Index k = lo + 1; k < hi; ++k) a = op(a, vals[k]);
            partial[c] = a;
        }
        T acc = partial[0];
        for (Index c = 1; c < nchunks; ++c) acc = op(acc, partial[c]);
        return acc;
    }
#endif
    T acc = vals[0];
    for (Index i = 1; i < n; ++i) acc = op(acc, vals[i]);
    return acc;
}

template <class TT, class TA, class Op>
Vec<TT> reduce_rows(const CSR<TA>& A, Op op) {
    Vec<TT> out; out.size = A.nrows;
#ifdef _OPENMP
    if (num_threads() > 1 && A.nrows >= 256) {
        // row-parallel fold in serial order: bit-identical to serial
        std::vector<TT> racc(A.nrows);
        std::vector<uint8_t> rany(A.nrows, 0);
        #pragma omp parallel for schedule(dynamic, 512) num_threads(num_threads())
        for (Index i = 0; i < A.nrows; ++i) {
            const Index lo = A.indptr[i], hi = A.indptr[i + 1];
            if (lo == hi) continue;
            TT acc = static_cast<TT>(A.values[lo]);
            for (Index p = lo + 1; p < hi; ++p) acc = op(acc, static_cast<TT>(A.values[p]));
            racc[i] = acc; rany[i] = 1;
        }
        for (Index i = 0; i < A.nrows; ++i)
            if (rany[i]) { out.idx.push_back(i); out.val.push_back(racc[i]); }
        return out;
    }
#endif
    for (Index i = 0; i < A.nrows; ++i) {
        const Index lo = A.indptr[i], hi = A.indptr[i + 1];
        if (lo == hi) continue;
        TT acc = static_cast<TT>(A.values[lo]);
        for (Index p = lo + 1; p < hi; ++p) acc = op(acc, static_cast<TT>(A.values[p]));
        out.idx.push_back(i);
        out.val.push_back(acc);
    }
    return out;
}

// w(i) = u : embed u into positions idx (GrB_assign region map, no dedup —
// callers pass unique index lists)
template <class T>
Vec<T> scatter_vec(const Vec<T>& u, const Index* indices, Index n_indices, Index out_size) {
    Vec<T> out; out.size = out_size;
    std::vector<std::pair<Index, T>> items;
    items.reserve(u.idx.size());
    for (size_t k = 0; k < u.idx.size(); ++k)
        items.emplace_back(indices[u.idx[k]], u.val[k]);
    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& it : items) { out.idx.push_back(it.first); out.val.push_back(it.second); }
    (void)n_indices;
    return out;
}

// ---------------------------------------------------------------------
// the masked accumulate-write stage: C<M, z> = C ⊙ T  (C API pipeline)
// ---------------------------------------------------------------------
template <class TC, class TT, class AccumOp>
Vec<TC> write_back_vec(const Vec<TC>& C, const Vec<TT>& T, const Vec<uint8_t>* mask,
                       bool comp, bool replace, bool has_accum, AccumOp accum) {
    const Index n = C.size;
    // dense presence maps keep this O(n); vector sizes are graph-scale
    std::vector<uint8_t> c_has(n, 0), t_has(n, 0), m_true(n, 0);
    std::vector<TC> c_val(n);
    std::vector<TC> t_val(n);
    for (size_t k = 0; k < C.idx.size(); ++k) { c_has[C.idx[k]] = 1; c_val[C.idx[k]] = C.val[k]; }
    for (size_t k = 0; k < T.idx.size(); ++k) {
        t_has[T.idx[k]] = 1;
        t_val[T.idx[k]] = static_cast<TC>(T.val[k]);
    }
    if (mask)
        for (size_t k = 0; k < mask->idx.size(); ++k)
            if (mask->val[k]) m_true[mask->idx[k]] = 1;
    Vec<TC> out; out.size = n;
    for (Index i = 0; i < n; ++i) {
        // Z(i)
        bool z_has; TC z{};
        if (has_accum && c_has[i] && t_has[i]) { z_has = true; z = accum(c_val[i], t_val[i]); }
        else if (has_accum && c_has[i]) { z_has = true; z = c_val[i]; }
        else if (t_has[i]) { z_has = true; z = t_val[i]; }
        else { z_has = false; }
        const bool in_mask = mask ? (bool(m_true[i]) != comp) : true;
        if (in_mask) {
            if (z_has) { out.idx.push_back(i); out.val.push_back(z); }
        } else if (!replace && c_has[i]) {
            out.idx.push_back(i);
            out.val.push_back(c_val[i]);
        }
    }
    return out;
}

template <class TC, class TT, class AccumOp>
CSR<TC> write_back_mat(const CSR<TC>& C, const CSR<TT>& T, const CSR<uint8_t>* mask,
                       bool comp, bool replace, bool has_accum, AccumOp accum) {
    const Index nrows = C.nrows, ncols = C.ncols;
    CSR<TC> out; out.nrows = nrows; out.ncols = ncols;
    out.indptr.assign(nrows + 1, 0);
    // per-row dense workspaces, reset via touch lists
    std::vector<int8_t> state(ncols, 0);  // bit0: c present, bit1: t present
    std::vector<TC> cv(ncols), tv(ncols);
    std::vector<uint8_t> mt(ncols, 0);
    std::vector<Index> touched, mtouched;
    for (Index r = 0; r < nrows; ++r) {
        touched.clear(); mtouched.clear();
        for (Index p = C.indptr[r]; p < C.indptr[r + 1]; ++p) {
            const Index j = C.indices[p];
            if (!state[j]) touched.push_back(j);
            state[j] |= 1; cv[j] = C.values[p];
        }
        for (Index p = T.indptr[r]; p < T.indptr[r + 1]; ++p) {
            const Index j = T.indices[p];
            if (!state[j]) touched.push_back(j);
            state[j] |= 2; tv[j] = static_cast<TC>(T.values[p]);
        }
        if (mask)
            for (Index p = mask->indptr[r]; p < mask->indptr[r + 1]; ++p)
                if (mask->values[p]) { mt[mask->indices[p]] = 1; mtouched.push_back(mask->indices[p]); }
        std::sort(touched.begin(), touched.end());
        for (const Index j : touched) {
            const bool ch = state[j] & 1, th = state[j] & 2;
            bool z_has; TC z{};
            if (has_accum && ch && th) { z_has = true; z = accum(cv[j], tv[j]); }
            else if (has_accum && ch) { z_has = true; z = cv[j]; }
            else if (th) { z_has = true; z = tv[j]; }
            else { z_has = false; }
            const bool in_mask = mask ? (bool(mt[j]) != comp) : true;
            if (in_mask) {
                if (z_has) { out.indices.push_back(j); out.values.push_back(z); }
            } else if (!replace && ch) {
                out.indices.push_back(j);
                out.values.push_back(cv[j]);
            }
        }
        out.indptr[r + 1] = static_cast<Index>(out.indices.size());
        for (const Index j : touched) state[j] = 0;
        for (const Index j : mtouched) mt[j] = 0;
    }
    return out;
}

}  // namespace GB

extern "C" void pygb_free(void* p) { std::free(p); }
"""
