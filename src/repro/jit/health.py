"""Per-spec engine health: the JIT runtime's circuit breaker.

A spec whose compile or load fails is *quarantined*: the engine refuses
to re-attempt the build until an exponential-backoff window expires, so
a hot loop dispatching the same broken kernel thousands of times pays
for exactly one doomed ``g++`` run per window instead of one per call.
After ``$PYGB_JIT_RETRIES`` failed attempts (default 3) the quarantine
becomes permanent for the life of the process.

The registry lives on each :class:`~repro.jit.cache.JitCache` (shared by
the engines that share the cache) and is surfaced by
``python -m repro doctor``.

``$PYGB_JIT_STRICT=1`` restores the pre-resilience behaviour: failures
are still recorded for diagnostics, but nothing is quarantined, no
fallback warning is emitted, and the dispatch layer lets the original
exception propagate.
"""

from __future__ import annotations

import math
import os
import threading
import time
import warnings

from ..exceptions import JitFallbackWarning, KernelQuarantined

__all__ = [
    "EngineHealth",
    "jit_retries",
    "jit_strict",
    "DEFAULT_RETRIES",
    "DEFAULT_BACKOFF_SECONDS",
]

DEFAULT_RETRIES = 3
DEFAULT_BACKOFF_SECONDS = 0.5  # doubles after every failed retry


def _truthy(value: str | None) -> bool:
    return value is not None and value.strip().lower() not in ("", "0", "false", "off", "no")


def jit_strict() -> bool:
    """The ``$PYGB_JIT_STRICT`` switch: raise on JIT failure instead of
    degrading down the engine chain.  Re-read on every use so tests (and
    operators) can flip it without rebuilding engines."""
    return _truthy(os.environ.get("PYGB_JIT_STRICT"))


def jit_retries() -> int:
    """Build attempts per spec before its quarantine becomes permanent
    (``$PYGB_JIT_RETRIES``, default 3)."""
    env = os.environ.get("PYGB_JIT_RETRIES")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return DEFAULT_RETRIES


class _SpecHealth:
    __slots__ = ("failures", "attempts", "quarantined_until", "warned", "last_error")

    def __init__(self):
        self.failures = 0
        self.attempts = 0
        self.quarantined_until = 0.0  # monotonic deadline; inf = permanent
        self.warned = False
        self.last_error = ""


class EngineHealth:
    """Failure counters and quarantine state keyed by ``(engine, spec key)``."""

    #: default one-time warning; ``{engine}``/``{key}``/``{error}`` slots
    DEFAULT_WARN_TEMPLATE = (
        "pygb: {engine} JIT failed for {key} ({error}); quarantined, "
        "executing on the next engine in the fallback chain "
        "(set PYGB_JIT_STRICT=1 to raise instead)"
    )

    def __init__(self, retries: int | None = None,
                 backoff: float = DEFAULT_BACKOFF_SECONDS, *,
                 warn_template: str | None = None,
                 event_name: str = "quarantine",
                 event_cat: str = "cache"):
        self._lock = threading.Lock()
        self._records: dict[tuple[str, str], _SpecHealth] = {}
        self._retries = retries
        self._backoff = backoff
        self._warn_template = warn_template or self.DEFAULT_WARN_TEMPLATE
        self._event_name = event_name
        self._event_cat = event_cat

    def _max_attempts(self) -> int:
        return self._retries if self._retries is not None else jit_retries()

    # ------------------------------------------------------------------
    def check(self, engine: str, key: str) -> None:
        """Raise :class:`KernelQuarantined` when *key* is circuit-broken
        on *engine*; cheap no-op for healthy specs (and in strict mode)."""
        if not self._records or jit_strict():
            return
        with self._lock:
            rec = self._records.get((engine, key))
            if rec is None or rec.failures == 0:
                return
            if time.monotonic() < rec.quarantined_until:
                raise KernelQuarantined(
                    f"{engine} kernel for {key} quarantined after "
                    f"{rec.failures} failure(s): {rec.last_error}"
                )
            # backoff expired: let exactly this caller retry (half-open)

    def record_failure(self, engine: str, key: str, error: BaseException) -> bool:
        """Record a compile/load failure; returns True when the spec just
        entered quarantine for the first time (one warning per spec)."""
        strict = jit_strict()
        with self._lock:
            rec = self._records.setdefault((engine, key), _SpecHealth())
            rec.failures += 1
            rec.attempts += 1
            rec.last_error = str(error) or type(error).__name__
            if not strict:
                if rec.attempts >= self._max_attempts():
                    rec.quarantined_until = math.inf
                else:
                    rec.quarantined_until = time.monotonic() + (
                        self._backoff * 2 ** (rec.attempts - 1)
                    )
            newly = not rec.warned and not strict
            rec.warned = rec.warned or newly
        if not strict:
            from .. import obs

            if obs.ACTIVE:
                obs.record_event(
                    self._event_name, self._event_cat, engine=engine, spec=key,
                    failures=rec.failures,
                )
        if newly:
            warnings.warn(
                self._warn_template.format(
                    engine=engine, key=key,
                    error=rec.last_error.splitlines()[0][:200],
                ),
                JitFallbackWarning,
                stacklevel=3,
            )
        return newly

    def record_success(self, engine: str, key: str) -> None:
        """A build/load succeeded: drop any failure record (recovered)."""
        if not self._records:
            return
        with self._lock:
            self._records.pop((engine, key), None)

    # ------------------------------------------------------------------
    def quarantined(self, engine: str, key: str) -> bool:
        with self._lock:
            rec = self._records.get((engine, key))
            return rec is not None and time.monotonic() < rec.quarantined_until

    def snapshot(self) -> dict:
        """Totals plus one row per unhealthy spec (for ``repro doctor``)."""
        now = time.monotonic()
        with self._lock:
            rows = []
            for (engine, key), rec in self._records.items():
                if rec.failures == 0:
                    continue
                if rec.quarantined_until == math.inf:
                    state = "quarantined (permanent)"
                elif now < rec.quarantined_until:
                    state = f"quarantined (retry in {rec.quarantined_until - now:.1f}s)"
                else:
                    state = "retry allowed"
                rows.append({
                    "engine": engine,
                    "key": key,
                    "failures": rec.failures,
                    "attempts": rec.attempts,
                    "state": state,
                    "last_error": rec.last_error.splitlines()[0][:200] if rec.last_error else "",
                })
            return {
                "failures": sum(r["failures"] for r in rows),
                "specs": sorted(rows, key=lambda r: (r["engine"], r["key"])),
            }

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
