"""Ahead-of-time cache warming (non-blocking compilation, paper Sec. V).

The paper notes that dynamic compilation "can be amortized over future
runs" but every *first* run still pays the g++ latency inline.  This
module removes that cost up front: :func:`warm_cache` fans the known
algorithm kernel set out over :meth:`JitCache.precompile`'s thread pool,
so by the time an algorithm dispatches its first operation the shared
object is already on disk (a cache hit, not a compile).

The spec list below was captured by tracing every bundled algorithm
(BFS, SSSP, PageRank, triangle count — both the operation-at-a-time and
the whole-algorithm compiled versions) under the ``cpp`` engine; the
``test_warm_cache_covers_algorithms`` drift guard re-derives it the same
way, so additions to the algorithms fail loudly here instead of silently
compiling at run time.
"""

from __future__ import annotations

from ..exceptions import CompilationError
from .cache import JitCache, default_cache
from .cppcodegen import PARALLEL_FUNCS, generate_cpp_source
from .spec import KernelSpec

__all__ = ["algorithm_kernel_specs", "algorithm_module_specs", "warm_cache"]

# (func, params) for every per-operation kernel the bundled algorithms
# dispatch.  Keep sorted by func for readability.
_ALGORITHM_KERNELS: tuple[tuple[str, dict], ...] = (
    ("apply_mat", dict(a="float64", accum="none", c="float64", comp=0,
                       form="bind", mask="none", op="Times", repl=0,
                       side="second")),
    ("apply_mat", dict(a="int64", accum="none", c="float64", comp=0,
                       form="unary", mask="none", op="Identity", repl=0,
                       side="none")),
    ("apply_vec", dict(a="float64", accum="none", c="float64", comp=0,
                       form="bind", mask="none", op="Plus", repl=0,
                       side="second")),
    ("assign_vec", dict(a="float64", accum="none", c="float64", comp=0,
                        mask="none", repl=0)),
    ("assign_vec_scalar", dict(accum="none", c="float64", comp=0,
                               mask="none", repl=0)),
    ("assign_vec_scalar", dict(accum="none", c="int64", comp=0,
                               mask="value", repl=0)),
    ("ewise_add_vec", dict(a="float64", accum="none", b="float64",
                           c="float64", comp=0, mask="none", op="Minus",
                           repl=0, t_dtype="float64")),
    ("ewise_mult_vec", dict(a="float64", accum="none", b="float64",
                            c="float64", comp=0, mask="none", op="Times",
                            repl=0, t_dtype="float64")),
    ("ewise_mult_vec_reduce_scalar", dict(a="float64", b="float64", fused=1,
                                          op="Times", p="float64",
                                          rop="Plus")),
    ("mxm", dict(a="int64", accum="none", add="Plus", b="int64", c="int64",
                 comp=0, mask="value", mult="Times", repl=0,
                 t_dtype="int64")),
    ("mxv", dict(a="float64", accum="Min", add="Min", c="float64", comp=0,
                 mask="none", mult="Plus", repl=0, t_dtype="float64",
                 u="float64")),
    ("mxv", dict(a="float64", accum="Min", add="Min", c="float64", comp=0,
                 dir="push", mask="none", mult="Plus", repl=0,
                 t_dtype="float64", u="float64")),
    ("mxv", dict(a="int64", accum="Min", add="Min", c="int64", comp=0,
                 mask="none", mult="Second", repl=0, t_dtype="int64",
                 u="int64")),
    ("mxv", dict(a="int64", accum="Min", add="Min", c="int64", comp=0,
                 dir="push", mask="none", mult="Second", repl=0,
                 t_dtype="int64", u="int64")),
    ("mxv", dict(a="int64", accum="none", add="LogicalOr", c="bool", comp=1,
                 mask="value", mult="LogicalAnd", repl=1, t_dtype="bool",
                 u="bool")),
    # the auto schedule's direction-optimized variants of the BFS step
    # (push on sparse frontiers, pull with the LogicalOr early exit on
    # dense ones) and of the unmasked SSSP / connected-components
    # relaxations (push)
    ("mxv", dict(a="int64", accum="none", add="LogicalOr", c="bool", comp=1,
                 dir="push", mask="value", mult="LogicalAnd", repl=1,
                 t_dtype="bool", u="bool")),
    ("mxv", dict(a="int64", accum="none", add="LogicalOr", c="bool", comp=1,
                 dir="pull", mask="value", mult="LogicalAnd", repl=1,
                 t_dtype="bool", u="bool")),
    ("reduce_mat_scalar", dict(a="int64", op="Plus")),
    ("reduce_vec_scalar", dict(a="float64", op="Plus")),
    ("vxm", dict(a="float64", accum="Second", add="Plus", c="float64",
                 comp=0, mask="none", mult="Times", repl=0,
                 t_dtype="float64", u="float64")),
)

# (func, vtype) for the whole-algorithm compiled modules (Fig. 10
# versions 2/3).
_ALGORITHM_MODULES: tuple[tuple[str, str], ...] = (
    ("algo_bfs", "int64"),
    ("algo_pagerank", "float64"),
    ("algo_sssp", "float64"),
    ("algo_triangle_count", "int64"),
)


def algorithm_kernel_specs(parallel: bool = False) -> list[KernelSpec]:
    """The per-operation kernel specs the bundled algorithms use, with
    ``par=1`` stamped on parallel-capable functions when *parallel*."""
    specs = []
    for func, params in _ALGORITHM_KERNELS:
        p = dict(params)
        if parallel and func in PARALLEL_FUNCS:
            p["par"] = True
        specs.append(KernelSpec.make(func, **p))
    return specs


def algorithm_module_specs(parallel: bool = False) -> list[KernelSpec]:
    """Specs of the whole-algorithm C++ modules."""
    specs = []
    for func, vtype in _ALGORITHM_MODULES:
        p: dict = {"vtype": vtype}
        if parallel:
            p["par"] = True
        specs.append(KernelSpec.make(func, **p))
    return specs


def warm_cache(
    cache: JitCache | None = None,
    parallel: bool | None = None,
    include_algorithm_modules: bool = True,
    max_workers: int | None = None,
) -> dict:
    """Pre-build the algorithm kernel set with concurrent g++ jobs.

    *parallel* selects which artifact flavour to warm; ``None`` means
    "whatever the engine would dispatch right now" (``$PYGB_PARALLEL``
    plus the ``-fopenmp`` probe).  Returns the :meth:`JitCache.precompile`
    report dict with ``openmp`` and ``parallel`` keys added.
    """
    # imported late: cppengine raises BackendUnavailable without a
    # toolchain, and importing it triggers no probe by itself
    from .algorithm_codegen import generate_algorithm_source
    from .cppengine import CppJitEngine, openmp_available

    cache = cache if cache is not None else default_cache()
    engine = CppJitEngine(cache)
    if parallel is None:
        parallel = engine.parallel_enabled()

    jobs = [
        (spec, generate_cpp_source, ".cpp", engine.compiler_for(spec))
        for spec in algorithm_kernel_specs(parallel)
    ]
    if include_algorithm_modules:
        jobs += [
            (spec, generate_algorithm_source, ".cpp", engine.compiler_for(spec))
            for spec in algorithm_module_specs(parallel)
        ]
    report = cache.precompile(jobs, max_workers=max_workers)
    # failed specs are recorded against the cpp engine's health up front,
    # so a later algorithm run skips straight to the fallback chain (and
    # ``repro doctor`` shows what precompilation discovered); the report
    # itself is the user-facing signal here, so the per-spec fallback
    # warnings are suppressed
    if report["failed"]:
        import warnings

        from ..exceptions import JitFallbackWarning

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", JitFallbackWarning)
            for key, err in report["failed"]:
                cache.note_jit_failure()
                cache.health.record_failure(engine.name, key, CompilationError(err))
    report["parallel"] = parallel
    report["openmp"] = openmp_available(engine.cxx)
    return report
