"""The ``pyjit`` execution engine: Fig. 9's dispatch stage with Python
code generation.

Each method inspects its runtime arguments exactly the way the paper's
``operate()`` does — "the data types of each operand is checked to
determine the output type through standard typecasting rules" — builds
the :class:`~repro.jit.spec.KernelSpec`, fetches the specialised module
through the memory→disk→compile cache, and invokes its ``run``.
"""

from __future__ import annotations

import time

from .. import obs, schedule as _schedule
from ..backend.kernels import OpDesc
from ..backend.ops_table import binary_result_dtype
from ..exceptions import CompilationError
from ..testing.faults import FAULTS
from .cache import JitCache, default_cache
from .pycodegen import generate_source
from .spec import KernelSpec

__all__ = ["PyJitEngine"]


def _desc_params(desc: OpDesc) -> dict:
    return {
        "mask": "none" if desc.mask is None else "value",
        "comp": desc.complement,
        "repl": desc.replace,
        "accum": desc.accum or "none",
    }


def _unary_params(op_spec) -> tuple[dict, object]:
    """Spec params + runtime constant for the apply operator inside a
    fused kernel (keyed ``uop`` so it cannot clash with the producer's
    binary/semiring ``op`` params)."""
    if op_spec[0] == "unary":
        return {"form": "unary", "uop": op_spec[1], "side": "none"}, None
    _, op, const, side = op_spec
    return {"form": "bind", "uop": op, "side": side}, const


class _TracedModule:
    """Stand-in for a generated module while tracing is active: its
    ``run`` gets a span carrying the kernel spec, nested inside the
    dispatch-level op span."""

    __slots__ = ("_mod", "_key", "_tracer")

    def __init__(self, mod, key: str, tracer):
        self._mod = mod
        self._key = key
        self._tracer = tracer

    def run(self, *args, **kwargs):
        t0 = time.perf_counter_ns()
        try:
            return self._mod.run(*args, **kwargs)
        finally:
            self._tracer.record(
                "kernel",
                "pyjit",
                t0,
                time.perf_counter_ns() - t0,
                {"engine": "pyjit", "spec": self._key},
            )

    def __getattr__(self, attr):  # anything beyond run (tests, repr)
        return getattr(self._mod, attr)


class PyJitEngine:
    """Engine-interface implementation backed by generated Python modules."""

    name = "pyjit"
    #: the planner may hand this engine fused kernels
    supports_fusion = True

    def __init__(self, cache: JitCache | None = None):
        self.cache = cache if cache is not None else default_cache()

    def _module(self, spec: KernelSpec):
        """Generated module for *spec*, with the same health tracking as
        the C++ engine: failures quarantine the spec on this engine so
        the dispatch chain degrades straight to the interpreter."""
        health = self.cache.health
        health.check(self.name, spec.key)
        t0 = time.perf_counter_ns() if obs.ACTIVE else 0
        try:
            if FAULTS.fire("pyjit_fail"):
                raise CompilationError(f"injected pyjit failure for {spec.key}")
            mod = self.cache.get_module(spec, generate_source, suffix=".py")
        except CompilationError as exc:
            self.cache.note_jit_failure()
            health.record_failure(self.name, spec.key, exc)
            raise
        health.record_success(self.name, spec.key)
        if obs.ACTIVE:
            tracer = obs.active_tracer()
            if tracer is not None:
                tracer.record(
                    "module_lookup",
                    "jit",
                    t0,
                    time.perf_counter_ns() - t0,
                    {"engine": self.name, "spec": spec.key},
                )
                return _TracedModule(mod, spec.key, tracer)
        return mod

    # ------------------------------------------------------------------
    # multiplication
    # ------------------------------------------------------------------
    def mxm(self, out, a, b, add, mult, desc, ta=False, tb=False):
        spec = KernelSpec.make(
            "mxm",
            a=KernelSpec.dt(a.dtype),
            b=KernelSpec.dt(b.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(binary_result_dtype(mult, a.dtype, b.dtype)),
            add=add,
            mult=mult,
            ta=ta,
            tb=tb,
            **_desc_params(desc),
        )
        return self._module(spec).run(out, a, b, desc.mask)

    def _spmv_params(self, direction: str) -> dict:
        # dense keeps the legacy spec keys so scheduled and unscheduled
        # dispatches share one cache entry per variant
        return {} if direction == "dense" else {"dir": direction}

    def mxv(self, out, a, u, add, mult, desc, ta=False, sched=None):
        direction = sched.direction if sched is not None else "dense"
        spec = KernelSpec.make(
            "mxv",
            a=KernelSpec.dt(a.dtype),
            u=KernelSpec.dt(u.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(binary_result_dtype(mult, a.dtype, u.dtype)),
            add=add,
            mult=mult,
            ta=ta,
            **self._spmv_params(direction),
            **_desc_params(desc),
        )
        if direction == "pull":
            return self._module(spec).run(out, a, u, desc.mask, sched.candidates)
        result = self._module(spec).run(out, a, u, desc.mask)
        if sched is not None and direction == "dense":
            _schedule.note_edges("dense", int(a.indices.size))
        return result

    def vxm(self, out, u, a, add, mult, desc, ta=False, sched=None):
        direction = sched.direction if sched is not None else "dense"
        spec = KernelSpec.make(
            "vxm",
            a=KernelSpec.dt(a.dtype),
            u=KernelSpec.dt(u.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(binary_result_dtype(mult, u.dtype, a.dtype)),
            add=add,
            mult=mult,
            ta=ta,
            **self._spmv_params(direction),
            **_desc_params(desc),
        )
        if direction == "pull":
            return self._module(spec).run(out, u, a, desc.mask, sched.candidates)
        result = self._module(spec).run(out, u, a, desc.mask)
        if sched is not None and direction == "dense":
            _schedule.note_edges("dense", int(a.indices.size))
        return result

    # ------------------------------------------------------------------
    # elementwise
    # ------------------------------------------------------------------
    def _ewise(self, func, out, x, y, op, desc, ta=False, tb=False, matrix=False):
        params = dict(
            a=KernelSpec.dt(x.dtype),
            b=KernelSpec.dt(y.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(binary_result_dtype(op, x.dtype, y.dtype)),
            op=op,
            **_desc_params(desc),
        )
        if matrix:
            params.update(ta=ta, tb=tb)
        spec = KernelSpec.make(func, **params)
        return self._module(spec).run(out, x, y, desc.mask)

    def ewise_add_mat(self, out, a, b, op, desc, ta=False, tb=False):
        return self._ewise("ewise_add_mat", out, a, b, op, desc, ta, tb, matrix=True)

    def ewise_add_vec(self, out, u, v, op, desc):
        return self._ewise("ewise_add_vec", out, u, v, op, desc)

    def ewise_mult_mat(self, out, a, b, op, desc, ta=False, tb=False):
        return self._ewise("ewise_mult_mat", out, a, b, op, desc, ta, tb, matrix=True)

    def ewise_mult_vec(self, out, u, v, op, desc):
        return self._ewise("ewise_mult_vec", out, u, v, op, desc)

    # ------------------------------------------------------------------
    # apply / reduce / transpose
    # ------------------------------------------------------------------
    def _apply(self, func, out, x, op_spec, desc, ta=False, matrix=False):
        if op_spec[0] == "unary":
            form, op, side, const = "unary", op_spec[1], "none", None
        else:
            _, op, const, side = op_spec
        params = dict(
            a=KernelSpec.dt(x.dtype),
            c=KernelSpec.dt(out.dtype),
            form="unary" if op_spec[0] == "unary" else "bind",
            op=op,
            side=side,
            **_desc_params(desc),
        )
        if matrix:
            params.update(ta=ta)
        spec = KernelSpec.make(func, **params)
        return self._module(spec).run(out, x, desc.mask, const)

    def apply_mat(self, out, a, op_spec, desc, ta=False):
        return self._apply("apply_mat", out, a, op_spec, desc, ta, matrix=True)

    def apply_vec(self, out, u, op_spec, desc):
        return self._apply("apply_vec", out, u, op_spec, desc)

    def _reduce_scalar(self, func, x, op, identity):
        from ..backend.ops_table import DEFAULT_IDENTITY_NAME, identity_value

        if identity is None:
            identity = DEFAULT_IDENTITY_NAME[op]
        ident_val = identity_value(identity, x.dtype)
        spec = KernelSpec.make(func, a=KernelSpec.dt(x.dtype), op=op)
        return self._module(spec).run(x, ident_val)

    def reduce_mat_scalar(self, a, op, identity):
        return self._reduce_scalar("reduce_mat_scalar", a, op, identity)

    def reduce_vec_scalar(self, u, op, identity):
        return self._reduce_scalar("reduce_vec_scalar", u, op, identity)

    def reduce_rows(self, out, a, op, desc, ta=False):
        spec = KernelSpec.make(
            "reduce_rows",
            a=KernelSpec.dt(a.dtype),
            c=KernelSpec.dt(out.dtype),
            op=op,
            ta=ta,
            **_desc_params(desc),
        )
        return self._module(spec).run(out, a, desc.mask)

    def transpose(self, out, a, desc):
        spec = KernelSpec.make(
            "transpose",
            a=KernelSpec.dt(a.dtype),
            c=KernelSpec.dt(out.dtype),
            **_desc_params(desc),
        )
        return self._module(spec).run(out, a, desc.mask)

    def select_mat(self, out, a, op, thunk, desc, ta=False):
        spec = KernelSpec.make(
            "select_mat",
            a=KernelSpec.dt(a.dtype),
            c=KernelSpec.dt(out.dtype),
            op=op,
            ta=ta,
            **_desc_params(desc),
        )
        return self._module(spec).run(out, a, thunk, desc.mask)

    def select_vec(self, out, u, op, thunk, desc):
        spec = KernelSpec.make(
            "select_vec",
            a=KernelSpec.dt(u.dtype),
            c=KernelSpec.dt(out.dtype),
            op=op,
            **_desc_params(desc),
        )
        return self._module(spec).run(out, u, thunk, desc.mask)

    def kronecker(self, out, a, b, op, desc, ta=False, tb=False):
        spec = KernelSpec.make(
            "kronecker",
            a=KernelSpec.dt(a.dtype),
            b=KernelSpec.dt(b.dtype),
            c=KernelSpec.dt(out.dtype),
            op=op,
            ta=ta,
            tb=tb,
            **_desc_params(desc),
        )
        return self._module(spec).run(out, a, b, desc.mask)

    # ------------------------------------------------------------------
    # extract / assign (partially specialised delegates)
    # ------------------------------------------------------------------
    def extract_mat(self, out, a, rows, cols, desc, ta=False):
        spec = KernelSpec.make(
            "extract_mat",
            a=KernelSpec.dt(a.dtype),
            c=KernelSpec.dt(out.dtype),
            ta=ta,
            **_desc_params(desc),
        )
        return self._module(spec).run(out, a, rows, cols, desc.mask)

    def extract_vec(self, out, u, idx, desc):
        spec = KernelSpec.make(
            "extract_vec",
            a=KernelSpec.dt(u.dtype),
            c=KernelSpec.dt(out.dtype),
            **_desc_params(desc),
        )
        return self._module(spec).run(out, u, idx, desc.mask)

    def assign_mat(self, out, a, rows, cols, desc, ta=False):
        spec = KernelSpec.make(
            "assign_mat",
            a=KernelSpec.dt(a.dtype),
            c=KernelSpec.dt(out.dtype),
            ta=ta,
            **_desc_params(desc),
        )
        return self._module(spec).run(out, a, rows, cols, desc.mask)

    def assign_vec(self, out, u, idx, desc):
        spec = KernelSpec.make(
            "assign_vec",
            a=KernelSpec.dt(u.dtype),
            c=KernelSpec.dt(out.dtype),
            **_desc_params(desc),
        )
        return self._module(spec).run(out, u, idx, desc.mask)

    def assign_mat_scalar(self, out, value, rows, cols, desc):
        spec = KernelSpec.make(
            "assign_mat_scalar",
            c=KernelSpec.dt(out.dtype),
            **_desc_params(desc),
        )
        return self._module(spec).run(out, value, rows, cols, desc.mask)

    def assign_vec_scalar(self, out, value, idx, desc):
        spec = KernelSpec.make(
            "assign_vec_scalar",
            c=KernelSpec.dt(out.dtype),
            **_desc_params(desc),
        )
        return self._module(spec).run(out, value, idx, desc.mask)

    # ------------------------------------------------------------------
    # fused kernels (planner-generated; see jit/fused_ops.py)
    # ------------------------------------------------------------------
    def mxv_apply(self, out, a, u, add, mult, op_spec, desc, ta=False):
        uparams, const = _unary_params(op_spec)
        tdt = binary_result_dtype(mult, a.dtype, u.dtype)
        pdt = binary_result_dtype(add, tdt, tdt)
        spec = KernelSpec.make(
            "mxv_apply",
            a=KernelSpec.dt(a.dtype),
            u=KernelSpec.dt(u.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(tdt),
            p=KernelSpec.dt(pdt),
            add=add,
            mult=mult,
            ta=ta,
            fused=True,
            **uparams,
            **_desc_params(desc),
        )
        return self._module(spec).run(out, a, u, desc.mask, const)

    def vxm_apply(self, out, u, a, add, mult, op_spec, desc, ta=False):
        uparams, const = _unary_params(op_spec)
        tdt = binary_result_dtype(mult, u.dtype, a.dtype)
        pdt = binary_result_dtype(add, tdt, tdt)
        spec = KernelSpec.make(
            "vxm_apply",
            a=KernelSpec.dt(a.dtype),
            u=KernelSpec.dt(u.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(tdt),
            p=KernelSpec.dt(pdt),
            add=add,
            mult=mult,
            ta=ta,
            fused=True,
            **uparams,
            **_desc_params(desc),
        )
        return self._module(spec).run(out, u, a, desc.mask, const)

    def _ewise_apply(self, func, out, x, y, op, op_spec, desc, ta=False, tb=False,
                     matrix=False):
        uparams, const = _unary_params(op_spec)
        pdt = binary_result_dtype(op, x.dtype, y.dtype)
        params = dict(
            a=KernelSpec.dt(x.dtype),
            b=KernelSpec.dt(y.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(pdt),
            p=KernelSpec.dt(pdt),
            op=op,
            fused=True,
            **uparams,
            **_desc_params(desc),
        )
        if matrix:
            params.update(ta=ta, tb=tb)
        spec = KernelSpec.make(func, **params)
        return self._module(spec).run(out, x, y, desc.mask, const)

    def ewise_add_vec_apply(self, out, u, v, op, op_spec, desc):
        return self._ewise_apply("ewise_add_vec_apply", out, u, v, op, op_spec, desc)

    def ewise_mult_vec_apply(self, out, u, v, op, op_spec, desc):
        return self._ewise_apply("ewise_mult_vec_apply", out, u, v, op, op_spec, desc)

    def ewise_add_mat_apply(self, out, a, b, op, op_spec, desc, ta=False, tb=False):
        return self._ewise_apply(
            "ewise_add_mat_apply", out, a, b, op, op_spec, desc, ta, tb, matrix=True
        )

    def ewise_mult_mat_apply(self, out, a, b, op, op_spec, desc, ta=False, tb=False):
        return self._ewise_apply(
            "ewise_mult_mat_apply", out, a, b, op, op_spec, desc, ta, tb, matrix=True
        )

    def mxm_reduce_rows(self, out, a, b, add, mult, rop, desc, ta=False, tb=False):
        tdt = binary_result_dtype(mult, a.dtype, b.dtype)
        pdt = binary_result_dtype(add, tdt, tdt)
        spec = KernelSpec.make(
            "mxm_reduce_rows",
            a=KernelSpec.dt(a.dtype),
            b=KernelSpec.dt(b.dtype),
            c=KernelSpec.dt(out.dtype),
            t_dtype=KernelSpec.dt(tdt),
            p=KernelSpec.dt(pdt),
            add=add,
            mult=mult,
            rop=rop,
            ta=ta,
            tb=tb,
            fused=True,
            **_desc_params(desc),
        )
        return self._module(spec).run(out, a, b, desc.mask)

    def apply_assign_vec(self, out, u, op_spec, idx, desc):
        from ..backend.kernels import apply_result_dtype

        uparams, const = _unary_params(op_spec)
        spec = KernelSpec.make(
            "apply_assign_vec",
            a=KernelSpec.dt(u.dtype),
            c=KernelSpec.dt(out.dtype),
            p=KernelSpec.dt(apply_result_dtype(op_spec, u.dtype)),
            fused=True,
            **uparams,
            **_desc_params(desc),
        )
        return self._module(spec).run(out, u, idx, desc.mask, const)

    def _ewise_reduce_scalar(self, func, u, v, op, rop, identity):
        from ..backend.ops_table import DEFAULT_IDENTITY_NAME, identity_value

        pdt = binary_result_dtype(op, u.dtype, v.dtype)
        if identity is None:
            identity = DEFAULT_IDENTITY_NAME[rop]
        ident_val = identity_value(identity, pdt)
        spec = KernelSpec.make(
            func,
            a=KernelSpec.dt(u.dtype),
            b=KernelSpec.dt(v.dtype),
            p=KernelSpec.dt(pdt),
            op=op,
            rop=rop,
            fused=True,
        )
        return self._module(spec).run(u, v, ident_val)

    def ewise_add_vec_reduce_scalar(self, u, v, op, rop, identity=None):
        return self._ewise_reduce_scalar(
            "ewise_add_vec_reduce_scalar", u, v, op, rop, identity
        )

    def ewise_mult_vec_reduce_scalar(self, u, v, op, rop, identity=None):
        return self._ewise_reduce_scalar(
            "ewise_mult_vec_reduce_scalar", u, v, op, rop, identity
        )
