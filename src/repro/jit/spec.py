"""Kernel specifications — the JIT's cache key.

The paper hashes the keyword arguments of a dispatched operation (operand
dtypes and operator names) to identify the compiled module that can run
it; :class:`KernelSpec` is that object made explicit, with a canonical
string form, a stable content hash, and the C++ ``-D`` define list used
by the C++ backend (and echoed in the generated Python modules' headers).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..types import cxx_name, dtype_token, normalize_dtype

__all__ = ["KernelSpec", "CODEGEN_VERSION"]

#: bumped whenever generated-code layout changes, so stale disk-cache
#: entries from older library versions can never be loaded.
CODEGEN_VERSION = 9


def _canon(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if value is None:
        return "none"
    return str(value)


@dataclass(frozen=True)
class KernelSpec:
    """Immutable description of one compilable kernel variant.

    ``func`` names the GraphBLAS operation (``mxv``, ``ewise_add_vec``,
    ...); ``params`` holds everything that changes the generated code:
    dtype tokens, operator names, and descriptor flags.  Runtime *data*
    (index arrays, bound scalar constants, the mask's contents) is never
    part of a spec — it is passed to the compiled kernel at call time,
    exactly as in GBTL where functor state is a runtime value.
    """

    func: str
    params: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    @classmethod
    def make(cls, func: str, **params) -> "KernelSpec":
        items = tuple(sorted((k, _canon(v)) for k, v in params.items()))
        return cls(func, items)

    def get(self, key: str, default: str | None = None) -> str | None:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def flag(self, key: str) -> bool:
        return self.get(key) == "1"

    @property
    def key(self) -> str:
        """Canonical human-readable cache key."""
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"v{CODEGEN_VERSION}:{self.func}({inner})"

    @property
    def key_hash(self) -> str:
        """Stable 16-hex-digit content hash (the module file stem)."""
        return hashlib.sha256(self.key.encode()).hexdigest()[:16]

    @property
    def module_stem(self) -> str:
        return f"pygb_{self.func}_{self.key_hash}"

    def dtype(self, key: str):
        """A dtype-valued parameter as a NumPy dtype."""
        tok = self.get(key)
        if tok is None or tok == "none":
            return None
        return normalize_dtype(tok)

    def cxx_defines(self) -> list[str]:
        """``-DKEY=value`` list for the C++ binding translation unit —
        the direct analog of the paper's
        ``g++ ... -DA_TYPE=int64_t -DADD_BINOP=Plus``."""
        defines = [f"-DPYGB_FUNC_{self.func.upper()}"]
        for k, v in self.params:
            ku = k.upper()
            if ku.endswith("_DTYPE") or ku in ("A", "B", "C", "U", "V", "W"):
                if v != "none":
                    defines.append(f"-D{ku}_TYPE={cxx_name(v)}")
            else:
                defines.append(f"-D{ku}={v}")
        return defines

    @staticmethod
    def dt(dtype) -> str:
        """Shorthand: dtype -> canonical token for spec params."""
        return dtype_token(dtype)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return self.key
