"""``repro.obs`` — the op-level observability layer.

Zero-cost-when-off instrumentation threaded through dispatch, both JIT
engines, the C++ FFI boundary, and the JIT cache:

* ``PYGB_TRACE=chrome:<path>`` — export a Chrome ``trace_event`` JSON
  for the whole process (load in ``chrome://tracing`` / Perfetto);
* ``PYGB_TRACE=log`` — one line per op on stderr;
* ``PYGB_STATS=<path>|1`` — persist aggregated counters + latency
  histograms at exit for ``python -m repro stats``;
* ``pygb.tracing("chrome:/tmp/t.json")`` — the same, scoped to a
  ``with`` block.

Hot-path contract: instrumented call sites test the module-level
:data:`ACTIVE` bool and pay exactly one predicated branch per operation
while tracing is off (asserted by ``benchmarks/check_overhead.py``).
"""

from __future__ import annotations

import atexit
import os

from .stats import (
    StatsAggregator,
    default_stats_path,
    load_stats,
    merge_stats,
    persist_stats,
    quantile_ns,
    render_stats,
)
from .tracer import FUSED_OPS, Tracer, TracingEngine

__all__ = [
    "ACTIVE",
    "Tracer",
    "TracingEngine",
    "FUSED_OPS",
    "StatsAggregator",
    "tracing",
    "active_tracer",
    "wrap_engine",
    "record_event",
    "record_span",
    "default_stats_path",
    "load_stats",
    "merge_stats",
    "persist_stats",
    "quantile_ns",
    "render_stats",
]

#: the one flag dispatch hot paths read.  False ⇒ no tracer exists and no
#: instrumentation code beyond the flag test runs.
ACTIVE = False

_TRACER: Tracer | None = None


def active_tracer() -> Tracer | None:
    return _TRACER


def wrap_engine(engine):
    """Tracing wrapper for *engine* (dispatch hook target; only called
    when :data:`ACTIVE` is True)."""
    tracer = _TRACER
    if tracer is None:  # racing a tracer teardown: fall through untraced
        return engine
    return tracer.wrap_engine(engine)


def record_event(name: str, cat: str, **attrs) -> None:
    """Instant event (cache hit/miss/compile/quarantine); caller guards
    with ``obs.ACTIVE``."""
    tracer = _TRACER
    if tracer is not None:
        tracer.instant(name, cat, attrs)


def record_span(name: str, cat: str, t0_ns: int, dur_ns: int, **attrs) -> None:
    """Complete span with explicit start/duration (nonblocking-queue flush
    spans and other non-engine work); caller guards with ``obs.ACTIVE``."""
    tracer = _TRACER
    if tracer is not None:
        tracer.record(name, cat, t0_ns, dur_ns, attrs)


def _install(tracer: Tracer | None) -> Tracer | None:
    """Swap the process tracer; returns the previous one."""
    global ACTIVE, _TRACER
    previous = _TRACER
    _TRACER = tracer
    ACTIVE = tracer is not None
    return previous


def _parse_trace_spec(spec: str) -> dict:
    """``chrome:<path>`` / ``log`` / comma-joined combinations → Tracer
    kwargs.  Unknown parts are ignored (a typo'd env var must not crash
    the workload at import)."""
    kwargs: dict = {}
    for part in str(spec).split(","):
        part = part.strip()
        if not part:
            continue
        if part.startswith("chrome:"):
            kwargs["chrome_path"] = part[len("chrome:") :]
        elif part == "log":
            kwargs["log"] = True
        elif part == "stats":
            kwargs["persist"] = True
    return kwargs


class tracing:
    """``with pygb.tracing("chrome:/tmp/t.json"): ...`` — scoped tracing.

    Accepts the same spec strings as ``$PYGB_TRACE`` or explicit
    keywords::

        with gb.tracing(chrome="/tmp/t.json"):  ...
        with gb.tracing("log"):                 ...
        with gb.tracing(stats=True) as tr:      ...; tr.stats.snapshot()

    On exit the previous tracer (usually none) is restored and sinks are
    flushed.  ``stats=True`` persists aggregates to the default stats
    file; ``stats="<path>"`` to a specific one.
    """

    def __init__(
        self,
        spec: str | None = None,
        *,
        chrome: str | os.PathLike | None = None,
        log: bool = False,
        stats: bool | str | os.PathLike | None = None,
    ):
        kwargs = _parse_trace_spec(spec) if spec else {}
        if chrome is not None:
            kwargs["chrome_path"] = chrome
        if log:
            kwargs["log"] = True
        if stats:
            kwargs["persist"] = True
            if not isinstance(stats, bool):
                kwargs["stats_path"] = stats
        self._kwargs = kwargs
        self._tracer: Tracer | None = None
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._tracer = Tracer(**self._kwargs)
        self._previous = _install(self._tracer)
        return self._tracer

    def __exit__(self, *exc) -> bool:
        _install(self._previous)
        if self._tracer is not None:
            self._tracer.flush()
            self._tracer = None
        return False


def _stats_env_enabled() -> bool:
    value = os.environ.get("PYGB_STATS", "").strip()
    return bool(value) and value.lower() not in ("0", "false", "off", "no")


def _init_from_env() -> None:
    """Install a process-wide tracer when ``$PYGB_TRACE``/``$PYGB_STATS``
    ask for one; flushed by atexit so the trace file and stats are
    written however the workload terminates normally."""
    trace_spec = os.environ.get("PYGB_TRACE", "").strip()
    kwargs = _parse_trace_spec(trace_spec) if trace_spec else {}
    if _stats_env_enabled():
        kwargs["persist"] = True
        env = os.environ.get("PYGB_STATS", "").strip()
        if env.lower() not in ("1", "true", "yes", "on"):
            kwargs["stats_path"] = env
    elif kwargs:
        # a traced run always persists its aggregates too, so
        # `python -m repro stats` works after a chrome/log session
        kwargs["persist"] = True
    if not kwargs:
        return
    tracer = Tracer(**kwargs)
    _install(tracer)
    atexit.register(tracer.flush)


_init_from_env()
