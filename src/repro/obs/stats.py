"""Aggregated counters and latency histograms for the tracing layer.

Spans recorded by :class:`~repro.obs.tracer.Tracer` fold into a
:class:`StatsAggregator`: per-op call counts, per-engine splits, fused
counts, total time, and a log₂-bucketed latency histogram per op (64
fixed buckets — bounded memory no matter how many spans arrive, with
p50/p99 read back as the geometric midpoint of the containing bucket).

Aggregates persist as a JSON file (``$PYGB_STATS``; default
``<cache_dir>/stats.json``) written at interpreter exit and *merged*
into whatever is already on disk, so a sequence of runs accumulates and
``python -m repro stats`` can report on workloads that ran in earlier
processes.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

__all__ = [
    "StatsAggregator",
    "quantile_ns",
    "default_stats_path",
    "load_stats",
    "persist_stats",
    "merge_stats",
    "render_stats",
]

#: log2 latency buckets: bucket i counts spans with duration in
#: [2^(i-1), 2^i) nanoseconds (bucket 0 is [0, 1) ns); 64 buckets cover
#: every representable int64 duration
HIST_BUCKETS = 64

_SCHEMA_VERSION = 1


def _new_op_entry() -> dict:
    return {
        "count": 0,
        "total_ns": 0,
        "fused": 0,
        "engines": {},
        "hist": [0] * HIST_BUCKETS,
    }


class StatsAggregator:
    """Thread-safe fold of spans and events into bounded-size aggregates."""

    def __init__(self):
        self._lock = threading.Lock()
        self.ops: dict[str, dict] = {}
        self.cache_events: dict[str, int] = {}
        self.ffi: dict = {"calls": 0, "total_ns": 0, "kernel_ns": 0}
        self.schedule: dict = {"directions": {}, "chosen_by": {}, "switches": 0}
        self.tiling: dict = {"partitioned": 0, "tile_tasks": 0, "forwarded": 0}
        self.guard: dict[str, int] = {}
        self.service: dict = {
            "requests": 0,
            "batches": 0,
            "batched_requests": 0,
            "timeouts": 0,
            "errors": 0,
        }

    def note_span(self, name: str, cat: str, dur_ns: int, attrs: dict) -> None:
        bucket = min(max(int(dur_ns), 0).bit_length(), HIST_BUCKETS - 1)
        with self._lock:
            if cat == "op":
                entry = self.ops.get(name)
                if entry is None:
                    entry = self.ops[name] = _new_op_entry()
                entry["count"] += 1
                entry["total_ns"] += int(dur_ns)
                entry["hist"][bucket] += 1
                if attrs.get("fused"):
                    entry["fused"] += 1
                engine = attrs.get("engine", "?")
                entry["engines"][engine] = entry["engines"].get(engine, 0) + 1
                direction = attrs.get("direction")
                if direction is not None:
                    dirs = self.schedule["directions"]
                    dirs[direction] = dirs.get(direction, 0) + 1
                    chosen = attrs.get("chosen_by") or "?"
                    by = self.schedule["chosen_by"]
                    by[chosen] = by.get(chosen, 0) + 1
            elif cat == "ffi":
                self.ffi["calls"] += 1
                self.ffi["total_ns"] += int(dur_ns)
                kernel = attrs.get("kernel_ns")
                if kernel is not None and kernel >= 0:
                    self.ffi["kernel_ns"] += int(kernel)

    def note_event(self, name: str, cat: str, attrs: dict) -> None:
        if cat == "cache":
            with self._lock:
                self.cache_events[name] = self.cache_events.get(name, 0) + 1
        elif cat == "schedule":
            if name == "schedule.switch":
                with self._lock:
                    self.schedule["switches"] += 1
        elif cat == "tiling":
            with self._lock:
                if name == "tiling.partition":
                    self.tiling["partitioned"] += 1
                    self.tiling["tile_tasks"] += int(attrs.get("tiles") or 0)
                elif name == "tiling.forward":
                    self.tiling["forwarded"] += 1
        elif cat == "guard":
            # guard.timeout / guard.cancel / guard.degrade / guard.quarantine
            with self._lock:
                self.guard[name] = self.guard.get(name, 0) + 1
        elif cat == "service":
            with self._lock:
                if name == "service.request":
                    self.service["requests"] += 1
                elif name == "service.batch":
                    self.service["batches"] += 1
                    size = int(attrs.get("size") or 0)
                    if size > 1:
                        self.service["batched_requests"] += size
                elif name == "service.timeout":
                    self.service["timeouts"] += int(attrs.get("size") or 1)
                elif name == "service.error":
                    self.service["errors"] += int(attrs.get("size") or 1)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "version": _SCHEMA_VERSION,
                "ops": {
                    name: {
                        "count": e["count"],
                        "total_ns": e["total_ns"],
                        "fused": e["fused"],
                        "engines": dict(e["engines"]),
                        "hist": list(e["hist"]),
                    }
                    for name, e in self.ops.items()
                },
                "cache_events": dict(self.cache_events),
                "ffi": dict(self.ffi),
                "schedule": {
                    "directions": dict(self.schedule["directions"]),
                    "chosen_by": dict(self.schedule["chosen_by"]),
                    "switches": self.schedule["switches"],
                },
                "tiling": dict(self.tiling),
                "guard": dict(self.guard),
                "service": dict(self.service),
            }


def quantile_ns(hist: list[int], q: float) -> float:
    """Approximate the *q*-quantile (0 < q <= 1) of a log₂ histogram:
    the geometric midpoint of the bucket containing the q-th sample."""
    total = sum(hist)
    if total == 0:
        return 0.0
    target = q * total
    seen = 0
    for i, count in enumerate(hist):
        seen += count
        if seen >= target:
            lo = 0.0 if i == 0 else float(2 ** (i - 1))
            hi = float(2**i)
            return (lo + hi) / 2.0
    return float(2 ** (len(hist) - 1))  # pragma: no cover - seen >= target above


def default_stats_path() -> Path:
    """``$PYGB_STATS`` when it names a path; otherwise
    ``<cache_dir>/stats.json`` next to the JIT artifacts."""
    env = os.environ.get("PYGB_STATS", "")
    if env and env.strip().lower() not in ("1", "true", "yes", "on"):
        return Path(env)
    from ..jit.cache import _default_cache_dir

    return _default_cache_dir() / "stats.json"


def load_stats(path: str | os.PathLike | None = None) -> dict | None:
    p = Path(path) if path is not None else default_stats_path()
    try:
        data = json.loads(p.read_text())
    except (OSError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def merge_stats(base: dict, extra: dict) -> dict:
    """Fold *extra* (a snapshot) into *base* (a previous snapshot)."""
    out = {
        "version": _SCHEMA_VERSION,
        "ops": {k: dict(v) for k, v in base.get("ops", {}).items()},
        "cache_events": dict(base.get("cache_events", {})),
        "ffi": dict(base.get("ffi", {"calls": 0, "total_ns": 0, "kernel_ns": 0})),
    }
    for name, e in extra.get("ops", {}).items():
        cur = out["ops"].get(name)
        if cur is None:
            out["ops"][name] = {
                "count": e["count"],
                "total_ns": e["total_ns"],
                "fused": e.get("fused", 0),
                "engines": dict(e.get("engines", {})),
                "hist": list(e.get("hist", [0] * HIST_BUCKETS)),
            }
            continue
        cur["count"] = cur.get("count", 0) + e["count"]
        cur["total_ns"] = cur.get("total_ns", 0) + e["total_ns"]
        cur["fused"] = cur.get("fused", 0) + e.get("fused", 0)
        engines = dict(cur.get("engines", {}))
        for eng, n in e.get("engines", {}).items():
            engines[eng] = engines.get(eng, 0) + n
        cur["engines"] = engines
        hist = list(cur.get("hist", [0] * HIST_BUCKETS))
        for i, n in enumerate(e.get("hist", [])):
            if i < len(hist):
                hist[i] += n
        cur["hist"] = hist
    for name, n in extra.get("cache_events", {}).items():
        out["cache_events"][name] = out["cache_events"].get(name, 0) + n
    for key, n in extra.get("ffi", {}).items():
        out["ffi"][key] = out["ffi"].get(key, 0) + n
    base_sched = base.get("schedule", {})
    extra_sched = extra.get("schedule", {})
    sched = {
        "directions": dict(base_sched.get("directions", {})),
        "chosen_by": dict(base_sched.get("chosen_by", {})),
        "switches": base_sched.get("switches", 0),
    }
    for key, n in extra_sched.get("directions", {}).items():
        sched["directions"][key] = sched["directions"].get(key, 0) + n
    for key, n in extra_sched.get("chosen_by", {}).items():
        sched["chosen_by"][key] = sched["chosen_by"].get(key, 0) + n
    sched["switches"] += extra_sched.get("switches", 0)
    out["schedule"] = sched
    tiling = dict(base.get("tiling", {}))
    for key, n in extra.get("tiling", {}).items():
        tiling[key] = tiling.get(key, 0) + n
    out["tiling"] = tiling
    guard = dict(base.get("guard", {}))
    for key, n in extra.get("guard", {}).items():
        guard[key] = guard.get(key, 0) + n
    out["guard"] = guard
    service = dict(base.get("service", {}))
    for key, n in extra.get("service", {}).items():
        service[key] = service.get(key, 0) + n
    out["service"] = service
    return out


def persist_stats(snapshot: dict, path: str | os.PathLike | None = None) -> Path | None:
    """Merge *snapshot* into the stats file (atomic replace); best-effort —
    an unwritable location loses the stats, never the workload."""
    p = Path(path) if path is not None else default_stats_path()
    try:
        p.parent.mkdir(parents=True, exist_ok=True)
        existing = load_stats(p)
        merged = merge_stats(existing, snapshot) if existing else snapshot
        tmp = p.with_name(f"{p.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(merged, sort_keys=True))
        os.replace(tmp, p)
        return p
    except OSError:
        return None


def render_stats(data: dict, cache_stats: dict | None = None) -> str:
    """Human-readable report: per-op counts, engine split, cache hit
    ratio, and p50/p99 latencies (the `python -m repro stats` body)."""
    lines: list[str] = []
    ops = data.get("ops", {})
    if not ops:
        lines.append("no operation spans recorded")
    else:
        total_calls = sum(e["count"] for e in ops.values())
        total_ns = sum(e["total_ns"] for e in ops.values())
        lines.append(
            f"operations: {total_calls} dispatches, "
            f"{total_ns / 1e6:.2f} ms total engine time"
        )
        header = (
            f"  {'op':<28} {'count':>8} {'fused':>6} {'mean_us':>9} "
            f"{'p50_us':>9} {'p99_us':>9}  engines"
        )
        lines.append(header)
        for name in sorted(ops, key=lambda n: -ops[n]["total_ns"]):
            e = ops[name]
            mean = e["total_ns"] / e["count"] / 1e3 if e["count"] else 0.0
            p50 = quantile_ns(e.get("hist", []), 0.50) / 1e3
            p99 = quantile_ns(e.get("hist", []), 0.99) / 1e3
            engines = ",".join(
                f"{eng}:{n}" for eng, n in sorted(e.get("engines", {}).items())
            )
            lines.append(
                f"  {name:<28} {e['count']:>8} {e.get('fused', 0):>6} "
                f"{mean:>9.1f} {p50:>9.1f} {p99:>9.1f}  {engines}"
            )
        engine_totals: dict[str, int] = {}
        for e in ops.values():
            for eng, n in e.get("engines", {}).items():
                engine_totals[eng] = engine_totals.get(eng, 0) + n
        split = ", ".join(
            f"{eng}: {n} ({100.0 * n / total_calls:.1f}%)"
            for eng, n in sorted(engine_totals.items(), key=lambda kv: -kv[1])
        )
        lines.append(f"engine split: {split}")
    sched = data.get("schedule", {})
    if sched.get("directions"):
        dirs = ", ".join(
            f"{d}: {n}" for d, n in sorted(sched["directions"].items(),
                                           key=lambda kv: -kv[1])
        )
        by = ", ".join(
            f"{k}: {n}" for k, n in sorted(sched.get("chosen_by", {}).items(),
                                           key=lambda kv: -kv[1])
        )
        lines.append(
            f"traversal schedule: {dirs}; "
            f"{sched.get('switches', 0)} direction switches"
            + (f"; chosen by {by}" if by else "")
        )
    tiling = data.get("tiling", {})
    if tiling.get("partitioned") or tiling.get("forwarded"):
        lines.append(
            f"tiled data plane: {tiling.get('partitioned', 0)} partitioned "
            f"dispatches ({tiling.get('tile_tasks', 0)} tile tasks), "
            f"{tiling.get('forwarded', 0)} forwarded monolithically"
        )
    guard = data.get("guard", {})
    if guard:
        lines.append(
            f"runtime guardrails: {guard.get('guard.timeout', 0)} timeouts, "
            f"{guard.get('guard.cancel', 0)} cancellations, "
            f"{guard.get('guard.degrade', 0)} tiled-execution degrades, "
            f"{guard.get('guard.quarantine', 0)} tiling quarantines"
        )
    service = data.get("service", {})
    if service.get("requests") or service.get("batches"):
        lines.append(
            f"graph service: {service.get('requests', 0)} requests in "
            f"{service.get('batches', 0)} batches "
            f"({service.get('batched_requests', 0)} batched), "
            f"{service.get('timeouts', 0)} timeouts, "
            f"{service.get('errors', 0)} errors"
        )
    ffi = data.get("ffi", {})
    if ffi.get("calls"):
        total = ffi["total_ns"]
        kernel = ffi["kernel_ns"]
        overhead = max(total - kernel, 0)
        lines.append(
            f"C++ FFI: {ffi['calls']} calls, {total / 1e6:.2f} ms total "
            f"({kernel / 1e6:.2f} ms in-kernel, {overhead / 1e6:.2f} ms "
            f"marshalling/boundary)"
        )
    events = data.get("cache_events", {})
    hits = (events.get("memory_hit", 0) + events.get("catalog_hit", 0)
            + events.get("disk_hit", 0))
    catalog_hits = events.get("catalog_hit", 0)
    lookups = hits + events.get("compile", 0)
    if cache_stats is not None and lookups == 0:
        # the traced workload ran in this process: fall back to the live
        # cache counters
        hits = (cache_stats.get("memory_hits", 0)
                + cache_stats.get("catalog_hits", 0)
                + cache_stats.get("disk_hits", 0))
        catalog_hits = cache_stats.get("catalog_hits", 0)
        lookups = hits + cache_stats.get("compiles", 0)
    if lookups:
        lines.append(
            f"JIT cache: {hits}/{lookups} hits ({100.0 * hits / lookups:.1f}%), "
            f"{catalog_hits} from catalog, "
            f"{events.get('compile', 0)} compiles, "
            f"{events.get('quarantine', 0)} quarantines, "
            f"{events.get('integrity_rebuild', 0)} integrity rebuilds"
        )
    elif events:
        rendered = ", ".join(f"{k}: {n}" for k, n in sorted(events.items()))
        lines.append(f"JIT cache events: {rendered}")
    return "\n".join(lines)
