"""Monotonic-clock span recording and the engine tracing wrapper.

The paper's evaluation (Figs. 5–8) decomposes every DSL call into Python
overhead vs. kernel time; this module is the live counterpart.  A
:class:`Tracer` collects **spans** — one per engine dispatch, JIT module
retrieval, or C++ FFI call — timed with ``time.perf_counter_ns`` (the
monotonic clock), plus instant **events** for cache outcomes.  Sinks:

* ``chrome`` — Chrome ``trace_event`` JSON (load in ``chrome://tracing``
  or Perfetto) written on flush;
* ``log`` — one line per span on stderr as it happens;
* stats — every tracer folds spans into a
  :class:`~repro.obs.stats.StatsAggregator` for ``python -m repro stats``.

The off path costs one predicated branch per operation: dispatch sites
test ``obs.ACTIVE`` (a module-level bool) and never touch this module
while it is False.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from pathlib import Path

import numpy as np

from .stats import StatsAggregator, persist_stats

__all__ = ["Tracer", "TracingEngine", "FUSED_OPS"]

#: dispatch methods that are fused producer+consumer kernels (PR 2's
#: planner output) — spans carry this as the ``fused`` attribute
FUSED_OPS = frozenset({
    "mxv_apply",
    "vxm_apply",
    "ewise_add_vec_apply",
    "ewise_mult_vec_apply",
    "ewise_add_mat_apply",
    "ewise_mult_mat_apply",
    "mxm_reduce_rows",
    "apply_assign_vec",
    "ewise_add_vec_reduce_scalar",
    "ewise_mult_vec_reduce_scalar",
})


def _payload(args) -> tuple[int, int]:
    """(nvals, bytes) summed over the backend containers in *args* —
    the stored-entry count and the buffer footprint the op touched."""
    nvals = 0
    nbytes = 0
    for a in args:
        vals = getattr(a, "values", None)
        if isinstance(vals, np.ndarray):
            nvals += vals.size
            nbytes += vals.nbytes
            idx = getattr(a, "indices", None)
            if isinstance(idx, np.ndarray):
                nbytes += idx.nbytes
            ptr = getattr(a, "indptr", None)
            if isinstance(ptr, np.ndarray):
                nbytes += ptr.nbytes
    return int(nvals), int(nbytes)


class Tracer:
    """Span/event collector with optional Chrome-trace and log sinks."""

    def __init__(
        self,
        chrome_path: str | os.PathLike | None = None,
        log: bool = False,
        stats_path: str | os.PathLike | None = None,
        persist: bool = False,
    ):
        self.chrome_path = Path(chrome_path) if chrome_path else None
        self.log = log
        self.stats = StatsAggregator()
        self.stats_path = Path(stats_path) if stats_path else None
        self.persist = persist or stats_path is not None
        self._events: list[dict] | None = [] if self.chrome_path else None
        self._lock = threading.Lock()
        self._flushed = False
        self._wrapped: dict[int, tuple[object, TracingEngine]] = {}

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, name: str, cat: str, t0_ns: int, dur_ns: int, attrs: dict) -> None:
        """A completed span: *t0_ns* from ``perf_counter_ns``."""
        self.stats.note_span(name, cat, dur_ns, attrs)
        if self._events is not None:
            event = {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": t0_ns / 1e3,  # Chrome wants microseconds
                "dur": dur_ns / 1e3,
                "pid": os.getpid(),
                "tid": threading.get_ident() & 0xFFFFFFFF,
                "args": {k: v for k, v in attrs.items() if v is not None},
            }
            with self._lock:
                self._events.append(event)
        if self.log:
            rendered = " ".join(
                f"{k}={v}" for k, v in attrs.items() if v is not None
            )
            print(
                f"pygb-trace [{cat}] {name} {dur_ns / 1e3:.1f}us {rendered}",
                file=sys.stderr,
            )

    def instant(self, name: str, cat: str, attrs: dict) -> None:
        """A zero-duration event (cache hit/miss/compile/quarantine)."""
        self.stats.note_event(name, cat, attrs)
        if self._events is not None:
            event = {
                "name": name,
                "cat": cat,
                "ph": "i",
                "s": "t",
                "ts": time.perf_counter_ns() / 1e3,
                "pid": os.getpid(),
                "tid": threading.get_ident() & 0xFFFFFFFF,
                "args": {k: v for k, v in attrs.items() if v is not None},
            }
            with self._lock:
                self._events.append(event)
        if self.log:
            rendered = " ".join(f"{k}={v}" for k, v in attrs.items() if v is not None)
            print(f"pygb-trace [{cat}] {name} {rendered}", file=sys.stderr)

    # ------------------------------------------------------------------
    # engine wrapping (the dispatch hook)
    # ------------------------------------------------------------------
    def wrap_engine(self, engine):
        """A :class:`TracingEngine` around *engine*, memoised per engine
        instance so hot loops reuse one wrapper (and its cached bound
        methods)."""
        if isinstance(engine, TracingEngine):
            return engine
        entry = self._wrapped.get(id(engine))
        if entry is not None and entry[0] is engine:
            return entry[1]
        wrapper = TracingEngine(engine, self)
        self._wrapped[id(engine)] = (engine, wrapper)
        return wrapper

    # ------------------------------------------------------------------
    # sinks
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write the Chrome trace file and persist aggregated stats.
        Idempotent — the atexit hook and an explicit ``tracing()`` exit
        may both land here."""
        if self._flushed:
            return
        self._flushed = True
        if self.chrome_path is not None and self._events is not None:
            with self._lock:
                events = list(self._events)
            payload = {
                "traceEvents": events,
                "displayTimeUnit": "ms",
                "otherData": {"producer": "pygb", "pid": os.getpid()},
            }
            try:
                self.chrome_path.parent.mkdir(parents=True, exist_ok=True)
                self.chrome_path.write_text(json.dumps(payload))
            except OSError as exc:  # never let tracing take the workload down
                print(
                    f"pygb-trace: cannot write {self.chrome_path}: {exc}",
                    file=sys.stderr,
                )
        if self.persist:
            persist_stats(self.stats.snapshot(), self.stats_path)


class TracingEngine:
    """Engine wrapper recording one span per dispatch method call —
    same shape as ``dispatch.CountingEngine``, but feeding a tracer.
    Only used while tracing is active; bound wrappers are cached in the
    instance ``__dict__`` so ``__getattr__`` runs once per method."""

    def __init__(self, inner, tracer: Tracer):
        self._inner = inner
        self._tracer = tracer
        self.name = getattr(inner, "name", "?")
        self.supports_fusion = getattr(inner, "supports_fusion", False)

    def __getattr__(self, attr):
        value = getattr(self._inner, attr)
        if attr.startswith("_") or not callable(value):
            return value
        from ..core.dispatch import _DISPATCH_METHODS

        if attr not in _DISPATCH_METHODS:
            return value
        tracer = self._tracer
        engine_name = self.name
        fused = attr in FUSED_OPS

        def traced(*args, **kwargs):
            t0 = time.perf_counter_ns()
            try:
                return value(*args, **kwargs)
            finally:
                dur = time.perf_counter_ns() - t0
                nvals, nbytes = _payload(args)
                attrs = {
                    "engine": engine_name,
                    "fused": fused,
                    "nvals": nvals,
                    "bytes": nbytes,
                }
                sched = kwargs.get("sched")
                if sched is not None:
                    # schedule-layer annotation (PR 6): which traversal
                    # direction ran and what picked it
                    attrs["direction"] = sched.direction
                    attrs["frontier"] = sched.frontier
                    attrs["chosen_by"] = sched.chosen_by
                    # tiled-data-plane annotation: the PartitionedEngine
                    # records its fan-out on the schedule before the
                    # span closes (None when the dispatch ran monolithic)
                    attrs["tiles"] = getattr(sched, "tiles", None)
                    attrs["workers"] = getattr(sched, "workers", None)
                tracer.record(attr, "op", t0, dur, attrs)

        traced.__name__ = attr
        self.__dict__[attr] = traced
        return traced

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TracingEngine({self._inner!r})"
