"""The schedule layer: direction-optimizing traversal dispatch.

PyGB's paper-level design executes every ``mxv``/``vxm`` the same way
regardless of frontier density.  GraphIt separates *algorithm* from
*schedule* — traversal direction (push vs pull), frontier representation
(sparse index list vs dense bitmap), adaptive switching — and GraphBLAST
shows direction optimization is the single biggest lever in a
linear-algebra graph framework.  This module adds that dimension to the
execution stack without touching algorithm code:

``dense``
    The legacy strategy: gather over **every** row of the (effective)
    matrix, examining all ``nnz`` stored entries.  Optimal for dense
    operand vectors; the only strategy previous releases had.
``push``
    Frontier-driven scatter: walk only the adjacency rows of the stored
    entries of ``u``, examining ``Σ out-degree(frontier)`` edges.  Wins
    while the frontier is sparse (early BFS/SSSP iterations).
``pull``
    Mask-candidate-driven gather (Beamer's bottom-up step): compute the
    output only at positions the write mask can accept, examining
    ``Σ in-degree(candidates)`` edges — with a per-row **early exit**
    when the add monoid is ``LogicalOr`` (a row is done at its first
    true product).  Only valid when the operation is masked, because the
    unmasked region of ``t`` is never computed.

All three produce **bit-identical** results: per output position the
semiring products are combined in ascending inner-index order under
every strategy (CSR column indices are sorted; the push scatter expands
frontier rows in ascending order and coalesces with a stable sort; the
pull gather scans rows in storage order), so even non-commutative or
floating-point reductions agree exactly.  ``tests/test_schedule.py``
pins this cross-engine and cross-mode.

Selection is controlled by ``$PYGB_SCHEDULE``:

* ``auto`` (default) — per-operation cost model over deterministic
  density counters, refined by the online autotuner below;
* ``fixed`` — the legacy dense strategy everywhere (pre-schedule-layer
  behaviour, the ablation baseline);
* ``push`` / ``pull`` — force one direction (``pull`` degrades to
  ``dense`` for unmasked operations, where it is not defined).

A :class:`Scheduled` context manager overrides the environment for a
block, mirroring the operator-context idiom (``with Scheduled("pull")``).

The **online autotuner** (``auto`` mode) reuses the observability
layer's log2 latency histograms (``repro/obs/stats.py``): per call site
and frontier-density bucket it first *explores* — runs each cost-viable
direction a couple of times — then *exploits* the direction with the
lowest median observed latency.  The cost model bounds its freedom: only
directions within ``_TUNER_BAND``× of the modeled optimum are ever
tried, so a mistimed sample cannot pick a catastrophic schedule.
``PYGB_SCHEDULE_TUNER=0`` disables the timing feedback, leaving the pure
(deterministic) cost model — the benchmarks gate on that configuration.

Deterministic counters (:func:`stats`) track calls, examined edges per
direction, direction switches, and pull→dense fallbacks; the perf
trajectory gate (``benchmarks/collect_bench.py``) records them per
commit.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "DIRECTIONS",
    "Schedule",
    "Scheduled",
    "AutoTuner",
    "schedule_mode",
    "tuner_enabled",
    "note_edges",
    "reset_stats",
    "stats",
]

DIRECTIONS = ("dense", "push", "pull")

#: early-exit discount applied to the modeled pull cost when the add
#: monoid is LogicalOr (a candidate row stops at its first true product;
#: on BFS-like frontiers most candidates hit within a few neighbours)
_EARLY_EXIT_DISCOUNT = 4

#: the autotuner may only choose among directions whose modeled cost is
#: within this factor of the cheapest — the cost model stays in charge
#: of the asymptotics, timing only breaks near-ties
_TUNER_BAND = 4.0

#: samples per (site, density-bucket, direction) before the tuner trusts
#: its latency data ("first iterations explore, rest exploit")
_TUNER_EXPLORE = 2

_FALSEY = frozenset({"0", "false", "off", "no"})


def schedule_mode() -> str:
    """The ``$PYGB_SCHEDULE`` mode, re-read per operation like the other
    execution flags (``fixed`` | ``auto`` | ``push`` | ``pull``)."""
    raw = os.environ.get("PYGB_SCHEDULE", "auto").strip().lower()
    if raw in ("auto", ""):
        return "auto"
    if raw in ("fixed", "dense") or raw in _FALSEY:
        return "fixed"
    if raw in ("push", "pull"):
        return raw
    import warnings

    warnings.warn(
        f"pygb: unknown $PYGB_SCHEDULE={raw!r} "
        "(valid: auto, fixed, push, pull); using auto",
        stacklevel=2,
    )
    return "auto"


def tuner_enabled() -> bool:
    """``$PYGB_SCHEDULE_TUNER`` gate for the latency-feedback stage
    (``0/false/off/no`` leaves the deterministic cost model in charge)."""
    return os.environ.get("PYGB_SCHEDULE_TUNER", "1").strip().lower() not in _FALSEY


# ----------------------------------------------------------------------
# deterministic counters
# ----------------------------------------------------------------------


class _ScheduleStats:
    """Process-wide deterministic schedule counters (no timing)."""

    __slots__ = ("calls", "edges", "switches", "fallbacks")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.calls = {d: 0 for d in DIRECTIONS}
        self.edges = {d: 0 for d in DIRECTIONS}
        self.switches = 0
        self.fallbacks = 0


STATS = _ScheduleStats()

#: last direction chosen per call site, for switch detection — bounded
#: by the number of distinct (op, shape, nnz) sites in a process
_LAST_DIRECTION: dict = {}
_LAST_DIRECTION_CAP = 4096


def note_edges(direction: str, count: int) -> None:
    """Record *count* examined edges for *direction*.  Called by every
    engine's kernels (and generated modules) when a schedule is active."""
    STATS.edges[direction] += int(count)


def reset_stats() -> None:
    """Zero the counters, the switch tracker, and the autotuner."""
    STATS.reset()
    _LAST_DIRECTION.clear()
    _TUNER.reset()


def stats() -> dict:
    """Snapshot of the deterministic schedule counters."""
    return {
        "calls": dict(STATS.calls),
        "edges": dict(STATS.edges),
        "calls_total": sum(STATS.calls.values()),
        "edges_total": sum(STATS.edges.values()),
        "switches": STATS.switches,
        "fallbacks": STATS.fallbacks,
    }


# ----------------------------------------------------------------------
# the online autotuner
# ----------------------------------------------------------------------


def _log2_bucket(n: int) -> int:
    """Coarse density bucket: the bit length of *n* (0 for empty)."""
    return int(n).bit_length()


class AutoTuner:
    """Explore-then-exploit direction choice from observed latencies.

    Observations are stored as the same 64-bucket log2 latency
    histograms the obs layer aggregates (``repro/obs/stats.py``), keyed
    by ``(site, density bucket, direction)``; the exploit phase compares
    histogram medians via :func:`repro.obs.stats.quantile_ns`.
    """

    def __init__(self):
        self._hists: dict = {}

    def reset(self) -> None:
        self._hists.clear()

    def observations(self, site, bucket, direction) -> int:
        hist = self._hists.get((site, bucket, direction))
        return sum(hist) if hist else 0

    def note(self, site, bucket, direction: str, dur_ns: int) -> None:
        from .obs.stats import HIST_BUCKETS

        hist = self._hists.setdefault(
            (site, bucket, direction), [0] * HIST_BUCKETS
        )
        hist[min(max(int(dur_ns), 0).bit_length(), HIST_BUCKETS - 1)] += 1

    def choose(self, site, bucket, candidates) -> tuple[str, str]:
        """Pick from *candidates* (``[(direction, modeled_cost), ...]``,
        cheapest first).  Returns ``(direction, chosen_by)``."""
        best_cost = max(candidates[0][1], 1)
        band = [d for d, c in candidates if c <= best_cost * _TUNER_BAND]
        if len(band) == 1:
            return band[0], "heuristic"
        # explore: give every cost-viable direction its trial runs, in
        # deterministic (cost) order
        for d in band:
            if self.observations(site, bucket, d) < _TUNER_EXPLORE:
                return d, "explore"
        # exploit: lowest median latency
        from .obs.stats import quantile_ns

        medians = sorted(
            (quantile_ns(self._hists[(site, bucket, d)], 0.5), i, d)
            for i, d in enumerate(band)
        )
        return medians[0][2], "tuner"


_TUNER = AutoTuner()


# ----------------------------------------------------------------------
# the Schedule annotation
# ----------------------------------------------------------------------


class Schedule:
    """Per-operation schedule annotation, attached to traversal-shaped
    ``OpNode``s in the plan IR and resolved against runtime densities
    just before dispatch.

    Two phases mirror expression lifetime: :meth:`capture` (expression
    construction) records the mode and any :class:`Scheduled` override;
    :meth:`resolve` (dispatch time, when operand stores and the write
    descriptor are in hand) fixes ``direction``, ``frontier`` and — for
    pull — the candidate row set.
    """

    __slots__ = (
        "mode",
        "forced",
        "direction",
        "frontier",
        "chosen_by",
        "candidates",
        "site",
        "bucket",
        "tiles",
        "workers",
    )

    def __init__(self, mode: str = "auto", forced: str | None = None):
        self.mode = mode
        self.forced = forced
        self.direction = None
        self.frontier = None
        self.chosen_by = None
        self.candidates = None
        self.site = None
        self.bucket = None
        # filled in by the PartitionedEngine when this dispatch fans out
        # over row tiles — surfaces in trace span attributes
        self.tiles = None
        self.workers = None

    @classmethod
    def capture(cls) -> "Schedule":
        """Snapshot the schedule controls at expression-construction
        time: an enclosing ``with Scheduled(...)`` wins over the
        environment mode."""
        forced = None
        ctx = _innermost_scheduled()
        if ctx is not None:
            forced = ctx.direction
        return cls(schedule_mode(), forced)

    # -- resolution ----------------------------------------------------

    def resolve(self, func: str, a, u, desc, ta: bool, add_op) -> "Schedule":
        """Fix the direction for one dispatch of *func* (``mxv`` or
        ``vxm``) given the operand stores and write descriptor.

        Feasibility: ``push`` always; ``pull`` only when ``desc.mask``
        is set (unmasked pull degrades to ``dense`` and counts as a
        fallback).  The effective matrix is ``A.T`` when *ta*; its
        gather form serves dense/pull, its transpose serves push — both
        memoized on the store, so repeated iterations pay the transpose
        build at most once.
        """
        mask = getattr(desc, "mask", None)
        mode = self.forced or self.mode
        pull_ok = mask is not None

        if mode == "fixed" or mode == "dense":
            direction, chosen_by = "dense", "mode"
        elif mode == "push":
            direction, chosen_by = "push", "mode"
        elif mode == "pull":
            if pull_ok:
                direction, chosen_by = "pull", "mode"
            else:
                direction, chosen_by = "dense", "fallback"
                STATS.fallbacks += 1
        else:  # auto
            direction, chosen_by = self._choose_auto(func, a, u, desc, ta, add_op)

        self.direction = direction
        if direction == "pull" and self.candidates is None:
            self.candidates = _pull_candidates(mask, desc)
        self.frontier = "bitmap" if direction == "pull" else "sparse"
        self.chosen_by = chosen_by

        STATS.calls[direction] += 1
        site = self.site or (func, a.nrows, a.ncols, int(a.indices.size), bool(ta))
        self.site = site
        prev = _LAST_DIRECTION.get(site)
        if prev is not None and prev != direction:
            STATS.switches += 1
            from . import obs

            if obs.ACTIVE:
                obs.record_event(
                    "schedule.switch",
                    "schedule",
                    op=func,
                    frm=prev,
                    to=direction,
                )
        if len(_LAST_DIRECTION) >= _LAST_DIRECTION_CAP:
            _LAST_DIRECTION.clear()
        _LAST_DIRECTION[site] = direction
        return self

    def _choose_auto(self, func, a, u, desc, ta, add_op):
        """Beamer-style density-adaptive choice via the cost model, with
        the banded autotuner breaking near-ties from observed latency."""
        nnz = int(a.indices.size)
        size = int(u.size)
        unnz = int(u.indices.size)
        mask = getattr(desc, "mask", None)

        # dense: scan every stored entry of the gather matrix
        candidates = [("dense", nnz)]

        # push: Σ out-degree(frontier) on the scatter matrix.  When the
        # frontier is dense the bound density * nnz already rules push
        # out without forcing a transpose build.
        scatter_ready = (func == "mxv") == bool(ta)
        if unnz == 0:
            candidates.append(("push", 0))
        elif scatter_ready or unnz * 4 <= size or a._transpose_cache is not None:
            s = a if scatter_ready else a.transposed()
            deg = s.row_lengths()[u.indices]
            candidates.append(("push", int(deg.sum())))

        # pull: Σ in-degree(candidates) on the gather matrix, discounted
        # when the LogicalOr early exit applies
        if mask is not None:
            cand = _pull_candidates(mask, desc)
            self.candidates = cand
            # the gather matrix is `a` exactly when the scatter matrix
            # is its transpose, and vice versa
            g = a.transposed() if scatter_ready else a
            pdeg = g.row_lengths()[cand]
            cost = int(pdeg.sum())
            if str(add_op) == "LogicalOr":
                cost = cost // _EARLY_EXIT_DISCOUNT + cand.size
            candidates.append(("pull", cost))

        candidates.sort(key=lambda dc: (dc[1], DIRECTIONS.index(dc[0])))
        if not tuner_enabled():
            return candidates[0][0], "heuristic"
        site = (func, a.nrows, a.ncols, nnz, bool(ta))
        self.site = site
        self.bucket = (_log2_bucket(unnz), _log2_bucket(size - unnz))
        return _TUNER.choose(site, self.bucket, candidates)

    def note_latency(self, dur_ns: int) -> None:
        """Feed one engine-call latency back to the autotuner (only
        meaningful for auto-mode schedules with a tuner site)."""
        if self.site is not None and self.bucket is not None:
            _TUNER.note(self.site, self.bucket, self.direction, dur_ns)

    @property
    def wants_timing(self) -> bool:
        """True when the dispatcher should time the engine call for the
        autotuner's benefit."""
        return self.bucket is not None

    @property
    def pins_direction(self) -> bool:
        """True when this schedule forces a non-dense direction.  Fused
        kernels only implement the dense strategy, so the planner must
        not absorb a pinned node into a fused pair."""
        return (self.forced or self.mode) in ("push", "pull")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schedule(mode={self.mode}, direction={self.direction}, "
            f"frontier={self.frontier}, chosen_by={self.chosen_by})"
        )


def _pull_candidates(mask, desc) -> np.ndarray:
    """Row candidates the write mask can accept: the mask's true set, or
    its complement — as a sorted index array (derived from the cached
    dense-bitmap representation of the mask vector)."""
    if getattr(desc, "complement", False):
        return np.flatnonzero(~mask.true_bitmap()).astype(np.int64, copy=False)
    return mask.bool_indices().astype(np.int64, copy=False)


# ----------------------------------------------------------------------
# the Scheduled context manager (DSL idiom, like Semiring/Replace)
# ----------------------------------------------------------------------


class Scheduled:
    """Force a traversal direction for a block::

        with Scheduled("pull"):
            frontier[~levels] = graph.T @ frontier

    Accepts ``auto``, ``fixed``/``dense``, ``push``, ``pull``; the
    innermost block wins over ``$PYGB_SCHEDULE`` (algorithms pass their
    ``schedule=`` argument through this)."""

    def __init__(self, direction: str):
        d = str(direction).strip().lower()
        if d == "fixed":
            d = "dense"
        if d not in ("auto", "dense", "push", "pull"):
            raise ValueError(
                f"bad schedule direction {direction!r}; "
                "valid: auto, fixed, dense, push, pull"
            )
        self.direction = d

    def __enter__(self):
        from .core import context

        context.push(self)
        return self

    def __exit__(self, *exc):
        from .core import context

        context.pop(self)
        return False

    def __repr__(self) -> str:
        return f"Scheduled({self.direction!r})"


def _innermost_scheduled():
    from .core import context

    return context.find(lambda o: isinstance(o, Scheduled))
