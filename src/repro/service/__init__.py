"""Graph service mode: a multi-tenant query server over preloaded graphs.

``python -m repro serve --graphs manifest.json`` boots the stack in this
package:

=============  ========================================================
module         role
=============  ========================================================
`protocol`     line-JSON wire format, eager validation, error codes
`registry`     named preloaded graphs (manifest loader, prewarming)
`admission`    the batching queue: compatible requests fuse into one
               multi-source run under a per-request deadline budget
`server`       threaded TCP front end with live ``health``/``stats``
=============  ========================================================

This module also owns the service's **deterministic counters** —
requests, batches, batched requests, fusion totals, the batch-size
histogram, timeouts, and error tallies — mirroring the module-level
``stats()`` / ``reset_stats()`` convention of :mod:`repro.tiling`,
:mod:`repro.schedule`, and :mod:`repro.guard` so ``repro stats``,
``repro doctor``, and ``benchmarks/collect_bench.py`` can gate on them.
"""

from __future__ import annotations

import threading

from .admission import AdmissionController, solo_reference
from .protocol import ALGORITHMS, ProtocolError, RunRequest
from .registry import GraphRegistry, load_manifest
from .server import GraphServer

__all__ = [
    "ALGORITHMS",
    "AdmissionController",
    "GraphRegistry",
    "GraphServer",
    "ProtocolError",
    "RunRequest",
    "load_manifest",
    "solo_reference",
    "serve",
    "stats",
    "reset_stats",
]

_LOCK = threading.Lock()

_HIST_BUCKETS = ("1", "2_4", "5_8", "9_plus")


def _fresh() -> dict:
    return {
        "requests": 0,
        "batches": 0,
        "batched_requests": 0,
        "fused_runs": 0,
        "fused_sources": 0,
        "timeouts": 0,
        "errors": 0,
        "protocol_errors": 0,
        "disconnects": 0,
        "batch_hist": dict.fromkeys(_HIST_BUCKETS, 0),
    }


_COUNTERS = _fresh()


def _hist_bucket(size: int) -> str:
    if size <= 1:
        return "1"
    if size <= 4:
        return "2_4"
    if size <= 8:
        return "5_8"
    return "9_plus"


def note_request(graph: str, algorithm: str) -> None:
    with _LOCK:
        _COUNTERS["requests"] += 1


def note_batch(graph: str, algorithm: str, size: int, fused: bool) -> None:
    with _LOCK:
        _COUNTERS["batches"] += 1
        _COUNTERS["batch_hist"][_hist_bucket(size)] += 1
        if size > 1:
            _COUNTERS["batched_requests"] += size
        if fused:
            _COUNTERS["fused_runs"] += 1
            _COUNTERS["fused_sources"] += size


def note_timeout(size: int) -> None:
    with _LOCK:
        _COUNTERS["timeouts"] += size


def note_error(size: int) -> None:
    with _LOCK:
        _COUNTERS["errors"] += size


def note_protocol_error() -> None:
    with _LOCK:
        _COUNTERS["protocol_errors"] += 1


def note_disconnect() -> None:
    with _LOCK:
        _COUNTERS["disconnects"] += 1


def stats() -> dict:
    """Deterministic service counters since import (or the last
    :func:`reset_stats`).  Values depend only on the admitted request
    mix and formed batches, never on wall-clock timing."""
    with _LOCK:
        out = dict(_COUNTERS)
        out["batch_hist"] = dict(_COUNTERS["batch_hist"])
        return out


def reset_stats() -> None:
    """Zero the counters (benchmark and test isolation)."""
    global _COUNTERS
    with _LOCK:
        _COUNTERS = _fresh()


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    registry: GraphRegistry | None = None,
) -> GraphServer:
    """Convenience constructor: build a :class:`GraphServer` over
    *registry* (empty by default) without starting it."""
    return GraphServer(registry if registry is not None else GraphRegistry(),
                       host=host, port=port)
