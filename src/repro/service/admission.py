"""Admission control: the batching queue between protocol and engine.

Every validated ``run`` request enters a keyed pending queue; a single
dispatcher thread groups requests by :attr:`RunRequest.batch_key`
(graph + algorithm + canonical params) and releases each group when its
batch window closes or it reaches the batch cap.  Compatible requests
then execute as **one** run on a worker thread:

* source-parameterised algorithms (bfs, sssp) fuse k pending sources
  into one multi-source traversal — k rows of one Matrix frontier
  (:mod:`repro.algorithms.multisource`), demultiplexed per client;
* whole-graph algorithms (pagerank, components, triangles) deduplicate —
  one execution, every waiting client gets the same payload.

Each batch runs under a per-request execution context: a fresh
nonblocking scope (its statements batch through the lazy queue and flush
on observation, isolated per worker thread) inside a ``gb.deadline``
budget when ``$PYGB_REQUEST_TIMEOUT`` is set.  A blown budget surfaces
as a structured ``timeout`` error on every request of the batch — the
connection stays up.

``hold()`` pauses the dispatcher so tests, the replay harness, and the
bench collector can park a known set of requests and release them as one
deterministic batch (batch sizes are otherwise timing-dependent).
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from .. import obs
from ..core.nonblocking import nonblocking
from ..exceptions import GraphBLASError, OperationCancelled, OperationTimeout
from ..guard import deadline
from .protocol import ProtocolError, error_response, ok_response
from .registry import GraphRegistry

__all__ = [
    "AdmissionController",
    "request_timeout",
    "batch_window",
    "batch_max",
    "serve_workers",
    "solo_reference",
    "run_requests",
]

_FALSEY = frozenset({"0", "false", "off", "no"})

DEFAULT_BATCH_WINDOW = 0.005
DEFAULT_BATCH_MAX = 16
DEFAULT_SERVE_WORKERS = 2


def _env_float(name: str, default, minimum: float):
    raw = os.environ.get(name, "").strip().lower()
    if not raw:
        return default
    if raw in _FALSEY:
        return None
    try:
        v = float(raw)
        if v < minimum:
            raise ValueError
    except ValueError:
        warnings.warn(
            f"pygb: bad ${name}={raw!r} (valid: number >= {minimum:g}); "
            f"using the default",
            stacklevel=2,
        )
        return default
    return v


def request_timeout() -> float | None:
    """Per-request wall-clock budget from ``$PYGB_REQUEST_TIMEOUT`` in
    seconds (unset/falsey disables; re-read per batch)."""
    return _env_float("PYGB_REQUEST_TIMEOUT", None, 1e-9)


def batch_window() -> float:
    """How long the dispatcher keeps a batch open for more compatible
    requests after the first arrives (``$PYGB_BATCH_WINDOW`` seconds,
    default 5 ms; 0 dispatches immediately)."""
    v = _env_float("PYGB_BATCH_WINDOW", DEFAULT_BATCH_WINDOW, 0.0)
    return 0.0 if v is None else v


def batch_max() -> int:
    """Most requests one batch may fuse (``$PYGB_BATCH_MAX``, default 16)."""
    raw = os.environ.get("PYGB_BATCH_MAX", "").strip()
    if not raw:
        return DEFAULT_BATCH_MAX
    try:
        v = int(raw)
        if v < 1:
            raise ValueError
    except ValueError:
        warnings.warn(
            f"pygb: bad $PYGB_BATCH_MAX={raw!r} (valid: integer >= 1); "
            f"using {DEFAULT_BATCH_MAX}",
            stacklevel=2,
        )
        return DEFAULT_BATCH_MAX
    return v


def serve_workers() -> int:
    """Worker threads executing admitted batches (``$PYGB_SERVE_WORKERS``,
    default 2)."""
    raw = os.environ.get("PYGB_SERVE_WORKERS", "").strip()
    if not raw:
        return DEFAULT_SERVE_WORKERS
    try:
        v = int(raw)
        if v < 1:
            raise ValueError
    except ValueError:
        warnings.warn(
            f"pygb: bad $PYGB_SERVE_WORKERS={raw!r} (valid: integer >= 1); "
            f"using {DEFAULT_SERVE_WORKERS}",
            stacklevel=2,
        )
        return DEFAULT_SERVE_WORKERS
    return v


# ----------------------------------------------------------------------
# algorithm execution (shared by the service and the test oracles)
# ----------------------------------------------------------------------


def _coo_result(algorithm: str, graph_name: str, indices, values, source=None) -> dict:
    vals = np.asarray(values)
    out_values = (
        [int(v) for v in vals.tolist()]
        if np.issubdtype(vals.dtype, np.integer)
        else vals.tolist()
    )
    result = {
        "algorithm": algorithm,
        "graph": graph_name,
        "nvals": int(len(out_values)),
        "indices": [int(i) for i in np.asarray(indices).tolist()],
        "values": out_values,
    }
    if source is not None:
        result["source"] = int(source)
    return result


def _run_whole(graph, graph_name: str, algorithm: str, params: dict) -> dict:
    from .. import core
    from ..algorithms import (
        connected_components,
        lower_triangle,
        pagerank,
        triangle_count,
    )

    if algorithm == "pagerank":
        ranks = core.Vector(shape=(graph.nrows,), dtype=float)
        pagerank(
            graph,
            ranks,
            damping_factor=params.get("damping", 0.85),
            threshold=params.get("tol", 1.0e-8),
            max_iters=params.get("max_iters", 100000),
        )
        return {
            "algorithm": "pagerank",
            "graph": graph_name,
            "ranks": ranks.to_numpy().tolist(),
        }
    if algorithm == "components":
        labels = connected_components(graph)
        idx, vals = labels.to_coo()
        return _coo_result("components", graph_name, idx, vals)
    if algorithm == "triangles":
        count = triangle_count(lower_triangle(graph))
        return {"algorithm": "triangles", "graph": graph_name, "count": int(count)}
    raise ProtocolError("unknown-algorithm", f"unknown algorithm {algorithm!r}")


def run_requests(graph, graph_name: str, algorithm: str, params: dict, sources) -> list[dict]:
    """Execute one admitted batch: *sources* is the per-request source
    list for fusable algorithms (``[None]*k`` for whole-graph ones).
    Returns one result dict per request, in order."""
    from ..algorithms.multisource import bfs_levels_multi, matrix_row, sssp_distances_multi

    if algorithm in ("bfs", "sssp"):
        runner = bfs_levels_multi if algorithm == "bfs" else sssp_distances_multi
        fused = runner(graph, sources)
        results = []
        for row, source in enumerate(sources):
            idx, vals = matrix_row(fused, row)
            results.append(_coo_result(algorithm, graph_name, idx, vals, source))
        return results
    shared = _run_whole(graph, graph_name, algorithm, params)
    return [shared] * len(sources)


def solo_reference(graph, graph_name: str, algorithm: str, source, params: dict) -> dict:
    """The oracle: run one request through the public **single-source**
    algorithm API, no service machinery.  The replay harness and the
    protocol tests compare every batched response against this — fusion
    must be invisible, bit for bit."""
    from ..algorithms import bfs_levels, sssp_distances

    if algorithm == "bfs":
        levels = bfs_levels(graph, int(source))
        idx, vals = levels.to_coo()
        return _coo_result("bfs", graph_name, idx, vals, source)
    if algorithm == "sssp":
        dist = sssp_distances(graph, int(source))
        idx, vals = dist.to_coo()
        return _coo_result("sssp", graph_name, idx, vals, source)
    return _run_whole(graph, graph_name, algorithm, params)


# ----------------------------------------------------------------------
# the pending queue
# ----------------------------------------------------------------------


class _Pending:
    """One admitted request waiting for its batch to execute."""

    __slots__ = ("request", "event", "response")

    def __init__(self, request):
        self.request = request
        self.event = threading.Event()
        self.response: dict | None = None

    def resolve(self, response: dict) -> None:
        self.response = response
        self.event.set()

    def wait(self, timeout: float | None = None) -> dict:
        if not self.event.wait(timeout):
            return error_response(
                self.request.id, "timeout",
                "the service did not produce a response in time",
            )
        return self.response


class _Group:
    """Pending requests sharing one batch key, oldest first."""

    __slots__ = ("key", "first_at", "pendings")

    def __init__(self, key, now: float):
        self.key = key
        self.first_at = now
        self.pendings: list[_Pending] = []


class AdmissionController:
    """The batching queue.  ``submit()`` is called from connection
    handler threads; one dispatcher thread forms batches; a small worker
    pool executes them."""

    def __init__(
        self,
        registry: GraphRegistry,
        window: float | None = None,
        max_batch: int | None = None,
        workers: int | None = None,
    ):
        self.registry = registry
        self._window = window
        self._max_batch = max_batch
        self._cond = threading.Condition()
        self._groups: dict[tuple, _Group] = {}
        self._held = 0
        self._closed = False
        self._pool = ThreadPoolExecutor(
            max_workers=workers if workers is not None else serve_workers(),
            thread_name_prefix="pygb-serve",
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="pygb-serve-dispatch", daemon=True
        )
        self._dispatcher.start()

    # -- configuration (constructor overrides win over the env) --------
    def window(self) -> float:
        return self._window if self._window is not None else batch_window()

    def max_batch(self) -> int:
        return self._max_batch if self._max_batch is not None else batch_max()

    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def hold(self):
        """Pause batch dispatch for the block — submitted requests park
        in the queue and release as deterministic batches on exit."""
        with self._cond:
            self._held += 1
        try:
            yield self
        finally:
            with self._cond:
                self._held -= 1
                self._cond.notify_all()

    def submit(self, request) -> _Pending:
        """Admit a validated :class:`RunRequest`; returns the pending
        slot its connection thread waits on."""
        from . import note_request

        if self.registry.get(request.graph) is None:
            raise ProtocolError(
                "unknown-graph",
                f"unknown graph {request.graph!r} "
                f"(loaded: {', '.join(self.registry.names()) or 'none'})",
            )
        source = request.source
        if source is not None:
            n = self.registry.get(request.graph).nrows
            if not 0 <= int(source) < n:
                raise ProtocolError(
                    "bad-source",
                    f"source {source} out of range for {n} vertices",
                )
        pending = _Pending(request)
        with self._cond:
            if self._closed:
                raise ProtocolError("shutting-down", "the service is shutting down")
            group = self._groups.get(request.batch_key)
            if group is None:
                group = self._groups[request.batch_key] = _Group(
                    request.batch_key, time.monotonic()
                )
            group.pendings.append(pending)
            self._cond.notify_all()
        note_request(request.graph, request.algorithm)
        if obs.ACTIVE:
            obs.record_event(
                "service.request", "service",
                graph=request.graph, algorithm=request.algorithm,
            )
        return pending

    def close(self) -> None:
        """Stop the dispatcher and fail any still-parked requests."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            leftovers = [p for g in self._groups.values() for p in g.pendings]
            self._groups.clear()
            self._cond.notify_all()
        for pending in leftovers:
            pending.resolve(
                error_response(
                    pending.request.id, "shutting-down",
                    "the service is shutting down",
                )
            )
        self._dispatcher.join(timeout=5.0)
        self._pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # dispatcher
    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            batch: list[_Pending] | None = None
            with self._cond:
                while True:
                    if self._closed:
                        return
                    if self._held or not self._groups:
                        self._cond.wait()
                        continue
                    now = time.monotonic()
                    window = self.window()
                    cap = self.max_batch()
                    due_at = None
                    for key, group in self._groups.items():
                        ready_at = group.first_at + window
                        if len(group.pendings) >= cap or ready_at <= now:
                            batch = group.pendings[:cap]
                            if len(group.pendings) > cap:
                                rest = self._groups[key] = _Group(key, now)
                                rest.pendings = group.pendings[cap:]
                            else:
                                del self._groups[key]
                            break
                        if due_at is None or ready_at < due_at:
                            due_at = ready_at
                    if batch is not None:
                        break
                    self._cond.wait(timeout=max(due_at - now, 0.0))
            self._pool.submit(self._run_batch, batch)
            batch = None

    # ------------------------------------------------------------------
    # batch execution (worker threads)
    # ------------------------------------------------------------------
    def _run_batch(self, pendings: list[_Pending]) -> None:
        from . import note_batch, note_error, note_timeout

        first = pendings[0].request
        graph_name, algorithm, _params_key = first.batch_key
        size = len(pendings)
        fused = size > 1 and first.source is not None
        note_batch(graph_name, algorithm, size, fused)
        if obs.ACTIVE:
            obs.record_event(
                "service.batch", "service",
                graph=graph_name, algorithm=algorithm, size=size, fused=fused,
            )
        graph = self.registry.get(graph_name)
        sources = [p.request.source for p in pendings]
        budget = request_timeout()
        scope = deadline(seconds=budget) if budget is not None else contextlib.nullcontext()
        try:
            with scope, nonblocking():
                results = run_requests(
                    graph, graph_name, algorithm, first.params, sources
                )
            for pending, result in zip(pendings, results):
                pending.resolve(ok_response(pending.request.id, result))
        except OperationTimeout as exc:
            note_timeout(size)
            if obs.ACTIVE:
                obs.record_event(
                    "service.timeout", "service",
                    graph=graph_name, algorithm=algorithm, size=size,
                )
            self._fail(pendings, "timeout", f"request budget exhausted: {exc}")
        except OperationCancelled as exc:
            note_timeout(size)
            self._fail(pendings, "cancelled", f"request cancelled: {exc}")
        except ProtocolError as exc:
            note_error(size)
            self._fail(pendings, exc.code, str(exc))
        except GraphBLASError as exc:
            note_error(size)
            if obs.ACTIVE:
                obs.record_event(
                    "service.error", "service",
                    graph=graph_name, algorithm=algorithm, size=size,
                )
            self._fail(pendings, "internal", f"execution failed: {exc}")
        except BaseException as exc:  # a worker must never strand its clients
            note_error(size)
            if obs.ACTIVE:
                obs.record_event(
                    "service.error", "service",
                    graph=graph_name, algorithm=algorithm, size=size,
                )
            self._fail(pendings, "internal", f"unexpected failure: {exc!r}")

    @staticmethod
    def _fail(pendings: list[_Pending], code: str, message: str) -> None:
        for pending in pendings:
            pending.resolve(error_response(pending.request.id, code, message))
