"""Wire protocol of the graph service: one JSON object per line.

Requests and responses are UTF-8 JSON documents, newline-terminated, one
per line (the classic line-delimited-JSON framing — trivially scriptable
with ``nc`` and language-agnostic).  Every response carries ``ok`` plus
either ``result`` or a structured ``error`` with a stable ``code``; the
request's ``id`` (any JSON scalar) is echoed back so clients can
pipeline.

Request shapes::

    {"op": "run", "graph": "web", "algorithm": "bfs", "source": 3}
    {"op": "run", "graph": "web", "algorithm": "sssp", "source": 0, "id": 7}
    {"op": "run", "graph": "web", "algorithm": "pagerank",
     "params": {"damping": 0.85, "tol": 1e-8}}
    {"op": "health"}
    {"op": "stats"}
    {"op": "graphs"}

Error codes (the protocol test suite pins these): ``line-too-long``,
``bad-json``, ``bad-request``, ``unknown-op``, ``unknown-graph``,
``unknown-algorithm``, ``bad-source``, ``bad-params``, ``timeout``,
``cancelled``, ``internal``, ``shutting-down``.

Validation is **eager and total**: a request that reaches the admission
queue is guaranteed well-formed, so the execution path never parses.
"""

from __future__ import annotations

import json
import os
import warnings

__all__ = [
    "ALGORITHMS",
    "DEFAULT_MAX_LINE",
    "ProtocolError",
    "RunRequest",
    "max_line_bytes",
    "parse_request",
    "encode_response",
    "error_response",
    "ok_response",
]

#: request-line size cap (bytes), before parsing — an unframed client
#: (or a binary blob aimed at the port) cannot balloon server memory
DEFAULT_MAX_LINE = 1 << 20

#: algorithm name -> whether it takes a per-request ``source`` vertex.
#: Source-parameterised algorithms are the fusable ones (k sources
#: become one multi-source run); the rest are whole-graph computations
#: that batching deduplicates instead.
ALGORITHMS = {
    "bfs": True,
    "sssp": True,
    "pagerank": False,
    "components": False,
    "triangles": False,
}

_VALID_PARAMS = {
    "pagerank": {"damping": float, "tol": float, "max_iters": int},
}


class ProtocolError(Exception):
    """A structured protocol-level failure: ``code`` is the stable wire
    identifier, ``str()`` the human-readable detail."""

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code


def max_line_bytes() -> int:
    """``$PYGB_SERVICE_MAX_LINE`` (bytes), default 1 MiB."""
    raw = os.environ.get("PYGB_SERVICE_MAX_LINE", "").strip()
    if not raw:
        return DEFAULT_MAX_LINE
    try:
        v = int(raw)
        if v < 1:
            raise ValueError
    except ValueError:
        warnings.warn(
            f"pygb: bad $PYGB_SERVICE_MAX_LINE={raw!r} (valid: bytes >= 1); "
            f"using {DEFAULT_MAX_LINE}",
            stacklevel=2,
        )
        return DEFAULT_MAX_LINE
    return v


class RunRequest:
    """A validated ``{"op": "run"}`` request.

    ``batch_key`` groups compatible requests for the admission queue:
    same graph + same algorithm + same (canonicalised) params may fuse
    into one run.  The per-request ``source`` deliberately stays out of
    the key — distinct sources are exactly what multi-source fusion
    merges.
    """

    __slots__ = ("id", "graph", "algorithm", "source", "params", "batch_key")

    def __init__(self, req_id, graph: str, algorithm: str, source, params: dict):
        self.id = req_id
        self.graph = graph
        self.algorithm = algorithm
        self.source = source
        self.params = params
        self.batch_key = (graph, algorithm, json.dumps(params, sort_keys=True))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        src = f", source={self.source}" if self.source is not None else ""
        return f"RunRequest({self.algorithm} on {self.graph!r}{src})"


def _validate_params(algorithm: str, raw) -> dict:
    if raw is None:
        return {}
    if not isinstance(raw, dict):
        raise ProtocolError("bad-params", "'params' must be a JSON object")
    allowed = _VALID_PARAMS.get(algorithm, {})
    out = {}
    for key, value in raw.items():
        if key not in allowed:
            raise ProtocolError(
                "bad-params", f"unknown parameter {key!r} for {algorithm}"
            )
        caster = allowed[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError("bad-params", f"parameter {key!r} must be a number")
        out[key] = caster(value)
    return out


def parse_request(line: bytes | str) -> dict:
    """Decode and validate one request line into a plain dict:
    ``{"op": "health"|"stats"|"graphs"}`` pass through, ``run`` becomes
    ``{"op": "run", "request": RunRequest}``.  Raises
    :class:`ProtocolError` on anything malformed."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("bad-json", f"request line is not UTF-8: {exc}") from None
    try:
        doc = json.loads(line)
    except ValueError as exc:
        raise ProtocolError("bad-json", f"request line is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    op = doc.get("op")
    if not isinstance(op, str):
        raise ProtocolError("bad-request", "request needs a string 'op' field")
    req_id = doc.get("id")
    if req_id is not None and not isinstance(req_id, (str, int, float)):
        raise ProtocolError("bad-request", "'id' must be a JSON scalar")
    if op in ("health", "stats", "graphs"):
        return {"op": op, "id": req_id}
    if op != "run":
        raise ProtocolError("unknown-op", f"unknown op {op!r}")
    graph = doc.get("graph")
    if not isinstance(graph, str) or not graph:
        raise ProtocolError("bad-request", "'run' needs a string 'graph' field")
    algorithm = doc.get("algorithm")
    if not isinstance(algorithm, str):
        raise ProtocolError("bad-request", "'run' needs a string 'algorithm' field")
    if algorithm not in ALGORITHMS:
        raise ProtocolError(
            "unknown-algorithm",
            f"unknown algorithm {algorithm!r} "
            f"(available: {', '.join(sorted(ALGORITHMS))})",
        )
    source = doc.get("source")
    if ALGORITHMS[algorithm]:
        if isinstance(source, bool) or not isinstance(source, int):
            raise ProtocolError(
                "bad-source", f"{algorithm} needs an integer 'source' vertex"
            )
    elif source is not None:
        raise ProtocolError(
            "bad-source", f"{algorithm} does not take a 'source' vertex"
        )
    params = _validate_params(algorithm, doc.get("params"))
    return {
        "op": "run",
        "id": req_id,
        "request": RunRequest(req_id, graph, algorithm, source, params),
    }


def ok_response(req_id, result: dict) -> dict:
    resp = {"ok": True, "result": result}
    if req_id is not None:
        resp["id"] = req_id
    return resp


def error_response(req_id, code: str, message: str) -> dict:
    resp = {"ok": False, "error": {"code": code, "message": message}}
    if req_id is not None:
        resp["id"] = req_id
    return resp


def encode_response(resp: dict) -> bytes:
    """Response dict -> one wire line.  ``sort_keys`` makes the byte
    stream canonical, so bit-identity checks can compare raw lines."""
    return json.dumps(resp, sort_keys=True).encode("utf-8") + b"\n"
