"""Named preloaded graphs for the service, with a JSON manifest loader.

The registry is the service's multi-tenant data plane: graphs are loaded
(or generated) **once** at boot, prewarmed, and then shared read-only by
every server thread.  Prewarming materialises the representations the
algorithms build lazily on first touch — the cached transpose (every
``graph.T @ frontier`` step) and the memoized degree statistics (the
schedule cost model) — so the first request pays no hidden build and
concurrent first requests cannot race one (the memo builds are also
lock-protected; see ``backend/smatrix.py``).

Manifest format (``--graphs manifest.json``)::

    {"graphs": {
        "web":   {"path": "data/web.mtx"},
        "rmat9": {"generator": "rmat", "scale": 9, "edge_factor": 16,
                  "seed": 42, "weighted": true},
        "er":    {"generator": "erdos_renyi", "nodes": 512, "seed": 7,
                  "weighted": true}
    }}

The top-level ``"graphs"`` wrapper is optional.  ``path`` entries load
MatrixMarket files via the fast loader; ``generator`` entries call the
synthetic generators in :mod:`repro.io.generators` with the remaining
keys as keyword arguments.  All graphs load as ``float64`` so every
algorithm (weighted SSSP included) can run against them.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

from ..core.matrix import Matrix
from ..exceptions import InvalidValue

__all__ = ["GraphRegistry", "load_manifest"]

_GENERATORS = frozenset(
    {"erdos_renyi", "ring_graph", "grid_graph", "rmat", "scale_free"}
)


class GraphRegistry:
    """Thread-safe name → preloaded :class:`~repro.core.matrix.Matrix`."""

    def __init__(self):
        self._graphs: dict[str, Matrix] = {}
        self._lock = threading.Lock()

    def add(self, name: str, graph: Matrix, prewarm: bool = True) -> Matrix:
        if not isinstance(name, str) or not name:
            raise InvalidValue("graph names must be non-empty strings")
        if prewarm:
            self.prewarm(graph)
        with self._lock:
            self._graphs[name] = graph
        return graph

    @staticmethod
    def prewarm(graph: Matrix) -> None:
        """Build the lazily-memoized shared representations up front:
        the transpose (both orientations' traversals) and the degree
        statistics (schedule cost model)."""
        store = graph._store
        transposed = getattr(store, "transposed", None)
        if callable(transposed):
            transposed()
        lengths = getattr(store, "row_lengths", None)
        if callable(lengths):
            lengths()
        stats = getattr(store, "degree_stats", None)
        if callable(stats):
            stats()

    def get(self, name: str) -> Matrix | None:
        with self._lock:
            return self._graphs.get(name)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._graphs)

    def __len__(self) -> int:
        with self._lock:
            return len(self._graphs)

    def describe(self) -> dict[str, dict]:
        """Per-graph summary for the ``graphs``/``health`` endpoints."""
        with self._lock:
            items = list(self._graphs.items())
        return {
            name: {
                "nrows": g.nrows,
                "ncols": g.ncols,
                "nvals": g.nvals,
                "dtype": str(g.dtype),
            }
            for name, g in items
        }


def _build_entry(name: str, spec: dict, base_dir: Path) -> Matrix:
    if not isinstance(spec, dict):
        raise InvalidValue(f"manifest entry {name!r} must be a JSON object")
    if "path" in spec:
        from ..io.fastload import mmread_fast

        path = Path(spec["path"])
        if not path.is_absolute():
            path = base_dir / path
        return mmread_fast(str(path), dtype=float)
    generator = spec.get("generator")
    if generator is None:
        raise InvalidValue(
            f"manifest entry {name!r} needs either 'path' or 'generator'"
        )
    if generator not in _GENERATORS:
        raise InvalidValue(
            f"manifest entry {name!r}: unknown generator {generator!r} "
            f"(available: {', '.join(sorted(_GENERATORS))})"
        )
    from ..io import generators

    kwargs = {k: v for k, v in spec.items() if k != "generator"}
    kwargs.setdefault("dtype", float)
    return getattr(generators, generator)(**kwargs)


def load_manifest(path: str | Path, registry: GraphRegistry | None = None) -> GraphRegistry:
    """Load every graph named in the manifest at *path* into *registry*
    (a fresh one by default) and return it."""
    manifest_path = Path(path)
    try:
        doc = json.loads(manifest_path.read_text())
    except ValueError as exc:
        raise InvalidValue(f"manifest {manifest_path} is not valid JSON: {exc}") from None
    if not isinstance(doc, dict):
        raise InvalidValue(f"manifest {manifest_path} must be a JSON object")
    entries = doc.get("graphs", doc)
    if not isinstance(entries, dict):
        raise InvalidValue(f"manifest {manifest_path}: 'graphs' must be an object")
    registry = registry if registry is not None else GraphRegistry()
    for name, spec in entries.items():
        registry.add(name, _build_entry(name, spec, manifest_path.parent))
    return registry
