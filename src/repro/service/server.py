"""The graph service front end: a threaded line-JSON-over-TCP server.

One daemon thread per connection reads newline-framed JSON requests
(capped at ``$PYGB_SERVICE_MAX_LINE`` bytes), validates them through
:mod:`repro.service.protocol`, and routes:

* ``run`` requests enter the :class:`~repro.service.admission.AdmissionController`
  queue and block the connection thread until their batch resolves —
  clients may pipeline by tagging requests with ``id``;
* ``health`` / ``stats`` / ``graphs`` answer immediately from the
  registry and the deterministic service counters (the live equivalents
  of ``repro doctor`` and ``repro stats``).

Failure policy: every protocol error produces a structured
``{"ok": false, "error": {...}}`` response on the same connection —
only an over-long line (unframed garbage) closes it, after a final
``line-too-long`` error.  Client disconnects mid-request are absorbed
and counted, never propagated into the batch (the fused run finishes
for the other clients).
"""

from __future__ import annotations

import select
import socket
import socketserver
import threading

from .. import obs
from .admission import AdmissionController
from .protocol import (
    ALGORITHMS,
    ProtocolError,
    encode_response,
    error_response,
    max_line_bytes,
    ok_response,
    parse_request,
)
from .registry import GraphRegistry

__all__ = ["GraphServer", "read_line"]


def read_line(rfile, limit: int) -> bytes | None:
    """Read one newline-terminated request line of at most *limit*
    bytes.  Returns ``None`` at EOF; raises :class:`ProtocolError`
    (``line-too-long``) when the cap is hit before a newline."""
    line = rfile.readline(limit + 1)
    if not line:
        return None
    if len(line) > limit and not line.endswith(b"\n"):
        raise ProtocolError(
            "line-too-long", f"request line exceeds {limit} bytes"
        )
    return line.rstrip(b"\r\n")


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        server: "GraphServer" = self.server  # type: ignore[assignment]
        limit = max_line_bytes()
        while True:
            try:
                line = read_line(self.rfile, limit)
            except ProtocolError as exc:
                # unframed input: answer once, then drop the connection
                server._note_protocol_error()
                self._reply(error_response(None, exc.code, str(exc)))
                return
            except (ConnectionError, OSError):
                server._note_disconnect()
                return
            if line is None:
                return
            if not line.strip():
                continue
            try:
                response = self._respond(server, line)
            except ProtocolError as exc:
                server._note_protocol_error()
                response = error_response(_peek_id(line), exc.code, str(exc))
            if not self._reply(response):
                server._note_disconnect()
                return

    def _respond(self, server: "GraphServer", line: bytes) -> dict:
        doc = parse_request(line)
        op = doc["op"]
        if op == "health":
            return ok_response(doc["id"], server.health())
        if op == "stats":
            return ok_response(doc["id"], server.stats())
        if op == "graphs":
            return ok_response(doc["id"], {"graphs": server.registry.describe()})
        pending = server.admission.submit(doc["request"])
        return pending.wait()

    def _reply(self, response: dict) -> bool:
        try:
            # a client that closed while its batch ran leaves a readable
            # EOF; a bare write would land in the kernel buffer and
            # "succeed", so peek first to notice the disconnect
            readable, _, _ = select.select([self.connection], [], [], 0)
            if readable and self.connection.recv(1, socket.MSG_PEEK) == b"":
                return False
            self.wfile.write(encode_response(response))
            self.wfile.flush()
            return True
        except (ConnectionError, OSError):
            return False


def _peek_id(line: bytes):
    """Best-effort request-id recovery for error responses on lines that
    parsed as JSON but failed validation."""
    import json

    try:
        doc = json.loads(line)
        req_id = doc.get("id") if isinstance(doc, dict) else None
        return req_id if isinstance(req_id, (str, int, float)) else None
    except ValueError:
        return None


class GraphServer(socketserver.ThreadingTCPServer):
    """The service: bind, ``serve_forever()`` (or ``start()`` for a
    background thread), ``close()``.  Port 0 binds an ephemeral port;
    read it back from :attr:`port`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        registry: GraphRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        admission: AdmissionController | None = None,
    ):
        self.registry = registry
        self.admission = admission if admission is not None else AdmissionController(registry)
        self._serve_thread: threading.Thread | None = None
        super().__init__((host, port), _Handler)
        if obs.ACTIVE:
            obs.record_event(
                "service.start", "service",
                host=host, port=self.port, graphs=len(registry),
            )

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def host(self) -> str:
        return self.server_address[0]

    # ------------------------------------------------------------------
    def start(self) -> "GraphServer":
        """Serve on a background daemon thread (tests, the harness)."""
        self._serve_thread = threading.Thread(
            target=self.serve_forever, name="pygb-serve-accept", daemon=True
        )
        self._serve_thread.start()
        return self

    def close(self) -> None:
        self.shutdown()
        self.server_close()
        self.admission.close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None

    def __enter__(self) -> "GraphServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # live endpoints
    # ------------------------------------------------------------------
    def health(self) -> dict:
        from . import stats as service_stats

        counters = service_stats()
        return {
            "status": "ok",
            "graphs": self.registry.names(),
            "algorithms": sorted(ALGORITHMS),
            "requests": counters["requests"],
            "errors": counters["errors"] + counters["protocol_errors"],
        }

    def stats(self) -> dict:
        from . import stats as service_stats

        return service_stats()

    # ------------------------------------------------------------------
    def _note_protocol_error(self) -> None:
        from . import note_protocol_error

        note_protocol_error()

    def _note_disconnect(self) -> None:
        from . import note_disconnect

        note_disconnect()


def _client_roundtrip(host: str, port: int, payload: bytes, timeout: float = 10.0) -> bytes:
    """One request, one response, over a fresh connection — the minimal
    client used by the CLI smoke path and the tests."""
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(payload)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            if chunk.endswith(b"\n"):
                break
        return b"".join(chunks)
