"""Test-support utilities shipped with the library.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
the fault-tolerance suite (and any downstream integration test) uses to
exercise the JIT runtime's recovery paths without a genuinely broken
toolchain.
"""

from .faults import FAULTS, FaultPlan, fault_injection

__all__ = ["FAULTS", "FaultPlan", "fault_injection"]
