"""Deterministic fault injection for the JIT pipeline.

The resilience layer (fallback chain, cache-integrity rebuilds, compile
timeouts) only earns its keep if every recovery path is exercised by
tests, and real faults — a wedged ``g++``, a half-written ``.so`` — are
awkward to reproduce on demand.  This module plants named hook points in
the engines; each hook asks :data:`FAULTS` whether it should fire.

Faults are configured two ways:

* the ``PYGB_FAULT`` environment variable, a comma-separated list of
  ``kind`` or ``kind:rate`` entries, e.g.
  ``PYGB_FAULT=compile_fail:0.5,slow_compile``;
* programmatically via :meth:`FaultPlan.install` /
  :func:`fault_injection` (the context-manager form tests use).

Firing is **deterministic**, never random: each rule keeps an
accumulator that starts at ``1 - rate``, adds ``rate`` per eligible
call, and fires (subtracting 1) whenever it reaches 1.  So ``rate=1``
fires on every call, ``rate=0.5`` on the 1st, 3rd, 5th, ... — the first
eligible call always fires, which is what makes "corrupt the artifact
once, then let the rebuild succeed" expressible as ``corrupt_so:0.5``.

Supported kinds and their hook points:

================== ====================================================
``compile_fail``    ``CppJitEngine._compile`` raises ``CompilationError``
``slow_compile``    the compiler command is replaced by a sleeper so the
                    ``PYGB_COMPILE_TIMEOUT`` machinery trips for real
``corrupt_so``      the freshly compiled ``.so`` is truncated in place
``dlopen_fail``     ``ctypes.CDLL`` load raises ``OSError``
``pyjit_fail``      ``PyJitEngine._module`` raises ``CompilationError``
``kernel_fail``     ``ResilientEngine`` raises ``KernelExecutionError``
                    *at runtime* before trying an engine (the kernel
                    "crashed"), exercising the execution fallback chain
``slow_kernel``     the dispatch stalls for ``$PYGB_FAULT_SLEEP`` (50ms
                    default) via an interruptible sleep, tripping
                    ``gb.deadline`` / ``PYGB_OP_TIMEOUT`` for real
``worker_crash``    one tile-worker task raises ``KernelExecutionError``
                    mid-fan-out, exercising monolithic re-execution
``worker_hang``     one tile-worker task stalls ``$PYGB_FAULT_HANG``
                    (30s default), tripping ``PYGB_WORKER_TIMEOUT``
``queue_overflow``  the nonblocking queue flushes immediately after the
                    next enqueue (a forced ``overflow`` flush reason)
================== ====================================================

The five runtime kinds (``kernel_fail`` … ``queue_overflow``) sit on hot
dispatch paths, so :meth:`FaultPlan.fire` takes a lock-free fast path
when no rules are installed and ``$PYGB_FAULT`` is unset.
"""

from __future__ import annotations

import os
import threading

__all__ = ["FAULT_KINDS", "FaultPlan", "FAULTS", "fault_injection"]

FAULT_KINDS = frozenset({
    # compile/load pipeline faults (PR 3)
    "compile_fail", "slow_compile", "corrupt_so", "dlopen_fail", "pyjit_fail",
    # runtime execution faults (guardrail ladder)
    "kernel_fail", "slow_kernel", "worker_crash", "worker_hang", "queue_overflow",
})


def _check_kind(kind: str) -> None:
    """Uniform kind validation for both configuration paths (env parsing
    and programmatic install) — same exception, same message."""
    if kind not in FAULT_KINDS:
        raise ValueError(
            f"unknown fault kind {kind!r}; "
            f"valid: {', '.join(sorted(FAULT_KINDS))}"
        )


class _Rule:
    __slots__ = ("rate", "acc", "times", "fired")

    def __init__(self, rate: float, times: int | None = None):
        if not 0.0 < rate <= 1.0:
            raise ValueError(f"fault rate must be in (0, 1], got {rate}")
        self.rate = rate
        self.acc = 1.0 - rate  # first eligible call always fires
        self.times = times
        self.fired = 0


def _parse_env(raw: str) -> dict[str, _Rule]:
    rules: dict[str, _Rule] = {}
    for entry in raw.split(","):
        entry = entry.strip()
        if not entry:
            continue
        kind, _, rate_s = entry.partition(":")
        _check_kind(kind)
        rules[kind] = _Rule(float(rate_s) if rate_s else 1.0)
    return rules


class FaultPlan:
    """Process-wide fault table, re-synced whenever ``$PYGB_FAULT``
    changes (so tests can flip the variable without extra plumbing)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._env_raw: str | None = None
        self._rules: dict[str, _Rule] = {}

    # -- configuration --------------------------------------------------
    def install(self, kind: str, rate: float = 1.0, times: int | None = None) -> None:
        """Programmatic hook: make *kind* fire at *rate*, at most *times*
        times (None = unlimited).  Survives until :meth:`clear` or an
        env-var change."""
        _check_kind(kind)
        with self._lock:
            self._sync_env_locked()
            self._rules[kind] = _Rule(rate, times)

    def clear(self) -> None:
        """Remove every rule (env-configured rules return if the env var
        is still set on the next sync)."""
        with self._lock:
            self._rules.clear()
            self._env_raw = os.environ.get("PYGB_FAULT", "")

    def active(self) -> dict[str, dict]:
        """Current rules with their firing counts (for ``repro doctor``)."""
        with self._lock:
            self._sync_env_locked()
            return {
                kind: {"rate": r.rate, "times": r.times, "fired": r.fired}
                for kind, r in self._rules.items()
            }

    # -- the hook -------------------------------------------------------
    def fire(self, kind: str) -> bool:
        """Whether the hook point *kind* should inject its fault now.

        The runtime kinds call this once per dispatch, so the common case
        (no rules installed, ``$PYGB_FAULT`` unset) is answered without
        taking the lock."""
        if not self._rules and not os.environ.get("PYGB_FAULT"):
            return False
        with self._lock:
            self._sync_env_locked()
            rule = self._rules.get(kind)
            if rule is None:
                return False
            if rule.times is not None and rule.fired >= rule.times:
                return False
            rule.acc += rule.rate
            if rule.acc >= 1.0 - 1e-9:
                rule.acc -= 1.0
                rule.fired += 1
                return True
            return False

    def _sync_env_locked(self) -> None:
        raw = os.environ.get("PYGB_FAULT", "")
        if raw != self._env_raw:
            self._env_raw = raw
            self._rules = _parse_env(raw)


#: the process-wide plan every hook point consults
FAULTS = FaultPlan()


class fault_injection:
    """``with fault_injection("compile_fail", rate=0.5): ...`` — install a
    rule for the duration of a block, restoring a clean table after."""

    def __init__(self, kind: str, rate: float = 1.0, times: int | None = None):
        self._kind, self._rate, self._times = kind, rate, times

    def __enter__(self):
        FAULTS.install(self._kind, self._rate, self._times)
        return FAULTS

    def __exit__(self, *exc):
        FAULTS.clear()
        return False
