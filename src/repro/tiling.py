"""Tiled data-plane configuration, counters, and the worker pool.

This module is the control plane for row-block tiling (the storage side
lives in ``backend/tiled.py``, the executor in ``core.dispatch``'s
``PartitionedEngine``).  Mirroring ``schedule.py``, it exposes:

* env-var knobs re-read per operation — ``$PYGB_TILES`` (``auto`` | ``1``
  | ``<n>``) and ``$PYGB_WORKERS`` (worker-thread count, default the CPU
  count);
* a :class:`tiled` context manager whose innermost block overrides the
  env vars (the DSL-level ``gb.tiled(...)``);
* deterministic process-wide counters (:func:`stats` /
  :func:`reset_stats`) that the benchmark harness and ``repro doctor``
  report — tiles created, partitioned/forwarded dispatches per op, tile
  tasks executed, merges per kind;
* a lazily built ``ThreadPoolExecutor`` shared by all partitioned
  dispatches.  Kernels are reentrant (they only read their operands and
  allocate fresh outputs), so plain threads suffice; tasks are submitted
  and collected in tile order to keep execution deterministic.

``auto`` mode only tiles when there is real parallelism to win:
multiple workers, at least :data:`AUTO_TILE_MIN_NNZ` stored values, and
at least two rows per worker.  Small graphs therefore stay monolithic
and the default configuration is machine-independent in CI.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from concurrent.futures import ThreadPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError

import numpy as np

from .backend.smatrix import SparseMatrix
from .backend.tiled import TiledMatrix

__all__ = [
    "AUTO_TILE_MIN_NNZ",
    "tiled",
    "tiles_mode",
    "workers_count",
    "maybe_tile",
    "partition_for",
    "wants_partition",
    "exact_fold",
    "fold_scalars",
    "run_tile_tasks",
    "note_partition",
    "note_forward",
    "note_merge",
    "reset_stats",
    "stats",
]

_FALSEY = frozenset({"0", "false", "off", "no"})

#: auto mode leaves matrices below this nnz monolithic — per-tile Python
#: dispatch overhead swamps any bandwidth win on small operands
AUTO_TILE_MIN_NNZ = 65536


# ----------------------------------------------------------------------
# configuration: env vars + context-manager overrides
# ----------------------------------------------------------------------


class tiled:
    """Force a tiling configuration for a block::

        with gb.tiled(tiles=4, workers=2):
            w[mask] = graph @ frontier

    ``tiles`` accepts ``"auto"``, ``1`` (monolithic — the ablation
    setting), or an explicit tile count; ``workers`` caps the pool for
    dispatches inside the block.  ``None`` leaves the corresponding env
    var (``$PYGB_TILES`` / ``$PYGB_WORKERS``) in charge; the innermost
    block wins."""

    def __init__(self, tiles=None, workers=None):
        if tiles is not None and not (
            isinstance(tiles, str) and tiles.strip().lower() == "auto"
        ):
            tiles = int(tiles)
            if tiles < 1:
                raise ValueError(f"tiled(tiles={tiles}): tile count must be >= 1")
        elif isinstance(tiles, str):
            tiles = "auto"
        if workers is not None:
            workers = int(workers)
            if workers < 1:
                raise ValueError(f"tiled(workers={workers}): worker count must be >= 1")
        self.tiles = tiles
        self.workers = workers

    def __enter__(self):
        from .core import context

        context.push(self)
        return self

    def __exit__(self, *exc):
        from .core import context

        context.pop(self)
        return False

    def __repr__(self) -> str:
        return f"tiled(tiles={self.tiles!r}, workers={self.workers!r})"


def _innermost_tiled():
    from .core import context

    return context.find(lambda o: isinstance(o, tiled))


def tiles_mode():
    """The active tile count: ``"auto"`` or an int ``>= 1``.  Innermost
    ``gb.tiled(...)`` block wins over ``$PYGB_TILES`` (re-read per
    operation, like the other execution flags)."""
    ctx = _innermost_tiled()
    if ctx is not None and ctx.tiles is not None:
        return ctx.tiles
    raw = os.environ.get("PYGB_TILES", "auto").strip().lower()
    if raw in ("auto", ""):
        return "auto"
    try:
        n = int(raw)
        if n >= 1:
            return n
    except ValueError:
        pass
    warnings.warn(
        f"pygb: bad $PYGB_TILES={raw!r} (valid: auto, or an integer >= 1); "
        "using auto",
        stacklevel=2,
    )
    return "auto"


def workers_count() -> int:
    """The worker-pool size: innermost ``gb.tiled(workers=...)`` block,
    else ``$PYGB_WORKERS``, else the CPU count."""
    ctx = _innermost_tiled()
    if ctx is not None and ctx.workers is not None:
        return ctx.workers
    raw = os.environ.get("PYGB_WORKERS", "").strip()
    if raw:
        try:
            n = int(raw)
            if n >= 1:
                return n
        except ValueError:
            pass
        warnings.warn(
            f"pygb: bad $PYGB_WORKERS={raw!r} (valid: an integer >= 1); "
            "using the CPU count",
            stacklevel=2,
        )
    return os.cpu_count() or 1


# ----------------------------------------------------------------------
# deterministic counters
# ----------------------------------------------------------------------


class _TilingStats:
    """Process-wide deterministic tiling counters (no timing)."""

    __slots__ = ("tiles_created", "partitioned", "forwarded", "tile_tasks", "merges")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.tiles_created = 0
        self.partitioned = {}
        self.forwarded = {}
        self.tile_tasks = 0
        self.merges = {}


STATS = _TilingStats()

#: tile tasks increment ``STATS.tile_tasks`` from worker threads, so the
#: read-modify-write needs a lock to stay exact (all other counters are
#: dispatch-thread-only)
_TASK_COUNT_LOCK = threading.Lock()


def note_partition(op: str, ntiles: int, workers: int) -> None:
    """Record one dispatch fanned out over *ntiles* row blocks."""
    STATS.partitioned[op] = STATS.partitioned.get(op, 0) + 1
    from . import obs

    if obs.ACTIVE:
        obs.record_event(
            "tiling.partition", "tiling", op=op, tiles=int(ntiles), workers=int(workers)
        )


def note_forward(op: str) -> None:
    """Record one dispatch on a tiled operand executed monolithically
    (pinned push/pull schedule, inexact reduction fold, hazard-bearing
    assign, or a partition below the threshold)."""
    STATS.forwarded[op] = STATS.forwarded.get(op, 0) + 1
    from . import obs

    if obs.ACTIVE:
        obs.record_event("tiling.forward", "tiling", op=op)


def note_merge(kind: str) -> None:
    """Record one partial-result merge (``concat`` or ``fold``)."""
    STATS.merges[kind] = STATS.merges.get(kind, 0) + 1


def reset_stats() -> None:
    """Zero the tiling counters."""
    STATS.reset()


def stats() -> dict:
    """Snapshot of the deterministic tiling counters."""
    return {
        "tiles_created": STATS.tiles_created,
        "partitioned": dict(STATS.partitioned),
        "partitioned_total": sum(STATS.partitioned.values()),
        "forwarded": dict(STATS.forwarded),
        "forwarded_total": sum(STATS.forwarded.values()),
        "tile_tasks": STATS.tile_tasks,
        "merges": dict(STATS.merges),
        "merges_total": sum(STATS.merges.values()),
    }


# ----------------------------------------------------------------------
# partition decisions
# ----------------------------------------------------------------------


def wants_partition(a: SparseMatrix) -> bool:
    """Cheap pre-check: could a dispatch on *a* possibly partition?

    Called before any transpose is materialised — ``nvals`` is invariant
    under transposition, so the expensive thresholds can be tested on the
    un-transposed operand; the row-count checks happen later in
    :func:`partition_for` on the effective matrix."""
    if isinstance(a, TiledMatrix):
        return a.ntiles > 1
    mode = tiles_mode()
    if mode == "auto":
        n = workers_count()
        return n > 1 and a.nvals >= AUTO_TILE_MIN_NNZ
    return mode > 1


def partition_for(g: SparseMatrix):
    """The :class:`TiledMatrix` partition driving one dispatch whose
    output rows follow *g*'s rows, or ``None`` to stay monolithic.

    Already-tiled operands reuse their stored splits; plain operands get
    a transient partition when the active configuration asks for one
    (this is how ``gb.tiled(...)`` applies to containers built outside
    the block)."""
    if isinstance(g, TiledMatrix):
        return g if g.ntiles > 1 else None
    mode = tiles_mode()
    if mode == "auto":
        n = workers_count()
        if n <= 1 or g.nvals < AUTO_TILE_MIN_NNZ or g.nrows < 2 * n:
            return None
    else:
        n = mode
        if n <= 1 or g.nrows < n:
            return None
    t = TiledMatrix.from_monolithic(g, n)
    if t.ntiles <= 1:
        return None
    STATS.tiles_created += t.ntiles
    return t


def maybe_tile(store):
    """Wrap a plain matrix store in a :class:`TiledMatrix` when the
    active configuration calls for it (no-op on vectors, on already
    tiled stores, and below the thresholds).  Containers route every
    newly adopted matrix store through here."""
    if type(store) is not SparseMatrix:
        return store
    mode = tiles_mode()
    if mode == "auto":
        n = workers_count()
        if n <= 1 or store.nvals < AUTO_TILE_MIN_NNZ or store.nrows < 2 * n:
            return store
    else:
        n = mode
        if n <= 1 or store.nrows < n:
            return store
    t = TiledMatrix.from_monolithic(store, n)
    if t.ntiles <= 1:
        return store
    STATS.tiles_created += t.ntiles
    return t


# ----------------------------------------------------------------------
# scalar-reduction merge semantics
# ----------------------------------------------------------------------

#: float folds that are exactly associative, so per-tile partials merge
#: bit-identically; float Plus/Times are NOT here because NumPy's pairwise
#: summation would be reassociated by the tile boundaries
_EXACT_FOLD_FLOAT_OPS = frozenset({"Min", "Max", "LogicalOr", "LogicalAnd", "LogicalXor"})


def exact_fold(op: str, dtype) -> bool:
    """Whether a per-tile reduction with monoid *op* on *dtype* folds to
    the bit-identical monolithic result (ints/bools always; floats only
    for the order-insensitive monoids)."""
    if np.dtype(dtype).kind in "biu":
        return True
    return str(op) in _EXACT_FOLD_FLOAT_OPS


def fold_scalars(op: str, parts, dtype):
    """Left-fold per-tile reduction partials with the monoid function and
    cast to the container dtype (matching the kernel's scalar contract)."""
    from .backend.ops_table import binary_def

    f = binary_def(op).func
    acc = parts[0]
    for p in parts[1:]:
        acc = f(acc, p)
    return np.dtype(dtype).type(acc)


# ----------------------------------------------------------------------
# the worker pool
# ----------------------------------------------------------------------

_POOL: ThreadPoolExecutor | None = None
_POOL_SIZE = 0


def _executor(n: int) -> ThreadPoolExecutor:
    global _POOL, _POOL_SIZE
    if _POOL is None or _POOL_SIZE < n:
        if _POOL is not None:
            _POOL.shutdown(wait=False)
        _POOL = ThreadPoolExecutor(max_workers=n, thread_name_prefix="pygb-tile")
        _POOL_SIZE = n
    return _POOL


def _discard_pool() -> None:
    """Abandon the shared executor (a worker is wedged in it).  The old
    pool's threads drain on their own — daemon-style shutdown without
    waiting — and the next partitioned dispatch builds a fresh pool, so
    one hung kernel never poisons later ops."""
    global _POOL, _POOL_SIZE
    if _POOL is not None:
        _POOL.shutdown(wait=False, cancel_futures=True)
    _POOL = None
    _POOL_SIZE = 0


def run_tile_tasks(tasks):
    """Execute the per-tile thunks and return their results in tile
    order.  With one effective worker this is a plain loop (no pool, no
    thread hop); otherwise tasks are submitted and gathered in order so
    the merge — and therefore the result — is deterministic regardless
    of completion order.

    Guardrails (``repro/guard.py``) thread through here:

    * each worker task runs under the dispatching op's guard, so
      deadline/cancellation checkpoints fire inside per-tile kernels;
    * the ``worker_crash``/``worker_hang`` faults inject at task entry;
    * gathering is bounded by the op deadline and ``$PYGB_WORKER_TIMEOUT``
      — a worker that never returns raises ``KernelExecutionError``
      (hang detected) instead of blocking forever;
    * on ANY failure — including ``KeyboardInterrupt`` mid-gather — the
      remaining futures are cancelled and signalled to abort, already
      running ones are drained briefly, and a pool with a still-wedged
      worker is discarded, so the next op starts from a consistent
      executor and the partial results are never observable.

    ``STATS.tile_tasks`` counts tasks actually *started*, so an aborted
    fan-out does not inflate the counter with never-run tiles.
    """
    from . import guard
    from .exceptions import KernelExecutionError
    from .testing.faults import FAULTS

    n = min(workers_count(), len(tasks))
    abort = threading.Event()
    og = guard.current_op()

    def run_task(t):
        with guard.bound_op(og):
            if abort.is_set():
                raise KernelExecutionError("tile task aborted (sibling failed)")
            guard.check_cancelled()
            if FAULTS.fire("worker_crash"):
                raise KernelExecutionError("injected tile-worker crash")
            if FAULTS.fire("worker_hang"):
                guard.cooperative_sleep(guard.hang_seconds(), extra_event=abort)
                raise KernelExecutionError("injected tile-worker hang")
            with _TASK_COUNT_LOCK:
                STATS.tile_tasks += 1
            return t()

    if n <= 1:
        return [run_task(t) for t in tasks]

    pool = _executor(n)
    futures = []
    try:
        futures = [pool.submit(run_task, t) for t in tasks]
        wt = guard.worker_timeout()
        results = []
        for f in futures:
            budget = None
            dl = guard.op_deadline_at()
            if dl is not None:
                budget = max(0.0, dl - time.monotonic()) + 0.25
            if wt is not None and (budget is None or wt < budget):
                budget = wt
            try:
                results.append(f.result(timeout=budget))
            except FuturesTimeoutError:
                raise KernelExecutionError(
                    f"tile worker did not finish within {budget:.1f}s "
                    "(hang detected); fan-out aborted"
                ) from None
        return results
    except BaseException:
        # cancel-and-drain: nothing from this fan-out may leak into the
        # pool or the next dispatch
        abort.set()
        for f in futures:
            f.cancel()
        if futures and wait(futures, timeout=1.0).not_done:
            _discard_pool()
        raise
