"""Type system for PyGB containers.

The paper (Sec. V) maps Python/NumPy dtypes onto the eleven C++ "plain old
data" types that GBTL templates are instantiated with.  This module owns
that mapping plus the C++-style implicit-upcasting rules used when two
containers of different types are combined in a binary operation.
"""

from __future__ import annotations

import numpy as np

from .exceptions import DomainMismatch

__all__ = [
    "POD_TYPES",
    "CXX_NAMES",
    "normalize_dtype",
    "default_dtype_for",
    "promote",
    "cxx_name",
    "dtype_token",
]

#: The eleven plain-old-data types of the paper (Sec. V): bool, the four
#: signed and four unsigned fixed-width integers, and the two IEEE floats.
POD_TYPES: tuple[np.dtype, ...] = tuple(
    np.dtype(t)
    for t in (
        np.bool_,
        np.int8,
        np.int16,
        np.int32,
        np.int64,
        np.uint8,
        np.uint16,
        np.uint32,
        np.uint64,
        np.float32,
        np.float64,
    )
)

#: NumPy dtype -> C++ type name, used both for the generated ``-D`` defines
#: of the JIT binding files (Fig. 9) and for documentation purposes.
CXX_NAMES: dict[np.dtype, str] = {
    np.dtype(np.bool_): "bool",
    np.dtype(np.int8): "int8_t",
    np.dtype(np.int16): "int16_t",
    np.dtype(np.int32): "int32_t",
    np.dtype(np.int64): "int64_t",
    np.dtype(np.uint8): "uint8_t",
    np.dtype(np.uint16): "uint16_t",
    np.dtype(np.uint32): "uint32_t",
    np.dtype(np.uint64): "uint64_t",
    np.dtype(np.float32): "float",
    np.dtype(np.float64): "double",
}


def normalize_dtype(dtype) -> np.dtype:
    """Coerce *dtype* (NumPy dtype, Python type, or string) onto one of the
    eleven supported POD dtypes.

    ``int`` maps to ``int64`` and ``float`` to ``float64``, matching the
    paper's fallback "default Python types: 64-bit ints and 64-bit floats".
    """
    if dtype is None:
        raise TypeError("dtype may not be None; use default_dtype_for()")
    if dtype is int:
        return np.dtype(np.int64)
    if dtype is float:
        return np.dtype(np.float64)
    if dtype is bool:
        return np.dtype(np.bool_)
    dt = np.dtype(dtype)
    if dt not in CXX_NAMES:
        raise DomainMismatch(
            f"dtype {dt!r} is not one of the {len(POD_TYPES)} supported "
            f"plain-old-data types"
        )
    return dt


def default_dtype_for(values) -> np.dtype:
    """Infer a container dtype from raw Python/NumPy data.

    Follows the paper's rule: unspecified dtypes fall back to 64-bit ints
    for integral data and 64-bit floats for real data; booleans stay
    boolean.  NumPy arrays keep their own (supported) dtype.
    """
    if isinstance(values, np.ndarray):
        if values.dtype in CXX_NAMES:
            return values.dtype
        if np.issubdtype(values.dtype, np.bool_):
            return np.dtype(np.bool_)
        if np.issubdtype(values.dtype, np.integer):
            return np.dtype(np.int64)
        if np.issubdtype(values.dtype, np.floating):
            return np.dtype(np.float64)
        raise DomainMismatch(f"unsupported array dtype {values.dtype!r}")
    arr = np.asarray(values)
    if arr.dtype == object:
        raise DomainMismatch("container values must be homogeneous numbers")
    return default_dtype_for(arr)


def promote(a, b) -> np.dtype:
    """C++-style implicit upcast of two operand dtypes (Sec. V).

    Delegates to :func:`numpy.promote_types`, which implements the same
    integer-rank/float promotion lattice as the C++ usual arithmetic
    conversions for the types we support, then re-normalizes the result
    onto a supported POD dtype.
    """
    pa, pb = normalize_dtype(a), normalize_dtype(b)
    res = np.promote_types(pa, pb)
    # promote_types may yield e.g. float64 from int64+uint64 mixes; all its
    # outputs for POD inputs are themselves POD, but guard anyway.
    return normalize_dtype(res)


def cxx_name(dtype) -> str:
    """C++ spelling of *dtype* for generated binding files."""
    return CXX_NAMES[normalize_dtype(dtype)]


def dtype_token(dtype) -> str:
    """Short stable token for cache keys, e.g. ``int64`` or ``float32``."""
    return normalize_dtype(dtype).name
