"""Utility routines mirroring GBTL's helper functions.

``gb.utilities.normalize_rows`` appears in the paper's PageRank (Fig. 7
line 9, ``GB::normalize_rows`` in Fig. 8 line 16).
"""

from __future__ import annotations

import numpy as np

from .backend.smatrix import SparseMatrix
from .core.matrix import Matrix

__all__ = ["normalize_rows", "normalize_cols"]


def _scaled(store: SparseMatrix, sums_per_entry: np.ndarray) -> SparseMatrix:
    vals = store.values.astype(np.float64, copy=True)
    nonzero = sums_per_entry != 0
    vals[nonzero] = vals[nonzero] / sums_per_entry[nonzero]
    if store.dtype.kind == "f":
        vals = vals.astype(store.dtype)
    # integer matrices are promoted to float64, matching GBTL's PageRank
    # usage where the graph is first copied into a floating-point matrix
    return SparseMatrix(store.nrows, store.ncols, store.indptr, store.indices, vals)


def normalize_rows(m: Matrix) -> Matrix:
    """Scale each row of *m* in place so its stored values sum to 1.

    Rows with zero sum (or no stored values) are left untouched.  Integer
    matrices are promoted to float64.  Returns *m* for chaining.
    """
    store = m._store
    if store.nvals == 0:
        return m
    rows = np.repeat(np.arange(store.nrows, dtype=np.int64), store.row_lengths())
    sums = np.zeros(store.nrows, dtype=np.float64)
    np.add.at(sums, rows, store.values.astype(np.float64, copy=False))
    m._store = _scaled(store, sums[rows])
    return m


def normalize_cols(m: Matrix) -> Matrix:
    """Column counterpart of :func:`normalize_rows` (in place)."""
    store = m._store
    if store.nvals == 0:
        return m
    sums = np.zeros(store.ncols, dtype=np.float64)
    np.add.at(sums, store.indices, store.values.astype(np.float64, copy=False))
    m._store = _scaled(store, sums[store.indices])
    return m
