"""Shared test fixtures.

The JIT disk cache is pointed at a repo-local directory (kept across test
runs so the C++ artifacts amortise, exactly as the paper intends for its
compilation cache).  The ``engine`` fixture parametrises DSL-level tests
over the interpreted and Python-JIT engines; C++-engine tests live in
``test_cpp_engine.py`` behind the ``cpp`` marker.
"""

from __future__ import annotations

import os
from pathlib import Path

# must be set before `repro` is imported anywhere
os.environ.setdefault(
    "PYGB_CACHE_DIR", str(Path(__file__).resolve().parent.parent / ".pygb_cache")
)

import numpy as np
import pytest

import repro as gb
from repro.core.context import use_engine


@pytest.fixture(params=["interpreted", "pyjit"])
def engine(request):
    """Run the test body under each non-C++ execution engine."""
    with use_engine(request.param):
        yield request.param


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_graph():
    """The 7-vertex graph of the paper's Fig. 1 (directed edges)."""
    edges = [(0, 1), (0, 3), (1, 4), (1, 6), (2, 5), (3, 0), (3, 2),
             (4, 5), (5, 2), (6, 2), (6, 3), (6, 4)]
    rows = [e[0] for e in edges]
    cols = [e[1] for e in edges]
    return gb.Matrix((np.ones(len(edges)), (rows, cols)), shape=(7, 7), dtype=np.int64)


@pytest.fixture
def no_faults(monkeypatch):
    """Opt a counter-exact test out of ambient chaos injection.

    The chaos CI leg runs the whole suite under ``PYGB_FAULT=...``; the
    guardrail ladder keeps every *result* bit-identical, but tests that
    assert exact tiling/dispatch counters would observe the (correct)
    degrade-to-monolithic bookkeeping instead."""
    from repro import guard
    from repro.testing.faults import FAULTS

    monkeypatch.delenv("PYGB_FAULT", raising=False)
    FAULTS.clear()
    # earlier chaos-injected failures may have quarantined tiling for
    # some op signatures; counter-exact tests need the fan-out live
    guard.tiling_health().reset()
    yield
