"""Shared helper functions for building random containers in both the
reference-dict format and the DSL format."""

from __future__ import annotations

import numpy as np

import repro as gb

__all__ = ["random_vec_dict", "random_mat_dict", "vec_from_dict", "mat_from_dict"]


def random_vec_dict(rng, size: int, density: float = 0.4, dtype=np.float64) -> dict:
    """A random sparse vector as a plain dict (reference format)."""
    n = max(0, int(size * density))
    idx = rng.choice(size, size=min(n, size), replace=False)
    if np.dtype(dtype).kind == "f":
        vals = rng.uniform(-10, 10, size=idx.size)
    elif np.dtype(dtype) == np.bool_:
        vals = rng.integers(0, 2, size=idx.size).astype(bool)
    else:
        vals = rng.integers(-10, 10, size=idx.size)
    return {int(i): np.dtype(dtype).type(v).item() for i, v in zip(idx, vals)}


def random_mat_dict(rng, nrows: int, ncols: int, density: float = 0.3, dtype=np.float64) -> dict:
    """A random sparse matrix as a plain dict (reference format)."""
    total = nrows * ncols
    n = max(0, int(total * density))
    flat = rng.choice(total, size=min(n, total), replace=False)
    if np.dtype(dtype).kind == "f":
        vals = rng.uniform(-10, 10, size=flat.size)
    elif np.dtype(dtype) == np.bool_:
        vals = rng.integers(0, 2, size=flat.size).astype(bool)
    else:
        vals = rng.integers(-10, 10, size=flat.size)
    return {
        (int(f) // ncols, int(f) % ncols): np.dtype(dtype).type(v).item()
        for f, v in zip(flat, vals)
    }


def vec_from_dict(d: dict, size: int, dtype=np.float64) -> "gb.Vector":
    idx = sorted(d)
    return gb.Vector(([d[i] for i in idx], idx), shape=(size,), dtype=dtype)


def mat_from_dict(d: dict, nrows: int, ncols: int, dtype=np.float64) -> "gb.Matrix":
    keys = sorted(d)
    rows = [k[0] for k in keys]
    cols = [k[1] for k in keys]
    vals = [d[k] for k in keys]
    return gb.Matrix((vals, (rows, cols)), shape=(nrows, ncols), dtype=dtype)
