"""Integration tests: the four evaluated algorithms (paper Figs. 2, 4, 5,
7) against independent oracles (NetworkX, SciPy, dense NumPy), and
cross-version agreement between the DSL and native implementations."""

import numpy as np
import pytest

import repro as gb
from repro.algorithms import (
    bfs,
    bfs_levels,
    bfs_native,
    lower_triangle,
    pagerank,
    pagerank_native,
    sssp,
    sssp_converging,
    sssp_distances,
    sssp_native,
    triangle_count,
    triangle_count_native,
)
from repro.io.generators import erdos_renyi, grid_graph, ring_graph, scale_free

nx = pytest.importorskip("networkx")


def _vec_dict(v):
    idx, vals = v.to_coo()
    return {int(i): x.item() for i, x in zip(idx, vals)}


class TestBFS:
    @pytest.mark.parametrize("seed,n", [(1, 60), (2, 120), (3, 200)])
    def test_vs_networkx(self, engine, seed, n):
        g = erdos_renyi(n, seed=seed)
        levels = bfs_levels(g, 0)
        expect = nx.single_source_shortest_path_length(gb.io.to_networkx(g), 0)
        got = _vec_dict(levels)
        assert set(got) == set(expect)
        for k, d in expect.items():
            assert got[k] == d + 1  # paper's levels are 1-based

    def test_ring_graph_depth(self, engine):
        # worst case: the ring needs n iterations
        n = 30
        levels = bfs_levels(ring_graph(n), 0)
        got = _vec_dict(levels)
        assert got == {i: i + 1 for i in range(n)}

    def test_unreachable_vertices_have_no_entry(self, engine):
        g = gb.Matrix(([1.0], ([0], [1])), shape=(4, 4))
        levels = bfs_levels(g, 0)
        assert set(_vec_dict(levels)) == {0, 1}

    def test_multi_source(self, engine):
        g = ring_graph(10)
        frontier = gb.Vector(([True, True], [0, 5]), shape=(10,), dtype=bool)
        levels = gb.Vector(shape=(10,), dtype=int)
        bfs(g, frontier, levels)
        got = _vec_dict(levels)
        assert got[0] == 1 and got[5] == 1
        assert got[4] == 5 and got[9] == 5

    def test_native_matches_dsl(self, engine):
        g = erdos_renyi(150, seed=9)
        dsl = _vec_dict(bfs_levels(g, 3))
        nat = bfs_native(g._store, 3)
        assert {int(i): v.item() for i, v in zip(nat.indices, nat.values)} == dsl


class TestSSSP:
    @pytest.mark.parametrize("side", [6, 10])
    def test_vs_dijkstra_grid(self, engine, side):
        g = grid_graph(side, weighted=True, seed=4, dtype=float)
        d = sssp_distances(g, 0)
        expect = nx.single_source_dijkstra_path_length(gb.io.to_networkx(g), 0)
        got = _vec_dict(d)
        assert set(got) == set(expect)
        for k in expect:
            assert got[k] == pytest.approx(expect[k])

    def test_vs_dijkstra_er(self, engine):
        g = erdos_renyi(80, seed=11, weighted=True, dtype=float)
        d = sssp_distances(g, 0)
        expect = nx.single_source_dijkstra_path_length(gb.io.to_networkx(g), 0)
        got = _vec_dict(d)
        assert set(got) == set(expect)
        for k in expect:
            assert got[k] == pytest.approx(expect[k])

    def test_converging_matches_full(self, engine):
        g = grid_graph(7, weighted=True, seed=5, dtype=float)
        p1 = gb.Vector(([0.0], [0]), shape=(g.nrows,), dtype=float)
        p2 = gb.Vector(([0.0], [0]), shape=(g.nrows,), dtype=float)
        full = sssp(g, p1)
        conv = sssp_converging(g, p2)
        assert full.isequal(conv)

    def test_native_matches_dsl(self, engine):
        g = grid_graph(8, weighted=True, seed=6, dtype=float)
        dsl = _vec_dict(sssp_distances(g, 0))
        nat = sssp_native(g._store, 0)
        got = {int(i): v.item() for i, v in zip(nat.indices, nat.values)}
        assert set(got) == set(dsl)
        for k in dsl:
            assert got[k] == pytest.approx(dsl[k])

    def test_scipy_oracle(self, engine):
        pytest.importorskip("scipy.sparse")
        from scipy.sparse.csgraph import dijkstra

        g = grid_graph(6, weighted=True, seed=8, dtype=float)
        d = sssp_distances(g, 0).to_numpy(fill=np.inf)
        d[0] = 0.0
        expect = dijkstra(gb.io.to_scipy_sparse(g), indices=0)
        assert np.allclose(d, expect)


class TestTriangleCount:
    def _undirected(self, n, seed):
        g = erdos_renyi(n, seed=seed)
        r, c, _ = g.to_coo()
        A = gb.Matrix(
            (np.ones(2 * len(r)), (np.concatenate([r, c]), np.concatenate([c, r]))),
            shape=g.shape, dtype=int,
        )
        nxg = nx.Graph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from(zip(r.tolist(), c.tolist()))
        return A, nxg

    @pytest.mark.parametrize("seed,n", [(5, 80), (6, 120)])
    def test_vs_networkx(self, engine, seed, n):
        A, nxg = self._undirected(n, seed)
        L = lower_triangle(A)
        expect = sum(nx.triangles(nxg).values()) // 3
        assert triangle_count(L) == expect
        assert triangle_count_native(L._store) == expect

    def test_triangle_free_graph(self, engine):
        A, _ = self._undirected(10, 999)
        star_rows = [0] * 9 + list(range(1, 10))
        star_cols = list(range(1, 10)) + [0] * 9
        star = gb.Matrix((np.ones(18), (star_rows, star_cols)), shape=(10, 10), dtype=int)
        assert triangle_count(lower_triangle(star)) == 0

    def test_complete_graph(self, engine):
        n = 7
        rows, cols = zip(*[(i, j) for i in range(n) for j in range(n) if i != j])
        K = gb.Matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n), dtype=int)
        expect = n * (n - 1) * (n - 2) // 6
        assert triangle_count(lower_triangle(K)) == expect

    def test_lower_triangle_structure(self, engine):
        A, _ = self._undirected(20, 13)
        L = lower_triangle(A)
        rows, cols, _ = L.to_coo()
        assert (rows > cols).all()
        assert L.nvals == A.nvals // 2


class TestPageRank:
    @pytest.mark.parametrize("seed,n", [(7, 100), (8, 160)])
    def test_vs_networkx(self, engine, seed, n):
        g = scale_free(n, seed=seed)
        pr = gb.Vector(shape=(n,), dtype=float)
        pagerank(g, pr, threshold=1e-14)
        expect = nx.pagerank(gb.io.to_networkx(g), alpha=0.85, tol=1e-13, max_iter=1000)
        got = pr.to_numpy()
        assert np.abs(got - np.array([expect[i] for i in range(n)])).max() < 1e-6

    def test_ranks_sum_to_one(self, engine):
        g = scale_free(60, seed=3)
        pr = gb.Vector(shape=(60,), dtype=float)
        pagerank(g, pr, threshold=1e-12)
        assert pr.to_numpy().sum() == pytest.approx(1.0)

    def test_uniform_on_ring(self, engine):
        n = 16
        pr = gb.Vector(shape=(n,), dtype=float)
        pagerank(ring_graph(n, dtype=float), pr, threshold=1e-14)
        assert np.allclose(pr.to_numpy(), 1.0 / n)

    def test_native_matches_dsl(self, engine):
        g = scale_free(80, seed=21)
        pr = gb.Vector(shape=(80,), dtype=float)
        pagerank(g, pr, threshold=1e-13)
        nat = pagerank_native(g._store, threshold=1e-13)
        assert np.allclose(nat.to_dense(), pr.to_numpy(), atol=1e-10)

    def test_damping_extremes(self, engine):
        g = scale_free(40, seed=2)
        pr = gb.Vector(shape=(40,), dtype=float)
        pagerank(g, pr, damping_factor=0.0, threshold=1e-14)
        # zero damping -> uniform teleport distribution
        assert np.allclose(pr.to_numpy(), 1.0 / 40)

    def test_max_iters_respected(self, engine):
        g = scale_free(40, seed=2)
        pr = gb.Vector(shape=(40,), dtype=float)
        out = pagerank(g, pr, threshold=0.0, max_iters=3)
        assert out is pr  # terminates despite unreachable threshold
