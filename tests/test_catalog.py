"""AOT kernel catalog tests: baking, the catalog lookup tier, wholesale
version rejection vs per-entry checksum fall-through, read-only packs —
plus regression tests for the cache bugs the catalog work exposed
(key-lock leak, precompile report inflation, $PYGB_COMPILE_JOBS parsing)
and the cross-process compile race.

Everything here bakes the ``.py`` kernel flavour only, so the tests run
(fast) on toolchain-free hosts; the cpp flavour goes through the same
``JitCache``/``precompile`` machinery and is exercised end-to-end by the
CI cold-start leg (``benchmarks/check_cold_start.py``).
"""

import json
import os
import subprocess
import sys
import textwrap
import threading
import warnings
from pathlib import Path

import pytest

from repro.exceptions import CatalogError, JitFallbackWarning
from repro.jit import cache as cache_mod
from repro.jit.cache import JitCache, default_compile_jobs
from repro.jit.catalog import (
    CATALOG_FILENAME,
    KernelCatalog,
    bake_catalog,
    catalog_kernel_specs,
    load_catalog,
    validate_catalog,
)
from repro.jit.precompile import algorithm_kernel_specs
from repro.jit.pycodegen import generate_source
from repro.jit.spec import KernelSpec


@pytest.fixture(scope="module")
def pack(tmp_path_factory):
    """One .py-flavour pack shared by the read-side tests (baking 129
    specs once instead of per-test)."""
    out = tmp_path_factory.mktemp("pack")
    report = bake_catalog(out, include_cpp=False)
    assert report["failed"] == []
    assert report["py_entries"] == report["entries"] > 0
    return out


def _pyjit_spec() -> KernelSpec:
    """A spec guaranteed to be in the pack's .py flavour (pyjit specs
    carry the ta transpose flag)."""
    return KernelSpec.make(
        "mxv", a="float64", u="float64", c="float64", t_dtype="float64",
        add="Plus", mult="Times", ta=False, mask="none", comp=0, repl=0,
        accum="none",
    )


# ----------------------------------------------------------------------
# enumeration
# ----------------------------------------------------------------------
def test_catalog_specs_cover_algorithm_set():
    """Tier 1 of the enumeration is the traced algorithm kernel list, so
    the catalog inherits precompile's drift guard: every algorithm spec
    must appear in the catalog space, in both flavours."""
    for parallel in (False, True):
        catalog = {s.key_hash for s in catalog_kernel_specs(parallel)}
        algo = {s.key_hash for s in algorithm_kernel_specs(parallel)}
        assert algo <= catalog


def test_catalog_specs_deduplicated():
    specs = catalog_kernel_specs()
    assert len({s.key_hash for s in specs}) == len(specs)


# ----------------------------------------------------------------------
# bake + serve round trip
# ----------------------------------------------------------------------
def test_catalog_hit_serves_without_compile(pack, tmp_path):
    cache = JitCache(tmp_path / "cold")
    load_catalog(pack, cache)
    mod = cache.get_module(_pyjit_spec(), generate_source, suffix=".py")
    assert callable(getattr(mod, "run"))
    snap = cache.stats.snapshot()
    assert snap["compiles"] == 0
    assert snap["disk_hits"] == 0
    assert snap["catalog_hits"] == 1
    assert snap["catalog_misses"] == 0
    # second lookup is a memory hit, not a second catalog probe
    cache.get_module(_pyjit_spec(), generate_source, suffix=".py")
    assert cache.stats.snapshot()["catalog_hits"] == 1
    assert cache.stats.snapshot()["memory_hits"] == 1


def test_catalog_miss_counted_only_with_catalog_attached(pack, tmp_path):
    cache = JitCache(tmp_path / "cold")
    spec = KernelSpec.make("reduce_vec_scalar", a="int32", op="Max")
    cache.get_module(spec, generate_source, suffix=".py")
    assert cache.stats.snapshot()["catalog_misses"] == 0  # no pack attached
    load_catalog(pack, cache)
    spec2 = KernelSpec.make("reduce_vec_scalar", a="int16", op="Max")
    cache.get_module(spec2, generate_source, suffix=".py")
    snap = cache.stats.snapshot()
    assert snap["catalog_misses"] == 1
    assert snap["compiles"] == 2


def test_bake_is_incremental(pack):
    """Re-baking into an existing pack reuses the artifacts on disk."""
    report = bake_catalog(pack, include_cpp=False)
    assert report["failed"] == []
    assert report["compiled"] == 0
    assert report["disk_hits"] == report["requested"]


def test_validate_catalog_round_trip(pack):
    check = validate_catalog(pack)
    assert check["bad"] == []
    assert check["ok"] == check["entries"] > 0


# ----------------------------------------------------------------------
# wholesale rejection (version stamps) vs per-entry fall-through
# ----------------------------------------------------------------------
def _rewrite_catalog(pack: Path, **overrides):
    path = pack / CATALOG_FILENAME
    data = json.loads(path.read_text())
    data.update(overrides)
    path.write_text(json.dumps(data))


@pytest.mark.parametrize("field", ["schema", "codegen_version", "cache_format_version"])
def test_stale_version_stamp_rejected_wholesale(pack, tmp_path, field):
    stale = tmp_path / "stale"
    stale.mkdir()
    for p in pack.iterdir():
        (stale / p.name).write_bytes(p.read_bytes())
    _rewrite_catalog(stale, **{field: 999})
    with pytest.raises(CatalogError, match="stale kernel catalog"):
        KernelCatalog.load(stale)
    # programmatic attach is strict too
    with pytest.raises(CatalogError):
        load_catalog(stale, JitCache(tmp_path / "cold"))


def test_garbled_catalog_rejected(tmp_path):
    (tmp_path / CATALOG_FILENAME).write_text("{not json")
    with pytest.raises(CatalogError, match="garbled"):
        KernelCatalog.load(tmp_path)
    with pytest.raises(CatalogError, match="cannot read"):
        KernelCatalog.load(tmp_path / "nowhere")


def test_env_catalog_degrades_to_warning(pack, tmp_path, monkeypatch):
    """$PYGB_CATALOG pointing at a stale/garbled pack must not break the
    process: the cache warns, records the reason for `repro doctor`, and
    serves the normal compile path."""
    stale = tmp_path / "stale"
    stale.mkdir()
    for p in pack.iterdir():
        (stale / p.name).write_bytes(p.read_bytes())
    _rewrite_catalog(stale, codegen_version=999)
    monkeypatch.setenv("PYGB_CATALOG", str(stale))
    with pytest.warns(JitFallbackWarning, match="ignoring \\$PYGB_CATALOG"):
        cache = JitCache(tmp_path / "cold")
    assert cache.catalog is None
    assert "stale kernel catalog" in cache.catalog_error
    mod = cache.get_module(_pyjit_spec(), generate_source, suffix=".py")
    assert callable(getattr(mod, "run"))
    assert cache.stats.snapshot()["compiles"] == 1


def test_env_catalog_attaches(pack, tmp_path, monkeypatch):
    monkeypatch.setenv("PYGB_CATALOG", str(pack))
    cache = JitCache(tmp_path / "cold")
    assert cache.catalog is not None
    assert len(cache.catalog) > 0
    assert cache.catalog_error is None


def test_checksum_mismatch_falls_through_to_compile(pack, tmp_path):
    """A single corrupted artifact quarantines that entry only; the
    lookup degrades to a normal compile and every other entry still
    serves."""
    broken = tmp_path / "broken"
    broken.mkdir()
    for p in pack.iterdir():
        (broken / p.name).write_bytes(p.read_bytes())
    spec = _pyjit_spec()
    (broken / f"{spec.module_stem}.py").write_text("garbage ][")
    cache = JitCache(tmp_path / "cold")
    load_catalog(broken, cache)
    mod = cache.get_module(spec, generate_source, suffix=".py")
    assert callable(getattr(mod, "run"))
    snap = cache.stats.snapshot()
    assert snap["catalog_misses"] == 1
    assert snap["compiles"] == 1
    # an intact entry still serves from the same pack
    other = KernelSpec.make(
        "vxm", a="float64", u="float64", c="float64", t_dtype="float64",
        add="Plus", mult="Times", ta=False, mask="none", comp=0, repl=0,
        accum="none",
    )
    cache.get_module(other, generate_source, suffix=".py")
    assert cache.stats.snapshot()["catalog_hits"] == 1
    check = validate_catalog(broken)
    assert check["bad"] == [spec.key]


def test_unloadable_entry_quarantined(pack, tmp_path):
    """Checksum-clean but unimportable (pack baked from a broken file
    that was then faithfully checksummed): quarantine + recompile, once."""
    broken = tmp_path / "broken"
    broken.mkdir()
    for p in pack.iterdir():
        (broken / p.name).write_bytes(p.read_bytes())
    spec = _pyjit_spec()
    bad = b"raise RuntimeError('baked broken')\n"
    (broken / f"{spec.module_stem}.py").write_bytes(bad)
    path = broken / CATALOG_FILENAME
    data = json.loads(path.read_text())
    for entry in data["entries"]:
        if entry["key_hash"] == spec.key_hash:
            entry["sha256"] = JitCache._sha256_file(broken / f"{spec.module_stem}.py")
            entry["size"] = len(bad)
    path.write_text(json.dumps(data))
    cache = JitCache(tmp_path / "cold")
    catalog = load_catalog(broken, cache)
    mod = cache.get_module(spec, generate_source, suffix=".py")
    assert callable(getattr(mod, "run"))
    assert cache.stats.snapshot()["compiles"] == 1
    assert catalog.entry(spec.key_hash, ".py") is None  # quarantined


def test_readonly_catalog_dir(pack, tmp_path):
    """Packs are served in place (no copy into the cache dir), so a
    read-only pack — a container image layer, a shared mount — works."""
    os.chmod(pack, 0o555)
    try:
        cache = JitCache(tmp_path / "cold")
        load_catalog(pack, cache)
        mod = cache.get_module(_pyjit_spec(), generate_source, suffix=".py")
        assert callable(getattr(mod, "run"))
        assert cache.stats.snapshot()["catalog_hits"] == 1
        assert cache.stats.snapshot()["compiles"] == 0
    finally:
        os.chmod(pack, 0o755)


def test_bake_into_unwritable_dir_raises(tmp_path):
    if getattr(os, "geteuid", lambda: 1)() == 0:
        pytest.skip("root ignores directory modes")
    target = tmp_path / "ro"
    target.mkdir()
    os.chmod(target, 0o555)
    try:
        with pytest.raises(CatalogError, match="not writable"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", JitFallbackWarning)
                bake_catalog(target / "pack", include_cpp=False)
    finally:
        os.chmod(target, 0o755)


# ----------------------------------------------------------------------
# satellite regression tests
# ----------------------------------------------------------------------
def test_key_locks_pruned_after_module_resident(tmp_path):
    """Regression: one lock per (spec, kind) used to accumulate forever —
    a leak for long-running services and for bake's hundreds of specs."""
    cache = JitCache(tmp_path)
    specs = [KernelSpec.make("reduce_vec_scalar", a=d, op="Plus")
             for d in ("int8", "int16", "int32")]
    for spec in specs:
        cache.get_module(spec, generate_source, suffix=".py")
    assert cache._key_locks == {}
    # ... including when the module arrives via the catalog tier
    pack_dir = tmp_path / "pack"
    bake_catalog(pack_dir, include_cpp=False)
    cold = JitCache(tmp_path / "cold")
    load_catalog(pack_dir, cold)
    cold.get_module(_pyjit_spec(), generate_source, suffix=".py")
    assert cold._key_locks == {}


def test_precompile_report_not_inflated_by_foreground_traffic(tmp_path):
    """Regression: the report was computed as global-counter deltas, so
    compiles triggered *from inside* a job's generate call (or by any
    concurrent foreground thread) were billed to the precompile batch.
    Outcomes are now attributed per submitted job."""
    cache = JitCache(tmp_path)
    inner = KernelSpec.make("reduce_vec_scalar", a="int64", op="Plus")
    outer = KernelSpec.make("reduce_vec_scalar", a="float64", op="Plus")

    def generate_with_foreground(spec):
        # a "foreground" dispatch on another spec while the pool works
        cache.get_module(inner, generate_source, suffix=".py")
        return generate_source(spec)

    report = cache.precompile([(outer, generate_with_foreground, ".py", None)])
    assert cache.stats.snapshot()["compiles"] == 2  # both really compiled
    assert report["requested"] == 1
    assert report["compiled"] == 1  # ... but only one was this batch's job
    assert report["disk_hits"] == report["memory_hits"] == 0
    assert report["catalog_hits"] == 0


def test_precompile_reports_catalog_hits(tmp_path):
    pack_dir = tmp_path / "pack"
    bake_catalog(pack_dir, include_cpp=False)
    cache = JitCache(tmp_path / "cold")
    load_catalog(pack_dir, cache)
    report = cache.precompile([(_pyjit_spec(), generate_source, ".py", None)])
    assert report["catalog_hits"] == 1
    assert report["compiled"] == 0


def test_compile_jobs_env_rejects_garbage(monkeypatch):
    """Regression: an unparseable $PYGB_COMPILE_JOBS was silently
    swallowed and 0/negative clamped to one worker; now it warns once
    and uses the default."""
    default = max(2, min(8, 2 * (os.cpu_count() or 1)))
    for bad in ("banana", "0", "-3"):
        monkeypatch.setattr(cache_mod, "_jobs_env_warned", False)
        monkeypatch.setenv("PYGB_COMPILE_JOBS", bad)
        with pytest.warns(UserWarning, match="bad \\$PYGB_COMPILE_JOBS"):
            assert default_compile_jobs() == default
        # ... and only once per process
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert default_compile_jobs() == default


def test_compile_jobs_env_valid_value(monkeypatch):
    monkeypatch.setenv("PYGB_COMPILE_JOBS", "5")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert default_compile_jobs() == 5


# ----------------------------------------------------------------------
# cross-process compile race (the os.replace path)
# ----------------------------------------------------------------------
def test_cross_process_cache_race(tmp_path):
    """Two processes compiling the same spec into one cache directory
    must both import a complete artifact: writers build under a unique
    temp name and ``os.replace`` it into place, so a reader can never
    see a half-written module."""
    child = textwrap.dedent(
        """
        import sys, time
        from repro.jit.cache import JitCache
        from repro.jit.pycodegen import generate_source
        from repro.jit.spec import KernelSpec

        cache = JitCache(sys.argv[1])
        spec = KernelSpec.make("reduce_vec_scalar", a="float64", op="Plus")

        def slow_generate(s):
            time.sleep(0.5)  # widen the race window past process startup skew
            return generate_source(s)

        mod = cache.get_module(spec, slow_generate, suffix=".py")
        assert callable(mod.run)
        print("OK", cache.stats.compiles)
        """
    )
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", child, str(tmp_path)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
            env={**os.environ, "PYTHONPATH": str(Path(__file__).parent.parent / "src")},
        )
        for _ in range(2)
    ]
    outs = [p.communicate(timeout=120) for p in procs]
    for p, (out, err) in zip(procs, outs):
        assert p.returncode == 0, err
        assert out.startswith("OK")
    # whichever writer lost the os.replace race, the survivor artifact
    # must be complete and checksum-clean for the next process
    cache = JitCache(tmp_path)
    spec = KernelSpec.make("reduce_vec_scalar", a="float64", op="Plus")
    cache.get_module(spec, generate_source, suffix=".py")
    assert cache.stats.snapshot()["disk_hits"] == 1
    assert cache.stats.snapshot()["compiles"] == 0


def test_same_process_race_dedupes_to_one_compile(tmp_path):
    """In-process, the per-key lock dedupes concurrent lookups of one
    spec into a single compile (and the loser threads get memory hits)."""
    cache = JitCache(tmp_path)
    spec = KernelSpec.make("reduce_vec_scalar", a="int64", op="Min")
    results = []

    def worker():
        results.append(cache.get_module(spec, generate_source, suffix=".py"))

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len({id(m) for m in results}) == 1
    assert cache.stats.snapshot()["compiles"] == 1
