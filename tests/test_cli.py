"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

import repro as gb
from repro.__main__ import main
from repro.io.matrixmarket import mmwrite


@pytest.fixture(autouse=True)
def _restore_engine():
    """The CLI's ``--engine`` switches the thread's engine permanently
    (by design); restore the default after each test."""
    from repro.core.context import _engine_state

    before = getattr(_engine_state, "engine", None)
    yield
    _engine_state.engine = before


@pytest.fixture
def graph_file(tmp_path):
    # 0→1→2→3, 3→0 ring plus a chord 0→2
    rows = [0, 1, 2, 3, 0]
    cols = [1, 2, 3, 0, 2]
    m = gb.Matrix((np.ones(5), (rows, cols)), shape=(4, 4), dtype=int)
    path = tmp_path / "g.mtx"
    mmwrite(path, m)
    return str(path)


@pytest.fixture
def sym_file(tmp_path):
    # an undirected triangle 0-1-2 plus pendant 3
    rows = [0, 1, 1, 2, 2, 0, 2, 3]
    cols = [1, 0, 2, 1, 0, 2, 3, 2]
    m = gb.Matrix((np.ones(8), (rows, cols)), shape=(4, 4), dtype=int)
    path = tmp_path / "s.mtx"
    mmwrite(path, m)
    return str(path)


def test_info(graph_file, capsys):
    assert main(["info", graph_file]) == 0
    out = capsys.readouterr().out
    assert "4 x 4" in out and "edges:      5" in out


def test_info_reports_symmetry(sym_file, capsys):
    main(["info", sym_file])
    assert "symmetric:  yes" in capsys.readouterr().out


def test_bfs(graph_file, capsys):
    assert main(["bfs", graph_file, "--source", "0", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "reached 4/4" in out
    assert "max depth: 2 hops" in out


def test_sssp(graph_file, capsys):
    assert main(["sssp", graph_file, "--source", "0"]) == 0
    assert "reached 4/4" in capsys.readouterr().out


def test_pagerank(graph_file, capsys):
    assert main(["pagerank", graph_file, "--top", "2"]) == 0
    out = capsys.readouterr().out
    assert "top 2 vertices" in out


def test_triangles(sym_file, capsys):
    assert main(["triangles", sym_file]) == 0
    assert "triangles: 1" in capsys.readouterr().out


def test_components(sym_file, capsys):
    assert main(["components", sym_file]) == 0
    assert "components: 1" in capsys.readouterr().out


def test_engines(capsys):
    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    assert "pyjit" in out and "interpreted" in out


def test_engine_flag(graph_file, capsys):
    assert main(["--engine", "interpreted", "bfs", graph_file]) == 0
    assert "reached" in capsys.readouterr().out


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])
