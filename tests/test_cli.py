"""Tests for the ``python -m repro`` command-line interface."""

import numpy as np
import pytest

import repro as gb
from repro.__main__ import main
from repro.io.matrixmarket import mmwrite


@pytest.fixture(autouse=True)
def _restore_engine():
    """The CLI's ``--engine`` switches the thread's engine permanently
    (by design); restore the default after each test."""
    from repro.core.context import _engine_state

    before = getattr(_engine_state, "engine", None)
    yield
    _engine_state.engine = before


@pytest.fixture
def graph_file(tmp_path):
    # 0→1→2→3, 3→0 ring plus a chord 0→2
    rows = [0, 1, 2, 3, 0]
    cols = [1, 2, 3, 0, 2]
    m = gb.Matrix((np.ones(5), (rows, cols)), shape=(4, 4), dtype=int)
    path = tmp_path / "g.mtx"
    mmwrite(path, m)
    return str(path)


@pytest.fixture
def sym_file(tmp_path):
    # an undirected triangle 0-1-2 plus pendant 3
    rows = [0, 1, 1, 2, 2, 0, 2, 3]
    cols = [1, 0, 2, 1, 0, 2, 3, 2]
    m = gb.Matrix((np.ones(8), (rows, cols)), shape=(4, 4), dtype=int)
    path = tmp_path / "s.mtx"
    mmwrite(path, m)
    return str(path)


def test_info(graph_file, capsys):
    assert main(["info", graph_file]) == 0
    out = capsys.readouterr().out
    assert "4 x 4" in out and "edges:      5" in out


def test_info_reports_symmetry(sym_file, capsys):
    main(["info", sym_file])
    assert "symmetric:  yes" in capsys.readouterr().out


def test_bfs(graph_file, capsys):
    assert main(["bfs", graph_file, "--source", "0", "--verbose"]) == 0
    out = capsys.readouterr().out
    assert "reached 4/4" in out
    assert "max depth: 2 hops" in out


def test_sssp(graph_file, capsys):
    assert main(["sssp", graph_file, "--source", "0"]) == 0
    assert "reached 4/4" in capsys.readouterr().out


def test_pagerank(graph_file, capsys):
    assert main(["pagerank", graph_file, "--top", "2"]) == 0
    out = capsys.readouterr().out
    assert "top 2 vertices" in out


def test_triangles(sym_file, capsys):
    assert main(["triangles", sym_file]) == 0
    assert "triangles: 1" in capsys.readouterr().out


def test_components(sym_file, capsys):
    assert main(["components", sym_file]) == 0
    assert "components: 1" in capsys.readouterr().out


def test_engines(capsys):
    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    assert "pyjit" in out and "interpreted" in out


def test_engine_flag(graph_file, capsys):
    assert main(["--engine", "interpreted", "bfs", graph_file]) == 0
    assert "reached" in capsys.readouterr().out


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_doctor_reports_runtime_state(capsys):
    assert main(["doctor"]) == 0
    out = capsys.readouterr().out
    assert "PyGB engine health" in out
    assert "cache dir:" in out
    assert "resilience:" in out
    assert "unhealthy specs" in out


def test_doctor_reports_recorded_failures(capsys):
    from repro.exceptions import CompilationError
    from repro.jit.cache import default_cache

    cache = default_cache()
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        cache.health.record_failure(
            "cpp", "mxv|a=float64", CompilationError("g++ exploded")
        )
    try:
        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
        assert "unhealthy specs (1):" in out
        assert "mxv|a=float64" in out
        assert "g++ exploded" in out
    finally:
        cache.health.reset()


def test_doctor_shows_active_fault_injection(capsys):
    from repro.testing import FAULTS, fault_injection

    FAULTS.clear()
    with fault_injection("compile_fail", rate=0.5):
        assert main(["doctor"]) == 0
        out = capsys.readouterr().out
    assert "fault injection:" in out
    assert "compile_fail" in out


@pytest.mark.skipif(
    not __import__("os").path.exists("/bin/false"), reason="needs /bin/false"
)
def test_precompile_failure_exits_nonzero(tmp_path, monkeypatch, capsys):
    from repro.jit.cache import reset_default_cache

    monkeypatch.setenv("PYGB_CXX", "/bin/false")
    monkeypatch.setenv("PYGB_CACHE_DIR", str(tmp_path))
    reset_default_cache()
    try:
        assert main(["precompile"]) == 1
        captured = capsys.readouterr()
        assert "FAILED" in captured.err
        assert "failed to precompile" in captured.err
    finally:
        monkeypatch.undo()
        reset_default_cache()
