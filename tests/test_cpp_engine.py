"""C++-backend tests (the paper's actual execution design).

These compile real C++ through ``g++`` and are skipped when no toolchain
is available.  Coverage: differential agreement with the interpreted
engine across the descriptor grid, dtype handling across the POD set, the
whole-algorithm compiled modules (versions 2/3), and C++ compile caching.
"""

import numpy as np
import pytest

import repro as gb
from repro.backend.kernels import OpDesc
from repro.backend.smatrix import SparseMatrix
from repro.backend.svector import SparseVector
from repro.core.dispatch import InterpretedEngine
from repro.jit.cppengine import toolchain_works

from helpers import mat_from_dict, random_mat_dict, random_vec_dict, vec_from_dict

pytestmark = [
    pytest.mark.cpp,
    pytest.mark.skipif(not toolchain_works(), reason="no working C++ toolchain"),
]

N = 12


@pytest.fixture(scope="module")
def cpp():
    from repro.jit.cppengine import CppJitEngine

    return CppJitEngine()


@pytest.fixture(scope="module")
def interp():
    return InterpretedEngine()


def _vs(d, size=N, dtype=np.float64):
    return vec_from_dict(d, size, dtype)._store


def _ms(d, nrows=N, ncols=N, dtype=np.float64):
    return mat_from_dict(d, nrows, ncols, dtype)._store


def _same_vec(a: SparseVector, b: SparseVector):
    assert a.to_dict().keys() == b.to_dict().keys()
    for k, v in a.to_dict().items():
        assert v == pytest.approx(b.to_dict()[k], rel=1e-12, abs=1e-12)


def _same_mat(a: SparseMatrix, b: SparseMatrix):
    assert a.to_dict().keys() == b.to_dict().keys()
    for k, v in a.to_dict().items():
        assert v == pytest.approx(b.to_dict()[k], rel=1e-12, abs=1e-12)


DESCS = [
    OpDesc(),
    OpDesc(accum="Plus"),
    OpDesc(accum="Min"),
]


class TestVectorOpsAgainstInterpreted:
    @pytest.mark.parametrize("masked", [False, True, "comp", "repl"])
    @pytest.mark.parametrize("semiring", [("Plus", "Times"), ("Min", "Plus")])
    def test_mxv(self, cpp, interp, rng, masked, semiring):
        add, mult = semiring
        a, u, c = (
            random_mat_dict(rng, N, N),
            random_vec_dict(rng, N),
            random_vec_dict(rng, N),
        )
        mask = random_vec_dict(rng, N, dtype=np.bool_)
        desc = OpDesc(
            mask=_vs(mask, dtype=np.bool_) if masked else None,
            complement=masked == "comp",
            replace=masked == "repl",
        )
        got = cpp.mxv(_vs(c), _ms(a), _vs(u), add, mult, desc)
        want = interp.mxv(_vs(c), _ms(a), _vs(u), add, mult, desc)
        _same_vec(got, want)

    def test_mxv_transposed(self, cpp, interp, rng):
        a, u = random_mat_dict(rng, N, N), random_vec_dict(rng, N)
        got = cpp.mxv(_vs({}), _ms(a), _vs(u), "Plus", "Times", OpDesc(), ta=True)
        want = interp.mxv(_vs({}), _ms(a), _vs(u), "Plus", "Times", OpDesc(), ta=True)
        _same_vec(got, want)

    @pytest.mark.parametrize("desc", DESCS)
    def test_vxm(self, cpp, interp, rng, desc):
        a, u, c = (
            random_mat_dict(rng, N, N),
            random_vec_dict(rng, N),
            random_vec_dict(rng, N),
        )
        got = cpp.vxm(_vs(c), _vs(u), _ms(a), "Plus", "Times", desc)
        want = interp.vxm(_vs(c), _vs(u), _ms(a), "Plus", "Times", desc)
        _same_vec(got, want)

    @pytest.mark.parametrize("op", ["Plus", "Minus", "Min"])
    def test_ewise_vec(self, cpp, interp, rng, op):
        u, v = random_vec_dict(rng, N), random_vec_dict(rng, N)
        got = cpp.ewise_add_vec(_vs({}), _vs(u), _vs(v), op, OpDesc())
        want = interp.ewise_add_vec(_vs({}), _vs(u), _vs(v), op, OpDesc())
        _same_vec(got, want)
        got = cpp.ewise_mult_vec(_vs({}), _vs(u), _vs(v), op, OpDesc())
        want = interp.ewise_mult_vec(_vs({}), _vs(u), _vs(v), op, OpDesc())
        _same_vec(got, want)

    @pytest.mark.parametrize(
        "op_spec",
        [
            ("unary", "Identity"),
            ("unary", "AdditiveInverse"),
            ("bind", "Times", 2.5, "second"),
            ("bind", "Minus", 7.0, "first"),
        ],
    )
    def test_apply_vec(self, cpp, interp, rng, op_spec):
        u = random_vec_dict(rng, N)
        got = cpp.apply_vec(_vs(u), _vs(u), op_spec, OpDesc())
        want = interp.apply_vec(_vs(u), _vs(u), op_spec, OpDesc())
        _same_vec(got, want)

    @pytest.mark.parametrize("op", ["Plus", "Min", "Max"])
    def test_reduce_scalar(self, cpp, interp, rng, op):
        u = random_vec_dict(rng, N)
        a = random_mat_dict(rng, N, N)
        assert cpp.reduce_vec_scalar(_vs(u), op, None) == pytest.approx(
            interp.reduce_vec_scalar(_vs(u), op, None)
        )
        assert cpp.reduce_mat_scalar(_ms(a), op, None) == pytest.approx(
            interp.reduce_mat_scalar(_ms(a), op, None)
        )

    def test_reduce_empty_gives_identity(self, cpp):
        assert cpp.reduce_vec_scalar(SparseVector.empty(N, np.float64), "Min", None) == np.inf

    def test_reduce_rows(self, cpp, interp, rng):
        a = random_mat_dict(rng, N, N)
        got = cpp.reduce_rows(_vs({}), _ms(a), "Plus", OpDesc())
        want = interp.reduce_rows(_vs({}), _ms(a), "Plus", OpDesc())
        _same_vec(got, want)

    @pytest.mark.parametrize("accum", [None, "Plus"])
    def test_assign_vec(self, cpp, interp, rng, accum):
        c = random_vec_dict(rng, N)
        u = random_vec_dict(rng, 4)
        idx = np.array([2, 5, 7, 9])
        desc = OpDesc(accum=accum)
        got = cpp.assign_vec(_vs(c), _vs(u, 4), idx, desc)
        want = interp.assign_vec(_vs(c), _vs(u, 4), idx, desc)
        _same_vec(got, want)

    def test_assign_vec_scalar_masked(self, cpp, interp, rng):
        c = random_vec_dict(rng, N)
        mask = random_vec_dict(rng, N, dtype=np.bool_)
        desc = OpDesc(mask=_vs(mask, dtype=np.bool_))
        got = cpp.assign_vec_scalar(_vs(c), 42.0, np.arange(N), desc)
        want = interp.assign_vec_scalar(_vs(c), 42.0, np.arange(N), desc)
        _same_vec(got, want)

    def test_extract_vec(self, cpp, interp, rng):
        u = random_vec_dict(rng, N)
        idx = np.array([3, 0, 7, 3])
        got = cpp.extract_vec(SparseVector.empty(4, np.float64), _vs(u), idx, OpDesc())
        want = interp.extract_vec(SparseVector.empty(4, np.float64), _vs(u), idx, OpDesc())
        _same_vec(got, want)


class TestMatrixOpsAgainstInterpreted:
    @pytest.mark.parametrize("masked", [False, True])
    def test_mxm(self, cpp, interp, rng, masked):
        a, b, c = (
            random_mat_dict(rng, N, N),
            random_mat_dict(rng, N, N),
            random_mat_dict(rng, N, N),
        )
        mask = random_mat_dict(rng, N, N, dtype=np.bool_)
        desc = OpDesc(mask=_ms(mask, dtype=np.bool_) if masked else None)
        got = cpp.mxm(_ms(c), _ms(a), _ms(b), "Plus", "Times", desc)
        want = interp.mxm(_ms(c), _ms(a), _ms(b), "Plus", "Times", desc)
        _same_mat(got, want)

    def test_mxm_transposed_b(self, cpp, interp, rng):
        a, b = random_mat_dict(rng, N, N), random_mat_dict(rng, N, N)
        got = cpp.mxm(_ms({}), _ms(a), _ms(b), "Plus", "Times", OpDesc(), tb=True)
        want = interp.mxm(_ms({}), _ms(a), _ms(b), "Plus", "Times", OpDesc(), tb=True)
        _same_mat(got, want)

    def test_ewise_mat(self, cpp, interp, rng):
        a, b = random_mat_dict(rng, N, N), random_mat_dict(rng, N, N)
        got = cpp.ewise_add_mat(_ms({}), _ms(a), _ms(b), "Plus", OpDesc())
        want = interp.ewise_add_mat(_ms({}), _ms(a), _ms(b), "Plus", OpDesc())
        _same_mat(got, want)
        got = cpp.ewise_mult_mat(_ms({}), _ms(a), _ms(b), "Times", OpDesc())
        want = interp.ewise_mult_mat(_ms({}), _ms(a), _ms(b), "Times", OpDesc())
        _same_mat(got, want)

    def test_apply_mat(self, cpp, interp, rng):
        a = random_mat_dict(rng, N, N)
        spec = ("bind", "Times", 0.85, "second")
        got = cpp.apply_mat(_ms(a), _ms(a), spec, OpDesc())
        want = interp.apply_mat(_ms(a), _ms(a), spec, OpDesc())
        _same_mat(got, want)


class TestDtypes:
    @pytest.mark.parametrize(
        "dtype", [np.bool_, np.int8, np.int32, np.int64, np.uint16, np.float32, np.float64]
    )
    def test_ewise_add_across_pods(self, cpp, interp, rng, dtype):
        u = random_vec_dict(rng, N, dtype=dtype)
        v = random_vec_dict(rng, N, dtype=dtype)
        op = "LogicalOr" if np.dtype(dtype) == np.bool_ else "Plus"
        got = cpp.ewise_add_vec(
            _vs({}, dtype=dtype), _vs(u, dtype=dtype), _vs(v, dtype=dtype), op, OpDesc()
        )
        want = interp.ewise_add_vec(
            _vs({}, dtype=dtype), _vs(u, dtype=dtype), _vs(v, dtype=dtype), op, OpDesc()
        )
        assert got.dtype == np.dtype(dtype)
        _same_vec(got, want)


class TestWholeDSLOnCpp:
    def test_bfs_through_dsl(self, rng):
        from repro.algorithms import bfs_levels
        from repro.io.generators import erdos_renyi

        g = erdos_renyi(100, seed=17)
        with gb.use_engine("cpp"):
            cpp_levels = bfs_levels(g, 0)
        with gb.use_engine("interpreted"):
            ref_levels = bfs_levels(g, 0)
        assert cpp_levels.isequal(ref_levels)

    def test_pagerank_through_dsl(self):
        from repro.algorithms import pagerank
        from repro.io.generators import scale_free

        g = scale_free(80, seed=19)
        with gb.use_engine("cpp"):
            pr1 = gb.Vector(shape=(80,), dtype=float)
            pagerank(g, pr1, threshold=1e-13)
        with gb.use_engine("interpreted"):
            pr2 = gb.Vector(shape=(80,), dtype=float)
            pagerank(g, pr2, threshold=1e-13)
        assert np.allclose(pr1.to_numpy(), pr2.to_numpy(), atol=1e-10)


class TestCompiledAlgorithms:
    def test_bfs_compiled_matches(self):
        from repro.algorithms import bfs_levels
        from repro.algorithms.compiled import bfs_compiled
        from repro.io.generators import erdos_renyi

        g = erdos_renyi(120, seed=23)
        levels, elapsed = bfs_compiled(g._store, 0)
        with gb.use_engine("interpreted"):
            want = bfs_levels(g, 0)
        assert levels.to_dict() == want._store.to_dict()
        assert elapsed > 0

    def test_sssp_compiled_matches(self):
        from repro.algorithms import sssp_distances
        from repro.algorithms.compiled import sssp_compiled
        from repro.io.generators import grid_graph

        g = grid_graph(8, weighted=True, seed=29, dtype=float)
        path, elapsed = sssp_compiled(g._store, 0)
        with gb.use_engine("interpreted"):
            want = sssp_distances(g, 0)
        got, ref = path.to_dict(), want._store.to_dict()
        assert got.keys() == ref.keys()
        for k in ref:
            assert got[k] == pytest.approx(ref[k])
        assert elapsed > 0

    def test_pagerank_compiled_matches(self):
        from repro.algorithms import pagerank
        from repro.algorithms.compiled import pagerank_compiled
        from repro.io.generators import scale_free

        g = scale_free(90, seed=31)
        ranks, elapsed = pagerank_compiled(g._store, threshold=1e-13)
        with gb.use_engine("interpreted"):
            pr = gb.Vector(shape=(90,), dtype=float)
            pagerank(g, pr, threshold=1e-13)
        assert np.allclose(ranks.to_dense(), pr.to_numpy(), atol=1e-9)
        assert elapsed > 0

    def test_triangle_count_compiled_matches(self):
        from repro.algorithms import lower_triangle, triangle_count
        from repro.algorithms.compiled import triangle_count_compiled
        from repro.io.generators import erdos_renyi

        g = erdos_renyi(100, seed=37)
        r, c, _ = g.to_coo()
        A = gb.Matrix(
            (np.ones(2 * len(r)), (np.concatenate([r, c]), np.concatenate([c, r]))),
            shape=g.shape, dtype=int,
        )
        L = lower_triangle(A)
        count, elapsed = triangle_count_compiled(L._store)
        with gb.use_engine("interpreted"):
            assert count == triangle_count(L)
        assert elapsed > 0


class TestCppCaching:
    def test_so_artifacts_cached_on_disk(self, cpp, rng):
        u = random_vec_dict(rng, N)
        desc = OpDesc()
        before = cpp.cache.stats.compiles
        cpp.ewise_add_vec(_vs({}), _vs(u), _vs(u), "Max", desc)
        cpp.ewise_add_vec(_vs({}), _vs(u), _vs(u), "Max", desc)
        after = cpp.cache.stats.compiles
        assert after - before <= 1  # second call never recompiles

    def test_generated_cpp_has_fig9_defines(self, cpp, rng):
        u = random_vec_dict(rng, N)
        cpp.ewise_add_vec(_vs({}), _vs(u), _vs(u), "Plus", OpDesc())
        sources = list(cpp.cache.cache_dir.glob("pygb_ewise_add_vec_*.cpp"))
        assert sources
        text = sources[0].read_text()
        assert "g++" in text and "gbtl_lite.hpp" in text


class TestScheduleOnCpp:
    """Direction-optimized traversal on the C++ engine (PR 6): each
    strategy must be bit-identical to the C++ dense kernel, and the
    deterministic edges-examined counters must match the interpreted
    engine exactly (the pull counter simulates the Python block-growth
    scan inside the generated C++)."""

    def _sched(self, direction, func, a, u, desc, ta, add):
        from repro import schedule as S

        mode = "fixed" if direction == "dense" else direction
        return S.Schedule(mode).resolve(func, a, u, desc, ta, add)

    @pytest.mark.parametrize("direction", ["push", "pull"])
    @pytest.mark.parametrize("ta", [False, True])
    def test_mxv_directions_bit_identical(self, cpp, rng, direction, ta):
        a, u = random_mat_dict(rng, N, N), random_vec_dict(rng, N)
        mask = random_vec_dict(rng, N, dtype=np.bool_)

        def run(d):
            desc = OpDesc(mask=_vs(mask, dtype=np.bool_))
            a_s, u_s = _ms(a), _vs(u)
            sched = self._sched(d, "mxv", a_s, u_s, desc, ta, "Plus")
            return cpp.mxv(
                _vs({}), a_s, u_s, "Plus", "Times", desc, ta=ta, sched=sched
            ).to_dict()

        assert run(direction) == run("dense")

    @pytest.mark.parametrize("direction", ["push", "pull"])
    def test_vxm_directions_bit_identical(self, cpp, rng, direction):
        a, u = random_mat_dict(rng, N, N), random_vec_dict(rng, N)
        mask = random_vec_dict(rng, N, dtype=np.bool_)

        def run(d):
            desc = OpDesc(mask=_vs(mask, dtype=np.bool_), complement=True)
            a_s, u_s = _ms(a), _vs(u)
            sched = self._sched(d, "vxm", a_s, u_s, desc, False, "Plus")
            return cpp.vxm(
                _vs({}), u_s, a_s, "Plus", "Times", desc, sched=sched
            ).to_dict()

        assert run(direction) == run("dense")

    def test_logical_pull_early_exit_bit_identical(self, cpp, rng):
        """bool × LogicalOr takes the dedicated early-exit kernel."""
        a = random_mat_dict(rng, N, N, dtype=np.bool_)
        u = random_vec_dict(rng, N, dtype=np.bool_)
        mask = random_vec_dict(rng, N, dtype=np.bool_)

        def run(d):
            desc = OpDesc(mask=_vs(mask, dtype=np.bool_), replace=True)
            a_s = _ms(a, dtype=np.bool_)
            u_s = _vs(u, dtype=np.bool_)
            sched = self._sched(d, "mxv", a_s, u_s, desc, True, "LogicalOr")
            return cpp.mxv(
                _vs({}, dtype=np.bool_), a_s, u_s,
                "LogicalOr", "LogicalAnd", desc, ta=True, sched=sched,
            ).to_dict()

        assert run("pull") == run("dense")

    @pytest.mark.parametrize("direction", ["dense", "push", "pull"])
    def test_edge_counters_match_interpreted(self, cpp, interp, rng, direction):
        from repro import schedule as S

        a, u = random_mat_dict(rng, N, N), random_vec_dict(rng, N)
        mask = random_vec_dict(rng, N, dtype=np.bool_)
        per_engine = {}
        for eng in (cpp, interp):
            S.reset_stats()
            desc = OpDesc(mask=_vs(mask, dtype=np.bool_))
            a_s, u_s = _ms(a), _vs(u)
            sched = self._sched(direction, "mxv", a_s, u_s, desc, False, "Plus")
            eng.mxv(_vs({}), a_s, u_s, "Plus", "Times", desc, sched=sched)
            per_engine[eng.name] = S.stats()["edges"]
        got = list(per_engine.values())
        assert got[0] == got[1]
        assert got[0][direction] > 0

    @pytest.mark.parametrize("mode", ["fixed", "push", "pull", "auto"])
    def test_bfs_through_dsl_every_mode(self, rng, mode):
        from repro.algorithms import bfs_levels
        from repro.io.generators import erdos_renyi

        g = erdos_renyi(80, seed=23)
        with gb.use_engine("cpp"):
            got = bfs_levels(g, 0, schedule=mode)
        with gb.use_engine("interpreted"):
            ref = bfs_levels(g, 0, schedule="fixed")
        assert got._store.to_dict() == ref._store.to_dict()
