"""Cross-engine differential fuzzing: random DSL programs must compute
bit-identical results under the interpreted and Python-JIT engines (and,
when a toolchain exists, numerically identical results under C++).

This is the strongest correctness statement the architecture supports:
whatever a random composition of masked/accumulated operations does, the
three realisations of the Fig. 9 pipeline agree on it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro as gb
from repro.jit.cppengine import toolchain_works

N = 8

_BINOPS = ["Plus", "Minus", "Times", "Min", "Max", "First", "Second"]
_SEMIRINGS = [("Plus", "Times"), ("Min", "Plus"), ("Max", "First"), ("Plus", "Plus")]


@st.composite
def vec_data(draw):
    n = draw(st.integers(0, N))
    idx = draw(st.lists(st.integers(0, N - 1), min_size=n, max_size=n, unique=True))
    vals = draw(
        st.lists(
            st.integers(-8, 8), min_size=n, max_size=n
        )
    )
    return sorted(zip(idx, vals))


@st.composite
def mat_data(draw):
    n = draw(st.integers(0, N * N // 2))
    flat = draw(
        st.lists(st.integers(0, N * N - 1), min_size=n, max_size=n, unique=True)
    )
    vals = draw(st.lists(st.integers(-8, 8), min_size=n, max_size=n))
    return sorted(zip(flat, vals))


@st.composite
def program(draw):
    """A small random DSL program: a sequence of masked/accumulated
    statements over two matrices and three vectors."""
    steps = []
    for _ in range(draw(st.integers(1, 5))):
        kind = draw(
            st.sampled_from(
                ["mxv", "vxm", "ewise_add", "ewise_mult", "apply", "reduce_rows",
                 "assign_scalar", "select"]
            )
        )
        steps.append(
            dict(
                kind=kind,
                semiring=draw(st.sampled_from(_SEMIRINGS)),
                op=draw(st.sampled_from(_BINOPS)),
                masked=draw(st.booleans()),
                comp=draw(st.booleans()),
                replace=draw(st.booleans()),
                accum=draw(st.sampled_from([None, "Plus", "Min"])),
                const=draw(st.integers(-3, 3)),
            )
        )
    return steps


def _build_state(mat1, mat2, v1, v2, v3):
    a = gb.Matrix(
        ([v for _, v in mat1], ([f // N for f, _ in mat1], [f % N for f, _ in mat1])),
        shape=(N, N), dtype=np.int64,
    )
    b = gb.Matrix(
        ([v for _, v in mat2], ([f // N for f, _ in mat2], [f % N for f, _ in mat2])),
        shape=(N, N), dtype=np.int64,
    )
    def vec(d):
        return gb.Vector(([v for _, v in d], [i for i, _ in d]), shape=(N,), dtype=np.int64)
    return a, b, vec(v1), vec(v2), vec(v3)


def _run_program(steps, mat1, mat2, v1, v2, v3) -> dict:
    a, b, x, y, out = _build_state(mat1, mat2, v1, v2, v3)
    mask = gb.Vector(
        ([True, True, True], [0, 3, 6]), shape=(N,), dtype=bool
    )
    for s in steps:
        key = None
        if s["masked"]:
            key = (~mask if s["comp"] else mask, s["replace"])
        sr = gb.Semiring(gb.Monoid(s["semiring"][0]), s["semiring"][1])
        with sr:
            if s["kind"] == "mxv":
                expr = a @ x
            elif s["kind"] == "vxm":
                expr = x @ b
            elif s["kind"] == "ewise_add":
                with gb.BinaryOp(s["op"]):
                    expr = x + y
            elif s["kind"] == "ewise_mult":
                with gb.BinaryOp(s["op"]):
                    expr = x * y
            elif s["kind"] == "apply":
                expr = gb.apply(gb.UnaryOp("Plus", s["const"]), x)
            elif s["kind"] == "reduce_rows":
                expr = gb.reduce(gb.Monoid(s["semiring"][0]), a)
            elif s["kind"] == "select":
                expr = gb.select("ValueGT", x, s["const"])
            else:  # assign_scalar
                expr = None
            if expr is None:
                if s["accum"]:
                    with gb.Accumulator(s["accum"]):
                        out[key] = s["const"]
                else:
                    out[key] = s["const"]
            elif s["accum"]:
                with gb.Accumulator(s["accum"]):
                    out.__setitem__(key, _accum(expr))  # the `+=` protocol
            else:
                out[key] = expr
        # rotate state so later steps see earlier results
        x, y = y, x
    return out._store.to_dict()


def _accum(expr):
    from repro.core.masks import AccumExpr

    return AccumExpr(expr)


@settings(max_examples=40, deadline=None)
@given(
    steps=program(),
    mat1=mat_data(),
    mat2=mat_data(),
    v1=vec_data(),
    v2=vec_data(),
    v3=vec_data(),
)
def test_interpreted_and_pyjit_agree(steps, mat1, mat2, v1, v2, v3):
    with gb.use_engine("interpreted"):
        r1 = _run_program(steps, mat1, mat2, v1, v2, v3)
    with gb.use_engine("pyjit"):
        r2 = _run_program(steps, mat1, mat2, v1, v2, v3)
    assert r1 == r2


@pytest.mark.cpp
@pytest.mark.skipif(not toolchain_works(), reason="no working C++ toolchain")
@settings(max_examples=10, deadline=None)
@given(
    steps=program(),
    mat1=mat_data(),
    mat2=mat_data(),
    v1=vec_data(),
    v2=vec_data(),
    v3=vec_data(),
)
def test_cpp_agrees_with_interpreted(steps, mat1, mat2, v1, v2, v3):
    with gb.use_engine("interpreted"):
        r1 = _run_program(steps, mat1, mat2, v1, v2, v3)
    with gb.use_engine("cpp"):
        r2 = _run_program(steps, mat1, mat2, v1, v2, v3)
    assert r1.keys() == r2.keys()
    for k in r1:
        assert r1[k] == pytest.approx(r2[k])
