"""DSL container tests: the constructors of Fig. 3, properties, element
access, copy semantics, and interop conversions."""

import numpy as np
import pytest

import repro as gb
from repro.exceptions import EmptyObject, InvalidValue


class TestMatrixConstruction:
    def test_sparse_coo_form(self):
        # Fig. 3a: gb.Matrix((vals, (row_idx, col_idx)), shape=(r, c))
        m = gb.Matrix(([1.0, 2.0], ([0, 1], [1, 0])), shape=(3, 3))
        assert m.shape == (3, 3)
        assert m.nvals == 2
        assert m[0, 1] == 1.0

    def test_dense_list_form(self):
        # Fig. 3a: gb.Matrix([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        m = gb.Matrix([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        assert m.shape == (3, 3)
        assert m.nvals == 9
        assert m.dtype == np.int64
        assert m[2, 0] == 7

    def test_numpy_form(self):
        # Fig. 3b: gb.Matrix(np.random.rand(3, 3))
        arr = np.arange(6, dtype=np.float64).reshape(2, 3)
        m = gb.Matrix(arr)
        assert m.shape == (2, 3)
        assert np.array_equal(m.to_numpy(), arr)

    def test_scipy_form(self):
        scipy_sparse = pytest.importorskip("scipy.sparse")
        sp = scipy_sparse.diags([1.0, 1.0, 1.0], offsets=0, shape=(3, 3)).tocsr()
        m = gb.Matrix(sp)
        assert m.nvals == 3
        assert m[1, 1] == 1.0

    def test_networkx_form(self):
        nx = pytest.importorskip("networkx")
        g = nx.balanced_tree(r=2, h=3)
        m = gb.Matrix(g)
        assert m.shape == (g.number_of_nodes(),) * 2
        # undirected graphs contribute both orientations
        assert m.nvals == 2 * g.number_of_edges()

    def test_empty_with_shape_and_dtype(self):
        m = gb.Matrix(shape=(4, 5), dtype=float)
        assert m.shape == (4, 5) and m.nvals == 0 and m.dtype == np.float64

    def test_empty_without_shape_rejected(self):
        with pytest.raises(InvalidValue):
            gb.Matrix()

    def test_copy_constructor_is_deep(self):
        m = gb.Matrix([[1, 2], [3, 4]])
        c = gb.Matrix(m)
        c[0, 0] = 99
        assert m[0, 0] == 1

    def test_dtype_cast_at_construction(self):
        m = gb.Matrix([[1.7, 2.2]], dtype=int)
        assert m.dtype == np.int64 and m[0, 0] == 1

    def test_construction_copies_data(self):
        # "PyGB currently performs a data copy at construction" (Sec. III)
        arr = np.ones((2, 2))
        m = gb.Matrix(arr)
        arr[0, 0] = 42.0
        assert m[0, 0] == 1.0

    def test_from_expression(self):
        a = gb.Matrix([[1, 0], [0, 1]])
        m = gb.Matrix(a @ a)
        assert m[0, 0] == 1

    def test_shape_inferred_from_coo(self):
        m = gb.Matrix(([1.0], ([4], [2])))
        assert m.shape == (5, 3)

    def test_3d_data_rejected(self):
        with pytest.raises(InvalidValue):
            gb.Matrix(np.zeros((2, 2, 2)))


class TestVectorConstruction:
    def test_sparse_form(self):
        # Fig. 3a: gb.Vector((vals, idx), shape=(l,))
        v = gb.Vector(([1.0, 2.0], [3, 1]), shape=(5,))
        assert v.size == 5 and v.nvals == 2
        assert v[1] == 2.0

    def test_dense_list_form(self):
        v = gb.Vector([1, 2, 3, 4, 5])
        assert v.size == 5 and v.nvals == 5 and v.dtype == np.int64

    def test_empty(self):
        v = gb.Vector(shape=(7,), dtype=bool)
        assert v.size == 7 and v.nvals == 0 and v.dtype == np.bool_

    def test_shape_as_int(self):
        v = gb.Vector(shape=4, dtype=float)
        assert v.size == 4

    def test_2d_shape_rejected(self):
        with pytest.raises(InvalidValue):
            gb.Vector(shape=(2, 2), dtype=float)

    def test_copy_constructor_is_deep(self):
        v = gb.Vector([1.0, 2.0])
        w = gb.Vector(v)
        w[0] = 9.0
        assert v[0] == 1.0

    def test_2d_data_rejected(self):
        with pytest.raises(InvalidValue):
            gb.Vector(np.zeros((2, 2)))


class TestElementAccess:
    def test_matrix_scalar_extract(self):
        m = gb.Matrix(([5.0], ([1], [2])), shape=(3, 3))
        assert m[1, 2] == 5.0

    def test_matrix_missing_element_raises(self):
        m = gb.Matrix(shape=(3, 3), dtype=float)
        with pytest.raises(EmptyObject):
            m[0, 0]

    def test_matrix_get_with_default(self):
        m = gb.Matrix(shape=(3, 3), dtype=float)
        assert m.get(0, 0) is None
        assert m.get(0, 0, default=-1.0) == -1.0

    def test_vector_scalar_extract(self):
        v = gb.Vector(([7.0], [2]), shape=(4,))
        assert v[2] == 7.0
        with pytest.raises(EmptyObject):
            v[0]

    def test_set_element(self):
        m = gb.Matrix(shape=(3, 3), dtype=float)
        m[1, 2] = 8.0
        assert m.nvals == 1 and m[1, 2] == 8.0

    def test_set_element_vector(self):
        v = gb.Vector(shape=(3,), dtype=int)
        v[1] = 5
        assert v.nvals == 1 and v[1] == 5

    def test_negative_indices(self):
        v = gb.Vector([1.0, 2.0, 3.0])
        assert v[-1] == 3.0


class TestProperties:
    def test_nvals_shape_dtype(self, small_graph):
        assert small_graph.nvals == 12
        assert small_graph.shape == (7, 7)
        assert small_graph.nrows == 7 and small_graph.ncols == 7
        assert small_graph.dtype == np.int64

    def test_clear(self, small_graph):
        small_graph.clear()
        assert small_graph.nvals == 0
        assert small_graph.shape == (7, 7)

    def test_dup(self, small_graph):
        d = small_graph.dup()
        d.clear()
        assert small_graph.nvals == 12

    def test_isequal(self):
        a = gb.Matrix([[1, 2], [3, 4]])
        b = gb.Matrix([[1, 2], [3, 4]])
        c = gb.Matrix([[1, 2], [3, 5]])
        assert a.isequal(b)
        assert not a.isequal(c)
        assert not a.isequal(gb.Vector([1, 2]))

    def test_repr(self):
        assert "2x2" in repr(gb.Matrix([[1, 2], [3, 4]]))
        assert "size=3" in repr(gb.Vector([1, 2, 3]))


class TestConversions:
    def test_matrix_to_numpy_fill(self):
        m = gb.Matrix(([3.0], ([0], [1])), shape=(2, 2))
        d = m.to_numpy(fill=-1)
        assert d[0, 1] == 3.0 and d[1, 0] == -1

    def test_vector_to_numpy(self):
        v = gb.Vector(([2.0], [1]), shape=(3,))
        assert list(v.to_numpy()) == [0.0, 2.0, 0.0]

    def test_to_coo_copies(self):
        m = gb.Matrix([[1, 2], [3, 4]])
        rows, cols, vals = m.to_coo()
        vals[0] = 99
        assert m[0, 0] == 1

    def test_scipy_roundtrip(self):
        pytest.importorskip("scipy.sparse")
        m = gb.Matrix(([1.0, 2.0], ([0, 1], [1, 0])), shape=(2, 2))
        sp = gb.io.to_scipy_sparse(m)
        back = gb.io.from_scipy_sparse(sp)
        assert back.isequal(m)

    def test_networkx_roundtrip(self):
        pytest.importorskip("networkx")
        m = gb.Matrix(([1.0, 2.0], ([0, 1], [1, 2])), shape=(3, 3))
        g = gb.io.to_networkx(m)
        back = gb.io.from_networkx(g)
        assert back.isequal(m)
