"""Operator context-stack tests (paper Sec. IV): nesting precedence,
accumulator fallback, the Replace flag, thread isolation, and error
handling."""

import threading

import pytest

import repro as gb
from repro.core import context
from repro.core.operators import (
    Accumulator,
    BinaryOp,
    Monoid,
    Semiring,
    UnaryOp,
    resolve_accum_op,
    resolve_ewise_add_op,
    resolve_ewise_mult_op,
    resolve_reduce_monoid,
    resolve_semiring,
    resolve_unary_spec,
)


class TestStackMechanics:
    def test_with_pushes_and_pops(self):
        op = BinaryOp("Min")
        assert op not in context.stack_snapshot()
        with op:
            assert context.stack_snapshot()[-1] is op
        assert op not in context.stack_snapshot()

    def test_nesting_order(self):
        a, b = BinaryOp("Min"), BinaryOp("Max")
        with a:
            with b:
                assert context.stack_snapshot()[-2:] == (a, b)
            assert context.stack_snapshot()[-1] is a

    def test_exception_unwinds_stack(self):
        op = BinaryOp("Min")
        with pytest.raises(RuntimeError):
            with op:
                raise RuntimeError("boom")
        assert op not in context.stack_snapshot()

    def test_lifo_violation_detected(self):
        a, b = BinaryOp("Min"), BinaryOp("Max")
        context.push(a)
        context.push(b)
        with pytest.raises(RuntimeError):
            context.pop(a)
        # clean up
        context.pop(b)
        context.pop(a)

    def test_reentrant_same_object(self):
        sr = gb.ArithmeticSemiring
        with sr:
            with sr:
                assert resolve_semiring() == ("Plus", "Times")
        assert sr not in context.stack_snapshot()


class TestResolution:
    def test_semiring_defaults_to_arithmetic(self):
        assert resolve_semiring() == ("Plus", "Times")

    def test_nearest_semiring_wins(self):
        with Semiring(gb.MinMonoid, "Plus"):
            with Semiring(gb.MaxMonoid, "Times"):
                assert resolve_semiring() == ("Max", "Times")
            assert resolve_semiring() == ("Min", "Plus")

    def test_ewise_add_from_binary_op(self):
        with BinaryOp("Minus"):
            assert resolve_ewise_add_op() == "Minus"

    def test_ewise_add_from_semiring_takes_add(self):
        with gb.MinPlusSemiring:
            assert resolve_ewise_add_op() == "Min"

    def test_ewise_mult_from_semiring_takes_mult(self):
        with gb.MinPlusSemiring:
            assert resolve_ewise_mult_op() == "Plus"

    def test_ewise_from_monoid(self):
        with gb.MaxMonoid:
            assert resolve_ewise_add_op() == "Max"
            assert resolve_ewise_mult_op() == "Max"

    def test_ewise_defaults(self):
        assert resolve_ewise_add_op() == "Plus"
        assert resolve_ewise_mult_op() == "Times"

    def test_explicit_overrides_context(self):
        with BinaryOp("Minus"):
            assert resolve_ewise_add_op("Max") == "Max"

    def test_accumulator_beats_inner_semiring(self):
        # Fig. 7: with gb.Accumulator("Second"), gb.Semiring(PlusMonoid, "Times")
        with Accumulator("Second"), Semiring(gb.PlusMonoid, "Times"):
            assert resolve_accum_op() == "Second"

    def test_accum_falls_back_to_semiring_monoid(self):
        # the paper's SSSP note: Accumulator("Min") can be omitted
        with gb.MinPlusSemiring:
            assert resolve_accum_op() == "Min"

    def test_accum_default_plus(self):
        assert resolve_accum_op() == "Plus"

    def test_reduce_monoid_from_context(self):
        with gb.MinPlusSemiring:
            op, ident = resolve_reduce_monoid()
            assert op == "Min" and ident == "MinIdentity"

    def test_reduce_monoid_default(self):
        assert resolve_reduce_monoid() == ("Plus", "PlusIdentity")

    def test_reduce_monoid_explicit_forms(self):
        assert resolve_reduce_monoid(gb.MaxMonoid)[0] == "Max"
        assert resolve_reduce_monoid(gb.MinPlusSemiring)[0] == "Min"

    def test_unary_from_context(self):
        with UnaryOp("AdditiveInverse"):
            assert resolve_unary_spec() == ("unary", "AdditiveInverse")

    def test_unary_default_identity(self):
        assert resolve_unary_spec() == ("unary", "Identity")

    def test_bound_unary_spec(self):
        spec = resolve_unary_spec(UnaryOp("Times", 0.85))
        assert spec == ("bind", "Times", 0.85, "second")
        spec = resolve_unary_spec(UnaryOp("Minus", 1.0, bind="first"))
        assert spec == ("bind", "Minus", 1.0, "first")


class TestReplaceFlag:
    def test_inactive_by_default(self):
        assert not context.replace_active()

    def test_active_inside_block(self):
        with gb.Replace:
            assert context.replace_active()
        assert not context.replace_active()

    def test_replace_changes_masked_write(self):
        c = gb.Vector(([1.0, 2.0], [0, 1]), shape=(3,))
        u = gb.Vector(([10.0], [1]), shape=(3,))
        v = gb.Vector(([20.0], [1]), shape=(3,))
        mask = gb.Vector(([True], [1]), shape=(3,), dtype=bool)
        merged = gb.Vector(c)
        merged[mask] = u + v
        assert merged.get(0) == 1.0  # outside mask kept
        replaced = gb.Vector(c)
        with gb.Replace:
            replaced[mask] = u + v
        assert replaced.get(0) is None  # outside mask cleared

    def test_explicit_replace_key_overrides_context(self):
        c = gb.Vector(([1.0], [0]), shape=(3,))
        u = gb.Vector(([5.0], [1]), shape=(3,))
        mask = gb.Vector(([True], [1]), shape=(3,), dtype=bool)
        c[mask, True] = gb.apply(u)
        assert c.get(0) is None and c.get(1) == 5.0


class TestThreadIsolation:
    def test_stacks_are_thread_local(self):
        results = {}

        def worker():
            results["worker_sees"] = resolve_semiring()

        with gb.MinPlusSemiring:
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            results["main_sees"] = resolve_semiring()
        assert results["worker_sees"] == ("Plus", "Times")  # default
        assert results["main_sees"] == ("Min", "Plus")


class TestOperatorObjects:
    def test_binary_op_validates(self):
        with pytest.raises(gb.UnknownOperator):
            BinaryOp("NoSuchOp")

    def test_unary_op_validates(self):
        with pytest.raises(gb.UnknownOperator):
            UnaryOp("NoSuchOp")
        with pytest.raises(gb.UnknownOperator):
            UnaryOp("NoSuchBinary", 2.0)
        with pytest.raises(ValueError):
            UnaryOp("Times", 2.0, bind="third")

    def test_monoid_requires_associative_op(self):
        with pytest.raises(gb.UnknownOperator):
            Monoid("Minus")

    def test_monoid_literal_identity(self):
        m = Monoid("Plus", 0)
        assert m.identity == 0

    def test_monoid_named_identity_validated(self):
        with pytest.raises(gb.UnknownOperator):
            Monoid("Min", "BogusIdentity")

    def test_monoid_default_identity(self):
        assert Monoid("Min").identity == "MinIdentity"

    def test_semiring_composition_forms(self):
        # the equivalences of Sec. III:
        # MinPlusSemiring == Semiring(MinMonoid, "Plus")
        s1 = Semiring(gb.MinMonoid, "Plus")
        assert (s1.add_op, s1.mult_op) == ("Min", "Plus")
        # Monoid("Min", "MinIdentity") == MinMonoid
        s2 = Semiring(Monoid("Min", "MinIdentity"), BinaryOp("Plus"))
        assert (s2.add_op, s2.mult_op) == ("Min", "Plus")
        # a bare op name coerces to the canonical monoid
        s3 = Semiring("Min", "Plus")
        assert s3.monoid.identity == "MinIdentity"

    def test_accumulator_forms(self):
        assert Accumulator("Min").name == "Min"
        assert Accumulator(BinaryOp("Plus")).name == "Plus"

    def test_binary_op_equality_and_hash(self):
        assert BinaryOp("Plus") == BinaryOp("Plus")
        assert BinaryOp("Plus") != BinaryOp("Min")
        assert len({BinaryOp("Plus"), BinaryOp("Plus")}) == 1

    def test_reprs(self):
        assert "Min" in repr(BinaryOp("Min"))
        assert "Times" in repr(UnaryOp("Times", 2.0))
        assert "Plus" in repr(gb.PlusMonoid)
        assert "Min" in repr(gb.MinPlusSemiring)
        assert "Second" in repr(Accumulator("Second"))
        assert repr(gb.Replace) == "Replace"
