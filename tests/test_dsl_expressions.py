"""Deferred-expression tests (paper Sec. IV): laziness, operator capture
at construction, terminating operations, container reuse via ``C[None]``,
and the ``+=`` accumulate protocol."""

import numpy as np
import pytest

import repro as gb
from repro.core.expressions import Expression, MXM, MXV, VXM, TransposeView


@pytest.fixture
def ab():
    a = gb.Matrix([[1.0, 2.0], [3.0, 4.0]])
    b = gb.Matrix([[5.0, 6.0], [7.0, 8.0]])
    return a, b


class TestLaziness:
    def test_matmul_returns_expression(self, ab):
        a, b = ab
        expr = a @ b
        assert isinstance(expr, MXM)
        assert isinstance(expr, Expression)

    def test_add_and_mul_return_expressions(self, ab):
        a, b = ab
        assert isinstance(a + b, Expression)
        assert isinstance(a * b, Expression)

    def test_expression_not_evaluated_until_used(self, ab, engine):
        a, b = ab
        expr = a @ b
        assert expr._materialized is None
        _ = expr.nvals  # terminating operation
        assert expr._materialized is not None

    def test_materialization_cached(self, ab, engine):
        a, b = ab
        expr = a @ b
        first = expr.new()
        assert expr.new() is first

    def test_setitem_evaluates_into_existing_container(self, ab, engine):
        # C[None] = A @ B keeps the reference (Sec. IV)
        a, b = ab
        c = gb.Matrix(shape=(2, 2), dtype=float)
        store_holder = c
        c[None] = a @ b
        assert store_holder is c
        assert c[0, 0] == 1 * 5 + 2 * 7

    def test_plain_assignment_rebinds(self, ab, engine):
        a, b = ab
        c = a @ b
        # c is an expression; using it as a container materialises a new one
        assert c.to_numpy()[1][1] == 3 * 6 + 4 * 8


class TestOperatorCapture:
    def test_semiring_captured_at_construction(self, ab, engine):
        # "The expression object also captures the value of the binary
        # operator from the context of the A + B expression" (Sec. IV)
        a, b = ab
        with gb.MinPlusSemiring:
            expr = a @ b
        # evaluated OUTSIDE the with block, still min-plus
        out = gb.Matrix(shape=(2, 2), dtype=float)
        out[None] = expr
        assert out[0, 0] == min(1 + 5, 2 + 7)

    def test_ewise_op_captured(self, ab, engine):
        a, b = ab
        with gb.BinaryOp("Minus"):
            expr = a + b
        out = gb.Matrix(shape=(2, 2), dtype=float)
        out[None] = expr
        assert out[0, 0] == 1.0 - 5.0

    def test_different_contexts_different_results(self, ab, engine):
        a, b = ab
        with gb.ArithmeticSemiring:
            plus_times = gb.Matrix(a @ b)
        with gb.MinPlusSemiring:
            min_plus = gb.Matrix(a @ b)
        assert plus_times[0, 0] == 19.0
        assert min_plus[0, 0] == 6.0


class TestTerminatingOperations:
    def test_shape_nvals_dtype(self, ab, engine):
        a, b = ab
        expr = a @ b
        assert expr.shape == (2, 2)
        assert expr.nvals == 4
        assert expr.dtype == np.float64

    def test_combining_expression_with_container(self, ab, engine):
        a, b = ab
        expr = (a @ b) + a
        out = gb.Matrix(expr)
        assert out[0, 0] == 19.0 + 1.0

    def test_chained_matmul(self, ab, engine):
        a, b = ab
        out = gb.Matrix(a @ b @ a)  # (a@b) materialises, then @ a
        expected = (a.to_numpy() @ b.to_numpy()) @ a.to_numpy()
        assert np.allclose(out.to_numpy(), expected)

    def test_reduce_of_expression(self, ab, engine):
        a, b = ab
        assert gb.reduce(a @ b) == pytest.approx((a.to_numpy() @ b.to_numpy()).sum())

    def test_extract_from_expression(self, ab, engine):
        a, b = ab
        expr = a @ b
        assert expr[0, 0] == 19.0


class TestVectorExpressions:
    def test_mxv(self, engine):
        a = gb.Matrix([[1.0, 2.0], [3.0, 4.0]])
        v = gb.Vector([1.0, 1.0])
        expr = a @ v
        assert isinstance(expr, MXV)
        out = gb.Vector(expr)
        assert list(out.to_numpy()) == [3.0, 7.0]

    def test_vxm(self, engine):
        a = gb.Matrix([[1.0, 2.0], [3.0, 4.0]])
        v = gb.Vector([1.0, 1.0])
        expr = v @ a
        assert isinstance(expr, VXM)
        out = gb.Vector(expr)
        assert list(out.to_numpy()) == [4.0, 6.0]

    def test_vector_ewise(self, engine):
        u = gb.Vector(([1.0], [0]), shape=(2,))
        v = gb.Vector(([2.0, 5.0], [0, 1]), shape=(2,))
        add = gb.Vector(u + v)
        assert add.to_coo()[1].tolist() == [3.0, 5.0]
        mult = gb.Vector(u * v)
        assert mult.nvals == 1 and mult[0] == 2.0

    def test_vector_matmul_vector_rejected(self):
        u = gb.Vector([1.0])
        with pytest.raises(gb.InvalidValue):
            u @ u


class TestTransposeViews:
    def test_T_returns_view(self, ab):
        a, _ = ab
        assert isinstance(a.T, TransposeView)
        assert a.T.shape == (2, 2)
        assert a.T.T is a

    def test_transpose_in_matmul(self, ab, engine):
        a, b = ab
        out = gb.Matrix(a.T @ b)
        assert np.allclose(out.to_numpy(), a.to_numpy().T @ b.to_numpy())
        out2 = gb.Matrix(a @ b.T)
        assert np.allclose(out2.to_numpy(), a.to_numpy() @ b.to_numpy().T)

    def test_transpose_assignment(self, ab, engine):
        a, _ = ab
        c = gb.Matrix(shape=(2, 2), dtype=float)
        c[None] = a.T
        assert np.allclose(c.to_numpy(), a.to_numpy().T)

    def test_transpose_materialise_constructor(self, ab):
        a, _ = ab
        t = gb.Matrix(a.T)
        assert np.allclose(t.to_numpy(), a.to_numpy().T)

    def test_gb_transpose_function(self, ab, engine):
        a, _ = ab
        c = gb.Matrix(shape=(2, 2), dtype=float)
        c[None] = gb.transpose(a)
        assert np.allclose(c.to_numpy(), a.to_numpy().T)

    def test_transpose_in_ewise(self, ab, engine):
        a, b = ab
        out = gb.Matrix(a.T + b)
        assert np.allclose(out.to_numpy(), a.to_numpy().T + b.to_numpy())


class TestAccumulateProtocol:
    def test_masked_view_iadd(self, engine):
        # path[None] += graph.T @ path (Fig. 4a)
        path = gb.Vector(([0.0], [0]), shape=(3,))
        graph = gb.Matrix(([1.0, 1.0], ([0, 1], [1, 2])), shape=(3, 3))
        with gb.MinPlusSemiring, gb.Accumulator("Min"):
            path[None] += graph.T @ path
        assert path.get(0) == 0.0 and path.get(1) == 1.0

    def test_plain_iadd_on_container(self, engine):
        v = gb.Vector(([1.0], [0]), shape=(2,))
        w = gb.Vector(([2.0, 3.0], [0, 1]), shape=(2,))
        v += gb.apply(w)
        assert v.get(0) == 3.0 and v.get(1) == 3.0

    def test_iadd_uses_context_accumulator(self, engine):
        v = gb.Vector(([10.0], [0]), shape=(2,))
        w = gb.Vector(([2.0], [0]), shape=(2,))
        with gb.Accumulator("Min"):
            v[None] += gb.apply(w)
        assert v.get(0) == 2.0


class TestScalarOperands:
    def test_scalar_add_is_bound_apply(self, engine):
        v = gb.Vector(([1.0], [0]), shape=(3,))
        out = gb.Vector(v + 10)
        assert out.nvals == 1 and out[0] == 11.0  # only stored entries

    def test_scalar_mul(self, engine):
        v = gb.Vector(([3.0], [1]), shape=(3,))
        out = gb.Vector(2 * v)
        assert out[1] == 6.0

    def test_apply_with_explicit_op(self, engine):
        v = gb.Vector([1.0, -2.0])
        out = gb.Vector(gb.apply(gb.UnaryOp("AdditiveInverse"), v))
        assert list(out.to_numpy()) == [-1.0, 2.0]

    def test_apply_requires_unary(self):
        v = gb.Vector([1.0])
        with pytest.raises(gb.InvalidValue):
            gb.apply(gb.BinaryOp("Plus"), v)


class TestDtypeInference:
    def test_mxm_logical_semiring_gives_bool(self, engine):
        a = gb.Matrix([[1, 0], [1, 1]], dtype=bool)
        with gb.LogicalSemiring:
            out = gb.Matrix(a @ a)
        assert out.dtype == np.bool_

    def test_ewise_compare_gives_bool(self, engine):
        a = gb.Matrix([[1.0]])
        with gb.BinaryOp("LessThan"):
            out = gb.Matrix(a + a)
        assert out.dtype == np.bool_

    def test_mixed_dtype_promotes(self, engine):
        a = gb.Matrix([[1]], dtype=np.int32)
        b = gb.Matrix([[1.5]], dtype=np.float64)
        out = gb.Matrix(a + b)
        assert out.dtype == np.float64

    def test_explicit_output_dtype_wins(self, engine):
        a = gb.Matrix([[1.9]])
        out = gb.Matrix(a + a, dtype=int)
        assert out.dtype == np.int64 and out[0, 0] == 3
