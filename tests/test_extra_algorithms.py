"""Integration tests for the extended algorithm suite (connected
components, MIS, k-truss, betweenness centrality) against NetworkX
oracles."""

import numpy as np
import pytest

import repro as gb
from repro.algorithms import (
    betweenness_centrality,
    bc_from_source,
    component_count,
    connected_components,
    edge_support,
    k_truss,
    maximal_independent_set,
)
from repro.io.generators import erdos_renyi, ring_graph

nx = pytest.importorskip("networkx")


def symmetrize(g: "gb.Matrix") -> "gb.Matrix":
    r, c, _ = g.to_coo()
    keep = r != c
    r, c = r[keep], c[keep]
    return gb.Matrix(
        (np.ones(2 * r.size), (np.concatenate([r, c]), np.concatenate([c, r]))),
        shape=g.shape, dtype=np.int64,
    )


class TestConnectedComponents:
    @pytest.mark.parametrize("seed,n,m", [(3, 60, 50), (4, 120, 90), (5, 80, 400)])
    def test_component_count_vs_networkx(self, engine, seed, n, m):
        A = symmetrize(erdos_renyi(n, nedges=m, seed=seed))
        nxg = gb.io.to_networkx(A, directed=False)
        assert component_count(A) == nx.number_connected_components(nxg)

    def test_labels_partition_matches(self, engine):
        A = symmetrize(erdos_renyi(70, nedges=60, seed=7))
        labels = connected_components(A).to_numpy()
        nxg = gb.io.to_networkx(A, directed=False)
        for comp in nx.connected_components(nxg):
            comp = sorted(comp)
            assert len({labels[v] for v in comp}) == 1
            assert labels[comp[0]] == comp[0]  # labelled by smallest member

    def test_edgeless_graph(self, engine):
        A = gb.Matrix(shape=(5, 5), dtype=int)
        assert component_count(A) == 5

    def test_single_component_ring(self, engine):
        A = symmetrize(ring_graph(20))
        labels = connected_components(A).to_numpy()
        assert (labels == 0).all()


class TestMIS:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_independent_and_maximal(self, engine, seed):
        A = symmetrize(erdos_renyi(90, seed=seed))
        iset = maximal_independent_set(A, seed=seed)
        members = set(iset.to_coo()[0].tolist())
        nxg = gb.io.to_networkx(A, directed=False)
        for u in members:
            assert not any(v in members for v in nxg.neighbors(u))
        for u in set(range(90)) - members:
            nbrs = set(nxg.neighbors(u))
            assert (nbrs & members) or not nbrs

    def test_edgeless_graph_takes_everyone(self, engine):
        A = gb.Matrix(shape=(6, 6), dtype=int)
        iset = maximal_independent_set(A)
        assert iset.nvals == 6

    def test_complete_graph_takes_exactly_one(self, engine):
        n = 8
        rows, cols = zip(*[(i, j) for i in range(n) for j in range(n) if i != j])
        K = gb.Matrix((np.ones(len(rows)), (rows, cols)), shape=(n, n), dtype=int)
        iset = maximal_independent_set(K, seed=2)
        assert iset.nvals == 1

    def test_deterministic_under_seed(self, engine):
        A = symmetrize(erdos_renyi(50, seed=9))
        a = maximal_independent_set(A, seed=5)
        b = maximal_independent_set(A, seed=5)
        assert a.isequal(b)


class TestKTruss:
    @pytest.mark.parametrize("seed,k", [(5, 3), (5, 4), (6, 3), (6, 5)])
    def test_vs_networkx(self, engine, seed, k):
        A = symmetrize(erdos_renyi(70, seed=seed))
        nxg = gb.io.to_networkx(A, directed=False)
        mine = k_truss(A, k)
        r, c, _ = mine.to_coo()
        mine_edges = {(min(a, b), max(a, b)) for a, b in zip(r.tolist(), c.tolist())}
        theirs = {
            (min(a, b), max(a, b)) for a, b in nx.k_truss(nxg, k).edges()
        }
        assert mine_edges == theirs

    def test_triangle_survives_3_truss(self, engine):
        tri = symmetrize(
            gb.Matrix((np.ones(3), ([0, 1, 2], [1, 2, 0])), shape=(4, 4), dtype=int)
        )
        t = k_truss(tri, 3)
        assert t.nvals == 6  # the triangle's six directed half-edges

    def test_tree_has_empty_3_truss(self, engine):
        # trees have no triangles at all
        rows = [0, 0, 1, 1]
        cols = [1, 2, 3, 4]
        tree = symmetrize(
            gb.Matrix((np.ones(4), (rows, cols)), shape=(5, 5), dtype=int)
        )
        assert k_truss(tree, 3).nvals == 0

    def test_k_must_be_at_least_2(self, engine):
        A = gb.Matrix(shape=(2, 2), dtype=int)
        with pytest.raises(ValueError):
            k_truss(A, 1)

    def test_edge_support_counts_triangles(self, engine):
        tri = symmetrize(
            gb.Matrix((np.ones(3), ([0, 1, 2], [1, 2, 0])), shape=(3, 3), dtype=int)
        )
        S = edge_support(tri)
        _, _, vals = S.to_coo()
        assert (vals == 1).all()  # every edge of a single triangle supports 1


class TestBetweenness:
    @pytest.mark.parametrize("seed,n", [(11, 40), (12, 60)])
    def test_vs_networkx_directed(self, engine, seed, n):
        g = erdos_renyi(n, seed=seed)
        mine = betweenness_centrality(g, normalized=True)
        expect = nx.betweenness_centrality(gb.io.to_networkx(g), normalized=True)
        assert np.abs(mine - np.array([expect[i] for i in range(n)])).max() < 1e-9

    def test_path_graph_middle_dominates(self, engine):
        # 0→1→2→3→4: vertex 2 lies on the most shortest paths
        g = gb.Matrix(
            (np.ones(4), ([0, 1, 2, 3], [1, 2, 3, 4])), shape=(5, 5), dtype=int
        )
        scores = betweenness_centrality(g)
        assert scores[2] == scores.max()
        assert scores[0] == 0 and scores[4] == 0

    def test_single_source_dependency(self, engine):
        g = gb.Matrix(
            (np.ones(4), ([0, 1, 2, 3], [1, 2, 3, 4])), shape=(5, 5), dtype=int
        )
        delta = bc_from_source(g, 0)
        # δ_0: vertex 1 lies on paths to 2,3,4 (3), vertex 2 on 2, vertex 3 on 1
        assert list(delta) == [0.0, 3.0, 2.0, 1.0, 0.0]

    def test_sampled_sources_subset(self, engine):
        g = erdos_renyi(30, seed=13)
        full = betweenness_centrality(g)
        sampled = betweenness_centrality(g, sources=range(30))
        assert np.allclose(full, sampled)
