"""Tests for the JIT-compiled C++ MatrixMarket loader (Sec. VIII)."""

import numpy as np
import pytest

import repro as gb
from repro.exceptions import InvalidValue
from repro.io.fastload import fast_loader_available, mmread_fast
from repro.io.matrixmarket import mmread, mmwrite

needs_cpp = pytest.mark.skipif(
    not fast_loader_available(), reason="no C++ toolchain for the fast loader"
)


@needs_cpp
class TestFastLoader:
    def test_matches_python_reader(self, tmp_path, rng):
        n = 50
        flat = rng.choice(n * n, size=200, replace=False)
        m = gb.Matrix(
            (rng.uniform(-5, 5, 200), (flat // n, flat % n)), shape=(n, n)
        )
        path = tmp_path / "m.mtx"
        mmwrite(path, m)
        fast = mmread_fast(path)
        slow = mmread(path)
        assert fast.isequal(slow)

    def test_empty_matrix(self, tmp_path):
        m = gb.Matrix(shape=(4, 4), dtype=float)
        path = tmp_path / "e.mtx"
        mmwrite(path, m)
        fast = mmread_fast(path)
        assert fast.shape == (4, 4) and fast.nvals == 0

    def test_integer_files_parse(self, tmp_path):
        m = gb.Matrix(([1, 2, 3], ([0, 1, 2], [2, 0, 1])), shape=(3, 3), dtype=int)
        path = tmp_path / "i.mtx"
        mmwrite(path, m)
        fast = mmread_fast(path, dtype=np.int64)
        assert fast.dtype == np.int64
        assert fast.isequal(m)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(InvalidValue):
            mmread_fast(tmp_path / "nope.mtx")

    def test_symmetric_falls_back_to_python(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "3 3 1\n2 1 5.0\n"
        )
        m = mmread_fast(path)
        assert m[1, 0] == 5.0 and m[0, 1] == 5.0  # mirrored by the fallback

    def test_pattern_falls_back_to_python(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n3 3 1\n1 3\n"
        )
        m = mmread_fast(path)
        assert m[0, 2] == 1

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "% a comment line\n% another\n"
            "2 2 1\n1 2 9.5\n"
        )
        m = mmread_fast(path)
        assert m[0, 1] == 9.5


def test_fallback_without_compiler(tmp_path, monkeypatch):
    """With the compiler hidden, mmread_fast silently uses the Python
    reader."""
    import repro.io.fastload as fl

    monkeypatch.setattr(fl, "_lib", None)
    monkeypatch.setattr(fl, "_lib_failed", True)
    m = gb.Matrix(([7.0], ([0], [1])), shape=(2, 2))
    path = tmp_path / "fb.mtx"
    mmwrite(path, m)
    assert fl.mmread_fast(path).isequal(m)
