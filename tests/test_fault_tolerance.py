"""Fault-tolerance suite for the resilient JIT runtime.

Exercises every recovery path the resilience layer promises: compile
failures and timeouts, corrupt/truncated artifacts, dlopen failures,
unwritable cache directories, quarantine/backoff semantics, the
``PYGB_JIT_STRICT`` escape hatch, and the acceptance criterion that a
machine with a broken compiler still runs every bundled algorithm
correctly with exactly one warning per quarantined kernel spec.
"""

import os
import subprocess
import time
import warnings

import numpy as np
import pytest

import repro as gb
from repro.backend.kernels import OpDesc
from repro.backend.svector import SparseVector
from repro.core.dispatch import (
    InterpretedEngine,
    PartitionedEngine,
    ResilientEngine,
    make_engine,
)
from repro.exceptions import (
    BackendUnavailable,
    CompilationError,
    JitFallbackWarning,
    KernelQuarantined,
)
from repro.jit.cache import CACHE_FORMAT_VERSION, JitCache
from repro.jit.health import EngineHealth, jit_retries
from repro.jit.pycodegen import generate_source
from repro.jit.pyengine import PyJitEngine
from repro.jit.spec import KernelSpec
from repro.testing import FAULTS, fault_injection


@pytest.fixture(autouse=True)
def _clean_faults():
    """No fault rule may leak between tests (or in from the env)."""
    FAULTS.clear()
    yield
    FAULTS.clear()


def _have_compiler() -> bool:
    from repro.jit.cppengine import toolchain_works

    return toolchain_works()


needs_cxx = pytest.mark.skipif(not _have_compiler(), reason="no C++ toolchain")


def _spec(**extra):
    base = dict(
        a="float64", b="float64", c="float64", t_dtype="float64",
        op="Plus", mask="none", comp=False, repl=False, accum="none",
    )
    base.update(extra)
    return KernelSpec.make("ewise_add_vec", **base)


def _vec_args():
    u = SparseVector.from_sorted(8, np.arange(8), np.arange(8, dtype=np.float64))
    v = SparseVector.from_sorted(8, np.arange(8), np.ones(8))
    out = SparseVector.empty(8, np.float64)
    return out, u, v


_EXPECTED = InterpretedEngine().ewise_add_vec(*_vec_args(), "Plus", OpDesc()).values


def _cpp_chain(tmp_path):
    from repro.jit.cppengine import CppJitEngine

    cache = JitCache(tmp_path)
    return cache, ResilientEngine(
        [CppJitEngine(cache), PyJitEngine(cache), InterpretedEngine()]
    )


# ----------------------------------------------------------------------
# the fault plan itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_rate_one_fires_every_call(self):
        with fault_injection("compile_fail", rate=1.0):
            assert [FAULTS.fire("compile_fail") for _ in range(4)] == [True] * 4

    def test_half_rate_is_deterministic(self):
        with fault_injection("compile_fail", rate=0.5):
            pattern = [FAULTS.fire("compile_fail") for _ in range(6)]
        # first eligible call always fires, then every other one
        assert pattern == [True, False, True, False, True, False]

    def test_times_bounds_firing(self):
        with fault_injection("compile_fail", rate=1.0, times=2):
            assert [FAULTS.fire("compile_fail") for _ in range(4)] == [
                True, True, False, False,
            ]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FAULTS.install("explode_randomly")

    def test_env_var_configures_plan(self, monkeypatch):
        monkeypatch.setenv("PYGB_FAULT", "compile_fail:0.5,slow_compile")
        active = FAULTS.active()
        assert active["compile_fail"]["rate"] == 0.5
        assert active["slow_compile"]["rate"] == 1.0
        monkeypatch.setenv("PYGB_FAULT", "")
        assert FAULTS.active() == {}

    def test_env_var_bad_kind_raises(self, monkeypatch):
        monkeypatch.setenv("PYGB_FAULT", "no_such_fault")
        with pytest.raises(ValueError):
            FAULTS.active()
        monkeypatch.setenv("PYGB_FAULT", "")

    def test_context_manager_clears_on_exit(self):
        with fault_injection("dlopen_fail"):
            assert "dlopen_fail" in FAULTS.active()
        assert FAULTS.active() == {}


# ----------------------------------------------------------------------
# quarantine / circuit breaker
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_failure_quarantines_and_warns_once(self):
        health = EngineHealth(backoff=60.0)
        err = CompilationError("boom")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert health.record_failure("cpp", "k1", err) is True
            assert health.record_failure("cpp", "k1", err) is False
        assert len(caught) == 1
        assert issubclass(caught[0].category, JitFallbackWarning)
        with pytest.raises(KernelQuarantined):
            health.check("cpp", "k1")

    def test_backoff_expiry_allows_half_open_retry(self):
        health = EngineHealth(retries=5, backoff=0.01)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            health.record_failure("cpp", "k1", CompilationError("x"))
        time.sleep(0.05)
        health.check("cpp", "k1")  # must not raise once backoff expired

    def test_quarantine_permanent_after_max_attempts(self):
        health = EngineHealth(retries=2, backoff=0.001)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            health.record_failure("cpp", "k1", CompilationError("x"))
            time.sleep(0.01)
            health.record_failure("cpp", "k1", CompilationError("x"))
        snap = health.snapshot()
        assert snap["specs"][0]["state"] == "quarantined (permanent)"
        time.sleep(0.02)
        with pytest.raises(KernelQuarantined):
            health.check("cpp", "k1")

    def test_success_clears_the_record(self):
        health = EngineHealth(backoff=0.001)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            health.record_failure("cpp", "k1", CompilationError("x"))
        health.record_success("cpp", "k1")
        assert health.snapshot()["specs"] == []
        health.check("cpp", "k1")  # healthy again

    def test_retries_env_override(self, monkeypatch):
        monkeypatch.setenv("PYGB_JIT_RETRIES", "7")
        assert jit_retries() == 7
        monkeypatch.setenv("PYGB_JIT_RETRIES", "junk")
        assert jit_retries() == 3

    def test_strict_mode_records_but_never_quarantines(self, monkeypatch):
        monkeypatch.setenv("PYGB_JIT_STRICT", "1")
        health = EngineHealth(retries=1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            health.record_failure("cpp", "k1", CompilationError("x"))
        assert caught == []  # no fallback warning in strict mode
        health.check("cpp", "k1")  # and no quarantine
        assert health.snapshot()["failures"] == 1  # still visible to doctor


# ----------------------------------------------------------------------
# pyjit fallback chain (no compiler required)
# ----------------------------------------------------------------------
class TestPyJitFallback:
    def test_pyjit_failure_falls_back_to_interpreted(self, tmp_path):
        cache = JitCache(tmp_path)
        eng = ResilientEngine([PyJitEngine(cache), InterpretedEngine()])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with fault_injection("pyjit_fail", rate=1.0):
                result = eng.ewise_add_vec(*_vec_args(), "Plus", OpDesc())
        assert np.allclose(result.values, _EXPECTED)
        fallback_warnings = [
            w for w in caught if issubclass(w.category, JitFallbackWarning)
        ]
        assert len(fallback_warnings) == 1
        assert cache.stats.jit_failures == 1
        assert cache.stats.fallbacks == 1

    def test_make_engine_wraps_pyjit_in_fallback_chain(self):
        from repro.guard import GuardedEngine

        eng = make_engine("pyjit")
        # composition order: Guard(Partitioned(Resilient(pyjit -> interpreted)))
        assert isinstance(eng, GuardedEngine)
        assert isinstance(eng._inner, PartitionedEngine)
        assert isinstance(eng._inner._inner, ResilientEngine)
        assert eng.name == "pyjit"  # chain reports the primary's name

    def test_strict_mode_returns_bare_engine(self, monkeypatch):
        from repro.guard import GuardedEngine

        monkeypatch.setenv("PYGB_JIT_STRICT", "1")
        eng = make_engine("pyjit")
        assert isinstance(eng, GuardedEngine)
        assert isinstance(eng._inner, PartitionedEngine)
        assert not isinstance(eng._inner._inner, ResilientEngine)

    def test_strict_mode_raises_through_dsl(self, tmp_path, monkeypatch):
        monkeypatch.setenv("PYGB_JIT_STRICT", "1")
        eng = PyJitEngine(JitCache(tmp_path))
        with fault_injection("pyjit_fail", rate=1.0):
            with pytest.raises(CompilationError):
                eng.ewise_add_vec(*_vec_args(), "Plus", OpDesc())


# ----------------------------------------------------------------------
# C++ engine fault paths
# ----------------------------------------------------------------------
@pytest.mark.cpp
@needs_cxx
class TestCppFaults:
    def test_compile_failure_quarantines_and_falls_back(self, tmp_path):
        cache, eng = _cpp_chain(tmp_path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with fault_injection("compile_fail", rate=1.0):
                result = eng.ewise_add_vec(*_vec_args(), "Plus", OpDesc())
        assert np.allclose(result.values, _EXPECTED)
        assert len([w for w in caught
                    if issubclass(w.category, JitFallbackWarning)]) == 1
        assert cache.stats.jit_failures == 1
        assert cache.stats.fallbacks == 1
        assert cache.health.snapshot()["failures"] == 1

    def test_quarantined_spec_skips_recompile(self, tmp_path):
        """The second dispatch of a failed spec must not invoke the
        compiler hook again — the circuit breaker fast-fails it."""
        cache, eng = _cpp_chain(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with fault_injection("compile_fail", rate=1.0):
                eng.ewise_add_vec(*_vec_args(), "Plus", OpDesc())
                fired = FAULTS.active()["compile_fail"]["fired"]
                eng.ewise_add_vec(*_vec_args(), "Plus", OpDesc())
                assert FAULTS.active()["compile_fail"]["fired"] == fired

    def test_corrupt_artifact_detected_and_rebuilt(self, tmp_path):
        """corrupt_so:0.5 corrupts the first build only; dlopen fails,
        the artifact is invalidated, and the rebuild succeeds."""
        cache, eng = _cpp_chain(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with fault_injection("corrupt_so", rate=0.5):
                result = eng.ewise_add_vec(*_vec_args(), "Plus", OpDesc())
        assert np.allclose(result.values, _EXPECTED)
        assert cache.stats.integrity_rebuilds == 1
        # recovery is invisible to health: nothing quarantined
        assert cache.health.snapshot()["specs"] == []

    def test_dlopen_failure_invalidates_and_rebuilds(self, tmp_path):
        cache, eng = _cpp_chain(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with fault_injection("dlopen_fail", rate=0.5):
                result = eng.ewise_add_vec(*_vec_args(), "Plus", OpDesc())
        assert np.allclose(result.values, _EXPECTED)

    def test_persistent_dlopen_failure_falls_back(self, tmp_path):
        cache, eng = _cpp_chain(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with fault_injection("dlopen_fail", rate=1.0):
                result = eng.ewise_add_vec(*_vec_args(), "Plus", OpDesc())
        assert np.allclose(result.values, _EXPECTED)
        assert cache.stats.jit_failures == 1

    def test_compile_timeout_raises_and_cleans_tmp(self, tmp_path, monkeypatch):
        from repro.jit.cppengine import CppJitEngine

        monkeypatch.setenv("PYGB_COMPILE_TIMEOUT", "0.3")
        cache = JitCache(tmp_path)
        eng = CppJitEngine(cache)
        with fault_injection("slow_compile", rate=1.0):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                with pytest.raises(CompilationError, match="timed out"):
                    eng.ewise_add_vec(*_vec_args(), "Plus", OpDesc())
        assert not list(tmp_path.glob("*.tmp"))

    def test_double_fault_reaches_interpreted(self, tmp_path):
        cache, eng = _cpp_chain(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            FAULTS.install("compile_fail", rate=1.0)
            FAULTS.install("pyjit_fail", rate=1.0)
            result = eng.ewise_add_vec(*_vec_args(), "Plus", OpDesc())
        assert np.allclose(result.values, _EXPECTED)
        assert cache.stats.fallbacks == 2  # cpp -> pyjit -> interpreted


class TestCompileTimeoutConfig:
    def test_default(self, monkeypatch):
        from repro.jit.cppengine import DEFAULT_COMPILE_TIMEOUT, compile_timeout

        monkeypatch.delenv("PYGB_COMPILE_TIMEOUT", raising=False)
        assert compile_timeout() == DEFAULT_COMPILE_TIMEOUT

    def test_env_override_and_disable(self, monkeypatch):
        from repro.jit.cppengine import compile_timeout

        monkeypatch.setenv("PYGB_COMPILE_TIMEOUT", "7.5")
        assert compile_timeout() == 7.5
        monkeypatch.setenv("PYGB_COMPILE_TIMEOUT", "0")
        assert compile_timeout() is None


# ----------------------------------------------------------------------
# cache-directory resilience
# ----------------------------------------------------------------------
class TestCacheDirResilience:
    def test_uncreatable_cache_dir_relocates_with_warning(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory should go")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cache = JitCache(blocker / "cache")
        assert cache.relocated
        assert cache.cache_dir.is_dir()
        assert any(issubclass(w.category, JitFallbackWarning) for w in caught)
        # and the relocated cache is fully functional
        mod = cache.get_module(_spec(), generate_source)
        assert hasattr(mod, "run")

    @pytest.mark.skipif(os.geteuid() == 0, reason="root ignores mode bits")
    def test_readonly_cache_dir_relocates(self, tmp_path):
        ro = tmp_path / "ro"
        ro.mkdir()
        ro.chmod(0o555)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                cache = JitCache(ro)
            assert cache.relocated
            assert cache.cache_dir != ro
        finally:
            ro.chmod(0o755)

    def test_writable_cache_dir_not_relocated(self, tmp_path):
        cache = JitCache(tmp_path)
        assert not cache.relocated
        assert cache.cache_dir == tmp_path


class TestTmpSweep:
    def test_dead_writer_tmp_swept_live_and_fresh_kept(self, tmp_path):
        # pre-stamp the directory so the format-version sweep (which
        # clears everything pygb_* in an unstamped dir) stays out of the way
        (tmp_path / "CACHE_FORMAT").write_text(f"{CACHE_FORMAT_VERSION}\n")
        proc = subprocess.Popen(["true"])
        proc.wait()  # reaped: the pid is now dead
        dead = tmp_path / f"pygb_x.py.{proc.pid}.140000000.tmp"
        dead.write_text("")
        mine = tmp_path / f"pygb_y.py.{os.getpid()}.140000000.tmp"
        mine.write_text("")
        odd_fresh = tmp_path / "strange.tmp"
        odd_fresh.write_text("")
        odd_old = tmp_path / "ancient.tmp"
        odd_old.write_text("")
        two_hours_ago = time.time() - 7200
        os.utime(odd_old, (two_hours_ago, two_hours_ago))

        cache = JitCache(tmp_path)
        assert not dead.exists()
        assert mine.exists()  # our own pid is alive
        assert odd_fresh.exists()  # unparseable but young: grace period
        assert not odd_old.exists()  # unparseable and stale
        assert cache.stats.tmp_swept == 2


class TestFormatStamp:
    def test_stale_format_sweeps_artifacts(self, tmp_path):
        (tmp_path / "CACHE_FORMAT").write_text("0\n")
        stale = tmp_path / "pygb_old_artifact.py"
        stale.write_text("# from an older cache layout")
        JitCache(tmp_path)
        assert not stale.exists()
        assert (tmp_path / "CACHE_FORMAT").read_text().strip() == str(
            CACHE_FORMAT_VERSION
        )

    def test_current_format_keeps_artifacts(self, tmp_path):
        cache = JitCache(tmp_path)
        cache.get_module(_spec(), generate_source)
        artifacts = sorted(p.name for p in tmp_path.glob("pygb_*"))
        cache2 = JitCache(tmp_path)
        assert sorted(p.name for p in tmp_path.glob("pygb_*")) == artifacts
        cache2.clear_memory()
        cache2.get_module(_spec(), generate_source)
        assert cache2.stats.disk_hits == 1  # survived re-construction


# ----------------------------------------------------------------------
# broken-compiler acceptance: every algorithm still runs correctly
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not os.path.exists("/bin/false"), reason="needs /bin/false"
)
class TestBrokenCompilerAcceptance:
    @pytest.fixture
    def broken_chain(self, tmp_path, monkeypatch):
        from repro.jit.cppengine import CppJitEngine

        monkeypatch.setenv("PYGB_CXX", "/bin/false")
        cache = JitCache(tmp_path)
        chain = ResilientEngine(
            [CppJitEngine(cache), PyJitEngine(cache), InterpretedEngine()]
        )
        return cache, chain

    @pytest.fixture
    def sym_graph(self):
        # two triangles sharing vertex 2, plus a pendant vertex 6
        edges = [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (4, 5),
                 (5, 6)]
        rows = [e[0] for e in edges] + [e[1] for e in edges]
        cols = [e[1] for e in edges] + [e[0] for e in edges]
        return gb.Matrix(
            (np.ones(len(rows), dtype=np.int64), (rows, cols)),
            shape=(7, 7), dtype=np.int64,
        )

    def test_every_algorithm_completes_with_one_warning_per_spec(
        self, broken_chain, sym_graph
    ):
        from repro.algorithms import (
            bfs_levels,
            connected_components,
            k_truss,
            lower_triangle,
            pagerank,
            triangle_count,
        )

        cache, chain = broken_chain

        def run_all():
            results = {}
            results["bfs"] = bfs_levels(sym_graph, 0).to_coo()
            ranks = gb.Vector(shape=(sym_graph.nrows,), dtype=float)
            pagerank(sym_graph, ranks, threshold=1e-8)
            results["pagerank"] = ranks.to_numpy()
            results["triangles"] = triangle_count(lower_triangle(sym_graph))
            results["components"] = connected_components(sym_graph).to_coo()
            results["ktruss"] = k_truss(sym_graph, 3).to_coo()
            return results

        with gb.use_engine("interpreted"):
            expected = run_all()

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with gb.use_engine(chain):
                got = run_all()

        for name in ("bfs", "components", "ktruss"):
            for e, g in zip(expected[name], got[name]):
                np.testing.assert_array_equal(e, g, err_msg=name)
        np.testing.assert_allclose(
            got["pagerank"], expected["pagerank"], rtol=1e-6
        )
        assert got["triangles"] == expected["triangles"] == 2

        # exactly one JitFallbackWarning per quarantined spec — a hot loop
        # must not spam one warning per iteration
        fallback = [
            str(w.message)
            for w in caught
            if issubclass(w.category, JitFallbackWarning)
        ]
        assert len(fallback) == len(set(fallback))
        quarantined = cache.health.snapshot()["specs"]
        assert len(quarantined) == len(fallback)
        assert all(row["engine"] == "cpp" for row in quarantined)
        assert cache.stats.jit_failures == len(quarantined)
        assert cache.stats.fallbacks >= len(quarantined)

    def test_strict_mode_restores_raise(self, tmp_path, monkeypatch):
        from repro.jit.cppengine import CppJitEngine

        monkeypatch.setenv("PYGB_CXX", "/bin/false")
        monkeypatch.setenv("PYGB_JIT_STRICT", "1")
        eng = CppJitEngine(JitCache(tmp_path))
        with pytest.raises(CompilationError):
            eng.ewise_add_vec(*_vec_args(), "Plus", OpDesc())


# ----------------------------------------------------------------------
# the JIT'd MatrixMarket fast loader degrades too
# ----------------------------------------------------------------------
@pytest.mark.skipif(
    not os.path.exists("/bin/false"), reason="needs /bin/false"
)
class TestFastLoaderDegradation:
    def test_loader_compile_failure_falls_back_to_python_reader(
        self, tmp_path, monkeypatch
    ):
        import repro.io.fastload as fl
        from repro.io.matrixmarket import mmwrite
        from repro.jit.cache import reset_default_cache

        monkeypatch.setenv("PYGB_CXX", "/bin/false")
        monkeypatch.setenv("PYGB_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.setattr(fl, "_lib", None)
        monkeypatch.setattr(fl, "_lib_failed", False)
        reset_default_cache()
        try:
            self._run(tmp_path)
        finally:
            monkeypatch.undo()
            reset_default_cache()

    def _run(self, tmp_path):
        import repro.io.fastload as fl
        from repro.io.matrixmarket import mmwrite
        m = gb.Matrix(
            (np.array([1.0, 2.0]), ([0, 1], [1, 0])), shape=(2, 2), dtype=float
        )
        path = tmp_path / "g.mtx"
        mmwrite(path, m)
        with pytest.warns(JitFallbackWarning):
            loaded = fl.mmread_fast(path, dtype=float)
        assert loaded.to_coo()[2].tolist() == [1.0, 2.0]
        # the failure is latched: the second read is silent
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            fl.mmread_fast(path, dtype=float)
        assert not [
            w for w in caught if issubclass(w.category, JitFallbackWarning)
        ]


# ----------------------------------------------------------------------
# env-selected engine degradation vs. explicit selection
# ----------------------------------------------------------------------
class TestEngineDegradation:
    def test_env_selected_cpp_degrades_to_pyjit(self, monkeypatch):
        import threading

        monkeypatch.setenv("PYGB_BACKEND", "cpp")
        monkeypatch.setenv("PYGB_CXX", "/nonexistent/pygb-no-such-compiler")
        seen = {}

        def worker():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                seen["name"] = gb.current_backend_engine().name
                seen["warnings"] = [
                    w for w in caught
                    if issubclass(w.category, JitFallbackWarning)
                ]

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert seen["name"] == "pyjit"
        assert len(seen["warnings"]) == 1

    def test_env_selected_cpp_strict_raises(self, monkeypatch):
        import threading

        monkeypatch.setenv("PYGB_BACKEND", "cpp")
        monkeypatch.setenv("PYGB_CXX", "/nonexistent/pygb-no-such-compiler")
        monkeypatch.setenv("PYGB_JIT_STRICT", "1")
        errors = []

        def worker():
            try:
                gb.current_backend_engine()
            except BackendUnavailable as exc:
                errors.append(exc)

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert len(errors) == 1
