"""Differential tests for the plan-IR fusion pass (``jit/fusion.py``).

Two properties under test, per peephole rule:

* **equivalence** — with ``PYGB_FUSION=1`` the fused kernel produces the
  same result as the unfused interpreted engine (bit-identical for
  pyjit, which shares NumPy primitives with the reference; allclose for
  cpp, whose reductions may re-associate floats) across dtypes, masks
  (including ``~mask``), accumulators, and the replace flag;
* **savings** — a :class:`~repro.core.dispatch.CountingEngine` shows each
  rule collapses its producer+consumer pair into one engine call, and the
  traced algorithms (BFS, SSSP, PageRank) issue strictly fewer engine
  calls fused than unfused.
"""

from __future__ import annotations

import contextlib
import os

import numpy as np
import pytest

import repro as gb
from repro.core.dispatch import CountingEngine, make_engine
from repro.core.masks import AccumExpr
from repro.core.plan import Plan, fusion_enabled
from repro.jit.cppcodegen import CPP_GENERATORS, PARALLEL_FUNCS
from repro.jit.cppengine import toolchain_works
from repro.jit.fused_ops import FUSED_OPS
from repro.jit.pycodegen import GENERATORS

from helpers import mat_from_dict, random_mat_dict, random_vec_dict, vec_from_dict

N = 32


@contextlib.contextmanager
def _fusion(on: bool):
    old = os.environ.get("PYGB_FUSION")
    os.environ["PYGB_FUSION"] = "1" if on else "0"
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("PYGB_FUSION", None)
        else:
            os.environ["PYGB_FUSION"] = old


def _data(dtype):
    rng = np.random.default_rng(11)
    return dict(
        A=random_mat_dict(rng, N, N, 0.25, dtype),
        B=random_mat_dict(rng, N, N, 0.25, dtype),
        u=random_vec_dict(rng, N, 0.5, dtype),
        v=random_vec_dict(rng, N, 0.5, dtype),
        w=random_vec_dict(rng, N, 0.4, dtype),
        W=random_mat_dict(rng, N, N, 0.2, dtype),
        mv=random_vec_dict(rng, N, 0.5, np.bool_),
        mm=random_mat_dict(rng, N, N, 0.4, np.bool_),
    )


# expression builders, one per vector-producing plan rule
_VEC_EXPRS = {
    "mxv_apply": lambda A, B, u, v: (A @ u) * 2,
    "vxm_apply": lambda A, B, u, v: (u @ A) + 3,
    "ewise_add_vec_apply": lambda A, B, u, v: (u + v) * 2,
    "ewise_mult_vec_apply": lambda A, B, u, v: (u * v) + 1,
    "mxm_reduce_rows": lambda A, B, u, v: gb.reduce("Plus", A @ B),
}

_MAT_EXPRS = {
    "ewise_add_mat_apply": lambda A, B: (A + B) * 2,
    "ewise_mult_mat_apply": lambda A, B: (A * B) + 1,
}

_VEC_MODES = ("plain", "mask", "comp", "replace", "accum")


def _run_vec(rule, mode, dtype):
    d = _data(dtype)
    A = mat_from_dict(d["A"], N, N, dtype)
    B = mat_from_dict(d["B"], N, N, dtype)
    u = vec_from_dict(d["u"], N, dtype)
    v = vec_from_dict(d["v"], N, dtype)
    out = vec_from_dict(d["w"], N, dtype)
    mask = vec_from_dict(d["mv"], N, np.bool_)
    expr = _VEC_EXPRS[rule](A, B, u, v)
    if mode == "plain":
        out[None] = expr
    elif mode == "mask":
        out[mask] = expr
    elif mode == "comp":
        out[~mask] = expr
    elif mode == "replace":
        out[mask, True] = expr
    elif mode == "accum":
        with gb.Accumulator("Plus"):
            out[None] += expr
    return out.to_numpy()


def _run_mat(rule, mode, dtype):
    d = _data(dtype)
    A = mat_from_dict(d["A"], N, N, dtype)
    B = mat_from_dict(d["B"], N, N, dtype)
    out = mat_from_dict(d["W"], N, N, dtype)
    mask = mat_from_dict(d["mm"], N, N, np.bool_)
    expr = _MAT_EXPRS[rule](A, B)
    if mode == "plain":
        out[None] = expr
    elif mode == "mask":
        out[mask] = expr
    elif mode == "comp":
        out[~mask] = expr
    elif mode == "replace":
        out[mask, True] = expr
    elif mode == "accum":
        with gb.Accumulator("Plus"):
            out[None] += expr
    return out.to_numpy()


def _run_reduce(rule, dtype):
    d = _data(dtype)
    u = vec_from_dict(d["u"], N, dtype)
    v = vec_from_dict(d["v"], N, dtype)
    if rule == "ewise_add_vec_reduce_scalar":
        return gb.reduce(u + v)
    return gb.reduce(u * v)


def _run_apply_assign(mode, dtype):
    d = _data(dtype)
    u = vec_from_dict(d["u"], N, dtype)
    out = vec_from_dict(d["w"], N, dtype)
    mask = vec_from_dict(d["mv"], N, np.bool_)
    if mode == "full":
        out[:] = u * 2
    elif mode == "indexed":
        idx = list(range(0, N, 3))
        small = vec_from_dict(
            {i: val for i, val in enumerate(sorted(d["v"].values())[: len(idx)])},
            len(idx),
            dtype,
        )
        out[idx] = small * 2
    elif mode == "masked":
        out[mask][:] = u * 2
    elif mode == "accum":
        # C[:] += expr in GrB terms; the DSL spells it through AccumExpr
        with gb.Accumulator("Plus"):
            out[slice(None)] = AccumExpr(u * 2)
    return out.to_numpy()


def _differential(build, engine_name, exact):
    with _fusion(True), gb.use_engine(engine_name):
        got = np.asarray(build())
    with _fusion(False), gb.use_engine("interpreted"):
        want = np.asarray(build())
    if exact:
        assert np.array_equal(got, want)
    else:
        np.testing.assert_allclose(got, want, rtol=1e-9)


# ----------------------------------------------------------------------
# equivalence: pyjit fused vs interpreted unfused (bit-identical)
# ----------------------------------------------------------------------
class TestPyJitDifferential:
    @pytest.mark.parametrize("dtype", [np.float64, np.int64])
    @pytest.mark.parametrize("mode", _VEC_MODES)
    @pytest.mark.parametrize("rule", sorted(_VEC_EXPRS))
    def test_vector_rules(self, rule, mode, dtype):
        _differential(lambda: _run_vec(rule, mode, dtype), "pyjit", exact=True)

    @pytest.mark.parametrize("dtype", [np.float64, np.int64])
    @pytest.mark.parametrize("mode", _VEC_MODES)
    @pytest.mark.parametrize("rule", sorted(_MAT_EXPRS))
    def test_matrix_rules(self, rule, mode, dtype):
        _differential(lambda: _run_mat(rule, mode, dtype), "pyjit", exact=True)

    @pytest.mark.parametrize("dtype", [np.float64, np.int64])
    @pytest.mark.parametrize(
        "rule", ["ewise_add_vec_reduce_scalar", "ewise_mult_vec_reduce_scalar"]
    )
    def test_reduce_rules(self, rule, dtype):
        _differential(lambda: _run_reduce(rule, dtype), "pyjit", exact=True)

    @pytest.mark.parametrize("dtype", [np.float64, np.int64])
    @pytest.mark.parametrize("mode", ["full", "indexed", "masked", "accum"])
    def test_apply_assign(self, mode, dtype):
        _differential(lambda: _run_apply_assign(mode, dtype), "pyjit", exact=True)

    def test_unary_op_form(self):
        """A named UnaryOp (not a scalar bind) on top of a producer."""
        inv = gb.UnaryOp("AdditiveInverse")

        def build():
            d = _data(np.float64)
            A = mat_from_dict(d["A"], N, N, np.float64)
            u = vec_from_dict(d["u"], N, np.float64)
            return gb.Vector(gb.apply(inv, A @ u)).to_numpy()

        _differential(build, "pyjit", exact=True)


# ----------------------------------------------------------------------
# equivalence: cpp fused vs interpreted unfused
# ----------------------------------------------------------------------
@pytest.mark.cpp
@pytest.mark.skipif(not toolchain_works(), reason="no working C++ toolchain")
class TestCppDifferential:
    @pytest.mark.parametrize("mode", ["plain", "mask"])
    @pytest.mark.parametrize("rule", sorted(_VEC_EXPRS))
    def test_vector_rules(self, rule, mode):
        _differential(lambda: _run_vec(rule, mode, np.float64), "cpp", exact=False)

    @pytest.mark.parametrize("rule", sorted(_MAT_EXPRS))
    def test_matrix_rules(self, rule):
        _differential(lambda: _run_mat(rule, "mask", np.float64), "cpp", exact=False)

    @pytest.mark.parametrize(
        "rule", ["ewise_add_vec_reduce_scalar", "ewise_mult_vec_reduce_scalar"]
    )
    def test_reduce_rules(self, rule):
        _differential(lambda: _run_reduce(rule, np.int64), "cpp", exact=True)

    @pytest.mark.parametrize("mode", ["full", "masked"])
    def test_apply_assign(self, mode):
        _differential(lambda: _run_apply_assign(mode, np.int64), "cpp", exact=True)


# ----------------------------------------------------------------------
# savings: every rule collapses its pair into one engine call
# ----------------------------------------------------------------------
def _counted(fusion_on, fn):
    eng = CountingEngine(make_engine("pyjit"))
    with _fusion(fusion_on), gb.use_engine(eng):
        result = fn()
    return eng, result


class TestCallSavings:
    @pytest.mark.parametrize("rule", sorted(_VEC_EXPRS))
    def test_vector_rule_fires(self, rule):
        eng, _ = _counted(True, lambda: _run_vec(rule, "plain", np.float64))
        assert eng.counts.get(rule) == 1
        off, _ = _counted(False, lambda: _run_vec(rule, "plain", np.float64))
        assert rule not in off.counts
        assert off.total == eng.total + 1  # two calls became one

    @pytest.mark.parametrize("rule", sorted(_MAT_EXPRS))
    def test_matrix_rule_fires(self, rule):
        eng, _ = _counted(True, lambda: _run_mat(rule, "plain", np.float64))
        assert eng.counts.get(rule) == 1
        off, _ = _counted(False, lambda: _run_mat(rule, "plain", np.float64))
        assert rule not in off.counts
        assert off.total == eng.total + 1

    @pytest.mark.parametrize(
        "rule", ["ewise_add_vec_reduce_scalar", "ewise_mult_vec_reduce_scalar"]
    )
    def test_reduce_rule_fires(self, rule):
        eng, _ = _counted(True, lambda: _run_reduce(rule, np.float64))
        assert eng.counts.get(rule) == 1
        off, _ = _counted(False, lambda: _run_reduce(rule, np.float64))
        assert rule not in off.counts
        assert off.total == eng.total + 1

    def test_apply_assign_fires(self):
        eng, _ = _counted(True, lambda: _run_apply_assign("masked", np.float64))
        assert eng.counts.get("apply_assign_vec") == 1
        off, _ = _counted(False, lambda: _run_apply_assign("masked", np.float64))
        assert "apply_assign_vec" not in off.counts
        assert off.total == eng.total + 1

    def test_fusion_env_switch(self, monkeypatch):
        monkeypatch.setenv("PYGB_FUSION", "0")
        assert not fusion_enabled()
        monkeypatch.setenv("PYGB_FUSION", "1")
        assert fusion_enabled()
        monkeypatch.delenv("PYGB_FUSION")
        assert fusion_enabled()  # default on

    def test_algorithms_issue_strictly_fewer_calls(self):
        """Acceptance gate: tracing BFS + SSSP + PageRank, fusion-on
        issues strictly fewer engine calls than fusion-off."""
        from repro.algorithms import bfs_levels, pagerank, sssp_distances
        from repro.io.generators import erdos_renyi

        def trace():
            g = erdos_renyi(40, seed=3)
            gf = erdos_renyi(40, seed=3, weighted=True, dtype=float)
            bfs_levels(g, 0)
            sssp_distances(gf, 0)
            pr = gb.Vector(shape=(40,), dtype=float)
            pagerank(gf, pr)

        on, _ = _counted(True, trace)
        off, _ = _counted(False, trace)
        assert on.total < off.total
        assert on.counts.get("ewise_mult_vec_reduce_scalar", 0) > 0

    def test_pagerank_saves_one_call_per_iteration(self):
        from repro.algorithms import pagerank
        from repro.io.generators import erdos_renyi

        def trace():
            g = erdos_renyi(40, seed=3, weighted=True, dtype=float)
            pr = gb.Vector(shape=(40,), dtype=float)
            pagerank(g, pr)

        on, _ = _counted(True, trace)
        off, _ = _counted(False, trace)
        iters = on.counts["vxm"]
        assert off.total - on.total == iters


# ----------------------------------------------------------------------
# plan structure
# ----------------------------------------------------------------------
class TestPlanIR:
    def test_shared_subexpression_evaluates_once(self):
        """Satellite fix: forcing the same expression twice reuses the
        cached container instead of re-running the kernel."""
        d = _data(np.float64)
        A = mat_from_dict(d["A"], N, N, np.float64)
        u = vec_from_dict(d["u"], N, np.float64)
        eng = CountingEngine(make_engine("pyjit"))
        with gb.use_engine(eng):
            e = A @ u
            w1 = gb.Vector(e)
            w2 = gb.Vector(e)
        assert eng.counts.get("mxv") == 1
        assert np.array_equal(w1.to_numpy(), w2.to_numpy())

    def test_plan_orders_children_before_parents(self):
        d = _data(np.float64)
        A = mat_from_dict(d["A"], N, N, np.float64)
        u = vec_from_dict(d["u"], N, np.float64)
        expr = (A @ u) * 2
        plan = Plan(expr)
        kinds = [node.kind for node in plan.order]
        assert kinds.index("mxv") < kinds.index("apply_vec")

    def test_materialised_producer_is_not_fused(self):
        """A producer that was already forced must not be re-executed
        inside a fused kernel (its value may be observed elsewhere)."""
        d = _data(np.float64)
        A = mat_from_dict(d["A"], N, N, np.float64)
        u = vec_from_dict(d["u"], N, np.float64)
        eng = CountingEngine(make_engine("pyjit"))
        with _fusion(True), gb.use_engine(eng):
            e = A @ u
            e.nvals  # forces the producer
            out = gb.Vector(shape=(N,), dtype=float)
            out[None] = e * 2
        assert "mxv_apply" not in eng.counts
        assert eng.counts.get("apply_vec") == 1


# ----------------------------------------------------------------------
# registry coverage
# ----------------------------------------------------------------------
class TestRegistry:
    def test_every_fused_op_has_all_backends(self):
        """Each planner rule must have a pyjit generator, a C++ generator,
        a reference kernel on the interpreted engine, and (for warm-cache
        stamping) membership in PARALLEL_FUNCS."""
        from repro.backend import kernels as K

        names = {op.name for op in FUSED_OPS}
        assert names <= set(GENERATORS)
        assert names <= set(CPP_GENERATORS)
        assert names <= set(PARALLEL_FUNCS)
        for name in names:
            assert callable(getattr(K, name))

    def test_plan_rules_cover_issue_minimum(self):
        plan_rules = {op.name for op in FUSED_OPS if op.where == "plan"}
        assert {
            "mxv_apply",
            "vxm_apply",
            "ewise_add_vec_apply",
            "ewise_mult_vec_apply",
            "ewise_add_mat_apply",
            "ewise_mult_mat_apply",
            "mxm_reduce_rows",
        } <= plan_rules
